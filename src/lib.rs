//! # dapsp — distributed all-pairs shortest paths in the CONGEST model
//!
//! A facade crate re-exporting the full reproduction of Holzer & Wattenhofer,
//! *Optimal Distributed All Pairs Shortest Paths and Applications* (PODC
//! 2012):
//!
//! * [`congest`] — the synchronous CONGEST-model simulator substrate,
//! * [`graph`] — graph types, generators, lower-bound families, and
//!   centralized reference algorithms,
//! * [`core`] — the paper's algorithms: `O(n)` APSP (Algorithm 1),
//!   `O(|S|+D)` S-SP (Algorithm 2), diameter/radius/eccentricity/center/
//!   peripheral/girth exact and approximate solvers, and the 2-vs-4
//!   distinguisher (Algorithm 3),
//! * [`baselines`] — distance-vector, link-state, and unpipelined
//!   BFS-per-node comparison algorithms,
//! * [`serve`] — routing tables as a service: the computation's results
//!   compacted into immutable snapshots and served to concurrent readers
//!   through atomic swaps, with churn-driven republishes.
//!
//! # Quickstart
//!
//! ```
//! use dapsp::core::apsp;
//! use dapsp::graph::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = generators::cycle(8);
//! let result = apsp::run(&graph)?;
//! assert_eq!(result.distances.get(0, 4), Some(4));
//! println!("APSP finished in {} rounds", result.stats.rounds);
//! # Ok(())
//! # }
//! ```

pub use dapsp_baselines as baselines;
pub use dapsp_congest as congest;
pub use dapsp_core as core;
pub use dapsp_graph as graph;
pub use dapsp_serve as serve;

//! An S-SP application: anycast routing. A handful of replica servers are
//! placed in a network; every client must learn its distance and next hop
//! to *each* replica. That is exactly the S-Shortest-Paths problem, solved
//! by Algorithm 2 in `O(|S| + D)` rounds — far faster than full APSP when
//! the replica set is small.
//!
//! ```text
//! cargo run --release --example anycast_servers
//! ```

use dapsp::core::{apsp, ssp};
use dapsp::graph::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A metro network: 12×12 grid of switches.
    let network = generators::grid(12, 12);
    let n = network.num_nodes();
    // Four replicas, roughly one per quadrant.
    let servers = vec![13u32, 22, 121, 130];
    println!("network: {} switches; replicas at {:?}\n", n, servers);

    let r = ssp::run(&network, &servers)?;
    println!(
        "S-SP finished in {} rounds (D0 = {}, |S| = {}) — Theorem 3 budget |S| + D0 = {}",
        r.stats.rounds,
        r.d0,
        servers.len(),
        servers.len() as u32 + r.d0
    );

    // Each client picks its closest replica.
    let mut load = vec![0usize; servers.len()];
    for v in 0..n {
        let (best_idx, _) = r.dist[v]
            .iter()
            .enumerate()
            .min_by_key(|(_, &d)| d)
            .expect("nonempty server set");
        load[best_idx] += 1;
    }
    for (i, &s) in servers.iter().enumerate() {
        println!("replica {s}: serves {} clients", load[i]);
    }

    // A sample client's anycast table.
    let client = 77u32;
    println!("\nanycast table at switch {client}:");
    for (i, &s) in servers.iter().enumerate() {
        println!(
            "  replica {s}: {} hops, next hop {:?}",
            r.dist[client as usize][i],
            r.next_hop[client as usize][i].expect("client is not a server")
        );
    }

    // Contrast with full APSP: same distances, many more rounds.
    let full = apsp::run(&network)?;
    for (i, &s) in servers.iter().enumerate() {
        for v in 0..n as u32 {
            assert_eq!(Some(r.dist[v as usize][i]), full.distances.get(v, s));
        }
    }
    println!(
        "\nfull APSP would need {} rounds for the same information ({}x more)",
        full.stats.rounds,
        full.stats.rounds / r.stats.rounds
    );
    Ok(())
}

//! Quickstart: build a network, compute APSP distributedly, inspect the
//! result and the CONGEST round cost.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dapsp::core::{apsp, metrics};
use dapsp::graph::{generators, Graph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4×4 grid network: 16 routers, 24 links.
    let network = generators::grid(4, 4);
    println!(
        "network: {} nodes, {} edges",
        network.num_nodes(),
        network.num_edges()
    );

    // Algorithm 1: all pairs shortest paths in O(n) CONGEST rounds.
    let result = apsp::run(&network)?;
    println!(
        "APSP finished in {} rounds ({} messages, {} bits) — Theorem 1 bound: O(n) = O(16)",
        result.stats.rounds, result.stats.messages, result.stats.bits
    );

    // Distances and actual routes between opposite corners.
    let (a, b) = (0u32, 15u32);
    println!(
        "d({a}, {b}) = {} via {:?}",
        result.distances.get(a, b).expect("connected"),
        result.path(a, b)
    );

    // The Lemma 3–6 metrics from the same APSP run.
    let bundle = metrics::from_apsp(&network, &result)?;
    println!(
        "diameter = {}, radius = {}, center = {:?}",
        bundle.diameter,
        bundle.radius,
        bundle
            .center
            .iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(v, _)| v)
            .collect::<Vec<_>>()
    );

    // You can build any topology by hand, too.
    let mut custom = Graph::builder(4);
    custom.add_edge(0, 1)?;
    custom.add_edge(1, 2)?;
    custom.add_edge(2, 3)?;
    custom.add_edge(3, 0)?;
    let ring = custom.build();
    let r = apsp::run(&ring)?;
    println!(
        "custom 4-ring: d(0,2) = {}, computed in {} rounds",
        r.distances.get(0, 2).expect("connected"),
        r.stats.rounds
    );
    Ok(())
}

//! A network that changes underneath a running computation — and a repair
//! protocol that patches the answer instead of starting over.
//!
//! A [`TopologyPlan`] is a scheduled churn script: edge inserts, edge
//! removals, node crashes and joins, each taking effect at the start of a
//! named round on every engine identically. This example drives one grid
//! network through four stages:
//!
//! 1. `bfs::run_churned` against a remove + insert mid-run — the repair
//!    wave only revisits the nodes the damage actually moved, asserted
//!    **exact** against the sequential oracle on the mutated graph;
//! 2. a node crash via the plan — every route through the lost node is
//!    retracted, again exactly;
//! 3. a churn batch past the adaptive threshold — the kernel gives up on
//!    surgical repair, falls back to a full recompute, and *says so* in
//!    the run statistics (still exact either way);
//! 4. a [`FaultPlan`] crash **window** composed with a plan removal on the
//!    same node, demonstrating the precedence rule: a crashed node keeps
//!    its edges and returns when the window closes; a removed edge is
//!    gone for good (removal wins over the crash window on the shared
//!    rounds).
//!
//! ```text
//! cargo run --release --example churn_network
//! ```

use dapsp::congest::{Config, FaultPlan, Simulator, TopologyPlan};
use dapsp::core::{apsp, bfs, churned_graph};
use dapsp::graph::{generators, reference, INFINITY};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = generators::grid(6, 6);
    let n = network.num_nodes();

    // -- 1. repair after a remove + insert ----------------------------------
    println!("6x6 grid, BFS from node 0 while the topology shifts underfoot\n");
    println!("-- bfs::run_churned: remove (0,1) at round 3, insert (0,35) at round 4 --");
    let plan = TopologyPlan::new()
        .with_remove(3, 0, 1)
        .with_insert(4, 0, 35);
    let repaired = bfs::run_churned(&network, 0, &plan)?;
    let mutated = churned_graph(&network, &plan)?;
    let oracle = reference::bfs(&mutated, 0);
    for v in 0..n as u32 {
        assert_eq!(
            repaired.dist_to(v, 0),
            Some(oracle[v as usize]),
            "repaired d({v}) must match the oracle on the mutated graph"
        );
    }
    // The insert put the far corner one hop away; the oracle agrees.
    assert_eq!(repaired.dist_to(35, 0), Some(1));
    println!(
        "exact on all {n} nodes; {} topology events, {} node-rounds of repair work, \
         {} full-recompute fallbacks",
        repaired.stats.topo_events,
        repaired.stats.repaired_node_rounds,
        repaired.stats.recompute_fallbacks
    );

    // -- 2. a node crash via the plan ---------------------------------------
    println!("\n-- apsp::run_churned: node 14 crashes out of the network at round 3 --");
    let plan = TopologyPlan::new().with_crash(3, 14);
    let repaired = apsp::run_churned(&network, &plan)?;
    let mutated = churned_graph(&network, &plan)?;
    let oracle = reference::apsp(&mutated);
    assert!(!repaired.present[14], "the crashed node left the network");
    let mut retracted = 0;
    for v in 0..n as u32 {
        for r in 0..n as u32 {
            if !repaired.present[v as usize] || !repaired.present[r as usize] {
                continue;
            }
            let d = repaired.dist_to(v, r);
            assert_eq!(
                d,
                oracle.get(v, r).or(Some(INFINITY)),
                "repaired d({v},{r}) must match the oracle without node 14"
            );
            if d != reference::apsp(&network).get(v, r).or(Some(INFINITY)) {
                retracted += 1;
            }
        }
    }
    println!(
        "exact on the surviving {} nodes; {retracted} pairwise distances lengthened \
         and every one was retracted correctly",
        n - 1
    );

    // -- 3. the adaptive fallback -------------------------------------------
    println!("\n-- a churn batch past the threshold: repair yields to recompute --");
    // Five removals in one round is ten directed port halves — past the
    // max(4, n/8) threshold, so every node abandons surgical repair.
    let plan = TopologyPlan::new()
        .with_remove(3, 0, 1)
        .with_remove(3, 2, 3)
        .with_remove(3, 7, 13)
        .with_remove(3, 20, 26)
        .with_remove(3, 33, 34);
    let repaired = apsp::run_churned(&network, &plan)?;
    assert!(
        repaired.stats.recompute_fallbacks > 0,
        "a batch this large must trip the adaptive fallback"
    );
    let oracle = reference::apsp(&churned_graph(&network, &plan)?);
    for v in 0..n as u32 {
        for r in 0..n as u32 {
            assert_eq!(repaired.dist_to(v, r), oracle.get(v, r).or(Some(INFINITY)));
        }
    }
    println!(
        "{} nodes fell back to a full recompute — and the answer is still exact",
        repaired.stats.recompute_fallbacks
    );

    // -- 4. crash windows compose with removals; removal wins ---------------
    println!("\n-- FaultPlan crash window x TopologyPlan removal on the same node --");
    // Node 1 is dark for delivery rounds 2..6 (a *window*: it keeps its
    // edges and comes back). Its edge to node 0 is removed at round 4 (for
    // good). On rounds where both apply, removal wins: the drop is
    // attributed to the topology change, not the crash.
    let faults = FaultPlan::new(11).with_crash(1, 2, 6);
    let plan = TopologyPlan::new().with_remove(4, 0, 1);
    let cfg = Config::for_n(n)
        .with_faults(faults)
        .with_topology(plan.clone());
    let topo = network.to_topology();
    let report = Simulator::new(&topo, cfg, |_| flood::Flood::default()).run()?;
    let reached = report.outputs.iter().filter(|r| r.is_some()).count();
    // The window closed and node 1 still has three other grid edges, so the
    // flood reaches everyone — but only via the surviving links.
    assert_eq!(reached, n, "every node is reachable once the window closes");
    assert!(report.stats.dropped > 0, "the window and removal were live");
    assert_eq!(report.stats.topo_events, 1);
    println!(
        "flood reached {reached}/{n} nodes; {} sends died at the dark node or the \
         severed edge ({} crashed node-rounds)",
        report.stats.dropped, report.stats.crashed
    );

    println!("\nChurn is a first-class input: every engine applies the plan at the");
    println!("same round boundary, repair touches only what moved, the fallback is");
    println!("deterministic, and exactness is asserted, not hoped for.");
    Ok(())
}

mod flood {
    use dapsp::congest::{Inbox, Message, NodeAlgorithm, NodeContext, Outbox, Port};

    #[derive(Clone, Debug)]
    pub struct Token;
    impl Message for Token {
        fn bit_size(&self) -> u32 {
            1
        }
    }

    /// Floods for a fixed horizon after first contact — long enough to
    /// outlive any crash window, so a temporarily dark node still hears
    /// its neighbors once the window closes.
    #[derive(Default)]
    pub struct Flood {
        seen: Option<u64>,
        ttl: u32,
    }

    impl NodeAlgorithm for Flood {
        type Message = Token;
        type Output = Option<u64>;
        fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Token>) {
            if ctx.node_id() == 0 {
                self.seen = Some(0);
                self.ttl = 12;
                out.send_to_all(0..ctx.degree() as Port, Token);
            }
        }
        fn on_round(
            &mut self,
            ctx: &NodeContext<'_>,
            inbox: &Inbox<Token>,
            out: &mut Outbox<Token>,
        ) {
            if !inbox.is_empty() && self.seen.is_none() {
                self.seen = Some(ctx.round());
                self.ttl = 12;
            }
            if self.ttl > 0 {
                out.send_to_all(0..ctx.degree() as Port, Token);
                self.ttl -= 1;
            }
        }
        fn is_active(&self) -> bool {
            self.ttl > 0
        }
        fn into_output(self, _ctx: &NodeContext<'_>) -> Option<u64> {
            self.seen
        }
    }
}

//! The paper's framing scenario: routing-table computation in an ISP-like
//! network — link-state vs distance-vector vs the paper's APSP.
//!
//! Builds a hierarchical topology (a core ring of backbone routers, each
//! serving a star of access routers, with a few redundant cross-links),
//! computes full routing tables three ways, and compares round and message
//! costs under the same B-bit CONGEST constraints.
//!
//! ```text
//! cargo run --release --example network_routing
//! ```

use dapsp::baselines;
use dapsp::core::{apsp, routing};
use dapsp::graph::Graph;

/// `cores` backbone routers in a ring; each with `leaves` access routers;
/// cross-links every third core pair for redundancy.
fn isp_topology(cores: usize, leaves: usize) -> Graph {
    let n = cores * (1 + leaves);
    let mut b = Graph::builder(n);
    let core = |i: usize| (i % cores) as u32;
    for i in 0..cores {
        b.add_edge(core(i), core(i + 1)).expect("ring edge");
        if i % 3 == 0 && cores > 4 {
            b.add_edge(core(i), core(i + cores / 2))
                .expect("cross link");
        }
        for l in 0..leaves {
            let leaf = (cores + i * leaves + l) as u32;
            b.add_edge(core(i), leaf).expect("access link");
        }
    }
    b.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = isp_topology(12, 6);
    println!(
        "ISP topology: {} routers, {} links\n",
        network.num_nodes(),
        network.num_edges()
    );

    // The paper's algorithm.
    let a = apsp::run(&network)?;
    // Distance-vector (eager, triggered updates) and link-state, serialized
    // to B-bit messages as in §3.1 of the paper.
    let dv = baselines::distance_vector_eager(&network)?;
    let dv_rr = baselines::distance_vector(&network)?;
    let ls = baselines::link_state(&network)?;
    assert_eq!(a.distances, dv.distances);
    assert_eq!(a.distances, ls.distances);
    assert_eq!(a.distances, dv_rr.distances);

    println!(
        "{:<28} {:>8} {:>10} {:>12}",
        "algorithm", "rounds", "messages", "bits"
    );
    for (name, rounds, stats) in [
        ("APSP (Algorithm 1)", a.stats.rounds, &a.stats),
        ("distance-vector (eager)", dv.rounds_to_converge, &dv.stats),
        (
            "distance-vector (rnd-robin)",
            dv_rr.rounds_to_converge,
            &dv_rr.stats,
        ),
        ("link-state flooding", ls.rounds_to_converge, &ls.stats),
    ] {
        println!(
            "{:<28} {:>8} {:>10} {:>12}",
            name, rounds, stats.messages, stats.bits
        );
    }

    // A concrete routing table: next hops from access router 20.
    let src = 20u32;
    println!("\nrouting table at node {src} (first 8 destinations):");
    for dst in 0..8u32 {
        if dst == src {
            continue;
        }
        println!(
            "  to {:>2}: next hop {:?}, {} hops",
            dst,
            a.next_hop[src as usize][dst as usize].expect("connected"),
            a.distances.get(src, dst).expect("connected")
        );
    }

    // Now actually route traffic over those tables: every access router in
    // region 0 sends to the same server, so the final link serializes.
    let tables = routing::RoutingTables::from_apsp(&a);
    let server = 13u32; // an access router behind core 1
    let flows: Vec<routing::Flow> = (0..6)
        .map(|l| routing::Flow {
            source: 12 + 12 * l, // one access router per region
            destination: server,
        })
        .collect();
    let traffic = routing::simulate_flows(&network, &tables, &flows)?;
    println!("\ntraffic to server {server} (shared-link congestion is visible):");
    for d in &traffic.deliveries {
        println!(
            "  {:>3} -> {server}: {} hops, arrived round {} (queued {})",
            d.flow.source, d.hops, d.arrival_round, d.queueing_delay
        );
    }
    Ok(())
}

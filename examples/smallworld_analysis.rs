//! Whole-network analysis of small-world and scale-free topologies: the
//! §3.5 application story end to end.
//!
//! Generates a Watts–Strogatz small world and a Barabási–Albert scale-free
//! network, elects a leader (the paper's "node with ID 1" assumption, made
//! executable), runs the one-shot [`summary::analyze`] pipeline, and prints
//! the structural profile of each network plus an edge-list export sample.
//!
//! ```text
//! cargo run --release --example smallworld_analysis
//! ```

use dapsp::core::{leader, summary};
use dapsp::graph::{generators, io, properties, Graph};

fn profile(name: &str, g: &Graph) -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "== {name}: {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    );
    let deg = properties::degree_stats(g);
    println!(
        "   degrees: min {} / mean {:.2} / max {}; density {:.4}; bipartite: {}",
        deg.min,
        deg.mean,
        deg.max,
        properties::density(g),
        properties::is_bipartite(g)
    );

    let led = leader::elect(g)?;
    println!(
        "   leader election: node {} in {} rounds",
        led.leader, led.stats.rounds
    );

    let s = summary::analyze(g)?;
    println!(
        "   diameter {} / radius {} / girth {} — {} rounds total",
        s.diameter,
        s.radius,
        s.girth.map_or("∞".into(), |v| v.to_string()),
        s.stats.rounds
    );
    println!(
        "   center: {:?} ({} nodes); peripheral: {} nodes",
        &s.center_ids()[..s.center_ids().len().min(8)],
        s.center_ids().len(),
        s.peripheral_ids().len()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let small_world = generators::watts_strogatz(80, 3, 0.15, 11);
    profile("Watts–Strogatz small world", &small_world)?;

    let scale_free = generators::barabasi_albert(80, 2, 11);
    profile("Barabási–Albert scale-free", &scale_free)?;

    // Interop: round-trip through the edge-list format real datasets use.
    let exported = io::to_edge_list(&scale_free);
    let reimported = io::from_edge_list(&exported)?;
    assert_eq!(reimported, scale_free);
    println!(
        "\nedge-list export round-trips ({} bytes); first lines:\n{}",
        exported.len(),
        exported.lines().take(4).collect::<Vec<_>>().join("\n")
    );
    Ok(())
}

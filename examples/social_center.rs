//! The paper's §3.5 motivation: centers of social networks are
//! "celebrities", peripheral vertices matter for spam detection — both
//! computable distributedly.
//!
//! Builds a synthetic social graph (dense communities bridged by a few
//! connectors), then finds the center and peripheral vertices exactly
//! (Lemmas 5 and 6) and with the `(×, 1+ε)` approximation (Corollary 4),
//! comparing answers and round costs.
//!
//! ```text
//! cargo run --release --example social_center
//! ```

use dapsp::core::{approx, metrics};
use dapsp::graph::Graph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// `communities` groups of `size` members each (dense within), chained by
/// connector members, with a celebrity following into every community.
fn social_graph(communities: usize, size: usize, seed: u64) -> Graph {
    let n = communities * size + 1; // +1 celebrity
    let celebrity = (n - 1) as u32;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = Graph::builder(n);
    let member = |c: usize, i: usize| (c * size + i) as u32;
    for c in 0..communities {
        for i in 0..size {
            for j in (i + 1)..size {
                if rng.gen_bool(0.5) {
                    b.add_edge(member(c, i), member(c, j)).expect("edge");
                }
            }
        }
        // Chain connector: last member of c knows first member of c+1.
        if c + 1 < communities {
            b.add_edge(member(c, size - 1), member(c + 1, 0))
                .expect("edge");
        }
        // The celebrity knows one member of each community.
        b.add_edge(celebrity, member(c, 0)).expect("edge");
        // Make sure every member is connected inside the community.
        for i in 1..size {
            b.add_edge(member(c, 0), member(c, i)).expect("edge");
        }
    }
    b.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = social_graph(6, 12, 7);
    println!(
        "social graph: {} people, {} ties",
        g.num_nodes(),
        g.num_edges()
    );
    let celebrity = g.num_nodes() as u32 - 1;

    let center = metrics::center(&g)?;
    let peripheral = metrics::peripheral_vertices(&g)?;
    println!(
        "exact ({} rounds): radius {}, center {:?}",
        center.stats.rounds,
        center.threshold,
        center.member_ids()
    );
    println!(
        "exact: diameter {}, peripheral vertices {:?}",
        peripheral.threshold,
        peripheral.member_ids()
    );
    println!(
        "the celebrity (node {celebrity}) is{} in the center",
        if center.members[celebrity as usize] {
            ""
        } else {
            " not"
        }
    );

    // Approximate center: must contain the exact one (Corollary 4).
    let approx_center = approx::center(&g, 0.5)?;
    assert!(center
        .member_ids()
        .iter()
        .all(|&c| approx_center.members[c as usize]));
    println!(
        "approx ({} rounds): candidate center {:?} — a superset of the exact center",
        approx_center.stats.rounds,
        approx_center.member_ids()
    );
    Ok(())
}

//! What happens when the CONGEST model's reliable-link assumption breaks —
//! and what it costs to restore it.
//!
//! A [`FaultPlan`] is a deterministic adversary: per-(round, node, port)
//! message loss (uniform, bursty, or ramping) plus scheduled node crash
//! windows. This example drives the same network through three stages:
//!
//! 1. a bare flood under increasing loss — failures are *detectable*
//!    (unreached nodes, drop counters), never silent;
//! 2. the same loss rates under `bfs::run_faulty`, whose reliable
//!    transport retransmits until every distance is **exact** — asserted
//!    against the sequential oracle each time;
//! 3. a composed adversary (burst loss + background loss + a crash
//!    window) against `apsp::run_faulty`, asserting full recovery and
//!    reporting the round overhead the reliability layer paid.
//!
//! ```text
//! cargo run --release --example lossy_network
//! ```

use dapsp::congest::{Config, FaultPlan, LossRule, Simulator};
use dapsp::core::{apsp, bfs};
use dapsp::graph::{generators, reference};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = generators::grid(8, 8);
    let topo = network.to_topology();
    let n = network.num_nodes();

    println!("8x8 grid, BFS from node 0 under injected message loss\n");
    println!("-- bare flood: loss is visible, results are partial --");
    println!(
        "{:>6} {:>10} {:>10} {:>10}",
        "loss", "reached", "dropped", "delivered"
    );
    for loss in [0.0, 0.05, 0.2, 0.5, 0.9] {
        let cfg = Config::for_n(n).with_faults(FaultPlan::uniform_loss(loss, 42));
        let sim = Simulator::new(&topo, cfg, |_| flood::Flood::default());
        let report = sim.run()?;
        let reached = report.outputs.iter().filter(|r| r.is_some()).count();
        println!(
            "{:>5.0}% {:>7}/{:<3} {:>10} {:>10}",
            loss * 100.0,
            reached,
            n,
            report.stats.dropped,
            report.stats.messages
        );
    }

    println!("\n-- bfs::run_faulty: same adversary, exact recovery --");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>8}",
        "loss", "dropped", "frames", "retx", "rounds"
    );
    let oracle = reference::bfs(&network, 0);
    for loss in [0.0, 0.05, 0.2, 0.5] {
        let (result, rel) = bfs::run_faulty(&network, 0, FaultPlan::uniform_loss(loss, 42))?;
        assert_eq!(result.dist, oracle, "reliable BFS must match the oracle");
        assert!(!rel.gave_up);
        println!(
            "{:>5.0}% {:>10} {:>10} {:>10} {:>8}",
            loss * 100.0,
            result.stats.dropped,
            rel.frames_sent,
            rel.retransmissions,
            result.stats.rounds
        );
    }

    println!("\n-- apsp::run_faulty vs a composed adversary --");
    // 35% loss bursts two of every ten rounds, 5% background loss, and
    // node 27 crashes outright for rounds 40..80.
    let adversary = FaultPlan::new(7)
        .with_rule(LossRule::Burst {
            probability: 0.35,
            period: 10,
            len: 2,
        })
        .with_rule(LossRule::Uniform { probability: 0.05 })
        .with_crash(27, 40, 80);
    let clean = apsp::run(&network)?;
    let (faulty, rel) = apsp::run_faulty(&network, adversary)?;
    assert_eq!(
        faulty.distances,
        reference::apsp(&network),
        "reliable APSP must match the oracle"
    );
    assert_eq!(
        faulty.distances, clean.distances,
        "recovery must be bit-identical to the fault-free run"
    );
    assert_eq!(faulty.girth_candidate, clean.girth_candidate);
    assert!(faulty.stats.dropped > 0, "the adversary was live");
    assert!(faulty.stats.crashed > 0, "the crash window was entered");
    println!(
        "dropped {} messages, {} node-rounds crashed, {} retransmissions",
        faulty.stats.dropped, faulty.stats.crashed, rel.retransmissions
    );
    println!(
        "rounds: {} fault-free -> {} reliable-under-attack ({:.1}x)",
        clean.stats.rounds,
        faulty.stats.rounds,
        faulty.stats.rounds as f64 / clean.stats.rounds as f64
    );

    println!("\nLoss shows up in observable places (outputs stuck at None, drop and");
    println!("crash counters), and the reliable pipelines turn it into exactness at");
    println!("a measured round cost -- recovery asserted, not hoped for.");
    Ok(())
}

mod flood {
    use dapsp::congest::{Inbox, Message, NodeAlgorithm, NodeContext, Outbox, Port};

    #[derive(Clone, Debug)]
    pub struct Token;
    impl Message for Token {
        fn bit_size(&self) -> u32 {
            1
        }
    }

    #[derive(Default)]
    pub struct Flood {
        seen: Option<u64>,
    }

    impl NodeAlgorithm for Flood {
        type Message = Token;
        type Output = Option<u64>;
        fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Token>) {
            if ctx.node_id() == 0 {
                self.seen = Some(0);
                out.send_to_all(0..ctx.degree() as Port, Token);
            }
        }
        fn on_round(
            &mut self,
            ctx: &NodeContext<'_>,
            inbox: &Inbox<Token>,
            out: &mut Outbox<Token>,
        ) {
            if !inbox.is_empty() && self.seen.is_none() {
                self.seen = Some(ctx.round());
                out.send_to_all(0..ctx.degree() as Port, Token);
            }
        }
        fn into_output(self, _ctx: &NodeContext<'_>) -> Option<u64> {
            self.seen
        }
    }
}

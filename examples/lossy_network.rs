//! What happens when the CONGEST model's reliable-link assumption breaks:
//! deterministic fault injection on the simulator.
//!
//! The paper's algorithms assume every `B`-bit message arrives. This
//! example drives a BFS under increasing message-loss rates and shows that
//! failures are *detectable* (unreached nodes, drop counters), not silent —
//! which is exactly the guarantee a deployment needs before layering
//! retransmission underneath.
//!
//! ```text
//! cargo run --release --example lossy_network
//! ```

use dapsp::congest::{Config, Simulator};
use dapsp::graph::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = generators::grid(8, 8);
    let topo = network.to_topology();
    let n = network.num_nodes();
    println!("8x8 grid, BFS from node 0 under injected message loss\n");
    println!(
        "{:>6} {:>10} {:>10} {:>10}",
        "loss", "reached", "dropped", "delivered"
    );
    for loss in [0.0, 0.05, 0.2, 0.5, 0.9] {
        // The internal BFS node algorithm is not public; a minimal flood
        // stands in for it — same delivery semantics, same detectability.
        let cfg = Config::for_n(n).with_loss(loss, 42);
        let sim = Simulator::new(&topo, cfg, |_| flood::Flood::default());
        let report = sim.run()?;
        let reached = report.outputs.iter().filter(|r| r.is_some()).count();
        println!(
            "{:>5.0}% {:>7}/{:<3} {:>10} {:>10}",
            loss * 100.0,
            reached,
            n,
            report.stats.dropped,
            report.stats.messages
        );
    }
    println!("\nLoss shows up in two observable places: nodes that never hear the");
    println!("wave (their output stays None) and the simulator's drop counter —");
    println!("an operator never has to *guess* whether a run was clean.");
    Ok(())
}

mod flood {
    use dapsp::congest::{Inbox, Message, NodeAlgorithm, NodeContext, Outbox, Port};

    #[derive(Clone, Debug)]
    pub struct Token;
    impl Message for Token {
        fn bit_size(&self) -> u32 {
            1
        }
    }

    #[derive(Default)]
    pub struct Flood {
        seen: Option<u64>,
    }

    impl NodeAlgorithm for Flood {
        type Message = Token;
        type Output = Option<u64>;
        fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Token>) {
            if ctx.node_id() == 0 {
                self.seen = Some(0);
                out.send_to_all(0..ctx.degree() as Port, Token);
            }
        }
        fn on_round(
            &mut self,
            ctx: &NodeContext<'_>,
            inbox: &Inbox<Token>,
            out: &mut Outbox<Token>,
        ) {
            if !inbox.is_empty() && self.seen.is_none() {
                self.seen = Some(ctx.round());
                out.send_to_all(0..ctx.degree() as Port, Token);
            }
        }
        fn into_output(self, _ctx: &NodeContext<'_>) -> Option<u64> {
            self.seen
        }
    }
}

//! Routing tables as a service: one distributed computation, many
//! concurrent readers, zero read locks.
//!
//! The serve layer splits the system into the classic two planes. The
//! **data plane** is a [`RouteTable`] — the converged APSP run compacted
//! into flat next-hop/hop-count arrays plus the derived metrics
//! (eccentricities, centers, girth) and the engine's termination
//! certificate. The **control plane** is a [`RouteService`] on a
//! background thread: hand it a [`TopologyPlan`] and it reruns the
//! computation through the churn track, then publishes the repaired table
//! by an atomic snapshot swap. Readers keep their `ServeHandle` clones
//! through any number of republishes; a reader mid-batch keeps the
//! snapshot it loaded — never torn, never blocked.
//!
//! This example runs a small-world ISP-ish network, spins up reader
//! threads that route traffic continuously, and fails over a link while
//! they run.
//!
//! ```text
//! cargo run --release --example route_service
//! ```

use std::sync::atomic::{AtomicBool, Ordering};

use dapsp::congest::TopologyPlan;
use dapsp::graph::generators;
use dapsp::serve::RouteService;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = generators::watts_strogatz(96, 3, 0.05, 7);
    let n = network.num_nodes() as u32;

    // One distributed computation; epoch-0 table published on return.
    let service = RouteService::with_threads(&network, 2)?;
    let table = service.handle().load();
    println!(
        "built epoch {} for {} nodes: diameter {:?}, radius {:?}, girth {:?}, policy {}",
        table.epoch(),
        n,
        table.diameter(),
        table.radius(),
        table.girth(),
        table.policy().name(),
    );
    let cert = table.certificate().expect("run carries its certificate");
    println!(
        "termination certificate: round {}, reason {:?}\n",
        cert.round, cert.reason
    );

    // Point lookups and full path reconstruction, lock-free on a snapshot.
    let (s, d) = (0u32, n / 2);
    let path = table.path(s, d).expect("small worlds are connected");
    println!("route {s} -> {d}: {} hops via {:?}", path.len() - 1, path);

    // Move the control plane to a background thread and start readers.
    let controller = service.spawn();
    let done = AtomicBool::new(false);
    let queries_per_reader: Vec<u64> = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..4)
            .map(|r| {
                let handle = controller.handle();
                let done = &done;
                scope.spawn(move || {
                    let mut queries = 0u64;
                    let mut x = 0x9e37_79b9_u64.wrapping_mul(r + 1);
                    while !done.load(Ordering::Acquire) {
                        // A fresh snapshot per batch; the swap below never
                        // tears one out from under us.
                        let snap = handle.load();
                        assert!(snap.verify(), "snapshot checksum");
                        for _ in 0..256 {
                            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                            let s = (x >> 33) as u32 % n;
                            let d = (x >> 13) as u32 % n;
                            let hops = snap.dist(s, d).expect("connected");
                            if let Some(h) = snap.next_hop(s, d) {
                                // The hop makes geodesic progress on the
                                // same snapshot — internal consistency.
                                assert_eq!(snap.dist(h, d), Some(hops - 1));
                            }
                            queries += 1;
                        }
                    }
                    queries
                })
            })
            .collect();

        // Fail a link over and reroute, while the readers hammer away.
        let t0 = std::time::Instant::now();
        let epoch = controller
            .apply_wait(TopologyPlan::new().with_remove(1, 0, 1))
            .expect("republish");
        println!(
            "republished epoch {epoch} after a link failure in {:?} (readers never paused)",
            t0.elapsed()
        );
        let t1 = std::time::Instant::now();
        let epoch = controller
            .apply_wait(TopologyPlan::new().with_insert(1, 0, n / 2))
            .expect("republish");
        println!(
            "republished epoch {epoch} after a link install in {:?}",
            t1.elapsed()
        );

        done.store(true, Ordering::Release);
        readers.into_iter().map(|r| r.join().unwrap()).collect()
    });

    let total: u64 = queries_per_reader.iter().sum();
    println!(
        "\n4 readers answered {total} queries across the two republishes \
         ({queries_per_reader:?})"
    );

    let final_table = controller.handle().load();
    println!(
        "final snapshot: epoch {}, policy {}, girth {:?}",
        final_table.epoch(),
        final_table.policy().name(),
        final_table.girth(),
    );
    let service = controller.shutdown();
    assert_eq!(service.epoch(), 2);
    println!(
        "control plane handed the service back at epoch {}",
        service.epoch()
    );
    Ok(())
}

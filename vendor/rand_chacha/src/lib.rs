//! Offline stub of the `rand_chacha` crate: a genuine ChaCha8 keystream
//! generator behind the workspace's [`rand`] stub traits.
//!
//! The keystream is a faithful ChaCha implementation (8 rounds, RFC 8439
//! state layout, zero nonce), but callers should treat the exact stream as
//! an implementation detail: everything in this repository that consumes it
//! asserts *properties* of the derived values, never golden outputs.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A deterministic ChaCha generator with 8 keystream rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words 0..8, then the 64-bit block counter in words 8..10.
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word of `buf`; 16 means exhausted.
    idx: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut x = [0u32; 16];
        x[..4].copy_from_slice(&CONSTANTS);
        x[4..12].copy_from_slice(&self.key);
        x[12] = self.counter as u32;
        x[13] = (self.counter >> 32) as u32;
        // x[14], x[15]: zero nonce.
        let input = x;
        for _ in 0..4 {
            // One double round: a column round then a diagonal round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (out, (a, b)) in self.buf.iter_mut().zip(x.iter().zip(input.iter())) {
            *out = a.wrapping_add(*b);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

#[inline]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let word = self.buf[self.idx];
        self.idx += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(ChaCha8Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn stream_crosses_block_boundaries() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<u32> = (0..40).map(|_| rng.next_u32()).collect();
        let mut again = ChaCha8Rng::seed_from_u64(7);
        let second: Vec<u32> = (0..40).map(|_| again.next_u32()).collect();
        assert_eq!(first, second);
        // The two 16-word blocks differ (counter feeds the state).
        assert_ne!(&first[..16], &first[16..32]);
    }

    #[test]
    fn usable_through_the_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let hits = (0..1000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((150..350).contains(&hits), "hits={hits}");
        for _ in 0..100 {
            let v = rng.gen_range(0usize..10);
            assert!(v < 10);
        }
    }
}

//! Offline stub of the `rand` crate.
//!
//! The build environment for this repository has no access to a crates.io
//! registry, so the workspace vendors the *exact* API surface it consumes:
//! [`RngCore`], [`Rng::gen_range`] over primitive integer/float ranges,
//! [`Rng::gen_bool`], and [`SeedableRng::seed_from_u64`]. Anything else from
//! upstream `rand` is intentionally absent; add methods here the day code
//! needs them rather than depending on the network.

use std::ops::Range;

/// The low-level uniform word source, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// The next uniformly distributed 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// The next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching upstream `rand`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); the rejection zone is
                // tiny for the spans used in this workspace.
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let x = rng.next_u64();
                    if x < zone {
                        return self.start + (x % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let x = rng.next_u64();
                    if x < zone {
                        return ((self.start as i64) + (x % span) as i64) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let wide = (self.start as f64)..(self.end as f64);
        wide.sample(rng) as f32
    }
}

/// User-facing sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A biased coin flip: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Deterministic construction from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array for every implementor here).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 the
    /// same way upstream `rand_core` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, byte) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = byte;
            }
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64: uniform enough for the statistical checks below.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes_and_middle() {
        let mut rng = Counter(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&hits), "hits={hits}");
    }

    #[test]
    fn gen_range_covers_small_spans_uniformly() {
        let mut rng = Counter(3);
        let mut seen = [0usize; 4];
        for _ in 0..4000 {
            seen[rng.gen_range(0usize..4)] += 1;
        }
        assert!(seen.iter().all(|&c| c > 800), "seen={seen:?}");
    }
}

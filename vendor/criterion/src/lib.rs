//! Offline stub of the `criterion` crate.
//!
//! Implements the API surface `crates/bench/benches/table1.rs` uses —
//! benchmark groups, [`BenchmarkId`], `bench_function`/`bench_with_input`,
//! and the [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! mean-of-samples timer instead of upstream's statistical machinery.
//! Results are printed as one line per benchmark.

use std::fmt::Display;
use std::time::Instant;

/// Identifier of one parameterized benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A function name plus a displayable parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// The per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, running it `samples` times and keeping the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    group_name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many iterations each benchmark averages over.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    fn record(&mut self, bench_name: &str, nanos: f64) {
        let label = format!("{}/{}", self.group_name, bench_name);
        println!("{label:<60} {:>12.1} ns/iter", nanos);
        self.criterion.results.push((label, nanos));
    }

    /// Runs one unparameterized benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            nanos_per_iter: 0.0,
        };
        f(&mut b);
        let id = id.into();
        self.record(&id, b.nanos_per_iter);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            nanos_per_iter: 0.0,
        };
        f(&mut b, input);
        self.record(&id.name, b.nanos_per_iter);
        self
    }

    /// Ends the group. (Upstream flushes reports here; the stub prints
    /// eagerly, so this is a no-op kept for API compatibility.)
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            group_name: name.into(),
            samples: 10,
            criterion: self,
        }
    }
}

/// Bundles benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 42), &42u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(demo, sample_bench);

    #[test]
    fn group_runs_and_records() {
        demo();
        let mut c = Criterion::default();
        sample_bench(&mut c);
        assert_eq!(c.results.len(), 2);
        assert!(c.results[0].0.starts_with("g/plain"));
        assert!(c.results[1].0.contains("with_input/42"));
    }
}

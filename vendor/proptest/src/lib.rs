//! Offline stub of the `proptest` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the slice of proptest this workspace actually uses: the [`proptest!`]
//! macro with an optional `#![proptest_config(..)]` header, range and
//! [`any`] strategies, [`collection::vec`], and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * cases are generated from a seed derived from the test name, so runs
//!   are reproducible without a persistence file (`*.proptest-regressions`
//!   files are ignored);
//! * there is no shrinking — a failure reports the exact inputs of the
//!   failing case instead, which is enough to paste into a unit test.

use std::fmt;
use std::ops::Range;

/// Per-test configuration; only the field this workspace sets.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A deterministic SplitMix64 source driving input generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from the test name, so each test owns a stable,
    /// independent stream.
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// The next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A failed `prop_assert*`; carries the formatted assertion message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Something that can produce random values of its `Value` type.
pub trait Strategy {
    /// The generated value type.
    type Value: fmt::Debug;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + x) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// Types with a canonical whole-domain strategy, for [`any`].
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_from_u64 {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_from_u64!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector whose length is uniform in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Declares property tests.
///
/// Supports the upstream form used in this workspace: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions whose
/// parameters are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(err) = outcome {
                        let mut inputs = ::std::string::String::new();
                        $(
                            inputs.push_str(stringify!($arg));
                            inputs.push_str(" = ");
                            inputs.push_str(&::std::format!("{:?}, ", &$arg));
                        )+
                        ::std::panic!(
                            "property failed at case {case}: {err}\n  inputs: {inputs}"
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside [`proptest!`], failing the case (not the
/// whole process) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!($($fmt)*)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        $crate::prop_assert_eq!($left, $right, "prop_assert_eq failed")
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        ::std::format!($($fmt)*),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                        "prop_assert_ne failed: both sides are {:?}",
                        l
                    )));
                }
            }
        }
    };
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_test("y");
        assert_ne!(crate::TestRng::for_test("x").next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges honor their bounds and vectors honor their length range.
        #[test]
        fn generated_values_respect_strategies(
            n in 3usize..17,
            x in any::<u64>(),
            f in 0.25f64..0.75,
            flag in any::<bool>(),
            values in crate::collection::vec(0u64..16, 1..9),
        ) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!(!values.is_empty() && values.len() < 9);
            prop_assert!(values.iter().all(|&v| v < 16));
            // Use the remaining inputs so the expansion exercises them.
            prop_assert_eq!(x + u64::from(flag), u64::from(flag) + x);
        }
    }

    proptest! {
        /// The headerless form compiles and runs with the default config.
        #[test]
        fn headerless_form_works(v in 0u32..10) {
            prop_assert!(v < 10);
            prop_assert_ne!(v, 10);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(v in 5u32..6) {
                prop_assert_eq!(v, 0, "forced failure");
            }
        }
        inner();
    }
}

#!/usr/bin/env bash
# Full local verification: build, test, lint, docs, and a smoke run of the
# engine phase profiler. All offline — the workspace vendors its few
# dependencies under vendor/, so no registry is needed.
#
# Note: the workspace root is itself a package, so a bare `cargo test`
# would only run the root crate; every invocation below passes
# --workspace explicitly.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline --workspace -q

echo "==> executor parity suites (serial vs pool vs reference)"
# Redundant with the workspace run above, but named explicitly so a log
# reader can see the determinism suites ran: the four-way engine
# equivalence proptests (including the sparse-vs-dense active-set
# workloads and the idle-protocol quiescence regressions), the pool
# lifecycle/stamp regressions, and the observer-stream decomposition
# invariants over the scheduled-nodes column.
cargo test --offline -q -p dapsp-congest --test engine_equivalence --test engine_pipeline --test obs_stream

echo "==> forced-stealing parity (DAPSP_POOL_CHUNK=1)"
# Reruns the four-way equivalence proptests and the stealing regressions
# with the work-stealing chunk size forced to a single node, the
# maximum-contention regime: every scheduled node is its own chunk, so
# workers steal constantly and the bit-for-bit determinism contract is
# exercised under the scheduler's worst case rather than its default
# adaptive chunking.
DAPSP_POOL_CHUNK=1 cargo test --offline -q -p dapsp-congest \
    --test engine_equivalence --test pool_stealing

echo "==> dapsp-inspect diff on the hub family (serial vs pool)"
# The hub family embeds a high-degree star in a Watts-Strogatz ring — the
# load-imbalance workload work stealing exists for. The diff runs APSP on
# the serial executor and the 2-thread pool with unit chunks and
# line-diffs the two trace2 JSONL event streams; any scheduler-induced
# divergence prints the first differing event and fails this step.
DAPSP_POOL_CHUNK=1 cargo run --offline --release -p dapsp-bench --bin dapsp-inspect -- \
    diff --workload apsp --family hub --n 64 --threads 2

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps --quiet

echo "==> engine_profile --smoke --threads 1,2"
# Exercises the observer-instrumented engines end to end, including the
# worker-pool executor: pool rows assert threads spawn once per run, so a
# spawn-per-round regression fails this step. Writes to
# target/BENCH_profile_smoke.json, never the committed BENCH_profile.json.
cargo run --offline --release -p dapsp-bench --bin engine_profile -- --smoke --threads 1,2

echo "==> message-budget smoke (debug build, threads 1,2)"
# Same smoke in a debug build: debug_assertions arm the engine's
# per-message `bit_size() <= message_budget` check on both executors, so
# any overweight message type aborts this step (release builds compile
# the check out, which is why the run above does not cover it).
cargo run --offline -p dapsp-bench --bin engine_profile -- --smoke --threads 1,2

echo "==> small-graph conformance suite"
# Redundant with the workspace run, named so the log shows the exhaustive
# oracle check ran: every algorithm vs the sequential oracles on all 996
# connected graphs with <= 7 nodes.
cargo test --offline -q -p dapsp-core --test conformance_small_graphs

echo "==> engine_throughput --smoke --threads 1,2,4"
# Active-set scheduler end to end at scale: CI-sized instances of every
# family plus one 100k-node Watts-Strogatz scaling row, where the dense
# seed baseline and the sparse frontier engine must agree bit-for-bit
# on outputs and RunStats (the binary asserts it). Threads 4 is included
# so the smoke emits the same label|engine|executor|threads keys as the
# committed baseline's pool rows, for the gate below. Writes to
# target/BENCH_engine_smoke.json, never the committed BENCH_engine.json.
cargo run --offline --release -p dapsp-bench --bin engine_throughput -- --smoke --threads 1,2,4

echo "==> bench-regression gate vs committed BENCH_engine.json"
# Compares the smoke rows just written against the committed baseline on
# matching label|engine|executor|threads keys: any round- or
# message-count mismatch is a determinism break and fails outright; a
# msgs/s ratio worse than 3x fails as a performance regression (the
# margin absorbs CI-machine noise but catches an accidental return to
# dense per-node scheduling, which costs ~10x on the scaling row).
cargo run --offline --release -p dapsp-bench --bin dapsp-inspect -- bench-gate BENCH_engine.json target/BENCH_engine_smoke.json

echo "==> dapsp-inspect --smoke"
# Self-check of the trace subsystem end to end: a lossy traced BFS
# records kernel-attributed events, a serial-vs-pool stream diff under
# 15% loss is bit-identical, the Perfetto export is well-formed, and the
# bench gate provably passes on identical rows and catches both an
# injected 10x regression and a round-count mismatch.
cargo run --offline --release -p dapsp-bench --bin dapsp-inspect -- --smoke

echo "==> fault_sweep --smoke --threads 1,2"
# Fault-injection smoke: reliable APSP/S-SP under a live FaultPlan
# adversary on the serial and pool executors. The binary itself asserts
# oracle exactness and cross-executor bit-identity, so a fault-layer or
# synchronizer regression fails this step. Writes to
# target/BENCH_faults_smoke.json, never the committed BENCH_faults.json.
cargo run --offline --release -p dapsp-bench --bin fault_sweep -- --smoke --threads 1,2

echo "==> churn conformance suite"
# Redundant with the workspace run, named so the log shows the churn
# sweep ran: every connected graph with <= 6 nodes gets a mid-run edge
# delete (+ insert where one fits), and the repaired BFS/APSP must equal
# the sequential oracle on the mutated graph, serial vs pool
# bit-identical.
cargo test --offline -q -p dapsp-core --test conformance_small_graphs \
    churned_runs_match_oracles_on_every_small_connected_graph

echo "==> churn_repair --smoke --threads 1,2 (DAPSP_POOL_CHUNK=1)"
# Churn-repair smoke under the forced-stealing regime: repaired APSP on
# the ws family is recomputed at 1 and 2 threads with unit chunks and
# asserted bit-identical, checked against the post-churn oracle, and the
# repair-vs-recompute and adaptive-fallback claims are asserted per row.
# Writes to target/BENCH_churn_smoke.json, never the committed
# BENCH_churn.json.
DAPSP_POOL_CHUNK=1 cargo run --offline --release -p dapsp-bench --bin churn_repair -- --smoke --threads 1,2

echo "==> serve conformance suite"
# Redundant with the workspace run, named so the log shows the serving
# layer's oracle check ran: the published RouteTable vs Floyd–Warshall
# on all 996 connected graphs with <= 7 nodes — every next-hop chain
# walked to its destination — then every graph churned and the
# republished epoch-1 snapshot held to the mutated-graph oracle.
cargo test --offline -q -p dapsp-serve --test serve_conformance

echo "==> serve swap-consistency stress (plain + DAPSP_POOL_CHUNK=1)"
# Reader threads hammer a ServeHandle while the background control
# plane republishes under them: every loaded snapshot must
# checksum-verify and answer exactly per its own epoch's graph, epochs
# monotone per handle. The second pass forces unit work-stealing chunks
# so the control plane's pool recomputes run in their most interleaved
# regime.
cargo test --offline -q -p dapsp-serve --test swap_consistency
DAPSP_POOL_CHUNK=1 cargo test --offline -q -p dapsp-serve --test swap_consistency

echo "==> serve_qps --smoke"
# Serving-layer throughput smoke: readers query during live
# recompute+swap windows, every answer oracle-checked per epoch (the
# binary asserts wrong == 0). Same instance and row keys as the
# committed baseline, fewer republishes. Writes to
# target/BENCH_serve_smoke.json, never the committed BENCH_serve.json.
cargo run --offline --release -p dapsp-bench --bin serve_qps -- --smoke

echo "==> bench-regression gate vs committed BENCH_serve.json"
# Gates the serve smoke rows against the committed baseline: a nonzero
# wrong count or correct != queries fails absolutely; a qps ratio worse
# than 3x fails same-host and warns cross-host.
cargo run --offline --release -p dapsp-bench --bin dapsp-inspect -- bench-gate BENCH_serve.json target/BENCH_serve_smoke.json

echo "==> dapsp-inspect summary over a churned trace"
# A churned APSP run under the trace recorder: the summary must render
# the plan's TopologyChange events (the inspect --smoke above asserts
# they are present and kernel attribution survives churn; this pass
# shows them in a full-size summary).
cargo run --offline --release -p dapsp-bench --bin dapsp-inspect -- \
    summary --workload apsp --family regular6 --n 32 --churn 2 --threads 2

echo "OK: fmt + build + tests + clippy + docs + profile, budget, conformance, throughput, bench-gate, inspect, fault, churn & serve smokes all green"

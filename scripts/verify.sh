#!/usr/bin/env bash
# Full local verification: build, test, lint. All offline — the workspace
# vendors its few dependencies under vendor/, so no registry is needed.
#
# Note: the workspace root is itself a package, so a bare `cargo test`
# would only run the root crate; every invocation below passes
# --workspace explicitly.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline --workspace -q

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "OK: build + tests + clippy all green"

#!/usr/bin/env bash
# Full local verification: build, test, lint, docs, and a smoke run of the
# engine phase profiler. All offline — the workspace vendors its few
# dependencies under vendor/, so no registry is needed.
#
# Note: the workspace root is itself a package, so a bare `cargo test`
# would only run the root crate; every invocation below passes
# --workspace explicitly.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline --workspace -q

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps --quiet

echo "==> engine_profile --smoke"
# Exercises the observer-instrumented engines end to end; writes to
# target/BENCH_profile_smoke.json, never the committed BENCH_profile.json.
cargo run --offline --release -p dapsp-bench --bin engine_profile -- --smoke

echo "OK: build + tests + clippy + docs + profile smoke all green"

//! Cross-crate integration tests: the paper's algorithms, the baselines,
//! the hard instances, and the simulator working together end to end.

use dapsp::baselines;
use dapsp::congest::Config;
use dapsp::core::{approx, apsp, metrics, ssp, three_halves, two_vs_four};
use dapsp::graph::{generators, lowerbound, reference, Graph};

fn zoo() -> Vec<(String, Graph)> {
    vec![
        ("path".into(), generators::path(18)),
        ("cycle".into(), generators::cycle(15)),
        ("grid".into(), generators::grid(4, 4)),
        ("complete".into(), generators::complete(8)),
        ("tree".into(), generators::balanced_tree(2, 3)),
        ("tadpole".into(), generators::tadpole(5, 14)),
        ("er".into(), generators::erdos_renyi_connected(22, 0.15, 3)),
        ("barbell".into(), generators::barbell(5, 3)),
    ]
}

/// Four fully independent implementations (Algorithm 1, sequential BFS,
/// two distance-vector variants, link-state) agree with each other and the
/// oracle on every distance.
#[test]
fn all_apsp_implementations_agree() {
    for (name, g) in zoo() {
        let oracle = reference::apsp(&g);
        let a = apsp::run(&g).expect("apsp");
        assert_eq!(a.distances, oracle, "{name}: algorithm 1");
        let seq = baselines::sequential_bfs(&g).expect("sequential");
        assert_eq!(seq.distances, oracle, "{name}: sequential");
        let eager = baselines::distance_vector_eager(&g).expect("eager");
        assert_eq!(eager.distances, oracle, "{name}: eager dv");
        let rr = baselines::distance_vector(&g).expect("round robin");
        assert_eq!(rr.distances, oracle, "{name}: round-robin dv");
        let ls = baselines::link_state(&g).expect("link state");
        assert_eq!(ls.distances, oracle, "{name}: link state");
    }
}

/// Algorithm 1 never loses to the unpipelined schedule, and wins big when
/// the diameter is large.
#[test]
fn pipelining_dominates_sequential_schedule() {
    for (name, g) in zoo() {
        let a = apsp::run(&g).expect("apsp");
        let seq = baselines::sequential_bfs(&g).expect("sequential");
        assert!(
            a.stats.rounds <= seq.stats.rounds + 10,
            "{name}: pebbled {} vs sequential {}",
            a.stats.rounds,
            seq.stats.rounds
        );
    }
    let long = generators::path(60);
    let a = apsp::run(&long).expect("apsp");
    let seq = baselines::sequential_bfs(&long).expect("sequential");
    assert!(a.stats.rounds * 5 < seq.stats.rounds);
}

/// The full approximation stack stays consistent with the exact stack.
#[test]
fn approx_stack_brackets_exact_stack() {
    for (name, g) in zoo() {
        let exact = metrics::diameter(&g).expect("exact diameter");
        for eps in [0.25, 1.0] {
            let apx = approx::diameter(&g, eps).expect("approx diameter");
            assert!(apx.value >= exact.value, "{name} eps={eps}");
            assert!(
                f64::from(apx.value) <= (1.0 + eps) * f64::from(exact.value) + 1e-9,
                "{name} eps={eps}: {} vs {}",
                apx.value,
                exact.value
            );
        }
        let th = three_halves::run(&g, 5).expect("3/2 approx");
        assert!(th.estimate >= exact.value, "{name}");
        assert!(
            f64::from(th.estimate) <= 1.5 * f64::from(exact.value) + 2.0,
            "{name}: {} vs {}",
            th.estimate,
            exact.value
        );
    }
}

/// S-SP answers are a sub-matrix of APSP answers, at a fraction of the
/// rounds for small source sets.
#[test]
fn ssp_is_a_cheap_submatrix_of_apsp() {
    let g = generators::grid(8, 8);
    let sources = vec![0u32, 27, 63];
    let full = apsp::run(&g).expect("apsp");
    let part = ssp::run(&g, &sources).expect("ssp");
    for v in 0..g.num_nodes() as u32 {
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(Some(part.dist[v as usize][i]), full.distances.get(v, s));
        }
    }
    assert!(part.stats.rounds * 2 < full.stats.rounds);
}

/// The hard instances from the lower-bound module flow through the whole
/// stack: oracle, exact distributed diameter, Algorithm 3, and the
/// certificate all tell one consistent story.
#[test]
fn lower_bound_instances_via_full_stack() {
    for k in [8usize, 20] {
        for intersecting in [false, true] {
            let (a, b) = lowerbound::canonical_inputs(k, intersecting);
            let inst = lowerbound::two_vs_three(k, &a, &b);
            let d = inst.expected_diameter;
            assert_eq!(reference::diameter(&inst.graph), Some(d));
            let exact = metrics::diameter(&inst.graph).expect("exact");
            assert_eq!(exact.value, d);
            let fast = two_vs_four::run(&inst.graph, 11).expect("algorithm 3");
            // Under the promise reading, diameter-2 instances must answer 2;
            // diameter-3 instances are outside the promise but must answer 4
            // (some probed tree has depth 3 > 2).
            assert_eq!(fast.claimed_diameter, if d == 2 { 2 } else { 4 });
            let n = inst.graph.num_nodes();
            let bw = Config::for_n(n).bandwidth_bits;
            assert!(exact.stats.rounds >= inst.bound.rounds(bw));
        }
    }
}

/// Disconnected graphs are rejected uniformly across the stack.
#[test]
fn disconnected_inputs_rejected_everywhere() {
    let mut b = Graph::builder(6);
    b.add_edge(0, 1).unwrap();
    b.add_edge(2, 3).unwrap();
    b.add_edge(4, 5).unwrap();
    let g = b.build();
    use dapsp::core::CoreError;
    assert_eq!(apsp::run(&g).unwrap_err(), CoreError::Disconnected);
    assert_eq!(ssp::run(&g, &[0]).unwrap_err(), CoreError::Disconnected);
    assert_eq!(metrics::diameter(&g).unwrap_err(), CoreError::Disconnected);
    assert_eq!(
        approx::diameter(&g, 0.5).unwrap_err(),
        CoreError::Disconnected
    );
    assert_eq!(
        baselines::sequential_bfs(&g).unwrap_err(),
        CoreError::Disconnected
    );
    assert_eq!(
        baselines::link_state(&g).unwrap_err(),
        CoreError::Disconnected
    );
}

/// Message accounting: Algorithm 1's volume is Θ(n·m) while the exact
/// values it produces match — the "stored distributedly" reading of the
/// paper (each node holds its own row).
#[test]
fn apsp_message_volume_accounting() {
    let g = generators::erdos_renyi_connected(48, 0.12, 9);
    let (n, m) = (g.num_nodes() as u64, g.num_edges() as u64);
    let r = apsp::run(&g).expect("apsp");
    // Each of the n waves crosses each edge at most twice (once per
    // direction), plus pebble and T1 overhead.
    assert!(r.stats.messages <= 2 * n * m + 4 * n + 4 * m);
    // And at least once per edge for the wave part.
    assert!(r.stats.messages >= n * m / 2);
}

/// The application layer end to end: tables from Algorithm 1, packets
/// delivered over the same CONGEST network along true shortest paths.
#[test]
fn routing_layer_delivers_along_shortest_paths() {
    use dapsp::core::routing::{self, Flow};
    let g = generators::grid(6, 6);
    let a = apsp::run(&g).expect("apsp");
    let tables = routing::RoutingTables::from_apsp(&a);
    let flows: Vec<Flow> = vec![
        Flow {
            source: 0,
            destination: 35,
        },
        Flow {
            source: 5,
            destination: 30,
        },
        Flow {
            source: 14,
            destination: 21,
        },
    ];
    let r = routing::simulate_flows(&g, &tables, &flows).expect("flows");
    let oracle = reference::apsp(&g);
    for d in &r.deliveries {
        assert_eq!(
            Some(d.hops),
            oracle.get(d.flow.source, d.flow.destination),
            "table hops must be true distances"
        );
        assert!(d.arrival_round >= u64::from(d.hops));
    }
}

/// §8 end to end: the k-BFS census decides diameter <= k, cross-checked
/// against the oracle on mixed instances.
#[test]
fn kbfs_census_decides_bounded_diameter() {
    for (g, k) in [
        (generators::star(12), 2u32),
        (generators::grid(3, 3), 3),
        (generators::cycle(9), 4),
        (generators::path(7), 3),
    ] {
        let truth = reference::diameter(&g).unwrap();
        let r = apsp::run_truncated(&g, k).expect("kbfs");
        assert_eq!(r.covers_everything(), truth <= k, "k={k} D={truth}");
    }
}

//! Structured, causally-linked run tracing with per-kernel attribution.
//!
//! The paper's bounds are statements about *rounds, messages and waves*;
//! the per-round metric stream ([`MetricsRecorder`](crate::MetricsRecorder))
//! shows their column sums but not their story. This module records the
//! story as typed events — round boundaries, per-kernel sends and
//! receptions, drops with reasons, transport retransmits/acks, quiescence
//! vote tallies, wave starts/arrivals, and the early-termination decision —
//! into a bounded [`Ring`] that keeps the *first* and *last* events of an
//! overflowing run and counts every event exactly.
//!
//! [`TraceRecorder`] is an ordinary [`Observer`]: attach it
//! with [`Config::with_observer`](crate::Config) and detached runs keep
//! paying exactly one `Option` check. Because every event is derived from
//! the deterministic hook stream and stores **no wall-clock fields**, the
//! recorded event sequence is bit-identical across the serial executor, the
//! worker pool at any thread count, and the dense seed reference engine —
//! a contract the `engine_equivalence` proptests pin.
//!
//! Exports:
//!
//! * [`TraceRecorder::events_jsonl`] — one deterministic JSON line per
//!   stored event (diffing two runs is a line diff);
//! * [`TraceRecorder::to_perfetto`] — Chrome-trace/Perfetto JSON with
//!   round-scaled synthetic timestamps: a `rounds` track of round spans,
//!   a per-node (or per-kernel) track of send/drop/retransmit instants, a
//!   vote counter track, and one span per wave lifetime. Load it at
//!   `ui.perfetto.dev` or `chrome://tracing`.

use std::collections::{BTreeMap, VecDeque};

use crate::config::{DropReason, EdgeEvent, NodeEvent, TopologyEvent};
use crate::node::{NodeId, Port};
use crate::obs::{MessageEvent, Observer, RunInfo, TransportSummary};
use crate::stats::RunStats;

/// One typed trace event. Events carry rounds, node ids, bit counts and
/// kernel attribution — never wall-clock time — so two deterministic runs
/// produce equal event sequences and `derive(PartialEq, Eq)` is the whole
/// comparison story.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A run began (phase label, topology size, round-0 scheduled count).
    RunStart {
        /// Phase label from [`Config::with_phase`](crate::Config).
        phase: String,
        /// Nodes in the topology.
        nodes: u64,
        /// Directed edges (`2m`).
        edges: u64,
        /// Nodes that ran `on_start`.
        started: u64,
    },
    /// Round `round` began.
    RoundStart {
        /// The starting round.
        round: u64,
        /// Messages (sent in `round - 1`) about to be delivered.
        delivered: u64,
        /// Nodes on this round's schedule.
        scheduled: u64,
    },
    /// Round `round` finished committing.
    RoundEnd {
        /// The finished round.
        round: u64,
    },
    /// A message was committed for delivery, attributed to the kernels
    /// whose components it carries.
    KernelSend {
        /// The send round.
        round: u64,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Payload bits.
        bits: u32,
        /// Logical stream, if the message reports one.
        stream: Option<u32>,
        /// Kernel presence bitmask (see
        /// [`TraceTags`](crate::message::TraceTags)).
        kernels: u8,
    },
    /// The same committed message, viewed from the receiving side — it
    /// arrives one round after its [`TraceEvent::KernelSend`].
    KernelRecv {
        /// The delivery round (`send round + 1`).
        round: u64,
        /// Receiver.
        to: NodeId,
        /// The receiver's port it arrives on.
        to_port: Port,
        /// Sender.
        from: NodeId,
        /// Logical stream, if the message reports one.
        stream: Option<u32>,
        /// Kernel presence bitmask.
        kernels: u8,
    },
    /// A message was dropped by the fault plan at commit time.
    Drop {
        /// The send round the drop happened in.
        round: u64,
        /// The sender.
        from: NodeId,
        /// The sender's port.
        port: Port,
        /// Loss rule or receiver crash window.
        reason: DropReason,
        /// Kernel presence bitmask of the dropped frame.
        kernels: u8,
        /// The frame was a transport retransmission.
        retransmit: bool,
        /// The frame carried an ack.
        ack: bool,
    },
    /// A committed frame the transport layer marked as a retransmission.
    Retransmit {
        /// The send round.
        round: u64,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// A committed frame carrying an acknowledgement.
    Ack {
        /// The send round.
        round: u64,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// A [`TopologyPlan`](crate::TopologyPlan) event took effect at the
    /// churn choke point entering `round` — before the round's
    /// deliveries, after the previous round's commits (see
    /// [`Observer::on_topology`]).
    TopologyChange {
        /// The round the event takes effect in.
        round: u64,
        /// The applied plan event.
        event: TopologyEvent,
    },
    /// A node sat out this round inside a crash window.
    Crash {
        /// The round.
        round: u64,
        /// The crashed node.
        node: NodeId,
    },
    /// The round's quiescence poll tally (counts sum to the polled-node
    /// count: everyone at round 0, the scheduled set afterwards).
    QuiescenceVotes {
        /// The polled round.
        round: u64,
        /// Nodes voting `Active`.
        active: u64,
        /// Nodes voting `Passive`.
        passive: u64,
        /// Nodes voting `Shutdown`.
        shutdown: u64,
    },
    /// First committed message of a logical stream — the wave's birth.
    WaveStart {
        /// The stream (e.g. the BFS root id).
        stream: u32,
        /// The send round of the first message.
        round: u64,
        /// The originating sender.
        from: NodeId,
    },
    /// A logical stream first reached `node` (at the delivery round).
    WaveArrive {
        /// The stream.
        stream: u32,
        /// The newly reached node.
        node: NodeId,
        /// The delivery round of the first arrival.
        round: u64,
    },
    /// The engine stopped early: the quiescence votes became terminal
    /// after `round` — the per-node certificate lives on
    /// [`Report::certificate`](crate::Report).
    EarlyTermination {
        /// The last executed round.
        round: u64,
        /// Undelivered messages at the decision (zero unless the vote was
        /// unanimous shutdown).
        in_flight: u64,
    },
    /// A reliable-transport wrapper reported its end-of-run telemetry.
    Transport {
        /// Frames put on the wire.
        frames_sent: u64,
        /// Frames re-sent after an ack timeout.
        retransmissions: u64,
        /// Acks sent.
        acks_sent: u64,
        /// Node-links that gave up.
        gave_up: u64,
    },
    /// The run ended with these final totals.
    RunEnd {
        /// Rounds executed.
        rounds: u64,
        /// Messages committed.
        messages: u64,
    },
}

impl TraceEvent {
    /// Renders the event as one deterministic JSON object (one JSONL
    /// line, sans newline). Equal event streams render to equal text, so
    /// diffing two exports is a plain line diff.
    pub fn to_json(&self) -> String {
        fn opt(v: Option<u32>) -> String {
            v.map_or_else(|| "null".into(), |s| s.to_string())
        }
        match self {
            TraceEvent::RunStart {
                phase,
                nodes,
                edges,
                started,
            } => format!(
                "{{\"ev\":\"run_start\",\"phase\":\"{}\",\"nodes\":{nodes},\"edges\":{edges},\"started\":{started}}}",
                escape(phase)
            ),
            TraceEvent::RoundStart {
                round,
                delivered,
                scheduled,
            } => format!(
                "{{\"ev\":\"round_start\",\"round\":{round},\"delivered\":{delivered},\"scheduled\":{scheduled}}}"
            ),
            TraceEvent::RoundEnd { round } => {
                format!("{{\"ev\":\"round_end\",\"round\":{round}}}")
            }
            TraceEvent::KernelSend {
                round,
                from,
                to,
                bits,
                stream,
                kernels,
            } => format!(
                "{{\"ev\":\"send\",\"round\":{round},\"from\":{from},\"to\":{to},\"bits\":{bits},\"stream\":{},\"kernels\":{kernels}}}",
                opt(*stream)
            ),
            TraceEvent::KernelRecv {
                round,
                to,
                to_port,
                from,
                stream,
                kernels,
            } => format!(
                "{{\"ev\":\"recv\",\"round\":{round},\"to\":{to},\"to_port\":{to_port},\"from\":{from},\"stream\":{},\"kernels\":{kernels}}}",
                opt(*stream)
            ),
            TraceEvent::Drop {
                round,
                from,
                port,
                reason,
                kernels,
                retransmit,
                ack,
            } => format!(
                "{{\"ev\":\"drop\",\"round\":{round},\"from\":{from},\"port\":{port},\"reason\":\"{reason:?}\",\"kernels\":{kernels},\"retransmit\":{retransmit},\"ack\":{ack}}}"
            ),
            TraceEvent::Retransmit { round, from, to } => {
                format!("{{\"ev\":\"retransmit\",\"round\":{round},\"from\":{from},\"to\":{to}}}")
            }
            TraceEvent::Ack { round, from, to } => {
                format!("{{\"ev\":\"ack\",\"round\":{round},\"from\":{from},\"to\":{to}}}")
            }
            TraceEvent::TopologyChange { round, event } => {
                let (kind, u, v) = match *event {
                    TopologyEvent::Edge(EdgeEvent::Insert { u, v }) => ("insert", u, v),
                    TopologyEvent::Edge(EdgeEvent::Remove { u, v }) => ("remove", u, v),
                    TopologyEvent::Node(NodeEvent::Crash(n)) => ("crash", n, n),
                    TopologyEvent::Node(NodeEvent::Join(n)) => ("join", n, n),
                };
                format!(
                    "{{\"ev\":\"topology\",\"round\":{round},\"kind\":\"{kind}\",\"u\":{u},\"v\":{v}}}"
                )
            }
            TraceEvent::Crash { round, node } => {
                format!("{{\"ev\":\"crash\",\"round\":{round},\"node\":{node}}}")
            }
            TraceEvent::QuiescenceVotes {
                round,
                active,
                passive,
                shutdown,
            } => format!(
                "{{\"ev\":\"votes\",\"round\":{round},\"active\":{active},\"passive\":{passive},\"shutdown\":{shutdown}}}"
            ),
            TraceEvent::WaveStart {
                stream,
                round,
                from,
            } => format!(
                "{{\"ev\":\"wave_start\",\"stream\":{stream},\"round\":{round},\"from\":{from}}}"
            ),
            TraceEvent::WaveArrive {
                stream,
                node,
                round,
            } => format!(
                "{{\"ev\":\"wave_arrive\",\"stream\":{stream},\"node\":{node},\"round\":{round}}}"
            ),
            TraceEvent::EarlyTermination { round, in_flight } => format!(
                "{{\"ev\":\"early_termination\",\"round\":{round},\"in_flight\":{in_flight}}}"
            ),
            TraceEvent::Transport {
                frames_sent,
                retransmissions,
                acks_sent,
                gave_up,
            } => format!(
                "{{\"ev\":\"transport\",\"frames_sent\":{frames_sent},\"retransmissions\":{retransmissions},\"acks_sent\":{acks_sent},\"gave_up\":{gave_up}}}"
            ),
            TraceEvent::RunEnd { rounds, messages } => {
                format!("{{\"ev\":\"run_end\",\"rounds\":{rounds},\"messages\":{messages}}}")
            }
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) for
/// the few free-text fields (phase labels).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A bounded event buffer that survives overflow gracefully: it pins the
/// first `prefix` items ever pushed and keeps a rolling window of the last
/// `tail` items, while counting every push exactly.
///
/// Under overflow a trace therefore still shows how the run *began* and
/// how it *ended* — the two ends a debugging session needs — and
/// [`Ring::overflow`] says exactly how many middle events fell out.
#[derive(Clone, Debug)]
pub struct Ring<T> {
    prefix: Vec<T>,
    tail: VecDeque<T>,
    prefix_cap: usize,
    tail_cap: usize,
    total: u64,
}

impl<T> Ring<T> {
    /// A ring pinning the first `prefix_cap` items and rolling the last
    /// `tail_cap`.
    pub fn new(prefix_cap: usize, tail_cap: usize) -> Self {
        Ring {
            prefix: Vec::new(),
            tail: VecDeque::new(),
            prefix_cap,
            tail_cap,
            total: 0,
        }
    }

    /// Pushes an item, evicting the oldest tail item when full. Always
    /// counts, even when both regions are at capacity.
    pub fn push(&mut self, item: T) {
        self.total += 1;
        if self.prefix.len() < self.prefix_cap {
            self.prefix.push(item);
        } else if self.tail_cap > 0 {
            if self.tail.len() == self.tail_cap {
                self.tail.pop_front();
            }
            self.tail.push_back(item);
        }
    }

    /// Counts one item as pushed-and-dropped without materializing it.
    /// Only meaningful once the ring would drop the item anyway — i.e. a
    /// tailless ring (`tail` capacity 0) whose prefix is full; callers
    /// check that via [`Ring::stored`] before skipping the (possibly
    /// expensive) item construction.
    pub fn skip(&mut self) {
        debug_assert!(
            self.tail_cap == 0 && self.prefix.len() >= self.prefix_cap,
            "skip() on a ring that would have stored the item"
        );
        self.total += 1;
    }

    /// The stored items, oldest first: the pinned prefix, then (skipping
    /// any overflowed middle) the rolling tail.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.prefix.iter().chain(self.tail.iter())
    }

    /// The pinned prefix region as a slice (for tailless rings this is
    /// everything stored).
    pub fn prefix(&self) -> &[T] {
        &self.prefix
    }

    /// The pinned-prefix capacity.
    pub fn prefix_capacity(&self) -> usize {
        self.prefix_cap
    }

    /// The rolling-tail capacity.
    pub fn tail_capacity(&self) -> usize {
        self.tail_cap
    }

    /// Items currently stored.
    pub fn stored(&self) -> usize {
        self.prefix.len() + self.tail.len()
    }

    /// Total items ever pushed — exact even under overflow.
    pub fn total_pushed(&self) -> u64 {
        self.total
    }

    /// Items pushed but no longer stored.
    pub fn overflow(&self) -> u64 {
        self.total - self.stored() as u64
    }

    /// True when nothing was ever pushed.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

/// Run-lifetime totals attributed to one kernel presence mask (see
/// [`TraceTags::kernels`](crate::message::TraceTags)); bit *i* names
/// kernel *i* of the composed stack, and a mask with several bits set is a
/// merged frame those kernels shared.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Messages committed.
    pub messages: u64,
    /// Payload bits committed.
    pub bits: u64,
    /// Messages dropped by the fault plan.
    pub dropped: u64,
    /// Committed or dropped frames marked as retransmissions.
    pub retransmits: u64,
    /// Committed or dropped frames carrying an ack.
    pub acks: u64,
}

/// Default pinned-prefix capacity of a [`TraceRecorder`].
pub const DEFAULT_PREFIX: usize = 1 << 16;
/// Default rolling-tail capacity of a [`TraceRecorder`].
pub const DEFAULT_TAIL: usize = 1 << 14;

/// An [`Observer`] that records the typed event stream of every run it
/// watches into a [`Ring`], while keeping exact (ring-independent)
/// aggregate counters: per-kernel traffic breakdowns, per-undirected-edge
/// total loads, and per-stream wave start/arrival rounds.
///
/// The wave maps reset at each `on_run_start` (streams are run-scoped);
/// the ring, kernel and edge aggregates accumulate across runs, with
/// [`TraceEvent::RunStart`] events delimiting runs in the stream.
pub struct TraceRecorder {
    ring: Ring<TraceEvent>,
    kernels: BTreeMap<u8, KernelCounters>,
    edge_load: BTreeMap<(NodeId, NodeId), u64>,
    wave_start: BTreeMap<u32, (u64, NodeId)>,
    wave_arrival: BTreeMap<(u32, NodeId), u64>,
    /// Scheduler telemetry from [`Observer::on_sched`], kept as side
    /// counters and deliberately *not* pushed into the event ring: the
    /// ring (and [`TraceRecorder::events_jsonl`]) must stay bit-identical
    /// across executors, while chunk/steal counts are timing-dependent
    /// load-balance data.
    chunks_stepped: u64,
    steals: u64,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new()
    }
}

impl TraceRecorder {
    /// A recorder with the default ring capacities
    /// ([`DEFAULT_PREFIX`] + [`DEFAULT_TAIL`]).
    pub fn new() -> Self {
        TraceRecorder::with_capacity(DEFAULT_PREFIX, DEFAULT_TAIL)
    }

    /// A recorder pinning the first `prefix` events and rolling the last
    /// `tail`.
    pub fn with_capacity(prefix: usize, tail: usize) -> Self {
        TraceRecorder {
            ring: Ring::new(prefix, tail),
            kernels: BTreeMap::new(),
            edge_load: BTreeMap::new(),
            wave_start: BTreeMap::new(),
            wave_arrival: BTreeMap::new(),
            chunks_stepped: 0,
            steals: 0,
        }
    }

    /// Accumulated scheduler telemetry `(chunks_stepped, steals)` across
    /// every observed run — side counters from [`Observer::on_sched`],
    /// never part of the event stream.
    pub fn sched_totals(&self) -> (u64, u64) {
        (self.chunks_stepped, self.steals)
    }

    /// The stored events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Total events ever recorded — exact even when the ring overflowed.
    pub fn total_events(&self) -> u64 {
        self.ring.total_pushed()
    }

    /// Events recorded but no longer stored.
    pub fn overflow(&self) -> u64 {
        self.ring.overflow()
    }

    /// Per-kernel-mask traffic totals (deterministic order: ascending
    /// mask).
    pub fn kernels(&self) -> &BTreeMap<u8, KernelCounters> {
        &self.kernels
    }

    /// Total per-undirected-edge message loads, keyed `(min, max)` node
    /// pair.
    pub fn edge_loads(&self) -> &BTreeMap<(NodeId, NodeId), u64> {
        &self.edge_load
    }

    /// The `k` most loaded undirected edges, descending (ties broken by
    /// node pair, ascending — deterministic).
    pub fn top_edges(&self, k: usize) -> Vec<((NodeId, NodeId), u64)> {
        let mut edges: Vec<((NodeId, NodeId), u64)> =
            self.edge_load.iter().map(|(&e, &l)| (e, l)).collect();
        edges.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        edges.truncate(k);
        edges
    }

    /// Per-stream wave lifetimes for the current (last) run:
    /// `(stream, start_round, origin, last_arrival_round, nodes_reached)`.
    pub fn wave_spans(&self) -> Vec<(u32, u64, NodeId, u64, u64)> {
        self.wave_start
            .iter()
            .map(|(&stream, &(start, origin))| {
                let mut last = start;
                let mut reached = 0u64;
                for (&(s, _), &round) in
                    self.wave_arrival.range((stream, 0)..=(stream, NodeId::MAX))
                {
                    debug_assert_eq!(s, stream);
                    last = last.max(round);
                    reached += 1;
                }
                (stream, start, origin, last, reached)
            })
            .collect()
    }

    /// First-arrival delivery rounds per `(stream, node)` for the current
    /// (last) run.
    pub fn wave_arrivals(&self) -> &BTreeMap<(u32, NodeId), u64> {
        &self.wave_arrival
    }

    /// Histogram of wave *relative delays* for the current run: entry `d`
    /// counts `(stream, node)` first arrivals that happened `d` rounds
    /// after the stream's own start round. Against the S-SP bound, every
    /// delay must stay within `dist + |S|`.
    pub fn wave_delay_histogram(&self) -> Vec<u64> {
        let mut hist: Vec<u64> = Vec::new();
        for (&(stream, _), &round) in &self.wave_arrival {
            let start = self.wave_start.get(&stream).map_or(0, |&(s, _)| s);
            let d = round.saturating_sub(start) as usize;
            if hist.len() <= d {
                hist.resize(d + 1, 0);
            }
            hist[d] += 1;
        }
        hist
    }

    /// All stored events as deterministic JSONL (one
    /// [`TraceEvent::to_json`] line each). Equal streams produce equal
    /// text.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.ring.iter() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Exports the trace as Chrome-trace/Perfetto JSON with synthetic
    /// round-scaled timestamps (1 round = 1000 trace µs): round spans on a
    /// `rounds` track, per-node or per-kernel instants for
    /// sends/drops/retransmits/acks/crashes, a `votes` counter series, and
    /// one span per wave lifetime. Open at `ui.perfetto.dev` or
    /// `chrome://tracing`.
    pub fn to_perfetto(&self, track_by: TrackBy) -> String {
        const US: u64 = 1000;
        let mut out: Vec<String> = vec![
            meta_process(0, "rounds"),
            meta_process(
                1,
                match track_by {
                    TrackBy::Node => "nodes",
                    TrackBy::Kernel => "kernels",
                },
            ),
            meta_process(2, "waves"),
        ];
        let tid = |node: NodeId, kernels: u8| -> u64 {
            match track_by {
                TrackBy::Node => u64::from(node),
                TrackBy::Kernel => u64::from(kernels),
            }
        };
        for e in self.ring.iter() {
            match *e {
                TraceEvent::RoundStart { round, .. } => out.push(format!(
                    "{{\"name\":\"round {round}\",\"ph\":\"B\",\"ts\":{},\"pid\":0,\"tid\":0}}",
                    round * US
                )),
                TraceEvent::RoundEnd { round } => out.push(format!(
                    "{{\"ph\":\"E\",\"ts\":{},\"pid\":0,\"tid\":0}}",
                    (round + 1) * US
                )),
                TraceEvent::KernelSend {
                    round,
                    from,
                    to,
                    bits,
                    kernels,
                    ..
                } => out.push(format!(
                    "{{\"name\":\"send {from}\\u2192{to} k={kernels}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"bits\":{bits}}}}}",
                    round * US,
                    tid(from, kernels)
                )),
                TraceEvent::Drop {
                    round,
                    from,
                    reason,
                    kernels,
                    ..
                } => out.push(format!(
                    "{{\"name\":\"drop {reason:?}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{}}}",
                    round * US,
                    tid(from, kernels)
                )),
                TraceEvent::Retransmit { round, from, to } => out.push(format!(
                    "{{\"name\":\"retransmit \\u2192{to}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{}}}",
                    round * US,
                    tid(from, 1)
                )),
                TraceEvent::Ack { round, from, to } => out.push(format!(
                    "{{\"name\":\"ack \\u2192{to}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{}}}",
                    round * US,
                    tid(from, 1)
                )),
                TraceEvent::Crash { round, node } => out.push(format!(
                    "{{\"name\":\"crash\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{}}}",
                    round * US,
                    tid(node, 1)
                )),
                TraceEvent::QuiescenceVotes {
                    round,
                    active,
                    passive,
                    shutdown,
                } => out.push(format!(
                    "{{\"name\":\"votes\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"tid\":0,\"args\":{{\"active\":{active},\"passive\":{passive},\"shutdown\":{shutdown}}}}}",
                    round * US
                )),
                TraceEvent::TopologyChange { round, event } => out.push(format!(
                    "{{\"name\":\"topology {event:?}\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{},\"pid\":0,\"tid\":0}}",
                    round * US
                )),
                TraceEvent::EarlyTermination { round, in_flight } => out.push(format!(
                    "{{\"name\":\"early termination\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{},\"pid\":0,\"tid\":0,\"args\":{{\"in_flight\":{in_flight}}}}}",
                    (round + 1) * US
                )),
                _ => {}
            }
        }
        for (stream, start, origin, last, reached) in self.wave_spans() {
            out.push(format!(
                "{{\"name\":\"wave {stream}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":2,\"tid\":{stream},\"args\":{{\"origin\":{origin},\"reached\":{reached}}}}}",
                start * US,
                (last - start + 1) * US
            ));
        }
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
            out.join(",\n")
        )
    }
}

/// Which Perfetto track the per-message instants land on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrackBy {
    /// One track per sending node.
    Node,
    /// One track per kernel presence mask.
    Kernel,
}

fn meta_process(pid: u64, name: &str) -> String {
    format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"{name}\"}}}}"
    )
}

impl Observer for TraceRecorder {
    fn on_run_start(&mut self, info: &RunInfo<'_>) {
        self.wave_start.clear();
        self.wave_arrival.clear();
        self.ring.push(TraceEvent::RunStart {
            phase: info.phase.to_string(),
            nodes: info.nodes as u64,
            edges: info.directed_edges as u64,
            started: info.started,
        });
    }

    fn on_round_start(&mut self, round: u64, delivered: u64, scheduled: u64) {
        self.ring.push(TraceEvent::RoundStart {
            round,
            delivered,
            scheduled,
        });
    }

    fn on_message(&mut self, ev: &MessageEvent) {
        let k = self.kernels.entry(ev.tags.kernels).or_default();
        k.messages += 1;
        k.bits += u64::from(ev.bits);
        k.retransmits += u64::from(ev.tags.retransmit);
        k.acks += u64::from(ev.tags.ack);
        let key = (ev.from.min(ev.to), ev.from.max(ev.to));
        *self.edge_load.entry(key).or_default() += 1;
        if let Some(stream) = ev.stream {
            if let std::collections::btree_map::Entry::Vacant(slot) = self.wave_start.entry(stream)
            {
                slot.insert((ev.send_round, ev.from));
                self.ring.push(TraceEvent::WaveStart {
                    stream,
                    round: ev.send_round,
                    from: ev.from,
                });
            }
        }
        self.ring.push(TraceEvent::KernelSend {
            round: ev.send_round,
            from: ev.from,
            to: ev.to,
            bits: ev.bits,
            stream: ev.stream,
            kernels: ev.tags.kernels,
        });
        self.ring.push(TraceEvent::KernelRecv {
            round: ev.send_round + 1,
            to: ev.to,
            to_port: ev.to_port,
            from: ev.from,
            stream: ev.stream,
            kernels: ev.tags.kernels,
        });
        if ev.tags.retransmit {
            self.ring.push(TraceEvent::Retransmit {
                round: ev.send_round,
                from: ev.from,
                to: ev.to,
            });
        }
        if ev.tags.ack {
            self.ring.push(TraceEvent::Ack {
                round: ev.send_round,
                from: ev.from,
                to: ev.to,
            });
        }
        if let Some(stream) = ev.stream {
            if let std::collections::btree_map::Entry::Vacant(slot) =
                self.wave_arrival.entry((stream, ev.to))
            {
                slot.insert(ev.send_round + 1);
                self.ring.push(TraceEvent::WaveArrive {
                    stream,
                    node: ev.to,
                    round: ev.send_round + 1,
                });
            }
        }
    }

    fn on_drop(
        &mut self,
        send_round: u64,
        from: NodeId,
        from_port: Port,
        reason: DropReason,
        tags: crate::message::TraceTags,
    ) {
        let k = self.kernels.entry(tags.kernels).or_default();
        k.dropped += 1;
        k.retransmits += u64::from(tags.retransmit);
        k.acks += u64::from(tags.ack);
        self.ring.push(TraceEvent::Drop {
            round: send_round,
            from,
            port: from_port,
            reason,
            kernels: tags.kernels,
            retransmit: tags.retransmit,
            ack: tags.ack,
        });
    }

    fn on_crash(&mut self, round: u64, node: NodeId) {
        self.ring.push(TraceEvent::Crash { round, node });
    }

    fn on_topology(&mut self, round: u64, event: &TopologyEvent) {
        self.ring.push(TraceEvent::TopologyChange {
            round,
            event: *event,
        });
    }

    fn on_sched(&mut self, _round: u64, chunks: u64, steals: u64) {
        // Side counters only — no ring event, so `events_jsonl` stays
        // bit-identical between serial and pool runs.
        self.chunks_stepped += chunks;
        self.steals += steals;
    }

    fn on_round_end(&mut self, round: u64, _timing: &crate::obs::RoundTiming) {
        self.ring.push(TraceEvent::RoundEnd { round });
    }

    fn on_quiescence(&mut self, round: u64, active: u64, passive: u64, shutdown: u64) {
        self.ring.push(TraceEvent::QuiescenceVotes {
            round,
            active,
            passive,
            shutdown,
        });
    }

    fn on_terminate(&mut self, round: u64, in_flight: u64) {
        self.ring
            .push(TraceEvent::EarlyTermination { round, in_flight });
    }

    fn on_transport(&mut self, summary: &TransportSummary) {
        self.ring.push(TraceEvent::Transport {
            frames_sent: summary.frames_sent,
            retransmissions: summary.retransmissions,
            acks_sent: summary.acks_sent,
            gave_up: summary.gave_up,
        });
    }

    fn on_run_end(&mut self, stats: &RunStats) {
        self.ring.push(TraceEvent::RunEnd {
            rounds: stats.rounds,
            messages: stats.messages,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::TraceTags;

    #[test]
    fn ring_overflow_preserves_counts_and_both_ends() {
        let mut ring = Ring::new(3, 2);
        for i in 0..10u32 {
            ring.push(i);
        }
        assert_eq!(ring.total_pushed(), 10);
        assert_eq!(ring.stored(), 5);
        assert_eq!(ring.overflow(), 5);
        let stored: Vec<u32> = ring.iter().copied().collect();
        // First three pinned, last two rolled.
        assert_eq!(stored, vec![0, 1, 2, 8, 9]);
    }

    #[test]
    fn ring_without_overflow_stores_everything_in_order() {
        let mut ring = Ring::new(4, 4);
        for i in 0..6u32 {
            ring.push(i);
        }
        assert_eq!(ring.overflow(), 0);
        let stored: Vec<u32> = ring.iter().copied().collect();
        assert_eq!(stored, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn ring_tailless_keeps_first_only() {
        let mut ring = Ring::new(2, 0);
        for i in 0..5u32 {
            ring.push(i);
        }
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(ring.total_pushed(), 5);
        assert_eq!(ring.overflow(), 3);
    }

    fn msg(send_round: u64, from: NodeId, to: NodeId, stream: Option<u32>) -> MessageEvent {
        MessageEvent {
            send_round,
            from,
            to,
            to_port: 0,
            edge: 0,
            reverse_edge: 1,
            bits: 8,
            stream,
            tags: TraceTags::default(),
        }
    }

    #[test]
    fn recorder_builds_causal_events_and_aggregates() {
        let mut rec = TraceRecorder::new();
        rec.on_run_start(&RunInfo {
            phase: "demo",
            nodes: 3,
            directed_edges: 4,
            started: 3,
        });
        rec.on_message(&msg(0, 0, 1, Some(7)));
        rec.on_round_start(1, 1, 2);
        let mut m = msg(1, 1, 2, Some(7));
        m.tags.retransmit = true;
        rec.on_message(&m);
        rec.on_drop(
            1,
            2,
            0,
            DropReason::Loss,
            TraceTags {
                kernels: 2,
                retransmit: false,
                ack: true,
            },
        );
        rec.on_round_end(1, &crate::obs::RoundTiming::default());
        rec.on_quiescence(1, 0, 2, 0);
        rec.on_terminate(1, 0);
        rec.on_run_end(&RunStats::default());

        let events: Vec<&TraceEvent> = rec.events().collect();
        assert!(matches!(events[0], TraceEvent::RunStart { phase, .. } if phase == "demo"));
        // First message: wave 7 starts, send + recv recorded, first arrival.
        assert!(matches!(
            events[1],
            TraceEvent::WaveStart {
                stream: 7,
                round: 0,
                from: 0
            }
        ));
        assert!(matches!(events[2], TraceEvent::KernelSend { round: 0, .. }));
        assert!(matches!(events[3], TraceEvent::KernelRecv { round: 1, .. }));
        assert!(matches!(
            events[4],
            TraceEvent::WaveArrive {
                stream: 7,
                node: 1,
                round: 1
            }
        ));
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::Retransmit {
                round: 1,
                from: 1,
                to: 2
            }
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::Drop {
                reason: DropReason::Loss,
                kernels: 2,
                ack: true,
                ..
            }
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::QuiescenceVotes {
                round: 1,
                passive: 2,
                ..
            }
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::EarlyTermination {
                round: 1,
                in_flight: 0
            }
        )));

        // Aggregates: mask 1 carried both deliveries, mask 2 the drop.
        assert_eq!(rec.kernels()[&1].messages, 2);
        assert_eq!(rec.kernels()[&1].retransmits, 1);
        assert_eq!(rec.kernels()[&2].dropped, 1);
        assert_eq!(rec.kernels()[&2].acks, 1);
        assert_eq!(rec.edge_loads()[&(0, 1)], 1);
        assert_eq!(rec.top_edges(1).len(), 1);
        let spans = rec.wave_spans();
        assert_eq!(spans, vec![(7, 0, 0, 2, 2)]);
        assert_eq!(rec.wave_delay_histogram(), vec![0, 1, 1]);
    }

    #[test]
    fn topology_events_render_kind_and_endpoints() {
        let mut rec = TraceRecorder::new();
        rec.on_run_start(&RunInfo {
            phase: "churn",
            nodes: 4,
            directed_edges: 6,
            started: 4,
        });
        rec.on_topology(2, &TopologyEvent::Edge(EdgeEvent::Remove { u: 1, v: 2 }));
        rec.on_topology(2, &TopologyEvent::Node(NodeEvent::Crash(3)));
        rec.on_topology(5, &TopologyEvent::Edge(EdgeEvent::Insert { u: 0, v: 3 }));
        rec.on_topology(5, &TopologyEvent::Node(NodeEvent::Join(3)));
        rec.on_run_end(&RunStats::default());
        let text = rec.events_jsonl();
        assert!(
            text.contains("{\"ev\":\"topology\",\"round\":2,\"kind\":\"remove\",\"u\":1,\"v\":2}"),
            "{text}"
        );
        assert!(
            text.contains("\"kind\":\"crash\",\"u\":3,\"v\":3"),
            "{text}"
        );
        assert!(
            text.contains("\"kind\":\"insert\",\"u\":0,\"v\":3"),
            "{text}"
        );
        assert!(text.contains("\"kind\":\"join\",\"u\":3,\"v\":3"), "{text}");
    }

    #[test]
    fn jsonl_lines_are_deterministic_and_parseable_shape() {
        let mut rec = TraceRecorder::new();
        rec.on_run_start(&RunInfo {
            phase: "p",
            nodes: 2,
            directed_edges: 2,
            started: 2,
        });
        rec.on_message(&msg(0, 0, 1, None));
        rec.on_run_end(&RunStats::default());
        let text = rec.events_jsonl();
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(text.contains("\"ev\":\"send\""));
        assert!(text.contains("\"stream\":null"));
    }

    #[test]
    fn perfetto_export_is_balanced_json() {
        let mut rec = TraceRecorder::new();
        rec.on_run_start(&RunInfo {
            phase: "p",
            nodes: 2,
            directed_edges: 2,
            started: 2,
        });
        rec.on_message(&msg(0, 0, 1, Some(3)));
        rec.on_round_start(1, 1, 1);
        rec.on_round_end(1, &crate::obs::RoundTiming::default());
        rec.on_quiescence(1, 0, 2, 0);
        rec.on_run_end(&RunStats::default());
        for track in [TrackBy::Node, TrackBy::Kernel] {
            let json = rec.to_perfetto(track);
            assert!(json.contains("\"traceEvents\""));
            assert!(json.contains("\"ph\":\"C\""));
            assert!(json.contains("wave 3"));
            let open = json.matches(['{', '[']).count();
            let close = json.matches(['}', ']']).count();
            assert_eq!(open, close, "balanced brackets");
            assert!(!json.contains(",]") && !json.contains(",}"));
        }
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}

//! Node-local identifiers and the per-round communication interface.

use crate::message::Message;

/// Identifier of a node, in `0..n`.
///
/// The paper assumes ids fit in `O(log n)` bits and that a node with id `1`
/// exists; with zero-based ids that distinguished node is id `0` here, and
/// id order (used by Algorithm 2's priority rule) is plain integer order.
pub type NodeId = u32;

/// A node-local port: the index of a neighbor in the node's adjacency list.
///
/// Ports are how algorithms address messages; a node does not need to know
/// the global structure of the graph to communicate.
pub type Port = u32;

/// The read-only view a node has of itself and its immediate surroundings.
///
/// This corresponds to the initial knowledge the CONGEST model grants a
/// node: its own id, the total number of nodes `n` (assumed known, §2 of the
/// paper), and the ids of its neighbors.
#[derive(Clone, Copy, Debug)]
pub struct NodeContext<'a> {
    pub(crate) node_id: NodeId,
    pub(crate) num_nodes: usize,
    pub(crate) neighbor_ids: &'a [NodeId],
    pub(crate) round: u64,
}

impl<'a> NodeContext<'a> {
    /// This node's identifier.
    pub fn node_id(&self) -> NodeId {
        self.node_id
    }

    /// Total number of nodes `n` in the network.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// This node's degree.
    pub fn degree(&self) -> usize {
        self.neighbor_ids.len()
    }

    /// The ids of this node's neighbors, indexed by port.
    pub fn neighbor_ids(&self) -> &'a [NodeId] {
        self.neighbor_ids
    }

    /// The id of the neighbor reached through `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree()`.
    pub fn neighbor(&self, port: Port) -> NodeId {
        self.neighbor_ids[port as usize]
    }

    /// The current round number (1-based; `0` during
    /// [`on_start`](crate::NodeAlgorithm::on_start)).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// A copy of this context with the round overridden — for wrappers
    /// that drive an inner protocol on a *simulated* clock (e.g. a
    /// synchronizer replaying lock-step rounds over an unreliable
    /// transport), so the inner kernel sees its own consistent time.
    pub fn at_round(&self, round: u64) -> NodeContext<'a> {
        NodeContext { round, ..*self }
    }
}

/// The messages a node received at the start of a round, tagged with the
/// port they arrived on.
#[derive(Debug)]
pub struct Inbox<M> {
    pub(crate) items: Vec<(Port, M)>,
}

impl<M> Inbox<M> {
    /// True if no messages arrived this round.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of messages that arrived this round.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Iterates over `(port, message)` pairs in increasing port order.
    pub fn iter(&self) -> impl Iterator<Item = (Port, &M)> {
        self.items.iter().map(|(p, m)| (*p, m))
    }

    /// The message received on `port` this round, if any.
    ///
    /// The items are sorted by port (the engines sort arrivals before
    /// handing the inbox to the node, and a round delivers at most one
    /// message per port), so the lookup binary-searches — O(log degree)
    /// instead of a linear scan, which matters for hub nodes doing a
    /// per-neighbor `from_port` sweep.
    pub fn from_port(&self, port: Port) -> Option<&M> {
        self.items
            .binary_search_by_key(&port, |&(p, _)| p)
            .ok()
            .map(|i| &self.items[i].1)
    }
}

/// Where a node queues the messages it sends this round.
///
/// At most one message may be queued per port per round, and each message
/// must fit in the configured bandwidth; violations are detected by the
/// simulator and surface as [`SimError`](crate::SimError)s when the round is
/// committed.
#[derive(Debug)]
pub struct Outbox<M> {
    pub(crate) items: Vec<(Port, M)>,
}

impl<M: Message> Outbox<M> {
    pub(crate) fn new() -> Self {
        Outbox { items: Vec::new() }
    }

    /// Queues `message` for delivery through `port` at the start of the next
    /// round.
    ///
    /// Sending twice on the same port in one round, addressing an invalid
    /// port, or exceeding the bandwidth is *recorded* here and reported by
    /// [`Simulator::run`](crate::Simulator::run) as an error; this method
    /// itself never panics, so algorithm code stays straight-line.
    pub fn send(&mut self, port: Port, message: M) {
        self.items.push((port, message));
    }

    /// Queues `message` to every port in `ports`.
    pub fn send_to_all<I: IntoIterator<Item = Port>>(&mut self, ports: I, message: M) {
        for p in ports {
            self.items.push((p, message.clone()));
        }
    }

    /// Number of messages queued so far this round.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing has been queued this round.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Unit;
    impl Message for Unit {
        fn bit_size(&self) -> u32 {
            1
        }
    }

    #[test]
    fn context_accessors() {
        let neighbors = [3u32, 7];
        let ctx = NodeContext {
            node_id: 5,
            num_nodes: 10,
            neighbor_ids: &neighbors,
            round: 2,
        };
        assert_eq!(ctx.node_id(), 5);
        assert_eq!(ctx.num_nodes(), 10);
        assert_eq!(ctx.degree(), 2);
        assert_eq!(ctx.neighbor(1), 7);
        assert_eq!(ctx.round(), 2);
        let shifted = ctx.at_round(9);
        assert_eq!(shifted.round(), 9);
        assert_eq!(shifted.node_id(), 5);
        assert_eq!(ctx.round(), 2);
    }

    #[test]
    fn inbox_lookup() {
        let inbox = Inbox {
            items: vec![(0, Unit), (2, Unit)],
        };
        assert_eq!(inbox.len(), 2);
        assert!(inbox.from_port(0).is_some());
        assert!(inbox.from_port(1).is_none());
        let ports: Vec<Port> = inbox.iter().map(|(p, _)| p).collect();
        assert_eq!(ports, vec![0, 2]);
    }

    #[test]
    fn inbox_lookup_high_degree() {
        // A hub inbox: arrivals on every third port of a 3000-port node,
        // sorted by port as the engines guarantee. Every present port must
        // be found and every absent one missed — including the ends.
        #[derive(Clone, Debug, PartialEq)]
        struct Tagged(u32);
        impl Message for Tagged {
            fn bit_size(&self) -> u32 {
                32
            }
        }
        let inbox = Inbox {
            items: (0..1000u32).map(|i| (3 * i, Tagged(i))).collect(),
        };
        for i in 0..1000u32 {
            assert_eq!(inbox.from_port(3 * i), Some(&Tagged(i)));
            assert_eq!(inbox.from_port(3 * i + 1), None);
            assert_eq!(inbox.from_port(3 * i + 2), None);
        }
        assert_eq!(inbox.from_port(3000), None);
        let empty: Inbox<Tagged> = Inbox { items: Vec::new() };
        assert_eq!(empty.from_port(0), None);
    }

    #[test]
    fn outbox_send_to_all() {
        let mut out = Outbox::new();
        out.send_to_all(0..3, Unit);
        assert_eq!(out.len(), 3);
        assert!(!out.is_empty());
    }
}

//! The per-node algorithm interface.

use crate::message::Message;
use crate::node::{Inbox, NodeContext, Outbox};

/// The state machine a single node runs.
///
/// One value of the implementing type exists per node; the
/// [`Simulator`](crate::Simulator) drives all of them in lock-step:
///
/// 1. [`on_start`](Self::on_start) is called once per node before any
///    communication (round 0); messages queued here are delivered in round 1.
/// 2. Each round, [`on_round`](Self::on_round) is called on **every** node —
///    including nodes that received nothing, so algorithms may keep local
///    round counters and act on timers, as Algorithm 2 of the paper does.
/// 3. The run ends when no messages are in flight and no node reports
///    [`is_active`](Self::is_active); then [`into_output`](Self::into_output)
///    extracts each node's result.
///
/// See the crate-level documentation for a complete example.
pub trait NodeAlgorithm {
    /// The message type this algorithm exchanges.
    type Message: Message;
    /// The per-node result extracted when the run ends.
    type Output;

    /// One-time initialization before round 1. Queue initial sends here.
    ///
    /// The default does nothing, which suits purely reactive nodes.
    fn on_start(&mut self, ctx: &NodeContext<'_>, outbox: &mut Outbox<Self::Message>) {
        let _ = (ctx, outbox);
    }

    /// Invoked every round with the messages delivered this round.
    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        inbox: &Inbox<Self::Message>,
        outbox: &mut Outbox<Self::Message>,
    );

    /// True while this node may still send *spontaneously*, i.e. without
    /// first receiving a message (for example, while an internal timer is
    /// running). Purely reactive nodes keep the default `false`; the
    /// simulator then stops as soon as the network is silent.
    fn is_active(&self) -> bool {
        false
    }

    /// Consumes the node state and produces its final output.
    fn into_output(self, ctx: &NodeContext<'_>) -> Self::Output;
}

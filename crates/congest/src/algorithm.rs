//! The per-node algorithm interface.

use crate::message::Message;
use crate::node::{Inbox, NodeContext, Outbox};

/// A node's termination vote, polled by the engine after every round.
///
/// The engine ends the run when either
///
/// * no messages are in flight and **no** node votes
///   [`Active`](Quiescence::Active), or
/// * **every** node votes [`Shutdown`](Quiescence::Shutdown) — even with
///   messages still in flight (the votes assert those messages no longer
///   matter).
///
/// The variants are ordered `Active < Passive < Shutdown`; composite
/// algorithms (e.g. protocol stacks) combine component votes with `min`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Quiescence {
    /// The node may still act spontaneously — the run must continue.
    /// This is the vote of every node whose
    /// [`is_active`](NodeAlgorithm::is_active) is `true`, unless it
    /// explicitly upgrades to [`Shutdown`](Quiescence::Shutdown).
    Active,
    /// The node is purely reactive right now: terminating is fine once no
    /// message is in flight anywhere (an in-flight message might still be
    /// addressed to it, so the network must drain first). The default for
    /// inactive nodes.
    Passive,
    /// The node consents to terminating *immediately*, discarding any
    /// messages still in flight. Only sound for protocols that retain
    /// undelivered payloads for retransmission (so a payload in flight
    /// implies its sender still holds it and votes
    /// [`Active`](Quiescence::Active)); the reliable transport kernel is
    /// the motivating case — it keeps clock frames flowing to a fixed
    /// horizon but knows when its inner protocol has finished.
    Shutdown,
}

/// The state machine a single node runs.
///
/// One value of the implementing type exists per node; the
/// [`Simulator`](crate::Simulator) drives all of them in lock-step:
///
/// 1. [`on_start`](Self::on_start) is called once per node before any
///    communication (round 0); messages queued here are delivered in round 1.
/// 2. Each round, [`on_round`](Self::on_round) is called on every
///    **scheduled** node: a node is scheduled when it has messages arriving
///    this round or reported [`is_active`](Self::is_active) after its last
///    step. A node that is inactive and receives nothing is skipped — its
///    state cannot have changed, so skipping it is unobservable. Algorithms
///    that keep local round counters or timers (Algorithm 2 of the paper
///    does) simply stay active until the timer expires; the scheduler then
///    steps them every round, exactly as the dense engine did.
/// 3. The run ends when the per-node [`quiescence`](Self::quiescence)
///    votes allow it (by default: no messages in flight and no node
///    [`is_active`](Self::is_active)); then
///    [`into_output`](Self::into_output) extracts each node's result.
///
/// See the crate-level documentation for a complete example.
pub trait NodeAlgorithm {
    /// The message type this algorithm exchanges.
    type Message: Message;
    /// The per-node result extracted when the run ends.
    type Output;

    /// One-time initialization before round 1. Queue initial sends here.
    ///
    /// The default does nothing, which suits purely reactive nodes.
    fn on_start(&mut self, ctx: &NodeContext<'_>, outbox: &mut Outbox<Self::Message>) {
        let _ = (ctx, outbox);
    }

    /// Invoked every round with the messages delivered this round.
    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        inbox: &Inbox<Self::Message>,
        outbox: &mut Outbox<Self::Message>,
    );

    /// True while this node may still send *spontaneously*, i.e. without
    /// first receiving a message (for example, while an internal timer is
    /// running). Purely reactive nodes keep the default `false`; the
    /// simulator then stops as soon as the network is silent.
    ///
    /// Under the active-set scheduler this is also the wake signal: a node
    /// returning `true` is stepped next round even if no message arrives.
    /// A node returning `false` is only stepped when a message arrives, so
    /// the answer must be honest — an inactive node that would have sent on
    /// a later timer tick will never get that tick.
    fn is_active(&self) -> bool {
        false
    }

    /// This node's termination vote; see [`Quiescence`].
    ///
    /// The default derives the vote from [`is_active`](Self::is_active)
    /// (`Active` while active, `Passive` otherwise), which reproduces the
    /// classic termination rule: the run ends when the network is silent
    /// and no node is active. Synchronizer-style wrappers that stay
    /// active for a fixed horizon (to keep clock frames flowing) but know
    /// their inner protocol has finished can return
    /// [`Quiescence::Shutdown`] to let the engine terminate early.
    ///
    /// Implementations must uphold `is_active() == false ⇒ vote ≠
    /// Active`; the engine relies on that implication to evaluate global
    /// quiescence by scanning only the awake nodes.
    fn quiescence(&self) -> Quiescence {
        if self.is_active() {
            Quiescence::Active
        } else {
            Quiescence::Passive
        }
    }

    /// Consumes the node state and produces its final output.
    fn into_output(self, ctx: &NodeContext<'_>) -> Self::Output;
}

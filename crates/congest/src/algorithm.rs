//! The per-node algorithm interface.

use crate::message::Message;
use crate::node::{Inbox, NodeContext, NodeId, Outbox, Port};

/// A node's termination vote, polled by the engine after every round.
///
/// The engine ends the run when either
///
/// * no messages are in flight and **no** node votes
///   [`Active`](Quiescence::Active), or
/// * **every** node votes [`Shutdown`](Quiescence::Shutdown) — even with
///   messages still in flight (the votes assert those messages no longer
///   matter).
///
/// The variants are ordered `Active < Passive < Shutdown`; composite
/// algorithms (e.g. protocol stacks) combine component votes with `min`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Quiescence {
    /// The node may still act spontaneously — the run must continue.
    /// This is the vote of every node whose
    /// [`is_active`](NodeAlgorithm::is_active) is `true`, unless it
    /// explicitly upgrades to [`Shutdown`](Quiescence::Shutdown).
    Active,
    /// The node is purely reactive right now: terminating is fine once no
    /// message is in flight anywhere (an in-flight message might still be
    /// addressed to it, so the network must drain first). The default for
    /// inactive nodes.
    Passive,
    /// The node consents to terminating *immediately*, discarding any
    /// messages still in flight. Only sound for protocols that retain
    /// undelivered payloads for retransmission (so a payload in flight
    /// implies its sender still holds it and votes
    /// [`Active`](Quiescence::Active)); the reliable transport kernel is
    /// the motivating case — it keeps clock frames flowing to a fixed
    /// horizon but knows when its inner protocol has finished.
    Shutdown,
}

/// What one node is told about a round's topology-churn batch (see
/// [`TopologyPlan`](crate::TopologyPlan)): the ports this node lost and
/// gained, whether the node itself was removed or re-joined, and the
/// global batch size the round applied — the signal a divergence-adaptive
/// repair policy keys its repair-vs-recompute decision on (it is the same
/// number at every node, so the decision is deterministic and uniform).
#[derive(Clone, Copy, Debug)]
pub struct TopologyDelta<'a> {
    /// The topology's epoch *after* this round's batch.
    pub epoch: u64,
    /// Total size of the round's global batch (directed port halves
    /// removed + inserted, plus one per node removal/join) — identical at
    /// every notified node.
    pub batch: u32,
    /// This node's ports tombstoned by the batch, in event order. The
    /// ports still resolve their former neighbor via
    /// [`NodeContext`] lookups, but no message can cross them again.
    pub removed_ports: &'a [Port],
    /// This node's freshly appended ports with the neighbor each reaches,
    /// in event order.
    pub inserted_ports: &'a [(Port, NodeId)],
    /// True iff this node itself was removed this round (its
    /// `removed_ports` then cover every edge it had; this is its final
    /// notification).
    pub removed: bool,
    /// True iff this node re-joined this round (edgeless until later
    /// insertions).
    pub joined: bool,
}

/// What a node's [`on_topology`](NodeAlgorithm::on_topology) hook reports
/// having done about a churn batch, tallied into
/// [`RunStats`](crate::RunStats) (`repaired_node_rounds`,
/// `recompute_fallbacks`).
///
/// Ordered `Ignored < Repaired < Recompute` so composite algorithms can
/// combine component reactions with `max`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RepairAction {
    /// The change does not affect this node's state (the default).
    Ignored,
    /// The node patched its state incrementally (invalidated a subtree,
    /// queued a bounded re-wave, …).
    Repaired,
    /// The change set was too large to repair; the node reset to recompute
    /// from scratch.
    Recompute,
}

/// The state machine a single node runs.
///
/// One value of the implementing type exists per node; the
/// [`Simulator`](crate::Simulator) drives all of them in lock-step:
///
/// 1. [`on_start`](Self::on_start) is called once per node before any
///    communication (round 0); messages queued here are delivered in round 1.
/// 2. Each round, [`on_round`](Self::on_round) is called on every
///    **scheduled** node: a node is scheduled when it has messages arriving
///    this round or reported [`is_active`](Self::is_active) after its last
///    step. A node that is inactive and receives nothing is skipped — its
///    state cannot have changed, so skipping it is unobservable. Algorithms
///    that keep local round counters or timers (Algorithm 2 of the paper
///    does) simply stay active until the timer expires; the scheduler then
///    steps them every round, exactly as the dense engine did.
/// 3. The run ends when the per-node [`quiescence`](Self::quiescence)
///    votes allow it (by default: no messages in flight and no node
///    [`is_active`](Self::is_active)); then
///    [`into_output`](Self::into_output) extracts each node's result.
///
/// See the crate-level documentation for a complete example.
pub trait NodeAlgorithm {
    /// The message type this algorithm exchanges.
    type Message: Message;
    /// The per-node result extracted when the run ends.
    type Output;

    /// One-time initialization before round 1. Queue initial sends here.
    ///
    /// The default does nothing, which suits purely reactive nodes.
    fn on_start(&mut self, ctx: &NodeContext<'_>, outbox: &mut Outbox<Self::Message>) {
        let _ = (ctx, outbox);
    }

    /// Invoked every round with the messages delivered this round.
    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        inbox: &Inbox<Self::Message>,
        outbox: &mut Outbox<Self::Message>,
    );

    /// Notification that this round's [`TopologyPlan`](crate::TopologyPlan)
    /// batch touched the network. Called at the churn choke point — after
    /// the batch is applied and in-flight messages on dead links are
    /// purged, before this round's deliveries — on *every* present node
    /// (plus nodes removed by the batch, once, as their final call), in
    /// node-id order on every engine. `delta` describes this node's local
    /// port changes and the global batch size; `ctx` already sees the
    /// post-churn topology (`ctx.at_round(round)` of the round being
    /// entered).
    ///
    /// No outbox: a repair reacts by adjusting state and queueing work for
    /// its next [`on_round`](Self::on_round) — every notified node is
    /// scheduled this round (the engine rebuilds the active set right
    /// after), so queued repairs flow immediately. The returned
    /// [`RepairAction`] is tallied into [`RunStats`](crate::RunStats).
    ///
    /// The default ignores the change, which suits static algorithms run
    /// without a churn plan (and documents that running them *with* one
    /// silently yields pre-churn answers).
    fn on_topology(&mut self, ctx: &NodeContext<'_>, delta: &TopologyDelta<'_>) -> RepairAction {
        let _ = (ctx, delta);
        RepairAction::Ignored
    }

    /// True while this node may still send *spontaneously*, i.e. without
    /// first receiving a message (for example, while an internal timer is
    /// running). Purely reactive nodes keep the default `false`; the
    /// simulator then stops as soon as the network is silent.
    ///
    /// Under the active-set scheduler this is also the wake signal: a node
    /// returning `true` is stepped next round even if no message arrives.
    /// A node returning `false` is only stepped when a message arrives, so
    /// the answer must be honest — an inactive node that would have sent on
    /// a later timer tick will never get that tick.
    fn is_active(&self) -> bool {
        false
    }

    /// This node's termination vote; see [`Quiescence`].
    ///
    /// The default derives the vote from [`is_active`](Self::is_active)
    /// (`Active` while active, `Passive` otherwise), which reproduces the
    /// classic termination rule: the run ends when the network is silent
    /// and no node is active. Synchronizer-style wrappers that stay
    /// active for a fixed horizon (to keep clock frames flowing) but know
    /// their inner protocol has finished can return
    /// [`Quiescence::Shutdown`] to let the engine terminate early.
    ///
    /// Implementations must uphold `is_active() == false ⇒ vote ≠
    /// Active`; the engine relies on that implication to evaluate global
    /// quiescence by scanning only the awake nodes.
    fn quiescence(&self) -> Quiescence {
        if self.is_active() {
            Quiescence::Active
        } else {
            Quiescence::Passive
        }
    }

    /// Consumes the node state and produces its final output.
    fn into_output(self, ctx: &NodeContext<'_>) -> Self::Output;
}

//! Round, message, and bit accounting.

/// Aggregate statistics of a completed run.
///
/// Rounds are the CONGEST complexity measure; messages and bits let the
/// benchmarks reproduce the paper's §3.2 communication-volume comparisons
/// (e.g. S-SP exchanging `O((|S|+D)·m)` messages).
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Number of synchronous communication rounds executed.
    pub rounds: u64,
    /// Total messages delivered over the whole run.
    pub messages: u64,
    /// Total payload bits delivered over the whole run.
    pub bits: u64,
    /// Largest single message observed, in bits (always `<= B` in a
    /// successful run — the simulator enforces it).
    pub max_message_bits: u32,
    /// Largest number of messages delivered in any single round.
    pub max_messages_per_round: u64,
    /// Messages dropped by fault injection — loss rules plus deliveries
    /// into crash windows (see [`FaultPlan`](crate::FaultPlan)); always 0
    /// without a fault plan.
    pub dropped: u64,
    /// Crashed node-rounds: how many times some node sat out a round
    /// inside a [`CrashWindow`](crate::CrashWindow); always 0 without
    /// scheduled crashes.
    pub crashed: u64,
    /// Topology events applied from the run's
    /// [`TopologyPlan`](crate::TopologyPlan) (edge inserts/removes, node
    /// removals/joins); always 0 without a churn plan.
    pub topo_events: u64,
    /// Repaired node-rounds: how many `on_topology` notifications returned
    /// [`RepairAction::Repaired`](crate::RepairAction) — nodes that patched
    /// their state incrementally instead of recomputing. Deterministic (the
    /// choke point notifies every present node in id order), so it
    /// participates in equality.
    pub repaired_node_rounds: u64,
    /// How many `on_topology` notifications returned
    /// [`RepairAction::Recompute`](crate::RepairAction) — the
    /// divergence-adaptive policy giving up on incremental repair.
    /// Deterministic; participates in equality.
    pub recompute_fallbacks: u64,
    /// Scheduled node-rounds: total nodes placed on a round schedule
    /// (arrivals waiting or awake) over the whole run, with round 0
    /// counting every node that ran `on_start`. The dense engines step
    /// `rounds × n` node-rounds; the ratio against this counter is the
    /// sparseness the active-set engine exploits.
    pub scheduled_node_rounds: u64,
    /// Largest single-round scheduled count (round 0 included).
    pub max_scheduled_per_round: u64,
    /// Frontier chunks stepped by the pool executor's work-stealing
    /// scheduler over the whole run; always 0 on executors without a
    /// chunk scheduler. Like `wall_time`, this is scheduling telemetry —
    /// excluded from equality so serial and pool runs of the same
    /// simulation still compare equal.
    pub chunks_stepped: u64,
    /// Chunks executed by a worker other than their home worker (see
    /// [`PoolSched`](crate::PoolSched)). Timing-dependent run to run;
    /// excluded from equality alongside `chunks_stepped`.
    pub steals: u64,
    /// Wall-clock time of the run, filled in by the simulator. Excluded
    /// from equality so determinism checks (`stats_a == stats_b`) compare
    /// only model-level quantities.
    pub wall_time: std::time::Duration,
}

/// Equality over the model-level counters only; `wall_time` and the
/// scheduler telemetry (`chunks_stepped`, `steals`) are ignored so that
/// two runs of the same deterministic simulation compare equal regardless
/// of executor and load balance.
impl PartialEq for RunStats {
    fn eq(&self, other: &Self) -> bool {
        self.rounds == other.rounds
            && self.messages == other.messages
            && self.bits == other.bits
            && self.max_message_bits == other.max_message_bits
            && self.max_messages_per_round == other.max_messages_per_round
            && self.dropped == other.dropped
            && self.crashed == other.crashed
            && self.topo_events == other.topo_events
            && self.repaired_node_rounds == other.repaired_node_rounds
            && self.recompute_fallbacks == other.recompute_fallbacks
            && self.scheduled_node_rounds == other.scheduled_node_rounds
            && self.max_scheduled_per_round == other.max_scheduled_per_round
    }
}

impl Eq for RunStats {}

impl RunStats {
    /// The peak active fraction: the largest single-round scheduled count
    /// as a fraction of `n` (0 for an empty network). A frontier-sparse
    /// workload keeps this well under 1; a flood touches 1.0.
    pub fn peak_scheduled_fraction(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.max_scheduled_per_round as f64 / n as f64
        }
    }

    /// The fraction of stepped chunks that were stolen (0 when no chunks
    /// were stepped, e.g. on the serial executor). A well-balanced
    /// frontier keeps this near 0; a hub-dominated frontier pushes it up
    /// as idle workers drain the hub chunks' home deque.
    pub fn steal_fraction(&self) -> f64 {
        if self.chunks_stepped == 0 {
            0.0
        } else {
            self.steals as f64 / self.chunks_stepped as f64
        }
    }

    /// Accumulates another run's statistics into this one, summing rounds
    /// and wall-clock time — used when an algorithm is composed of
    /// sequential phases.
    pub fn absorb_sequential(&mut self, other: &RunStats) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.bits += other.bits;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
        self.max_messages_per_round = self
            .max_messages_per_round
            .max(other.max_messages_per_round);
        self.dropped += other.dropped;
        self.crashed += other.crashed;
        self.topo_events += other.topo_events;
        self.repaired_node_rounds += other.repaired_node_rounds;
        self.recompute_fallbacks += other.recompute_fallbacks;
        self.scheduled_node_rounds += other.scheduled_node_rounds;
        self.max_scheduled_per_round = self
            .max_scheduled_per_round
            .max(other.max_scheduled_per_round);
        self.chunks_stepped += other.chunks_stepped;
        self.steals += other.steals;
        self.wall_time += other.wall_time;
    }
}

impl std::fmt::Display for RunStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} rounds, {} messages, {} bits",
            self.rounds, self.messages, self.bits
        )?;
        if self.max_messages_per_round > 0 {
            write!(f, ", peak {}/round", self.max_messages_per_round)?;
        }
        if self.dropped > 0 {
            write!(f, ", {} dropped", self.dropped)?;
        }
        if self.crashed > 0 {
            write!(f, ", {} crashed node-rounds", self.crashed)?;
        }
        if self.topo_events > 0 {
            write!(
                f,
                ", {} topology events ({} repaired, {} recomputed)",
                self.topo_events, self.repaired_node_rounds, self.recompute_fallbacks
            )?;
        }
        if self.chunks_stepped > 0 {
            write!(
                f,
                ", {} chunks ({} stolen)",
                self.chunks_stepped, self.steals
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_and_maxes() {
        let mut a = RunStats {
            rounds: 10,
            messages: 100,
            bits: 1000,
            max_message_bits: 16,
            max_messages_per_round: 30,
            dropped: 1,
            crashed: 4,
            topo_events: 2,
            repaired_node_rounds: 5,
            recompute_fallbacks: 1,
            scheduled_node_rounds: 40,
            max_scheduled_per_round: 8,
            chunks_stepped: 6,
            steals: 2,
            wall_time: std::time::Duration::from_millis(3),
        };
        let b = RunStats {
            rounds: 5,
            messages: 50,
            bits: 700,
            max_message_bits: 20,
            max_messages_per_round: 10,
            dropped: 2,
            crashed: 1,
            topo_events: 3,
            repaired_node_rounds: 4,
            recompute_fallbacks: 2,
            scheduled_node_rounds: 25,
            max_scheduled_per_round: 12,
            chunks_stepped: 3,
            steals: 1,
            wall_time: std::time::Duration::from_millis(4),
        };
        a.absorb_sequential(&b);
        assert_eq!(a.rounds, 15);
        assert_eq!(a.messages, 150);
        assert_eq!(a.bits, 1700);
        assert_eq!(a.max_message_bits, 20);
        assert_eq!(a.max_messages_per_round, 30);
        assert_eq!(a.dropped, 3);
        assert_eq!(a.crashed, 5);
        assert_eq!(a.topo_events, 5);
        assert_eq!(a.repaired_node_rounds, 9);
        assert_eq!(a.recompute_fallbacks, 3);
        assert_eq!(a.scheduled_node_rounds, 65);
        assert_eq!(a.max_scheduled_per_round, 12);
        assert_eq!(a.chunks_stepped, 9);
        assert_eq!(a.steals, 3);
        assert_eq!(a.wall_time, std::time::Duration::from_millis(7));
    }

    #[test]
    fn equality_ignores_scheduler_telemetry() {
        let a = RunStats {
            rounds: 3,
            chunks_stepped: 12,
            steals: 4,
            ..RunStats::default()
        };
        let b = RunStats {
            rounds: 3,
            ..RunStats::default()
        };
        assert_eq!(a, b);
        assert!((a.steal_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(b.steal_fraction(), 0.0);
    }

    #[test]
    fn peak_scheduled_fraction_is_per_node() {
        let s = RunStats {
            max_scheduled_per_round: 5,
            ..RunStats::default()
        };
        assert!((s.peak_scheduled_fraction(20) - 0.25).abs() < 1e-12);
        assert_eq!(RunStats::default().peak_scheduled_fraction(0), 0.0);
    }

    #[test]
    fn equality_ignores_wall_time() {
        let a = RunStats {
            rounds: 3,
            wall_time: std::time::Duration::from_secs(1),
            ..RunStats::default()
        };
        let b = RunStats {
            rounds: 3,
            wall_time: std::time::Duration::from_secs(9),
            ..RunStats::default()
        };
        assert_eq!(a, b);
        let c = RunStats {
            rounds: 4,
            ..RunStats::default()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn display_mentions_rounds() {
        let s = RunStats {
            rounds: 3,
            ..RunStats::default()
        };
        assert!(s.to_string().contains("3 rounds"));
        // Zero-valued optional counters stay out of the rendering.
        assert!(!s.to_string().contains("peak"));
        assert!(!s.to_string().contains("dropped"));
    }

    #[test]
    fn display_includes_drops_and_peak_when_nonzero() {
        let s = RunStats {
            rounds: 3,
            messages: 9,
            max_messages_per_round: 4,
            dropped: 2,
            crashed: 3,
            ..RunStats::default()
        };
        let rendered = s.to_string();
        assert!(rendered.contains("peak 4/round"), "{rendered}");
        assert!(rendered.contains("2 dropped"), "{rendered}");
        assert!(rendered.contains("3 crashed node-rounds"), "{rendered}");
    }

    #[test]
    fn repair_counters_participate_in_equality_and_display() {
        let churned = RunStats {
            rounds: 3,
            topo_events: 2,
            repaired_node_rounds: 6,
            recompute_fallbacks: 1,
            ..RunStats::default()
        };
        let quiet = RunStats {
            rounds: 3,
            ..RunStats::default()
        };
        assert_ne!(churned, quiet);
        let rendered = churned.to_string();
        assert!(
            rendered.contains("2 topology events (6 repaired, 1 recomputed)"),
            "{rendered}"
        );
        assert!(!quiet.to_string().contains("topology"));
    }
}

//! Zero-cost-when-disabled observability for the round engines.
//!
//! The paper's claims are *observable* quantities: Lemma 1 says the BFS
//! waves of Algorithm 1 never congest an edge, the S-SP lemma bounds each
//! wave's delay by `|S|`, and every theorem is a round or message bound.
//! This module lets a run be watched while it happens instead of being
//! summarized after the fact:
//!
//! * [`Observer`] — the hook trait both engines call at round start/end,
//!   message commit, and drop events. Every hook has a default no-op body;
//!   with no observer configured the engines skip the hook sites with a
//!   single `Option` check, so observation costs nothing when disabled.
//! * [`MetricsRecorder`] — a per-round metric stream (messages, bits,
//!   drops, active senders, per-edge load histogram, max edge congestion,
//!   wall-clock phase split), streamable to JSONL.
//! * [`PhaseProfiler`] — per-phase wall-clock totals splitting each round
//!   into deliver/step/commit time, so e.g. the "the sequential commit
//!   phase dominates threaded runs" hypothesis becomes a measured number.
//! * [`EdgeCongestionProbe`] and [`WaveArrivalProbe`] — live checks of the
//!   paper's structural invariants (Lemma 1 wave spacing, S-SP delay)
//!   over real runs.
//!
//! Attach an observer with [`Config::with_observer`](crate::Config) and
//! keep a typed handle via [`SharedObserver`] to read the recording back:
//!
//! ```
//! use dapsp_congest::obs::{MetricsRecorder, SharedObserver};
//! use dapsp_congest::{Config, Simulator, Topology};
//! # use dapsp_congest::{Inbox, Message, NodeAlgorithm, NodeContext, Outbox};
//! # #[derive(Clone, Debug)]
//! # struct Ping;
//! # impl Message for Ping { fn bit_size(&self) -> u32 { 1 } }
//! # struct Greeter { heard: bool }
//! # impl NodeAlgorithm for Greeter {
//! #     type Message = Ping;
//! #     type Output = bool;
//! #     fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Ping>) {
//! #         if ctx.node_id() == 0 { out.send(0, Ping); }
//! #     }
//! #     fn on_round(&mut self, _: &NodeContext<'_>, inbox: &Inbox<Ping>, _: &mut Outbox<Ping>) {
//! #         if !inbox.is_empty() { self.heard = true; }
//! #     }
//! #     fn into_output(self, _: &NodeContext<'_>) -> bool { self.heard }
//! # }
//! # fn main() -> Result<(), dapsp_congest::SimError> {
//! let topo = Topology::from_adjacency(vec![vec![1], vec![0]])?;
//! let recorder = SharedObserver::new(MetricsRecorder::new());
//! let cfg = Config::for_n(2).with_observer(recorder.observer());
//! let report = Simulator::new(&topo, cfg, |_| Greeter { heard: false }).run()?;
//! // The report carries this run's stream; the shared recorder keeps the
//! // full (possibly multi-phase) stream for JSONL export.
//! let stream = report.metrics.expect("recorder attached");
//! assert_eq!(stream.iter().map(|r| r.messages).sum::<u64>(), report.stats.messages);
//! recorder.with(|r| assert_eq!(r.stream().len(), stream.len()));
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use crate::config::{DropReason, TopologyEvent};
use crate::message::TraceTags;
use crate::node::{NodeId, Port};
use crate::stats::RunStats;

/// What the engine tells an observer when a run begins.
#[derive(Clone, Copy, Debug)]
pub struct RunInfo<'a> {
    /// The phase label from [`Config::with_phase`](crate::Config), or `""`
    /// if the run is unlabeled.
    pub phase: &'a str,
    /// Number of nodes in the topology.
    pub nodes: usize,
    /// Number of *directed* edges (`2m`); directed edge indices in
    /// [`MessageEvent::edge`] range over `0..directed_edges`.
    pub directed_edges: usize,
    /// Number of nodes that run `on_start` (everyone not crashed at round
    /// 0) — the round-0 scheduled count, mirrored into the metric
    /// stream's first row.
    pub started: u64,
}

/// One committed (accepted-for-delivery) message, as seen by the engine's
/// sequential commit phase.
#[derive(Clone, Copy, Debug)]
pub struct MessageEvent {
    /// The round whose commit produced this message (`0` for sends queued
    /// in `on_start`). The message is delivered at `send_round + 1`.
    pub send_round: u64,
    /// The sending node.
    pub from: NodeId,
    /// The receiving node.
    pub to: NodeId,
    /// The receiver's port the message will arrive on.
    pub to_port: Port,
    /// The directed edge the message crosses, as a flat index in
    /// `0..2m` (see [`Topology::directed_edge_index`](crate::Topology)).
    pub edge: u32,
    /// The opposite direction of the same undirected edge
    /// (`directed_edge_index(to, to_port)`); `min(edge, reverse_edge)` is a
    /// canonical undirected-edge key.
    pub reverse_edge: u32,
    /// Payload size in bits.
    pub bits: u32,
    /// The logical stream this message belongs to, if the message type
    /// reports one via [`Message::stream_id`](crate::Message::stream_id)
    /// (e.g. the BFS root a wave announcement serves).
    pub stream: Option<u32>,
    /// Per-kernel attribution tags reported by the message via
    /// [`Message::trace_tags`](crate::Message::trace_tags): which kernels
    /// of a composed stack contributed components, and whether the
    /// transport layer marked the frame as a retransmission / ack carrier.
    pub tags: TraceTags,
}

/// Wall-clock split of one engine round. Only measured while an observer is
/// attached; all-zero otherwise.
///
/// The optimized engine's phase pipeline times each phase on the engine
/// thread, bracketing the executor's `deliver`/`step`/`commit` calls, so
/// the split means the same thing for every
/// [`ExecutorKind`](crate::ExecutorKind). The seed engine interleaves
/// stepping and committing per node and accumulates the same three
/// buckets from per-node clocks instead.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundTiming {
    /// Inbox turnover: swapping (serial executor), distributing shards to
    /// workers (pool executor), or allocating (seed engine) the per-node
    /// inbox buffers. The zero-allocation engine fuses delivery
    /// enqueueing into commit and inbox sorting into step, so its deliver
    /// share is near zero *by design* — the contrast against the seed
    /// engine's per-round allocations is itself an observable.
    pub deliver: Duration,
    /// Node-local `on_round` execution. The pool executor runs this phase
    /// on its workers (which also pre-validate outboxes into staged
    /// commit queues); it is the only phase
    /// [`Config::with_threads`](crate::Config) parallelizes.
    pub step: Duration,
    /// The outbox validation/accounting/enqueue phase, always replayed on
    /// the engine thread in node-id order (under the pool, the merge of
    /// the workers' staged queues).
    pub commit: Duration,
}

/// End-of-run transport-layer telemetry: what a reliable-delivery
/// synchronizer (the kernel layer's `ReliableKernel`) did over a whole run,
/// aggregated across nodes. Reported to observers via
/// [`Observer::on_transport`] by entry points that wrap their protocol in a
/// reliable transport, so retransmission telemetry lands in the same stream
/// as the per-round metrics instead of only in an end-of-run struct.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportSummary {
    /// Simulated rounds the transport ran for.
    pub sim_rounds: u64,
    /// Frames put on the wire (first sends and retries).
    pub frames_sent: u64,
    /// Frames re-sent after an ack timeout.
    pub retransmissions: u64,
    /// Acknowledgements sent.
    pub acks_sent: u64,
    /// Sends refused because the retry horizon was exhausted.
    pub truncated_sends: u64,
    /// Node-links that gave up entirely.
    pub gave_up: u64,
}

/// Hooks called by [`Simulator`](crate::Simulator) and
/// [`ReferenceSimulator`](crate::ReferenceSimulator) while a run executes.
///
/// All hooks run on the engine's main thread, in deterministic order:
/// `on_run_start`, then per round `on_round_start` → `on_message`/`on_drop`
/// (in node-id commit order) → `on_sched` → `on_round_end` →
/// `on_quiescence`, and
/// finally (`on_terminate` if the run quiesced early, then) `on_run_end`.
/// Messages queued in `on_start` are committed *before* the first
/// `on_round_start`, with `send_round == 0`, and the round-0 vote poll
/// reports via `on_quiescence(0, …)` right after.
///
/// Every hook has a no-op default, so an observer implements only what it
/// needs.
pub trait Observer: Send {
    /// A simulation run begins (one per engine `run()`; composite pipelines
    /// produce one call per phase).
    fn on_run_start(&mut self, _info: &RunInfo<'_>) {}
    /// Round `round` begins; `delivered` messages (sent in `round - 1`) are
    /// about to be handed to the nodes, and `scheduled` nodes are on this
    /// round's schedule (nodes with arrivals or awake — the set the
    /// active-set engine steps; the dense reference engine reports the
    /// same count while still stepping everyone).
    fn on_round_start(&mut self, _round: u64, _delivered: u64, _scheduled: u64) {}
    /// A message passed validation and was accepted for delivery.
    fn on_message(&mut self, _ev: &MessageEvent) {}
    /// A message was dropped by the configured
    /// [`FaultPlan`](crate::FaultPlan) during round `send_round`'s commit;
    /// `reason` says whether a loss rule fired or the receiver was inside a
    /// crash window at delivery time. `tags` carries the dropped message's
    /// per-kernel attribution (see [`TraceTags`]).
    fn on_drop(
        &mut self,
        _send_round: u64,
        _from: NodeId,
        _from_port: Port,
        _reason: DropReason,
        _tags: TraceTags,
    ) {
    }
    /// Node `node` sits out round `round` inside a
    /// [`CrashWindow`](crate::CrashWindow). Called once per crashed node
    /// per round, in node-id order, between `on_round_start` and the
    /// round's commit events.
    fn on_crash(&mut self, _round: u64, _node: NodeId) {}
    /// One [`TopologyPlan`](crate::TopologyPlan) event took effect at the
    /// start of round `round` (the churn choke point). Called once per
    /// event in plan order, *before* `on_round_start(round, …)` — the
    /// batch mutates the topology before the round's schedule is built.
    /// Any in-flight messages purged off the batch's dead links follow as
    /// `on_drop` calls with [`DropReason::TopologyChange`] and the
    /// previous round as their send round.
    fn on_topology(&mut self, _round: u64, _event: &TopologyEvent) {}
    /// Round `round`'s scheduler telemetry: the executor stepped the
    /// round's schedule as `chunks` frontier chunks, of which `steals`
    /// were executed by a worker other than their home worker (see
    /// [`PoolSched`](crate::PoolSched)). Called immediately before
    /// `on_round_end`, on every engine; executors without a chunk
    /// scheduler (serial, the dense reference) report `(0, 0)`. The
    /// counts are timing-dependent load-balance telemetry, *not* part of
    /// the deterministic model — recorders must keep them out of
    /// equality comparisons.
    fn on_sched(&mut self, _round: u64, _chunks: u64, _steals: u64) {}
    /// Round `round` finished committing.
    fn on_round_end(&mut self, _round: u64, _timing: &RoundTiming) {}
    /// The termination-vote tally of round `round`'s quiescence poll:
    /// `active + passive + shutdown` counts sum to the number of polled
    /// nodes (everyone for the round-0 poll after `on_start`, the round's
    /// scheduled set afterwards — crashed scheduled nodes vote with their
    /// frozen state). Called after `on_round_end` (and after the start
    /// commits for round 0), on every engine at the same points.
    fn on_quiescence(&mut self, _round: u64, _active: u64, _passive: u64, _shutdown: u64) {}
    /// The run is about to stop early because the quiescence votes became
    /// terminal after round `round` with `in_flight` undelivered messages
    /// (zero unless the vote was unanimous shutdown). Called before
    /// `on_run_end`; never called when the round horizon aborts the run.
    fn on_terminate(&mut self, _round: u64, _in_flight: u64) {}
    /// A reliable-transport entry point finished a run and reports its
    /// aggregated transport telemetry (called after `on_run_end`, outside
    /// the engine, by wrappers that own the transport state).
    fn on_transport(&mut self, _summary: &TransportSummary) {}
    /// The run reached quiescence; `stats` is final (including wall time).
    fn on_run_end(&mut self, _stats: &RunStats) {}
    /// Called once after `on_run_end`: an observer that records a per-round
    /// metric stream returns this run's rows here so the engine can attach
    /// them to the [`Report`](crate::Report). Default `None`.
    fn take_run_stream(&mut self) -> Option<Vec<RoundMetrics>> {
        None
    }
}

/// A type-erased, shareable observer slot carried by
/// [`Config`](crate::Config).
///
/// Cloning the handle shares the underlying observer, which is how one
/// recorder watches every phase of a composite pipeline. Construct via
/// [`SharedObserver::observer`] to keep typed access to the observer.
#[derive(Clone)]
pub struct ObserverHandle(Arc<Mutex<dyn Observer>>);

impl ObserverHandle {
    /// Wraps an observer, giving up typed access (use [`SharedObserver`]
    /// to keep it).
    pub fn new<O: Observer + 'static>(observer: O) -> Self {
        ObserverHandle(Arc::new(Mutex::new(observer)))
    }

    /// Locks the observer for a batch of hook calls.
    ///
    /// The engines call hooks from a single thread, so the lock is
    /// uncontended there; a poisoned lock (an observer panicked) is
    /// recovered rather than propagated.
    pub fn lock(&self) -> MutexGuard<'_, dyn Observer + 'static> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl std::fmt::Debug for ObserverHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ObserverHandle(..)")
    }
}

/// An observer plus a typed handle to read it back after runs.
///
/// [`ObserverHandle`] erases the observer's type so [`Config`](crate::Config)
/// can carry any observer; `SharedObserver` keeps the concrete type so the
/// caller can inspect the recording afterwards (see the module example).
pub struct SharedObserver<O> {
    inner: Arc<Mutex<O>>,
}

impl<O: Observer + 'static> SharedObserver<O> {
    /// Wraps `observer` for sharing between the engine and the caller.
    pub fn new(observer: O) -> Self {
        SharedObserver {
            inner: Arc::new(Mutex::new(observer)),
        }
    }

    /// A type-erased handle for [`Config::with_observer`](crate::Config);
    /// shares (not copies) the observer.
    pub fn observer(&self) -> ObserverHandle {
        ObserverHandle(self.inner.clone() as Arc<Mutex<dyn Observer>>)
    }

    /// Runs `f` with exclusive access to the observer.
    pub fn with<R>(&self, f: impl FnOnce(&mut O) -> R) -> R {
        let mut guard = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        f(&mut guard)
    }
}

impl<O> Clone for SharedObserver<O> {
    fn clone(&self) -> Self {
        SharedObserver {
            inner: self.inner.clone(),
        }
    }
}

/// Fans every hook out to several observers, in order.
///
/// Lets one run feed e.g. a [`MetricsRecorder`] and an invariant probe at
/// once. Only the *first* observer's [`Observer::take_run_stream`] feeds the
/// report, so put the recorder first.
pub struct FanOut {
    observers: Vec<ObserverHandle>,
}

impl FanOut {
    /// Combines `observers`; hooks are forwarded in the given order.
    pub fn new(observers: Vec<ObserverHandle>) -> Self {
        FanOut { observers }
    }
}

impl Observer for FanOut {
    fn on_run_start(&mut self, info: &RunInfo<'_>) {
        for obs in &self.observers {
            obs.lock().on_run_start(info);
        }
    }
    fn on_round_start(&mut self, round: u64, delivered: u64, scheduled: u64) {
        for obs in &self.observers {
            obs.lock().on_round_start(round, delivered, scheduled);
        }
    }
    fn on_message(&mut self, ev: &MessageEvent) {
        for obs in &self.observers {
            obs.lock().on_message(ev);
        }
    }
    fn on_drop(
        &mut self,
        send_round: u64,
        from: NodeId,
        from_port: Port,
        reason: DropReason,
        tags: TraceTags,
    ) {
        for obs in &self.observers {
            obs.lock()
                .on_drop(send_round, from, from_port, reason, tags);
        }
    }
    fn on_crash(&mut self, round: u64, node: NodeId) {
        for obs in &self.observers {
            obs.lock().on_crash(round, node);
        }
    }
    fn on_topology(&mut self, round: u64, event: &TopologyEvent) {
        for obs in &self.observers {
            obs.lock().on_topology(round, event);
        }
    }
    fn on_sched(&mut self, round: u64, chunks: u64, steals: u64) {
        for obs in &self.observers {
            obs.lock().on_sched(round, chunks, steals);
        }
    }
    fn on_round_end(&mut self, round: u64, timing: &RoundTiming) {
        for obs in &self.observers {
            obs.lock().on_round_end(round, timing);
        }
    }
    fn on_quiescence(&mut self, round: u64, active: u64, passive: u64, shutdown: u64) {
        for obs in &self.observers {
            obs.lock().on_quiescence(round, active, passive, shutdown);
        }
    }
    fn on_terminate(&mut self, round: u64, in_flight: u64) {
        for obs in &self.observers {
            obs.lock().on_terminate(round, in_flight);
        }
    }
    fn on_transport(&mut self, summary: &TransportSummary) {
        for obs in &self.observers {
            obs.lock().on_transport(summary);
        }
    }
    fn on_run_end(&mut self, stats: &RunStats) {
        for obs in &self.observers {
            obs.lock().on_run_end(stats);
        }
    }
    fn take_run_stream(&mut self) -> Option<Vec<RoundMetrics>> {
        self.observers
            .first()
            .and_then(|obs| obs.lock().take_run_stream())
    }
}

/// One row of the per-round metric stream produced by [`MetricsRecorder`].
///
/// Row `r` accounts for the commits performed during round `r` (row 0 holds
/// the `on_start` sends): `messages`/`bits` were accepted for delivery at
/// round `r + 1`, `dropped` were discarded by the fault plan, `crashed`
/// counts the nodes sitting out round `r` inside a crash window. Summing a
/// column over the stream therefore reproduces the corresponding
/// [`RunStats`] total exactly, and a stream always has
/// `stats.rounds + 1` rows.
#[derive(Clone, Debug)]
pub struct RoundMetrics {
    /// The phase label of the run this row belongs to (`""` unlabeled).
    pub phase: Arc<str>,
    /// The send round this row accounts for (0 = `on_start`).
    pub round: u64,
    /// Messages committed (accepted for delivery) this round.
    pub messages: u64,
    /// Payload bits committed this round.
    pub bits: u64,
    /// Messages dropped by the fault plan this round (loss rules plus
    /// deliveries into crash windows).
    pub dropped: u64,
    /// Nodes sitting out this round inside a crash window.
    pub crashed: u64,
    /// [`TopologyPlan`](crate::TopologyPlan) events that took effect
    /// entering this row's round (applied at the churn choke point, before
    /// the round's deliveries). Summing the column reproduces
    /// [`RunStats::topo_events`]; deterministic, so it participates in
    /// equality.
    pub topo_events: u64,
    /// Frames committed (or dropped) this round that the transport layer
    /// marked as retransmissions. Summing the column over a reliable run
    /// reproduces the transport's `retransmissions` total exactly — every
    /// sent frame is either delivered or dropped.
    pub retransmits: u64,
    /// Frames committed (or dropped) this round carrying an ack.
    pub acks: u64,
    /// Nodes voting `Active` in this round's quiescence poll.
    pub votes_active: u64,
    /// Nodes voting `Passive` in this round's quiescence poll.
    pub votes_passive: u64,
    /// Nodes voting `Shutdown` in this round's quiescence poll. The three
    /// vote columns sum to the polled-node count: everyone in row 0, the
    /// round's `scheduled_nodes` afterwards.
    pub votes_shutdown: u64,
    /// Distinct nodes that sent at least one message this round.
    pub active_nodes: u32,
    /// Nodes on this round's schedule (arrivals waiting or awake) — the
    /// set the active-set engine steps. Row 0 counts the nodes that ran
    /// `on_start`. Summing the column reproduces
    /// [`RunStats::scheduled_node_rounds`]; the column maximum is
    /// [`RunStats::max_scheduled_per_round`].
    pub scheduled_nodes: u64,
    /// Frontier chunks the executor stepped this round (0 on executors
    /// without a chunk scheduler). Summing the column reproduces
    /// [`RunStats::chunks_stepped`]. Load-balance telemetry like the
    /// `*_ns` columns: excluded from equality, included in the JSON.
    pub chunks: u64,
    /// Chunks stepped by a worker other than their home worker this round
    /// (see [`PoolSched`](crate::PoolSched)). Summing the column
    /// reproduces [`RunStats::steals`]; timing-dependent, excluded from
    /// equality.
    pub steals: u64,
    /// The largest number of messages any single *undirected* edge carried
    /// this round (at most 2 — one per direction — by the engine's
    /// bandwidth discipline; the interesting signal is how close the
    /// average load comes to it).
    pub max_edge_load: u32,
    /// `edge_load_hist[l - 1]` = number of undirected edges that carried
    /// exactly `l` messages this round.
    pub edge_load_hist: Vec<u64>,
    /// Inbox-turnover wall time (see [`RoundTiming::deliver`]).
    pub deliver_ns: u64,
    /// Node-stepping wall time (see [`RoundTiming::step`]).
    pub step_ns: u64,
    /// Sequential-commit wall time (see [`RoundTiming::commit`]).
    pub commit_ns: u64,
}

impl RoundMetrics {
    fn new(phase: Arc<str>, round: u64) -> Self {
        RoundMetrics {
            phase,
            round,
            messages: 0,
            bits: 0,
            dropped: 0,
            crashed: 0,
            topo_events: 0,
            retransmits: 0,
            acks: 0,
            votes_active: 0,
            votes_passive: 0,
            votes_shutdown: 0,
            active_nodes: 0,
            scheduled_nodes: 0,
            chunks: 0,
            steals: 0,
            max_edge_load: 0,
            edge_load_hist: Vec::new(),
            deliver_ns: 0,
            step_ns: 0,
            commit_ns: 0,
        }
    }

    /// Renders the row as one JSON object (one JSONL line, sans newline).
    pub fn to_json(&self) -> String {
        let hist: Vec<String> = self.edge_load_hist.iter().map(u64::to_string).collect();
        format!(
            concat!(
                "{{\"phase\":\"{}\",\"round\":{},\"messages\":{},\"bits\":{},",
                "\"dropped\":{},\"crashed\":{},\"topo_events\":{},",
                "\"retransmits\":{},\"acks\":{},",
                "\"votes_active\":{},\"votes_passive\":{},\"votes_shutdown\":{},",
                "\"active_nodes\":{},",
                "\"scheduled_nodes\":{},\"chunks\":{},\"steals\":{},",
                "\"max_edge_load\":{},",
                "\"edge_load_hist\":[{}],\"deliver_ns\":{},\"step_ns\":{},",
                "\"commit_ns\":{}}}"
            ),
            self.phase,
            self.round,
            self.messages,
            self.bits,
            self.dropped,
            self.crashed,
            self.topo_events,
            self.retransmits,
            self.acks,
            self.votes_active,
            self.votes_passive,
            self.votes_shutdown,
            self.active_nodes,
            self.scheduled_nodes,
            self.chunks,
            self.steals,
            self.max_edge_load,
            hist.join(","),
            self.deliver_ns,
            self.step_ns,
            self.commit_ns,
        )
    }
}

/// Equality over the model-level columns only; the `*_ns` wall-clock
/// fields and the `chunks`/`steals` scheduler telemetry are ignored so
/// that deterministic runs compare equal across engines and thread counts
/// (the same convention as [`RunStats`]'s `PartialEq`).
impl PartialEq for RoundMetrics {
    fn eq(&self, other: &Self) -> bool {
        self.phase == other.phase
            && self.round == other.round
            && self.messages == other.messages
            && self.bits == other.bits
            && self.dropped == other.dropped
            && self.crashed == other.crashed
            && self.topo_events == other.topo_events
            && self.retransmits == other.retransmits
            && self.acks == other.acks
            && self.votes_active == other.votes_active
            && self.votes_passive == other.votes_passive
            && self.votes_shutdown == other.votes_shutdown
            && self.active_nodes == other.active_nodes
            && self.scheduled_nodes == other.scheduled_nodes
            && self.max_edge_load == other.max_edge_load
            && self.edge_load_hist == other.edge_load_hist
    }
}

impl Eq for RoundMetrics {}

/// Records the full per-round metric stream of every run it observes.
///
/// The stream row semantics are documented on [`RoundMetrics`]. Multi-phase
/// pipelines that share one recorder across phases accumulate one
/// concatenated stream; each phase's [`Report`](crate::Report) additionally
/// carries just that run's rows.
#[derive(Default)]
pub struct MetricsRecorder {
    stream: Vec<RoundMetrics>,
    /// Index into `stream` where the current run began.
    run_start: usize,
    phase: Option<Arc<str>>,
    /// Per-undirected-edge message count for the current round; sized
    /// `m` at `on_run_start`, cleared via `touched`.
    edge_load: Vec<u32>,
    touched: Vec<u32>,
    last_sender: Option<NodeId>,
    /// Topology events seen since the last `on_round_start`. The churn
    /// choke point fires `on_topology` for round `r` *before*
    /// `on_round_start(r, …)`, so the count is buffered here and folded
    /// into round `r`'s row when that row is opened.
    pending_topo: u64,
    /// End-of-run transport telemetry, one entry per reliable run that
    /// reported via [`Observer::on_transport`], labeled with the phase it
    /// arrived under.
    transports: Vec<(Arc<str>, TransportSummary)>,
}

impl MetricsRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        MetricsRecorder::default()
    }

    /// The full stream recorded so far, across every observed run.
    pub fn stream(&self) -> &[RoundMetrics] {
        &self.stream
    }

    /// Transport-layer telemetry reported via [`Observer::on_transport`],
    /// one `(phase, summary)` entry per reliable run observed.
    pub fn transports(&self) -> &[(Arc<str>, TransportSummary)] {
        &self.transports
    }

    /// Writes the stream as JSONL (one [`RoundMetrics::to_json`] object per
    /// line), followed by one `"transport"` row per reliable run that
    /// reported end-of-run transport telemetry.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn write_jsonl<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<()> {
        for row in &self.stream {
            writeln!(out, "{}", row.to_json())?;
        }
        for (phase, t) in &self.transports {
            writeln!(
                out,
                concat!(
                    "{{\"transport\":\"{}\",\"sim_rounds\":{},\"frames_sent\":{},",
                    "\"retransmissions\":{},\"acks_sent\":{},\"truncated_sends\":{},",
                    "\"gave_up\":{}}}"
                ),
                phase,
                t.sim_rounds,
                t.frames_sent,
                t.retransmissions,
                t.acks_sent,
                t.truncated_sends,
                t.gave_up,
            )?;
        }
        Ok(())
    }

    fn row(&mut self) -> &mut RoundMetrics {
        self.stream
            .last_mut()
            .expect("row exists while a run is active")
    }

    /// Folds the current round's edge loads into the open row and resets
    /// the scratch counters.
    fn seal_round(&mut self) {
        let mut max = 0u32;
        let mut hist: Vec<u64> = Vec::new();
        for &e in &self.touched {
            let load = self.edge_load[e as usize];
            self.edge_load[e as usize] = 0;
            max = max.max(load);
            if hist.len() < load as usize {
                hist.resize(load as usize, 0);
            }
            hist[load as usize - 1] += 1;
        }
        self.touched.clear();
        self.last_sender = None;
        let row = self.row();
        row.max_edge_load = max;
        row.edge_load_hist = hist;
    }
}

impl Observer for MetricsRecorder {
    fn on_run_start(&mut self, info: &RunInfo<'_>) {
        let phase: Arc<str> = Arc::from(info.phase);
        self.run_start = self.stream.len();
        // Keyed by `min(edge, reverse_edge)`, so both directions of one
        // undirected edge land in the same counter; sized by the directed
        // range since the canonical keys live inside it.
        self.edge_load.clear();
        self.edge_load.resize(info.directed_edges, 0);
        self.touched.clear();
        self.last_sender = None;
        self.pending_topo = 0;
        let mut row = RoundMetrics::new(phase.clone(), 0);
        row.scheduled_nodes = info.started;
        self.stream.push(row);
        self.phase = Some(phase);
    }

    fn on_round_start(&mut self, round: u64, _delivered: u64, scheduled: u64) {
        self.seal_round();
        let phase = self.phase.clone().unwrap_or_else(|| Arc::from(""));
        let mut row = RoundMetrics::new(phase, round);
        row.scheduled_nodes = scheduled;
        row.topo_events = self.pending_topo;
        self.pending_topo = 0;
        self.stream.push(row);
    }

    fn on_topology(&mut self, _round: u64, _event: &TopologyEvent) {
        self.pending_topo += 1;
    }

    fn on_message(&mut self, ev: &MessageEvent) {
        let key = ev.edge.min(ev.reverse_edge);
        // Churn-inserted edges carry directed indices past the run-start
        // `2m` sizing; grow the per-edge counters on demand.
        if key as usize >= self.edge_load.len() {
            self.edge_load.resize(key as usize + 1, 0);
        }
        let load = &mut self.edge_load[key as usize];
        *load += 1;
        if *load == 1 {
            self.touched.push(key);
        }
        let row = self.row();
        row.messages += 1;
        row.bits += u64::from(ev.bits);
        row.retransmits += u64::from(ev.tags.retransmit);
        row.acks += u64::from(ev.tags.ack);
        if self.last_sender != Some(ev.from) {
            self.last_sender = Some(ev.from);
            self.row().active_nodes += 1;
        }
    }

    fn on_drop(
        &mut self,
        _send_round: u64,
        from: NodeId,
        _from_port: Port,
        _reason: DropReason,
        tags: TraceTags,
    ) {
        let row = self.row();
        row.dropped += 1;
        // Dropped frames still count toward the transport columns — that
        // keeps the column sums equal to the transport's send-side totals.
        row.retransmits += u64::from(tags.retransmit);
        row.acks += u64::from(tags.ack);
        // A dropped send still makes the sender active this round.
        if self.last_sender != Some(from) {
            self.last_sender = Some(from);
            self.row().active_nodes += 1;
        }
    }

    fn on_crash(&mut self, _round: u64, _node: NodeId) {
        self.row().crashed += 1;
    }

    fn on_quiescence(&mut self, _round: u64, active: u64, passive: u64, shutdown: u64) {
        let row = self.row();
        row.votes_active = active;
        row.votes_passive = passive;
        row.votes_shutdown = shutdown;
    }

    fn on_transport(&mut self, summary: &TransportSummary) {
        let phase = self.phase.clone().unwrap_or_else(|| Arc::from(""));
        self.transports.push((phase, *summary));
    }

    fn on_sched(&mut self, _round: u64, chunks: u64, steals: u64) {
        let row = self.row();
        row.chunks = chunks;
        row.steals = steals;
    }

    fn on_round_end(&mut self, _round: u64, timing: &RoundTiming) {
        let row = self.row();
        row.deliver_ns = timing.deliver.as_nanos() as u64;
        row.step_ns = timing.step.as_nanos() as u64;
        row.commit_ns = timing.commit.as_nanos() as u64;
    }

    fn on_run_end(&mut self, _stats: &RunStats) {
        self.seal_round();
    }

    fn take_run_stream(&mut self) -> Option<Vec<RoundMetrics>> {
        Some(self.stream[self.run_start..].to_vec())
    }
}

/// Per-phase wall-clock totals: how each run's time splits across the
/// deliver/step/commit sub-phases of every round.
///
/// Cheaper than a full [`MetricsRecorder`] (no per-edge accounting); this
/// is what `engine_profile` uses to measure whether the sequential commit
/// phase dominates threaded runs.
#[derive(Clone, Debug, Default)]
pub struct PhaseProfile {
    /// The phase label of the run (`""` unlabeled).
    pub phase: String,
    /// Rounds executed.
    pub rounds: u64,
    /// Messages committed.
    pub messages: u64,
    /// Messages dropped by the fault plan.
    pub dropped: u64,
    /// Crashed node-rounds.
    pub crashed: u64,
    /// Total inbox-turnover time.
    pub deliver: Duration,
    /// Total node-stepping time.
    pub step: Duration,
    /// Total sequential-commit time.
    pub commit: Duration,
}

impl PhaseProfile {
    /// The commit phase's share of the measured round time, in `[0, 1]`
    /// (0 if nothing was measured).
    pub fn commit_share(&self) -> f64 {
        let total = (self.deliver + self.step + self.commit).as_secs_f64();
        if total > 0.0 {
            self.commit.as_secs_f64() / total
        } else {
            0.0
        }
    }
}

/// An [`Observer`] accumulating one [`PhaseProfile`] per observed run.
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    profiles: Vec<PhaseProfile>,
}

impl PhaseProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        PhaseProfiler::default()
    }

    /// One profile per observed run, in run order.
    pub fn profiles(&self) -> &[PhaseProfile] {
        &self.profiles
    }

    /// Sums all runs into one profile (phases concatenated with `+`).
    pub fn total(&self) -> PhaseProfile {
        let mut total = PhaseProfile::default();
        let mut labels: Vec<&str> = Vec::new();
        for p in &self.profiles {
            total.rounds += p.rounds;
            total.messages += p.messages;
            total.dropped += p.dropped;
            total.crashed += p.crashed;
            total.deliver += p.deliver;
            total.step += p.step;
            total.commit += p.commit;
            if !p.phase.is_empty() {
                labels.push(&p.phase);
            }
        }
        total.phase = labels.join("+");
        total
    }
}

impl Observer for PhaseProfiler {
    fn on_run_start(&mut self, info: &RunInfo<'_>) {
        self.profiles.push(PhaseProfile {
            phase: info.phase.to_string(),
            ..PhaseProfile::default()
        });
    }

    fn on_message(&mut self, _ev: &MessageEvent) {
        if let Some(p) = self.profiles.last_mut() {
            p.messages += 1;
        }
    }

    fn on_drop(
        &mut self,
        _send_round: u64,
        _from: NodeId,
        _from_port: Port,
        _reason: DropReason,
        _tags: TraceTags,
    ) {
        if let Some(p) = self.profiles.last_mut() {
            p.dropped += 1;
        }
    }

    fn on_crash(&mut self, _round: u64, _node: NodeId) {
        if let Some(p) = self.profiles.last_mut() {
            p.crashed += 1;
        }
    }

    fn on_round_end(&mut self, round: u64, timing: &RoundTiming) {
        if let Some(p) = self.profiles.last_mut() {
            p.rounds = round;
            p.deliver += timing.deliver;
            p.step += timing.step;
            p.commit += timing.commit;
        }
    }
}

/// One recorded violation of an [`EdgeCongestionProbe`] limit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CongestionViolation {
    /// The send round the limit was exceeded in.
    pub round: u64,
    /// The sender of the violating message.
    pub from: NodeId,
    /// The receiver of the violating message.
    pub to: NodeId,
    /// The load the directed edge reached.
    pub load: u32,
}

/// Live check of the paper's Lemma 1 congestion claim: every *directed*
/// edge carries at most `limit` messages per round.
///
/// Algorithm 1's one-slot pebble wait spaces consecutive BFS waves so that
/// no edge ever needs to carry two wave messages in one round — with the
/// wait, pebble-APSP runs clean at `limit = 1` on any graph. The engine's
/// own duplicate-send discipline would abort a violating run; this probe
/// verifies the claim independently, from the *observed* message stream,
/// so a recorded run carries its own evidence.
#[derive(Debug, Default)]
pub struct EdgeCongestionProbe {
    limit: u32,
    phase_filter: Option<String>,
    active: bool,
    round: u64,
    load: Vec<u32>,
    touched: Vec<u32>,
    max_load: u32,
    violations: Vec<CongestionViolation>,
}

impl EdgeCongestionProbe {
    /// A probe asserting per-directed-edge load ≤ `limit` each round.
    pub fn new(limit: u32) -> Self {
        EdgeCongestionProbe {
            limit,
            active: true,
            ..EdgeCongestionProbe::default()
        }
    }

    /// Restricts the probe to runs whose phase label equals `phase`
    /// (other runs are ignored entirely).
    pub fn for_phase(mut self, phase: impl Into<String>) -> Self {
        self.phase_filter = Some(phase.into());
        self
    }

    /// The largest per-round directed-edge load observed.
    pub fn max_load(&self) -> u32 {
        self.max_load
    }

    /// Loads that exceeded the limit, in commit order.
    pub fn violations(&self) -> &[CongestionViolation] {
        &self.violations
    }

    /// True iff no observed round exceeded the limit.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    fn reset_round(&mut self) {
        for &e in &self.touched {
            self.load[e as usize] = 0;
        }
        self.touched.clear();
    }
}

impl Observer for EdgeCongestionProbe {
    fn on_run_start(&mut self, info: &RunInfo<'_>) {
        self.active = self.phase_filter.as_deref().is_none_or(|f| f == info.phase);
        if self.active {
            self.load.clear();
            self.load.resize(info.directed_edges, 0);
            self.touched.clear();
            self.round = 0;
        }
    }

    fn on_round_start(&mut self, round: u64, _delivered: u64, _scheduled: u64) {
        if self.active {
            self.reset_round();
            self.round = round;
        }
    }

    fn on_message(&mut self, ev: &MessageEvent) {
        if !self.active {
            return;
        }
        // Churn-inserted edges index past the run-start `2m` sizing.
        if ev.edge as usize >= self.load.len() {
            self.load.resize(ev.edge as usize + 1, 0);
        }
        let load = &mut self.load[ev.edge as usize];
        *load += 1;
        if *load == 1 {
            self.touched.push(ev.edge);
        }
        let load = *load;
        self.max_load = self.max_load.max(load);
        if load > self.limit {
            self.violations.push(CongestionViolation {
                round: self.round,
                from: ev.from,
                to: ev.to,
                load,
            });
        }
    }
}

/// Records, per (stream, receiver), the round a logical wave first reached
/// a node — the raw data behind two paper invariants:
///
/// * **Lemma 1 (pebble-APSP):** consecutive BFS waves are spaced so that
///   no node is first reached by two different waves in the same round —
///   [`WaveArrivalProbe::node_collisions`] must be empty.
/// * **S-SP delay:** a wave from source `s` first reaches `v` at most
///   `|S|` rounds after the uncongested BFS schedule would —
///   [`WaveArrivalProbe::max_delay`] must be at most `|S|`.
///
/// Only messages whose type reports a
/// [`stream_id`](crate::Message::stream_id) are tracked, so unrelated phases
/// (plain BFS, aggregations) pass through invisibly.
#[derive(Debug, Default)]
pub struct WaveArrivalProbe {
    phase_filter: Option<String>,
    active: bool,
    /// `(stream, to)` → send round of the first wave message toward `to`.
    first_arrival: HashMap<(u32, NodeId), u64>,
}

impl WaveArrivalProbe {
    /// An empty probe observing every phase.
    pub fn new() -> Self {
        WaveArrivalProbe {
            active: true,
            ..WaveArrivalProbe::default()
        }
    }

    /// Restricts the probe to runs whose phase label equals `phase`.
    pub fn for_phase(mut self, phase: impl Into<String>) -> Self {
        self.phase_filter = Some(phase.into());
        self
    }

    /// The per-(stream, node) first-arrival send rounds.
    pub fn first_arrivals(&self) -> &HashMap<(u32, NodeId), u64> {
        &self.first_arrival
    }

    /// Nodes first reached by two distinct streams in the same round, as
    /// `(node, round, stream_a, stream_b)` — Lemma 1 says pebble-APSP
    /// produces none.
    pub fn node_collisions(&self) -> Vec<(NodeId, u64, u32, u32)> {
        let mut per_node: HashMap<(NodeId, u64), u32> = HashMap::new();
        let mut collisions = Vec::new();
        let mut entries: Vec<(&(u32, NodeId), &u64)> = self.first_arrival.iter().collect();
        entries.sort_unstable();
        for (&(stream, node), &round) in entries {
            match per_node.entry((node, round)) {
                std::collections::hash_map::Entry::Occupied(prev) => {
                    collisions.push((node, round, *prev.get(), stream));
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(stream);
                }
            }
        }
        collisions.sort_unstable();
        collisions
    }

    /// The largest observed wave delay: `first_arrival(stream, v) -
    /// dist(stream, v)`, maximized over all recorded arrivals, where `dist`
    /// maps `(stream, node)` to the ideal (hop-distance) schedule. Returns
    /// `None` if nothing was recorded or `dist` knows none of the pairs.
    pub fn max_delay(&self, dist: impl Fn(u32, NodeId) -> Option<u64>) -> Option<i64> {
        self.first_arrival
            .iter()
            .filter_map(|(&(stream, node), &round)| {
                dist(stream, node).map(|d| round as i64 - d as i64)
            })
            .max()
    }
}

impl Observer for WaveArrivalProbe {
    fn on_run_start(&mut self, info: &RunInfo<'_>) {
        self.active = self.phase_filter.as_deref().is_none_or(|f| f == info.phase);
    }

    fn on_message(&mut self, ev: &MessageEvent) {
        if !self.active {
            return;
        }
        if let Some(stream) = ev.stream {
            self.first_arrival
                .entry((stream, ev.to))
                .or_insert(ev.send_round);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(phase: &str) -> RunInfo<'_> {
        RunInfo {
            phase,
            nodes: 4,
            directed_edges: 6,
            started: 4,
        }
    }

    fn ev(
        send_round: u64,
        from: NodeId,
        to: NodeId,
        edge: u32,
        reverse_edge: u32,
        stream: Option<u32>,
    ) -> MessageEvent {
        MessageEvent {
            send_round,
            from,
            to,
            to_port: 0,
            edge,
            reverse_edge,
            bits: 8,
            stream,
            tags: TraceTags::default(),
        }
    }

    #[test]
    fn recorder_rows_account_per_round() {
        let mut rec = MetricsRecorder::new();
        rec.on_run_start(&info("demo"));
        rec.on_message(&ev(0, 0, 1, 0, 3, None));
        rec.on_round_start(1, 1, 4);
        rec.on_message(&ev(1, 1, 0, 2, 5, None));
        rec.on_message(&ev(1, 1, 2, 3, 0, None));
        rec.on_drop(1, 2, 0, DropReason::Loss, TraceTags::default());
        rec.on_crash(1, 3);
        rec.on_quiescence(1, 2, 1, 1);
        rec.on_run_end(&RunStats::default());
        let stream = rec.stream();
        assert_eq!(stream.len(), 2);
        assert_eq!(stream[0].round, 0);
        assert_eq!(stream[0].messages, 1);
        assert_eq!(stream[1].messages, 2);
        assert_eq!(stream[1].dropped, 1);
        assert_eq!(stream[1].crashed, 1);
        assert_eq!(stream[1].active_nodes, 2); // sender 1 (twice) + dropped sender 2
        assert_eq!(stream[1].max_edge_load, 1);
        assert_eq!(stream[1].edge_load_hist, vec![2]);
        assert_eq!(
            (
                stream[1].votes_active,
                stream[1].votes_passive,
                stream[1].votes_shutdown
            ),
            (2, 1, 1)
        );
        assert_eq!(&*stream[0].phase, "demo");
    }

    #[test]
    fn recorder_counts_transport_tags_on_delivery_and_drop() {
        let retx = TraceTags {
            kernels: 1,
            retransmit: true,
            ack: false,
        };
        let ack = TraceTags {
            kernels: 1,
            retransmit: false,
            ack: true,
        };
        let mut rec = MetricsRecorder::new();
        rec.on_run_start(&info("rel"));
        let mut e = ev(0, 0, 1, 0, 3, None);
        e.tags = retx;
        rec.on_message(&e);
        e.tags = ack;
        rec.on_message(&e);
        rec.on_drop(0, 2, 0, DropReason::Loss, retx);
        rec.on_transport(&TransportSummary {
            sim_rounds: 4,
            frames_sent: 3,
            retransmissions: 2,
            acks_sent: 1,
            truncated_sends: 0,
            gave_up: 0,
        });
        rec.on_run_end(&RunStats::default());
        let row = &rec.stream()[0];
        assert_eq!(row.retransmits, 2); // one delivered + one dropped
        assert_eq!(row.acks, 1);
        assert_eq!(rec.transports().len(), 1);
        assert_eq!(&*rec.transports()[0].0, "rel");
        assert_eq!(rec.transports()[0].1.retransmissions, 2);
        let mut out = Vec::new();
        rec.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"retransmits\":2"));
        assert!(text.contains("\"transport\":\"rel\""));
        assert!(text.contains("\"frames_sent\":3"));
    }

    #[test]
    fn recorder_books_scheduler_telemetry_outside_equality() {
        let mut rec = MetricsRecorder::new();
        rec.on_run_start(&info("s"));
        rec.on_round_start(1, 0, 4);
        rec.on_sched(1, 3, 1);
        rec.on_run_end(&RunStats::default());
        let row = &rec.stream()[1];
        assert_eq!((row.chunks, row.steals), (3, 1));
        let mut other = row.clone();
        other.chunks = 0;
        other.steals = 0;
        assert_eq!(*row, other, "scheduler telemetry stays out of equality");
        assert!(row.to_json().contains("\"chunks\":3"));
        assert!(row.to_json().contains("\"steals\":1"));
    }

    #[test]
    fn recorder_buffers_topology_events_into_next_row() {
        use crate::config::{EdgeEvent, TopologyEvent};
        let mut rec = MetricsRecorder::new();
        rec.on_run_start(&info("churn"));
        rec.on_round_start(1, 0, 4);
        // The choke point fires on_topology for round 2 before
        // on_round_start(2): the events must land in row 2, not row 1.
        let remove = TopologyEvent::Edge(EdgeEvent::Remove { u: 0, v: 1 });
        let insert = TopologyEvent::Edge(EdgeEvent::Insert { u: 0, v: 2 });
        rec.on_topology(2, &remove);
        rec.on_topology(2, &insert);
        rec.on_round_start(2, 0, 4);
        // Churn-inserted edges index past the run-start 2m sizing; the
        // recorder must grow its counters instead of panicking.
        rec.on_message(&ev(2, 0, 2, 6, 7, None));
        rec.on_run_end(&RunStats::default());
        let stream = rec.stream();
        assert_eq!(stream[1].topo_events, 0);
        assert_eq!(stream[2].topo_events, 2);
        assert_eq!(stream[2].messages, 1);
        assert!(stream[2].to_json().contains("\"topo_events\":2"));
        let mut other = stream[2].clone();
        other.topo_events = 0;
        assert_ne!(stream[2], other, "topo_events participates in equality");
    }

    #[test]
    fn recorder_take_run_stream_returns_only_current_run() {
        let mut rec = MetricsRecorder::new();
        rec.on_run_start(&info("a"));
        rec.on_message(&ev(0, 0, 1, 0, 3, None));
        rec.on_run_end(&RunStats::default());
        assert_eq!(rec.take_run_stream().unwrap().len(), 1);
        rec.on_run_start(&info("b"));
        rec.on_round_start(1, 0, 4);
        rec.on_run_end(&RunStats::default());
        let second = rec.take_run_stream().unwrap();
        assert_eq!(second.len(), 2);
        assert!(second.iter().all(|r| &*r.phase == "b"));
        assert_eq!(rec.stream().len(), 3);
    }

    #[test]
    fn round_metrics_json_is_well_formed() {
        let mut rec = MetricsRecorder::new();
        rec.on_run_start(&info("j"));
        rec.on_message(&ev(0, 0, 1, 0, 3, None));
        rec.on_run_end(&RunStats::default());
        let mut out = Vec::new();
        rec.write_jsonl(&mut out).unwrap();
        let line = String::from_utf8(out).unwrap();
        assert!(line.contains("\"phase\":\"j\""));
        assert!(line.contains("\"messages\":1"));
        assert!(line.ends_with("}\n"));
    }

    #[test]
    fn congestion_probe_flags_overload() {
        let mut probe = EdgeCongestionProbe::new(1);
        probe.on_run_start(&info(""));
        probe.on_round_start(1, 0, 4);
        probe.on_message(&ev(1, 0, 1, 0, 3, None));
        assert!(probe.is_clean());
        probe.on_message(&ev(1, 0, 1, 0, 3, None));
        assert!(!probe.is_clean());
        assert_eq!(probe.max_load(), 2);
        assert_eq!(
            probe.violations(),
            &[CongestionViolation {
                round: 1,
                from: 0,
                to: 1,
                load: 2
            }]
        );
        // A new round resets the counts.
        probe.on_round_start(2, 0, 4);
        probe.on_message(&ev(2, 0, 1, 0, 3, None));
        assert_eq!(probe.violations().len(), 1);
    }

    #[test]
    fn congestion_probe_phase_filter() {
        let mut probe = EdgeCongestionProbe::new(0).for_phase("watched");
        probe.on_run_start(&info("other"));
        probe.on_round_start(1, 0, 4);
        probe.on_message(&ev(1, 0, 1, 0, 3, None));
        assert!(probe.is_clean());
        probe.on_run_start(&info("watched"));
        probe.on_round_start(1, 0, 4);
        probe.on_message(&ev(1, 0, 1, 0, 3, None));
        assert!(!probe.is_clean());
    }

    #[test]
    fn wave_probe_tracks_first_arrivals_and_collisions() {
        let mut probe = WaveArrivalProbe::new();
        probe.on_run_start(&info(""));
        probe.on_round_start(1, 0, 4);
        probe.on_message(&ev(1, 0, 1, 0, 3, Some(7)));
        probe.on_message(&ev(1, 0, 1, 0, 3, Some(7))); // repeat: not a new arrival
        probe.on_message(&ev(1, 2, 1, 4, 1, Some(9))); // second stream, same node+round
        probe.on_message(&ev(1, 0, 2, 1, 4, None)); // untagged: invisible
        assert_eq!(probe.first_arrivals().len(), 2);
        assert_eq!(probe.node_collisions(), vec![(1, 1, 7, 9)]);
        // Stream 7 reached node 1 at round 1; with dist 1 the delay is 0.
        let delay = probe
            .max_delay(|s, v| (s == 7 && v == 1).then_some(1))
            .unwrap();
        assert_eq!(delay, 0);
    }

    #[test]
    fn fan_out_forwards_to_all() {
        let rec = SharedObserver::new(MetricsRecorder::new());
        let probe = SharedObserver::new(EdgeCongestionProbe::new(1));
        let mut fan = FanOut::new(vec![rec.observer(), probe.observer()]);
        fan.on_run_start(&info(""));
        fan.on_round_start(1, 0, 4);
        fan.on_message(&ev(1, 0, 1, 0, 3, None));
        fan.on_run_end(&RunStats::default());
        assert!(fan.take_run_stream().is_some(), "recorder is first");
        rec.with(|r| assert_eq!(r.stream().len(), 2));
        probe.with(|p| assert_eq!(p.max_load(), 1));
    }

    #[test]
    fn phase_profiler_accumulates_per_run() {
        let mut prof = PhaseProfiler::new();
        for phase in ["a", "b"] {
            prof.on_run_start(&info(phase));
            prof.on_message(&ev(0, 0, 1, 0, 3, None));
            prof.on_drop(0, 2, 0, DropReason::ReceiverCrashed, TraceTags::default());
            prof.on_crash(1, 3);
            prof.on_round_end(
                1,
                &RoundTiming {
                    deliver: Duration::from_nanos(10),
                    step: Duration::from_nanos(20),
                    commit: Duration::from_nanos(70),
                },
            );
            prof.on_run_end(&RunStats::default());
        }
        assert_eq!(prof.profiles().len(), 2);
        assert_eq!(prof.profiles()[0].phase, "a");
        assert_eq!(prof.profiles()[0].messages, 1);
        let total = prof.total();
        assert_eq!(total.rounds, 2);
        assert_eq!(total.dropped, 2);
        assert_eq!(total.crashed, 2);
        assert_eq!(total.phase, "a+b");
        assert!((total.commit_share() - 0.7).abs() < 1e-9);
    }
}

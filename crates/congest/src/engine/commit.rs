//! The commit phase: message validation, accounting, and the staged-queue
//! merge that keeps the pool executor bit-for-bit identical to serial.
//!
//! Every message, on every executor, passes through exactly one call to
//! [`validate`] (port range → duplicate-send → bandwidth → fault decision,
//! in that order) and exactly one accounting step on the engine thread
//! ([`Core::account_deliver`] / [`Core::account_drop`]). The serial
//! executor fuses the two in [`Core::commit_outbox`]; the pool executor
//! splits them — workers validate into per-chunk [`StagedShard`] queues
//! during the step phase, and [`Core::merge_shard`] replays each queue on
//! the engine thread in schedule order. Because a chunk holds a
//! consecutive slice of the sorted schedule and chunks are merged by
//! their position in it — regardless of which worker stepped them, or
//! stole them — the replay visits outboxes in plain node-id order:
//! stats, trace events, observer callbacks, and delivery order are
//! byte-identical to the serial engine's.

use std::sync::MutexGuard;

use crate::config::{DropReason, FaultPlan};
use crate::error::SimError;
use crate::message::{Message, TraceTags};
use crate::node::{NodeId, Port};
use crate::obs::{MessageEvent, Observer};
use crate::topology::Topology;
use crate::trace::Event;

use super::Core;

/// An observer lock held for the duration of one commit (or start) phase;
/// `None` when the run is unobserved. Callers clone the
/// [`ObserverHandle`](crate::ObserverHandle) out of the config and lock it
/// once per phase, not once per message.
pub(crate) type ObsGuard<'g> = Option<MutexGuard<'g, dyn Observer + 'static>>;

/// Duplicate-send detection scratch: `stamps[p] == stamp` iff port `p` was
/// already used by the outbox currently being validated. Replaces a
/// per-commit `vec![false; degree]` with a single epoch bump.
///
/// Each executor thread owns its own `DupScratch` (the serial executor has
/// one; every pool worker has one), so concurrent shards can never alias
/// each other's stamps — the regression the shared `used_stamp` vector of
/// the pre-pipeline engine would have hit.
pub(crate) struct DupScratch {
    stamps: Vec<u64>,
    stamp: u64,
}

impl DupScratch {
    /// Scratch for outboxes of up to `max_degree` ports.
    pub(crate) fn new(max_degree: usize) -> Self {
        DupScratch {
            stamps: vec![0; max_degree],
            stamp: 0,
        }
    }

    /// Opens a new outbox: `mark` now detects duplicates within this
    /// outbox only.
    fn begin_outbox(&mut self) {
        self.stamp += 1;
    }

    /// Marks `port` used by the current outbox; `false` if it already was.
    fn mark(&mut self, port: Port) -> bool {
        // Churn-inserted ports can exceed the run-start max degree the
        // scratch was sized for; grow on demand (zero = never stamped).
        if port as usize >= self.stamps.len() {
            self.stamps.resize(port as usize + 1, 0);
        }
        let slot = &mut self.stamps[port as usize];
        if *slot == self.stamp {
            false
        } else {
            *slot = self.stamp;
            true
        }
    }
}

/// The per-message size discipline both executors enforce: the hard
/// transport bandwidth, plus the debug-build `B = O(log n)` budget
/// ([`Config::message_budget`](crate::Config::message_budget)). Copied out
/// of the config once per run so workers don't borrow it.
#[derive(Clone, Copy)]
pub(crate) struct Limits {
    pub(crate) bandwidth_bits: u32,
    // Only consulted by the debug-assertion budget check below.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub(crate) message_budget: Option<u32>,
}

impl Limits {
    pub(crate) fn of(config: &crate::config::Config) -> Self {
        Limits {
            bandwidth_bits: config.bandwidth_bits,
            message_budget: config.message_budget,
        }
    }
}

/// The fate of one validated outbox item.
enum Verdict {
    /// Accepted: deliver to `to` on its port `to_port` next round.
    Deliver {
        to: NodeId,
        to_port: Port,
        bits: u32,
    },
    /// Discarded by the fault plan (accounted as a drop).
    Dropped(DropReason),
}

/// Validates one `(port, msg)` outbox item of node `v`. The check order —
/// port range, duplicate send, bandwidth, fault decision — is part of the
/// engine's observable behavior (it decides *which* error a doubly-faulty
/// send reports), so both the serial commit and the worker-side staging
/// call exactly this function.
///
/// The fault plan is consulted last, in a fixed order of its own: loss
/// rules first (the message is lost in transit), then the receiver's crash
/// schedule at the delivery round `send_round + 1` (the message arrives at
/// a dead node and is discarded). Because the plan is a pure function of
/// static data, this decision is identical on every executor.
#[inline]
#[allow(clippy::too_many_arguments)] // one validation check, described flat
fn validate<M: Message>(
    topology: &Topology,
    limits: Limits,
    faults: &Option<FaultPlan>,
    scratch: &mut DupScratch,
    v: NodeId,
    port: Port,
    msg: &M,
    send_round: u64,
) -> Result<Verdict, SimError> {
    let degree = topology.degree(v);
    if port as usize >= degree {
        return Err(SimError::InvalidPort {
            node: v,
            port,
            degree,
        });
    }
    if !scratch.mark(port) {
        return Err(SimError::DuplicateSend {
            node: v,
            port,
            round: send_round,
        });
    }
    let bits = msg.bit_size();
    if bits > limits.bandwidth_bits {
        return Err(SimError::BandwidthExceeded {
            node: v,
            port,
            round: send_round,
            message_bits: bits,
            bandwidth_bits: limits.bandwidth_bits,
        });
    }
    // The CONGEST `B = O(log n)` contract as a debug-build assertion. It
    // sits *after* the bandwidth check on purpose: a message too large for
    // the transport still reports the typed error, while one that fits the
    // transport but overruns the declared budget is a protocol bug and
    // fails the test run loudly.
    #[cfg(debug_assertions)]
    if let Some(budget) = limits.message_budget {
        assert!(
            bits <= budget,
            "message budget exceeded: node {v} sent {bits} bits on port {port} in round \
             {send_round}, over the B = O(log n) budget of {budget} bits ({msg:?})"
        );
    }
    let to = topology.neighbor_at(v, port);
    // A send on a port the round's churn batch tombstoned (or whose
    // endpoint was removed) is discarded before the fault plan is even
    // consulted — removal wins over crash windows, as documented on
    // [`CrashWindow`](crate::CrashWindow).
    if !topology.port_live(v, port) {
        return Ok(Verdict::Dropped(DropReason::TopologyChange));
    }
    if let Some(plan) = faults {
        if plan.drops(send_round, v, port) {
            return Ok(Verdict::Dropped(DropReason::Loss));
        }
        // Delivery happens at send_round + 1; a receiver down then never
        // sees the message (its inbox therefore stays empty while crashed).
        if plan.crashed(send_round + 1, to) {
            return Ok(Verdict::Dropped(DropReason::ReceiverCrashed));
        }
    }
    Ok(Verdict::Deliver {
        to,
        to_port: topology.reverse_port(v, port),
        bits,
    })
}

/// One entry of a per-worker commit queue: a validated send with its
/// routing pre-computed, or a loss-plan drop. Stored in node-id order
/// within the shard.
pub(crate) enum Staged<M> {
    /// `from` sends `msg` (of `bits` bits) on its `port`; it arrives at
    /// `to` on `to_port`.
    Deliver {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Sender-side port (for the observer's edge index).
        port: Port,
        /// Receiver-side port.
        to_port: Port,
        /// Message size in bits.
        bits: u32,
        /// The message itself.
        msg: M,
    },
    /// The fault plan dropped `from`'s send on `port`.
    Dropped {
        /// Sending node.
        from: NodeId,
        /// Sender-side port.
        port: Port,
        /// Why the message was discarded.
        reason: DropReason,
        /// The dropped message's attribution tags (captured before the
        /// message itself is discarded, so observers can attribute the
        /// loss to a kernel).
        tags: TraceTags,
    },
}

/// One worker's staged commit queue for one round. The `entries` end at
/// the shard's first validation error, mirroring where the serial commit
/// would have stopped.
pub(crate) struct StagedShard<M> {
    pub(crate) entries: Vec<Staged<M>>,
    pub(crate) error: Option<SimError>,
}

impl<M> Default for StagedShard<M> {
    fn default() -> Self {
        StagedShard {
            entries: Vec::new(),
            error: None,
        }
    }
}

/// Worker-side half of the pool commit: validates node `v`'s outbox into
/// the shard's queue. On the first invalid item the error is recorded on
/// the shard and staging stops — exactly the point the serial commit would
/// have aborted — and the caller must not stage further outboxes (returns
/// `false`). The outbox is left drained either way so its allocation is
/// recycled.
#[allow(clippy::too_many_arguments)] // one outbox staging pass, described flat
pub(crate) fn stage_outbox<M: Message>(
    topology: &Topology,
    limits: Limits,
    faults: &Option<FaultPlan>,
    scratch: &mut DupScratch,
    v: NodeId,
    items: &mut Vec<(Port, M)>,
    send_round: u64,
    shard: &mut StagedShard<M>,
) -> bool {
    scratch.begin_outbox();
    for (port, msg) in items.drain(..) {
        match validate(topology, limits, faults, scratch, v, port, &msg, send_round) {
            Ok(Verdict::Deliver { to, to_port, bits }) => shard.entries.push(Staged::Deliver {
                from: v,
                to,
                port,
                to_port,
                bits,
                msg,
            }),
            Ok(Verdict::Dropped(reason)) => shard.entries.push(Staged::Dropped {
                from: v,
                port,
                reason,
                tags: msg.trace_tags(),
            }),
            Err(err) => {
                // Dropping the `drain` clears the rest of the outbox.
                shard.error = Some(err);
                return false;
            }
        }
    }
    true
}

impl<M: Message> Core<'_, M> {
    /// Books one accepted message: trace, observer callback, statistics,
    /// and the receiver's pending inbox — the engine-thread half of every
    /// commit, shared verbatim by both executors.
    #[inline]
    #[allow(clippy::too_many_arguments)] // one flat, pre-routed send
    fn account_deliver(
        &mut self,
        observer: &mut ObsGuard<'_>,
        send_round: u64,
        from: NodeId,
        port: Port,
        to: NodeId,
        to_port: Port,
        bits: u32,
        msg: M,
    ) {
        if let Some(trace) = &mut self.trace {
            if trace.will_store() {
                trace.record(Event {
                    round: send_round + 1,
                    from,
                    to,
                    port: to_port,
                    bits,
                    payload: format!("{msg:?}"),
                });
            } else {
                // Past capacity the payload is never rendered: a truncated
                // trace costs one counter bump per message, not a `format!`.
                trace.count_overflow();
            }
        }
        if let Some(obs) = observer.as_deref_mut() {
            // Resolve edge indices through the churned view: inserted
            // edges only exist in the overlay.
            let topo = self.live_topology();
            obs.on_message(&MessageEvent {
                send_round,
                from,
                to,
                to_port,
                edge: topo.directed_edge_index(from, port),
                reverse_edge: topo.directed_edge_index(to, to_port),
                bits,
                stream: msg.stream_id(),
                tags: msg.trace_tags(),
            });
        }
        self.stats.messages += 1;
        self.stats.bits += u64::from(bits);
        self.stats.max_message_bits = self.stats.max_message_bits.max(bits);
        self.arrivals.push(to, to_port, msg);
        self.in_flight += 1;
        // Wake the receiver: an arrival forces `to` onto next round's
        // schedule. The `woken` mark makes the list duplicate-free without
        // a scan; `sorted_wake` clears the marks when it hands the list out.
        if !self.woken.get(to as usize) {
            self.woken.set(to as usize);
            self.wake.push(to);
        }
    }

    /// Books one fault-plan drop.
    #[inline]
    fn account_drop(
        &mut self,
        observer: &mut ObsGuard<'_>,
        send_round: u64,
        from: NodeId,
        port: Port,
        reason: DropReason,
        tags: TraceTags,
    ) {
        self.stats.dropped += 1;
        if let Some(obs) = observer.as_deref_mut() {
            obs.on_drop(send_round, from, port, reason, tags);
        }
    }

    /// The fused (serial) commit path: validates and books node `v`'s
    /// outbox in item order, draining it so the allocation is recycled.
    /// Used by the serial executor every round and by the pool executor
    /// for the `on_start` round (which runs on the engine thread).
    ///
    /// The send round is `self.round`: the pipeline advances it before any
    /// phase runs, and `on_start` commits happen at round 0.
    pub(crate) fn commit_outbox(
        &mut self,
        observer: &mut ObsGuard<'_>,
        scratch: &mut DupScratch,
        v: NodeId,
        items: &mut Vec<(Port, M)>,
    ) -> Result<(), SimError> {
        let send_round = self.round;
        scratch.begin_outbox();
        let limits = Limits::of(&self.config);
        for (port, msg) in items.drain(..) {
            match validate(
                self.live_topology(),
                limits,
                &self.config.faults,
                scratch,
                v,
                port,
                &msg,
                send_round,
            )? {
                Verdict::Deliver { to, to_port, bits } => {
                    self.account_deliver(observer, send_round, v, port, to, to_port, bits, msg);
                }
                Verdict::Dropped(reason) => {
                    self.account_drop(observer, send_round, v, port, reason, msg.trace_tags());
                }
            }
        }
        Ok(())
    }

    /// The engine-thread half of the pool commit: replays one worker's
    /// staged queue in order (shards arrive in worker order and hold
    /// consecutive node ids, so the overall replay is node-id order), then
    /// surfaces the shard's validation error, if any, exactly where the
    /// serial commit would have aborted — after the partial accounting
    /// that precedes the faulty item.
    pub(crate) fn merge_shard(
        &mut self,
        observer: &mut ObsGuard<'_>,
        shard: &mut StagedShard<M>,
    ) -> Result<(), SimError> {
        let send_round = self.round;
        for entry in shard.entries.drain(..) {
            match entry {
                Staged::Deliver {
                    from,
                    to,
                    port,
                    to_port,
                    bits,
                    msg,
                } => self.account_deliver(observer, send_round, from, port, to, to_port, bits, msg),
                Staged::Dropped {
                    from,
                    port,
                    reason,
                    tags,
                } => {
                    self.account_drop(observer, send_round, from, port, reason, tags);
                }
            }
        }
        if let Some(err) = shard.error.take() {
            return Err(err);
        }
        Ok(())
    }
}

//! The synchronous round engine: an event-driven (active-set) three-phase
//! pipeline over pluggable executors.
//!
//! Every round first builds a **schedule** — the sorted set of nodes that
//! either have messages arriving this round (the engine's *wake list*,
//! populated at the previous commit) or declared themselves
//! [`awake`](NodeAlgorithm::is_active) after their last step — and then
//! runs `deliver → step → commit` over *only those nodes*:
//!
//! 1. **deliver** — the inboxes accumulated last round become this
//!    round's inputs (read in place by the serial executor; a frontier
//!    dispatch for the pool);
//! 2. **step** — [`NodeAlgorithm::on_round`] runs on every scheduled
//!    node, filling outboxes (node-local work, the only phase that
//!    parallelizes). Skipped nodes are inactive with empty inboxes, so
//!    skipping them is unobservable;
//! 3. **commit** — every scheduled node's outbox is validated and booked
//!    **in node-id order**: bandwidth/duplicate/port checks, fault
//!    decisions, trace events, observer callbacks, statistics, and
//!    next-round inboxes (which populate the next wake list).
//!
//! Per-round cost therefore tracks the frontier, not `n`: a BFS wave on a
//! 10⁶-node graph touches only the wavefront each round. Termination is
//! governed by the per-node [`Quiescence`] votes (see that type).
//!
//! The pipeline itself lives in [`Simulator::run`]; *how* each phase
//! executes is delegated to an [`Executor`]. Two implementations exist:
//! [`serial::SerialExecutor`] (everything in place on the calling thread;
//! the default) and [`pool::PoolExecutor`] (a persistent worker pool
//! created once per run — see that module for the protocol). Because
//! commit is always replayed in node-id order on the engine thread, every
//! executor yields bit-for-bit identical [`Report`]s, traces, and
//! observer streams; the equivalence proptests in
//! `tests/engine_equivalence.rs` pin this against the seed-verbatim
//! [`ReferenceSimulator`](crate::ReferenceSimulator).
//!
//! Phase wall-clock timing ([`RoundTiming`]) is measured here, around the
//! executor calls, and emitted through
//! [`Observer::on_round_end`](crate::Observer::on_round_end) — executors
//! never touch the clock.

use std::sync::Arc;

use crate::algorithm::{NodeAlgorithm, Quiescence};
use crate::churn::{self, RoundChanges};
use crate::config::{Config, DropReason, ExecutorKind, TopologyEvent};
use crate::error::SimError;
use crate::message::Message;
use crate::node::{Inbox, NodeContext, NodeId, Outbox, Port};
use crate::obs::{RoundMetrics, RoundTiming, RunInfo};
use crate::stats::RunStats;
use crate::topology::Topology;
use crate::trace::Trace;

mod commit;
mod pool;
mod serial;
pub(crate) mod store;

use pool::PoolExecutor;
use serial::SerialExecutor;
use store::{BitSet, InboxArena, NodeStore};

/// Process-wide count of pool worker threads spawned so far. The delta
/// across a run equals the clamped worker count minus one (the engine
/// thread carries shard 0 itself) — threads are spawned once per run,
/// never per round — which benches and tests assert to keep the
/// per-round-spawn regression of the pre-pipeline engine from coming back.
#[doc(hidden)]
pub fn pool_workers_spawned() -> u64 {
    pool::workers_spawned()
}

/// The result of a completed simulation.
#[derive(Debug)]
pub struct Report<O> {
    /// Per-node outputs, indexed by node id.
    pub outputs: Vec<O>,
    /// Aggregate round/message/bit statistics.
    pub stats: RunStats,
    /// The event trace, if [`Config::trace`] was enabled.
    pub trace: Option<Trace>,
    /// Messages delivered in each round (`round_profile[t]` = deliveries in
    /// round `t+1`), if [`Config::round_profile`] was enabled; else empty.
    pub round_profile: Vec<u64>,
    /// This run's per-round metric stream, if the configured observer
    /// records one (see
    /// [`MetricsRecorder`](crate::obs::MetricsRecorder)); `None` otherwise.
    pub metrics: Option<Vec<RoundMetrics>>,
    /// Why the run was allowed to stop: the final quiescence vote of every
    /// node, polled once at the moment the termination condition became
    /// terminal. Present on every successful run (the only terminating
    /// path); a run aborted by the round horizon returns an error and
    /// carries no report at all.
    pub certificate: Option<TerminationCertificate>,
    /// Work-stealing scheduler telemetry — present only when the run used
    /// the pool executor. Timing-dependent (which worker steps which chunk
    /// varies run to run), so it is *not* part of the determinism contract;
    /// the per-worker counts still sum exactly to the run's
    /// [`RunStats::chunks_stepped`] and scheduled-node totals.
    pub sched: Option<PoolSched>,
}

/// How the pool executor's work-stealing scheduler balanced one run: the
/// chunking policy plus per-worker execution counts (index 0 is the engine
/// thread). The *partition* of work across workers is timing-dependent,
/// but the totals are exact: `chunks_per_worker` sums to
/// [`RunStats::chunks_stepped`], `nodes_per_worker` plus the started-node
/// count sums to [`RunStats::scheduled_node_rounds`], and `steals` equals
/// [`RunStats::steals`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolSched {
    /// Worker count after clamping to the node count (including the
    /// engine thread).
    pub workers: usize,
    /// The configured fixed chunk size ([`Config::pool_chunk`] or the
    /// `DAPSP_POOL_CHUNK` environment variable), or `None` when the
    /// per-round adaptive size was used.
    pub chunk_size: Option<usize>,
    /// Frontier chunks stepped by each worker (engine thread first).
    pub chunks_per_worker: Vec<u64>,
    /// Scheduled nodes stepped by each worker (engine thread first);
    /// excludes the round-0 `on_start` sweep, which runs on the engine
    /// thread outside the chunk scheduler.
    pub nodes_per_worker: Vec<u64>,
    /// Chunks executed by a worker other than the one they were initially
    /// queued on.
    pub steals: u64,
}

/// The termination condition a run's final votes satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TerminationReason {
    /// Every node voted [`Quiescence::Shutdown`] — the run stops even
    /// with messages still in flight.
    ShutdownUnanimous,
    /// No node voted [`Quiescence::Active`] and the network was silent
    /// (zero messages in flight).
    PassiveDrained,
}

/// An auditable record of *why* a run terminated: the round it stopped
/// after, the in-flight message count at that instant, and every node's
/// final [`Quiescence`] vote (polled once, deterministically, when the
/// engine's termination check succeeded).
///
/// The per-node votes are re-polled over **all** nodes — including nodes
/// that were off the final round's schedule (whose vote the engine
/// inferred as `Passive` by contract) — so the certificate stands on its
/// own: `votes_active`/`votes_passive`/`votes_shutdown` sum to `n` and
/// are consistent with `reason`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TerminationCertificate {
    /// The last round executed before the run stopped.
    pub round: u64,
    /// Messages still in flight when the run stopped (nonzero only under
    /// [`TerminationReason::ShutdownUnanimous`]).
    pub in_flight: u64,
    /// Which termination condition fired.
    pub reason: TerminationReason,
    /// Nodes whose final vote was [`Quiescence::Active`].
    pub votes_active: u64,
    /// Nodes whose final vote was [`Quiescence::Passive`].
    pub votes_passive: u64,
    /// Nodes whose final vote was [`Quiescence::Shutdown`].
    pub votes_shutdown: u64,
    /// Every node's final vote, in node-id order.
    pub node_votes: Vec<(NodeId, Quiescence)>,
}

impl TerminationCertificate {
    /// Builds a certificate from the triggering aggregate state and the
    /// full final vote poll, tallying the per-kind counts.
    pub(crate) fn from_votes(
        round: u64,
        in_flight: u64,
        state: QuiescenceState,
        node_votes: Vec<(NodeId, Quiescence)>,
    ) -> Self {
        let mut votes_active = 0u64;
        let mut votes_passive = 0u64;
        let mut votes_shutdown = 0u64;
        for &(_, q) in &node_votes {
            match q {
                Quiescence::Active => votes_active += 1,
                Quiescence::Passive => votes_passive += 1,
                Quiescence::Shutdown => votes_shutdown += 1,
            }
        }
        TerminationCertificate {
            round,
            in_flight,
            reason: if state.shutdown {
                TerminationReason::ShutdownUnanimous
            } else {
                TerminationReason::PassiveDrained
            },
            votes_active,
            votes_passive,
            votes_shutdown,
            node_votes,
        }
    }
}

/// Live-topology state of a churned run: the working copy every engine
/// mutates at the choke point, plus the cursor into the plan's sorted
/// event list. Present iff the config carries a non-empty
/// [`TopologyPlan`](crate::TopologyPlan); static runs never clone the
/// topology.
pub(crate) struct ChurnState {
    /// The working copy (base CSR + overlay) reflecting every applied
    /// event, behind an `Arc` so pool chunks can hold a cheap per-round
    /// snapshot while the engine thread keeps the authoritative handle
    /// (`Arc::make_mut` copies-on-write only if a chunk still holds one).
    pub(crate) topo: Arc<Topology>,
    /// Events before this index are applied.
    pub(crate) next_event: usize,
}

/// Engine state shared by every executor: the network, the run's
/// bookkeeping, and the accounting sinks (stats, trace, profile). The
/// executor owns everything node-local (states, inboxes-in-flight,
/// outboxes); the `Core` owns everything observable.
pub(crate) struct Core<'t, M> {
    pub(crate) topology: &'t Topology,
    /// The churned working topology, when the run has a topology plan.
    pub(crate) churn: Option<ChurnState>,
    pub(crate) config: Config,
    /// Messages to be delivered next round, staged flat in commit order;
    /// the deliver phase carves them into per-node slices (see
    /// [`InboxArena`]).
    pub(crate) arrivals: InboxArena<M>,
    /// Node ids with at least one staged arrival — the arrival component
    /// of next round's schedule. Deduplicated via `woken` marks; unsorted
    /// until [`Core::sorted_wake`] drains it.
    pub(crate) wake: Vec<NodeId>,
    /// Bit `v` marks that `v` is already on the wake list.
    pub(crate) woken: BitSet,
    pub(crate) in_flight: u64,
    pub(crate) round: u64,
    pub(crate) stats: RunStats,
    pub(crate) trace: Option<Trace>,
    pub(crate) round_profile: Vec<u64>,
}

impl<M> Core<'_, M> {
    /// Sorts the wake list in place, clears the dedup marks, and hands the
    /// caller the sorted ids; the caller merges them with its awake list
    /// and must clear the list afterwards (see [`Core::clear_wake`]).
    pub(crate) fn sorted_wake(&mut self) -> &[NodeId] {
        self.wake.sort_unstable();
        for &v in &self.wake {
            self.woken.clear(v as usize);
        }
        &self.wake
    }

    /// Empties the wake list (capacity kept) once a schedule absorbed it.
    pub(crate) fn clear_wake(&mut self) {
        self.wake.clear();
    }

    /// The topology every phase must consult: the churned working copy
    /// when a topology plan is active, the static borrow otherwise.
    pub(crate) fn live_topology(&self) -> &Topology {
        match &self.churn {
            Some(c) => &c.topo,
            None => self.topology,
        }
    }

    /// True while the run's topology plan still has unapplied events — the
    /// engine keeps ticking rounds through quiescent stretches so a later
    /// event can still fire.
    pub(crate) fn churn_pending(&self) -> bool {
        matches!(
            (&self.churn, &self.config.topology),
            (Some(c), Some(p)) if c.next_event < p.events().len()
        )
    }

    /// Rebuilds the wake list (and its dedup marks) from the staged
    /// arrivals — used after a churn purge removed messages whose
    /// receivers may no longer have any arrival.
    pub(crate) fn rebuild_wake(&mut self) {
        for &v in &self.wake {
            self.woken.clear(v as usize);
        }
        self.wake.clear();
        let Core {
            arrivals,
            wake,
            woken,
            ..
        } = self;
        for to in arrivals.staged_receivers() {
            if !woken.get(to as usize) {
                woken.set(to as usize);
                wake.push(to);
            }
        }
    }

    /// How many nodes run `on_start` in round 0 — everyone not inside a
    /// crash window at round 0.
    pub(crate) fn started_nodes(&self) -> u64 {
        let n = self.topology.num_nodes();
        match &self.config.faults {
            Some(f) if f.has_crashes() => {
                (0..n).filter(|&v| !f.crashed(0, v as NodeId)).count() as u64
            }
            _ => n as u64,
        }
    }
}

/// The executor's aggregated termination signal after `start` or the most
/// recent `step`, combining every node's [`Quiescence`] vote. Alongside
/// the two decision bits it tallies how many *polled* nodes cast each
/// vote kind — the decomposition the observers'
/// [`on_quiescence`](crate::Observer::on_quiescence) hook reports (counts
/// sum to `n` after `start` and to the scheduled count after each round).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct QuiescenceState {
    /// No node votes [`Quiescence::Active`]. (Nodes off the awake list
    /// are inactive and thus vote `Passive` by contract.)
    pub(crate) passive: bool,
    /// Every node votes [`Quiescence::Shutdown`].
    pub(crate) shutdown: bool,
    /// Polled nodes voting [`Quiescence::Active`].
    pub(crate) votes_active: u64,
    /// Polled nodes voting [`Quiescence::Passive`].
    pub(crate) votes_passive: u64,
    /// Polled nodes voting [`Quiescence::Shutdown`].
    pub(crate) votes_shutdown: u64,
}

impl QuiescenceState {
    /// Whether the run may end now given the in-flight message count.
    pub(crate) fn terminal(self, in_flight: u64) -> bool {
        self.shutdown || (self.passive && in_flight == 0)
    }

    /// Folds one node's vote into the aggregate.
    pub(crate) fn vote(&mut self, q: Quiescence) {
        self.passive &= q != Quiescence::Active;
        self.shutdown &= q == Quiescence::Shutdown;
        match q {
            Quiescence::Active => self.votes_active += 1,
            Quiescence::Passive => self.votes_passive += 1,
            Quiescence::Shutdown => self.votes_shutdown += 1,
        }
    }

    /// Folds another partial aggregate (one pool shard's) into this one:
    /// decision bits AND together, counts add.
    pub(crate) fn absorb(&mut self, other: QuiescenceState) {
        self.passive &= other.passive;
        self.shutdown &= other.shutdown;
        self.votes_active += other.votes_active;
        self.votes_passive += other.votes_passive;
        self.votes_shutdown += other.votes_shutdown;
    }

    /// The identity for [`QuiescenceState::vote`] folds over `total`
    /// nodes, of which `voting` will actually be polled: if some nodes are
    /// off the awake list they are inactive (`Passive`), which keeps
    /// `passive` but vetoes `shutdown`. Counts start at zero — they tally
    /// polled nodes only.
    pub(crate) fn fold_start(voting: usize, total: usize) -> Self {
        QuiescenceState {
            passive: true,
            shutdown: voting == total,
            votes_active: 0,
            votes_passive: 0,
            votes_shutdown: 0,
        }
    }
}

/// One phase-pipeline backend. The pipeline calls `start` once, then per
/// round `schedule` followed by `deliver`/`step`/`commit` in that order,
/// then `into_outputs` once; `quiescence` is polled between rounds for
/// the termination check.
pub(crate) trait Executor<A: NodeAlgorithm> {
    /// Round 0: run every node's [`NodeAlgorithm::on_start`] and commit
    /// the queued sends in node-id order, then seed the awake list with
    /// every node reporting [`NodeAlgorithm::is_active`].
    fn start(&mut self, core: &mut Core<'_, A::Message>) -> Result<(), SimError>;
    /// Builds the round's schedule — the sorted union of the core's wake
    /// list (nodes with pending arrivals) and the executor's awake list —
    /// and returns its size. Called once per round, after `core.round`
    /// advances and before any phase runs.
    fn schedule(&mut self, core: &mut Core<'_, A::Message>) -> u64;
    /// Phase 1 — carve the arrivals staged in `core.arrivals` into
    /// per-node inbox slices for the round `core.round` (and, for the
    /// pool, enqueue the round's frontier chunks).
    fn deliver(&mut self, core: &mut Core<'_, A::Message>);
    /// Phase 2 — run [`NodeAlgorithm::on_round`] on every scheduled node
    /// and rebuild the awake list from their post-step
    /// [`is_active`](NodeAlgorithm::is_active) answers.
    fn step(&mut self, core: &mut Core<'_, A::Message>);
    /// Phase 3 — validate and book every scheduled node's outbox in
    /// node-id order.
    fn commit(&mut self, core: &mut Core<'_, A::Message>) -> Result<(), SimError>;
    /// Churn choke point (runs on the engine thread, after the round's
    /// batch mutated `topo` and in-flight purges were booked): forward the
    /// per-node [`TopologyDelta`](crate::TopologyDelta)s to the algorithm
    /// layer in node-id order and rebuild the awake set against the new
    /// topology. Returns the `(repaired, recompute)` tallies for
    /// [`RunStats`].
    fn notify_topology(
        &mut self,
        core: &mut Core<'_, A::Message>,
        topo: &Topology,
        changes: &RoundChanges,
    ) -> (u64, u64);
    /// The aggregated termination votes after the most recent
    /// `start`/`step`.
    fn quiescence(&self) -> QuiescenceState;
    /// Polls every node's current [`Quiescence`] vote, in node-id order —
    /// called exactly once, after the termination check succeeds and
    /// before `into_outputs`, to build the run's
    /// [`TerminationCertificate`]. `quiescence()` (the per-node method) is
    /// a pure function of node state, so this re-poll is deterministic.
    fn final_votes(&mut self) -> Vec<(NodeId, Quiescence)>;
    /// Scheduler telemetry for the round just committed: `(chunks
    /// stepped, chunks stolen)`. Accumulated into [`RunStats`] and
    /// reported through [`Observer::on_sched`](crate::Observer::on_sched);
    /// always `(0, 0)` for executors without a chunk scheduler.
    fn round_telemetry(&self) -> (u64, u64) {
        (0, 0)
    }
    /// The run's aggregate scheduler telemetry, if this executor has a
    /// chunk scheduler; read once, right before `into_outputs`.
    fn sched(&self) -> Option<PoolSched> {
        None
    }
    /// Tears the executor down and extracts outputs in node-id order.
    /// `topology` is the run's final view — the churned working copy when
    /// a topology plan ran, so `into_output` contexts see the post-churn
    /// neighborhoods.
    fn into_outputs(self, topology: &Topology, final_round: u64) -> Vec<A::Output>;
}

/// Merges two sorted id lists — the wake list (pending arrivals) and the
/// awake list (self-declared active) — into `out`, deduplicating: the
/// round's schedule, in ascending node-id order.
pub(crate) fn merge_schedule(wake: &[NodeId], awake: &[NodeId], out: &mut Vec<NodeId>) {
    out.clear();
    out.reserve(wake.len() + awake.len());
    let (mut i, mut j) = (0, 0);
    while i < wake.len() && j < awake.len() {
        let (a, b) = (wake[i], awake[j]);
        match a.cmp(&b) {
            std::cmp::Ordering::Less => {
                out.push(a);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&wake[i..]);
    out.extend_from_slice(&awake[j..]);
}

/// Runs `on_round` for one node: sorts its inbox (only when messages
/// arrived out of port order — each sender owns a distinct port, so keys
/// are unique and an unstable sort is deterministic), invokes the
/// algorithm, and recycles the inbox buffer.
///
/// This is the only per-round work that pool workers execute on node
/// state; it touches nothing but the node's own state and buffers.
pub(crate) fn step_node<A: NodeAlgorithm>(
    topology: &Topology,
    n: usize,
    round: u64,
    v: NodeId,
    node: &mut Option<A>,
    inbox_buf: &mut Vec<(Port, A::Message)>,
    outbox: &mut Outbox<A::Message>,
) {
    if !inbox_buf.windows(2).all(|w| w[0].0 <= w[1].0) {
        inbox_buf.sort_unstable_by_key(|(p, _)| *p);
    }
    let inbox = Inbox {
        items: std::mem::take(inbox_buf),
    };
    let ctx = NodeContext {
        node_id: v,
        num_nodes: n,
        neighbor_ids: topology.neighbors(v),
        round,
    };
    node.as_mut()
        .expect("node state present")
        .on_round(&ctx, &inbox, outbox);
    // Reclaim the inbox allocation for the next round.
    *inbox_buf = inbox.items;
    inbox_buf.clear();
}

/// Drives one [`NodeAlgorithm`] instance per node in synchronous lock-step.
///
/// The simulator delivers messages sent in round `t` at the beginning of
/// round `t+1`, calls [`NodeAlgorithm::on_round`] each round on every node
/// with arriving messages or reporting
/// [`is_active`](NodeAlgorithm::is_active) (so nodes can run local timers
/// by staying active), enforces the `B`-bit-per-edge-direction bandwidth
/// constraint, and stops when the per-node [`Quiescence`] votes allow it —
/// by default, when the network is silent and no node is active.
///
/// Execution is fully deterministic for every [`ExecutorKind`]: inboxes are
/// sorted by port, and every outbox is committed (delivered, traced,
/// counted) in node-id order on the engine thread — see this module's
/// source docs for the pipeline and executor contract.
///
/// # Steady-state allocation
///
/// All per-round buffers (inboxes, outboxes, staged commit queues, the
/// duplicate-send scratches) are recycled between rounds, so once message
/// volume peaks the engine runs allocation-free.
pub struct Simulator<'t, A: NodeAlgorithm> {
    core: Core<'t, A::Message>,
    nodes: Vec<Option<A>>,
}

impl<'t, A: NodeAlgorithm> Simulator<'t, A> {
    /// Creates a simulator, instantiating one algorithm state per node via
    /// `init` (called with each node's context, in id order).
    pub fn new<F>(topology: &'t Topology, config: Config, mut init: F) -> Self
    where
        F: FnMut(&NodeContext<'_>) -> A,
    {
        let n = topology.num_nodes();
        let nodes = (0..n)
            .map(|v| {
                let ctx = NodeContext {
                    node_id: v as NodeId,
                    num_nodes: n,
                    neighbor_ids: topology.neighbors(v as NodeId),
                    round: 0,
                };
                Some(init(&ctx))
            })
            .collect();
        let trace = config.trace.then(|| Trace::new(config.trace_capacity));
        // A non-empty topology plan needs a mutable working copy; static
        // runs keep borrowing the caller's topology unclones.
        let churn = config
            .topology
            .as_ref()
            .filter(|plan| !plan.is_empty())
            .map(|_| ChurnState {
                topo: Arc::new(topology.clone()),
                next_event: 0,
            });
        Simulator {
            core: Core {
                topology,
                churn,
                config,
                arrivals: InboxArena::new(n),
                wake: Vec::new(),
                woken: BitSet::new(n),
                in_flight: 0,
                round: 0,
                stats: RunStats::default(),
                trace,
                round_profile: Vec::new(),
            },
            nodes,
        }
    }

    /// The number of rounds executed so far.
    pub fn round(&self) -> u64 {
        self.core.round
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &RunStats {
        &self.core.stats
    }

    /// Runs to quiescence and extracts every node's output.
    ///
    /// The `Send` bounds exist so the pool executor can move node states
    /// and messages to its workers; they are trivially satisfied by states
    /// and messages made of plain data.
    ///
    /// # Errors
    ///
    /// Propagates any bandwidth/port violation committed by a node, and
    /// returns [`SimError::RoundLimitExceeded`] if the run does not quiesce
    /// within [`Config::max_rounds`].
    pub fn run(mut self) -> Result<Report<A::Output>, SimError>
    where
        A: Send,
        A::Message: Send,
    {
        let started = std::time::Instant::now();
        if let Some(obs) = &self.core.config.observer {
            obs.lock().on_run_start(&RunInfo {
                phase: &self.core.config.phase,
                nodes: self.core.topology.num_nodes(),
                directed_edges: self.core.topology.num_directed_edges(),
                started: self.core.started_nodes(),
            });
        }
        let store = NodeStore::new(std::mem::take(&mut self.nodes));
        match self.core.config.executor {
            ExecutorKind::Serial => {
                let executor = SerialExecutor::new(self.core.topology, store);
                self.drive(executor, started)
            }
            ExecutorKind::Pool { workers } => {
                // The scope spans the whole run: workers are spawned once
                // by `PoolExecutor::new` and live until `drive` returns
                // (dropping the executor's channels shuts them down before
                // the scope's implicit join).
                let topology = self.core.topology;
                let limits = commit::Limits::of(&self.core.config);
                let faults = self.core.config.faults.clone();
                let chunk = pool::chunk_override(&self.core.config);
                std::thread::scope(move |scope| {
                    let executor =
                        PoolExecutor::new(scope, topology, limits, faults, store, workers, chunk);
                    self.drive(executor, started)
                })
            }
        }
    }

    /// The pipeline: `start`, then rounds of timed
    /// `deliver → step → commit` until quiescence, then output extraction
    /// and observer teardown. Identical for every executor — all
    /// executor-specific behavior lives behind the [`Executor`] calls.
    fn drive<E: Executor<A>>(
        mut self,
        mut executor: E,
        started: std::time::Instant,
    ) -> Result<Report<A::Output>, SimError> {
        executor.start(&mut self.core)?;
        // Round 0 schedules every node that boots (runs `on_start`).
        let started_nodes = self.core.started_nodes();
        self.core.stats.scheduled_node_rounds += started_nodes;
        self.core.stats.max_scheduled_per_round =
            self.core.stats.max_scheduled_per_round.max(started_nodes);
        if let Some(obs) = &self.core.config.observer {
            let q = executor.quiescence();
            obs.lock()
                .on_quiescence(0, q.votes_active, q.votes_passive, q.votes_shutdown);
        }
        // Termination: no messages in flight and no node voting `Active`,
        // or every node voting `Shutdown` (see `Quiescence`). The votes
        // are aggregated by the executor over the awake list only. A
        // pending topology plan keeps the engine ticking through quiescent
        // stretches so later events still fire.
        while self.core.churn_pending() || !executor.quiescence().terminal(self.core.in_flight) {
            if self.core.round >= self.core.config.max_rounds {
                return Err(SimError::RoundLimitExceeded {
                    limit: self.core.config.max_rounds,
                });
            }
            self.step_round(&mut executor)?;
        }
        if let Some(obs) = &self.core.config.observer {
            obs.lock()
                .on_terminate(self.core.round, self.core.in_flight);
        }
        let certificate = Some(TerminationCertificate::from_votes(
            self.core.round,
            self.core.in_flight,
            executor.quiescence(),
            executor.final_votes(),
        ));
        let sched = executor.sched();
        let outputs = executor.into_outputs(self.core.live_topology(), self.core.round);
        self.core.stats.wall_time = started.elapsed();
        let metrics = if let Some(obs) = &self.core.config.observer {
            let mut obs = obs.lock();
            obs.on_run_end(&self.core.stats);
            obs.take_run_stream()
        } else {
            None
        };
        Ok(Report {
            outputs,
            stats: self.core.stats,
            trace: self.core.trace,
            round_profile: self.core.round_profile,
            metrics,
            certificate,
            sched,
        })
    }

    /// Executes one communication round through the three pipeline phases,
    /// timing each around the executor call when observed.
    fn step_round<E: Executor<A>>(&mut self, executor: &mut E) -> Result<(), SimError> {
        let core = &mut self.core;
        core.round += 1;
        core.stats.rounds = core.round;
        // Churn choke point: all plan events with `round <= core.round`
        // that are not yet applied take effect now — before this round's
        // deliveries, purging in-flight messages whose link died. Events
        // at round 0 therefore land entering round 1, after `on_start`.
        if core.churn.is_some() {
            Self::apply_churn(core, executor)?;
        }
        core.stats.max_messages_per_round = core.stats.max_messages_per_round.max(core.in_flight);
        if core.config.round_profile {
            core.round_profile.push(core.in_flight);
        }
        let delivered = core.in_flight;
        core.in_flight = 0;
        let scheduled = executor.schedule(core);
        core.stats.scheduled_node_rounds += scheduled;
        core.stats.max_scheduled_per_round = core.stats.max_scheduled_per_round.max(scheduled);
        // Wall-clock phase timing exists only while observed: with no
        // observer the `watch` checks below are the entire cost.
        let watch = core.config.observer.is_some();
        let mut timing = RoundTiming::default();
        if let Some(obs) = &core.config.observer {
            obs.lock().on_round_start(core.round, delivered, scheduled);
        }
        // Crash windows are booked here, on the engine thread, before the
        // pipeline phases run — in node-id order, so the observer stream
        // and the crashed counter are identical for every executor.
        if let Some(plan) = &core.config.faults {
            if plan.has_crashes() {
                let down = plan.crashed_nodes(core.round);
                core.stats.crashed += down.len() as u64;
                if let Some(obs) = &core.config.observer {
                    let mut obs = obs.lock();
                    for &v in &down {
                        obs.on_crash(core.round, v);
                    }
                }
            }
        }
        let clock = watch.then(std::time::Instant::now);
        executor.deliver(core);
        if let Some(t) = clock {
            timing.deliver = t.elapsed();
        }
        let clock = watch.then(std::time::Instant::now);
        executor.step(core);
        if let Some(t) = clock {
            timing.step = t.elapsed();
        }
        let clock = watch.then(std::time::Instant::now);
        executor.commit(core)?;
        if let Some(t) = clock {
            timing.commit = t.elapsed();
        }
        // Chunk-scheduler accounting for the round: totals are exact and
        // deterministic; the steal split is timing-dependent and therefore
        // excluded from the stats/metrics equality contracts.
        let (chunks, steals) = executor.round_telemetry();
        core.stats.chunks_stepped += chunks;
        core.stats.steals += steals;
        if let Some(obs) = &core.config.observer {
            let mut obs = obs.lock();
            obs.on_sched(core.round, chunks, steals);
            obs.on_round_end(core.round, &timing);
            // Vote decomposition after the round seals — the reference
            // engine polls its votes after `on_round_end`, so this hook
            // must sit there on every engine for streams to be identical.
            let q = executor.quiescence();
            obs.on_quiescence(
                core.round,
                q.votes_active,
                q.votes_passive,
                q.votes_shutdown,
            );
        }
        Ok(())
    }

    /// Applies every not-yet-applied topology-plan event with
    /// `round <= core.round`, then books the fallout: observer
    /// notifications in plan order, the purge of in-flight messages whose
    /// link died (booked as [`DropReason::TopologyChange`] drops against
    /// their send round), and the algorithm layer's `on_topology` sweep
    /// via the executor. Runs entirely on the engine thread; the order of
    /// every side effect here is part of the cross-engine determinism
    /// contract (the reference simulator mirrors it verbatim).
    fn apply_churn<E: Executor<A>>(
        core: &mut Core<'_, A::Message>,
        executor: &mut E,
    ) -> Result<(), SimError> {
        let round = core.round;
        let (changes, batch_events) = {
            let Core { churn, config, .. } = &mut *core;
            let (Some(churn), Some(plan)) = (churn.as_mut(), config.topology.as_ref()) else {
                return Ok(());
            };
            let events = plan.events();
            let lo = churn.next_event;
            let mut hi = lo;
            while hi < events.len() && events[hi].0 <= round {
                hi += 1;
            }
            if hi == lo {
                return Ok(());
            }
            churn.next_event = hi;
            let batch_events: Vec<TopologyEvent> = events[lo..hi].iter().map(|&(_, e)| e).collect();
            let changes = churn::apply_events(Arc::make_mut(&mut churn.topo), &events[lo..hi])?;
            (changes, batch_events)
        };
        core.stats.topo_events += batch_events.len() as u64;
        if let Some(obs) = &core.config.observer {
            let mut obs = obs.lock();
            for ev in &batch_events {
                obs.on_topology(round, ev);
            }
        }
        // Purge in-flight messages that were crossing a link the batch
        // killed: they were sent last round (already counted as messages),
        // and are now additionally counted as drops — on every engine.
        let topo = Arc::clone(&core.churn.as_ref().expect("churn state present").topo);
        let mut purged = core.arrivals.purge(|to, port| topo.port_live(to, port));
        if !purged.is_empty() {
            // The engine stages arrivals in commit order; the reference
            // engine purges its per-receiver queues in receiver order. A
            // stable sort by receiver makes the drop streams identical.
            purged.sort_by_key(|&(to, _, _)| to);
            core.stats.dropped += purged.len() as u64;
            core.in_flight -= purged.len() as u64;
            if let Some(obs) = &core.config.observer {
                let mut obs = obs.lock();
                for &(to, to_port, ref msg) in &purged {
                    // Tombstoned ports still resolve sender and port.
                    obs.on_drop(
                        round - 1,
                        topo.neighbor_at(to, to_port),
                        topo.reverse_port(to, to_port),
                        DropReason::TopologyChange,
                        msg.trace_tags(),
                    );
                }
            }
            core.rebuild_wake();
        }
        let (repaired, recompute) = executor.notify_topology(core, &topo, &changes);
        core.stats.repaired_node_rounds += repaired;
        core.stats.recompute_fallbacks += recompute;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{bits_for_id, Message};

    /// Flood fill: node 0 emits a token; everyone forwards it once.
    #[derive(Clone, Debug)]
    struct Token;
    impl Message for Token {
        fn bit_size(&self) -> u32 {
            1
        }
    }

    struct Flood {
        seen_round: Option<u64>,
    }
    impl NodeAlgorithm for Flood {
        type Message = Token;
        type Output = Option<u64>;
        fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Token>) {
            if ctx.node_id() == 0 {
                self.seen_round = Some(0);
                out.send_to_all(0..ctx.degree() as u32, Token);
            }
        }
        fn on_round(
            &mut self,
            ctx: &NodeContext<'_>,
            inbox: &Inbox<Token>,
            out: &mut Outbox<Token>,
        ) {
            if !inbox.is_empty() && self.seen_round.is_none() {
                self.seen_round = Some(ctx.round());
                out.send_to_all(0..ctx.degree() as u32, Token);
            }
        }
        fn into_output(self, _ctx: &NodeContext<'_>) -> Option<u64> {
            self.seen_round
        }
    }

    fn path(n: usize) -> Topology {
        let adj = (0..n)
            .map(|v| {
                let mut a = vec![];
                if v > 0 {
                    a.push(v as u32 - 1);
                }
                if v + 1 < n {
                    a.push(v as u32 + 1);
                }
                a
            })
            .collect();
        Topology::from_adjacency(adj).unwrap()
    }

    #[test]
    fn flood_reaches_everyone_in_distance_rounds() {
        let topo = path(6);
        let sim = Simulator::new(&topo, Config::for_n(6), |_| Flood { seen_round: None });
        let report = sim.run().unwrap();
        for (v, round) in report.outputs.iter().enumerate() {
            assert_eq!(*round, Some(v as u64), "node {v}");
        }
        assert_eq!(report.stats.rounds, 6);
    }

    #[test]
    fn flood_is_identical_under_the_pool_executor() {
        let topo = path(6);
        for workers in [2, 4, 16] {
            let cfg = Config::for_n(6).with_executor(ExecutorKind::Pool { workers });
            let report = Simulator::new(&topo, cfg, |_| Flood { seen_round: None })
                .run()
                .unwrap();
            for (v, round) in report.outputs.iter().enumerate() {
                assert_eq!(*round, Some(v as u64), "workers {workers}, node {v}");
            }
            assert_eq!(report.stats.rounds, 6);
        }
    }

    #[test]
    fn message_and_bit_counts() {
        let topo = path(4);
        let sim = Simulator::new(&topo, Config::for_n(4), |_| Flood { seen_round: None });
        let report = sim.run().unwrap();
        // Node 0 sends 1, nodes 1 and 2 send 2 each, node 3 sends 1.
        assert_eq!(report.stats.messages, 6);
        assert_eq!(report.stats.bits, 6);
        assert_eq!(report.stats.max_message_bits, 1);
    }

    /// An algorithm that violates the bandwidth limit on purpose.
    #[derive(Clone, Debug)]
    struct Fat;
    impl Message for Fat {
        fn bit_size(&self) -> u32 {
            10_000
        }
    }
    struct Blaster;
    impl NodeAlgorithm for Blaster {
        type Message = Fat;
        type Output = ();
        fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Fat>) {
            if ctx.node_id() == 0 {
                out.send(0, Fat);
            }
        }
        fn on_round(&mut self, _: &NodeContext<'_>, _: &Inbox<Fat>, _: &mut Outbox<Fat>) {}
        fn into_output(self, _: &NodeContext<'_>) {}
    }

    #[test]
    fn oversized_message_is_rejected() {
        let topo = path(2);
        let sim = Simulator::new(&topo, Config::for_n(2), |_| Blaster);
        let err = sim.run().unwrap_err();
        assert!(matches!(err, SimError::BandwidthExceeded { node: 0, .. }));
    }

    struct DoubleSender;
    impl NodeAlgorithm for DoubleSender {
        type Message = Token;
        type Output = ();
        fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Token>) {
            if ctx.node_id() == 0 {
                out.send(0, Token);
                out.send(0, Token);
            }
        }
        fn on_round(&mut self, _: &NodeContext<'_>, _: &Inbox<Token>, _: &mut Outbox<Token>) {}
        fn into_output(self, _: &NodeContext<'_>) {}
    }

    #[test]
    fn duplicate_send_is_rejected() {
        let topo = path(2);
        let sim = Simulator::new(&topo, Config::for_n(2), |_| DoubleSender);
        let err = sim.run().unwrap_err();
        assert!(matches!(
            err,
            SimError::DuplicateSend {
                node: 0,
                port: 0,
                ..
            }
        ));
    }

    struct BadPort;
    impl NodeAlgorithm for BadPort {
        type Message = Token;
        type Output = ();
        fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Token>) {
            if ctx.node_id() == 0 {
                out.send(9, Token);
            }
        }
        fn on_round(&mut self, _: &NodeContext<'_>, _: &Inbox<Token>, _: &mut Outbox<Token>) {}
        fn into_output(self, _: &NodeContext<'_>) {}
    }

    #[test]
    fn invalid_port_is_rejected() {
        let topo = path(2);
        let sim = Simulator::new(&topo, Config::for_n(2), |_| BadPort);
        let err = sim.run().unwrap_err();
        assert!(matches!(
            err,
            SimError::InvalidPort {
                node: 0,
                port: 9,
                degree: 1
            }
        ));
    }

    /// Two nodes ping-pong forever; the round limit must fire.
    struct PingPong;
    impl NodeAlgorithm for PingPong {
        type Message = Token;
        type Output = u64;
        fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Token>) {
            if ctx.node_id() == 0 {
                out.send(0, Token);
            }
        }
        fn on_round(&mut self, _: &NodeContext<'_>, inbox: &Inbox<Token>, out: &mut Outbox<Token>) {
            if !inbox.is_empty() {
                out.send(0, Token);
            }
        }
        fn into_output(self, ctx: &NodeContext<'_>) -> u64 {
            ctx.round()
        }
    }

    #[test]
    fn round_limit_fires_on_livelock() {
        let topo = path(2);
        for executor in [ExecutorKind::Serial, ExecutorKind::Pool { workers: 2 }] {
            let cfg = Config::for_n(2).with_max_rounds(25).with_executor(executor);
            let sim = Simulator::new(&topo, cfg, |_| PingPong);
            let err = sim.run().unwrap_err();
            assert_eq!(err, SimError::RoundLimitExceeded { limit: 25 });
        }
    }

    /// A silent node that stays active for 5 rounds, then sends once. Tests
    /// that `is_active` keeps the clock running without traffic.
    struct Timer {
        fired: bool,
    }
    impl NodeAlgorithm for Timer {
        type Message = Token;
        type Output = bool;
        fn on_round(
            &mut self,
            ctx: &NodeContext<'_>,
            inbox: &Inbox<Token>,
            out: &mut Outbox<Token>,
        ) {
            if ctx.node_id() == 0 && ctx.round() == 5 {
                self.fired = true;
                out.send(0, Token);
            }
            if !inbox.is_empty() {
                self.fired = true;
            }
        }
        fn is_active(&self) -> bool {
            !self.fired
        }
        fn into_output(self, _: &NodeContext<'_>) -> bool {
            self.fired
        }
    }

    #[test]
    fn timers_run_without_traffic() {
        let topo = path(2);
        for executor in [ExecutorKind::Serial, ExecutorKind::Pool { workers: 2 }] {
            let cfg = Config::for_n(2).with_executor(executor);
            let sim = Simulator::new(&topo, cfg, |_| Timer { fired: false });
            let report = sim.run().unwrap();
            assert_eq!(report.outputs, vec![true, true]);
            assert_eq!(report.stats.rounds, 6); // fired in round 5, delivered in 6
        }
    }

    #[test]
    fn trace_records_deliveries() {
        let topo = path(3);
        let cfg = Config::for_n(3).with_trace();
        let sim = Simulator::new(&topo, cfg, |_| Flood { seen_round: None });
        let report = sim.run().unwrap();
        let trace = report.trace.expect("trace enabled");
        assert_eq!(trace.events().len() as u64, report.stats.messages);
        let first = &trace.events()[0];
        assert_eq!(first.from, 0);
        assert_eq!(first.to, 1);
        assert_eq!(first.round, 1);
    }

    #[test]
    fn empty_network_quiesces_immediately() {
        let topo = Topology::from_adjacency(vec![vec![]]).unwrap();
        for executor in [ExecutorKind::Serial, ExecutorKind::Pool { workers: 4 }] {
            let cfg = Config::for_n(1).with_executor(executor);
            let sim = Simulator::new(&topo, cfg, |_| Flood { seen_round: None });
            let report = sim.run().unwrap();
            assert_eq!(report.stats.rounds, 0);
        }
    }

    #[test]
    fn bits_helper_consistency() {
        // A message carrying two ids must fit the default config.
        let n = 1000;
        assert!(2 * bits_for_id(n) <= Config::for_n(n).bandwidth_bits);
    }

    /// A message that fits the transport but overruns the declared
    /// `B = O(log n)` budget is a protocol bug: debug builds must fail the
    /// run loudly at the validation point (serial executor).
    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "message budget exceeded"))]
    fn budget_overrun_panics_in_debug_builds_serial() {
        let topo = path(3);
        let cfg = Config::for_n(3)
            .with_bandwidth_bits(64)
            .with_message_budget(Some(0));
        let sim = Simulator::new(&topo, cfg, |_| Flood { seen_round: None });
        let _ = sim.run();
    }

    /// The same check must execute on the pool executor's worker-side
    /// staging path: the sender sits in the last shard, so its outbox is
    /// validated by a spawned worker, never on the engine thread.
    #[test]
    #[cfg_attr(debug_assertions, should_panic)]
    fn budget_overrun_panics_in_debug_builds_pool() {
        struct LateSender {
            me: NodeId,
            sent: bool,
        }
        impl NodeAlgorithm for LateSender {
            type Message = Token;
            type Output = ();
            fn on_round(&mut self, _: &NodeContext<'_>, _: &Inbox<Token>, out: &mut Outbox<Token>) {
                if self.me == 7 && !self.sent {
                    self.sent = true;
                    out.send(0, Token);
                }
            }
            fn is_active(&self) -> bool {
                self.me == 7 && !self.sent
            }
            fn into_output(self, _: &NodeContext<'_>) {}
        }
        let topo = path(8);
        let cfg = Config::for_n(8)
            .with_bandwidth_bits(64)
            .with_message_budget(Some(0))
            .with_threads(2);
        let sim = Simulator::new(&topo, cfg, |ctx| LateSender {
            me: ctx.node_id(),
            sent: false,
        });
        let _ = sim.run();
    }

    /// Disabling the budget (or keeping it at the bandwidth) lets the same
    /// run pass in every build.
    #[test]
    fn budget_disabled_or_matching_bandwidth_is_clean() {
        let topo = path(3);
        for cfg in [Config::for_n(3).with_message_budget(None), Config::for_n(3)] {
            let sim = Simulator::new(&topo, cfg, |_| Flood { seen_round: None });
            assert!(sim.run().is_ok());
        }
    }

    /// Node 0 fires one token per round for 5 rounds; node 1 counts them.
    struct Repeater {
        me: NodeId,
        sent: u64,
        got: u64,
    }
    impl NodeAlgorithm for Repeater {
        type Message = Token;
        type Output = u64;
        fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Token>) {
            if ctx.node_id() == 0 {
                self.sent = 1;
                out.send(0, Token);
            }
        }
        fn on_round(&mut self, _: &NodeContext<'_>, inbox: &Inbox<Token>, out: &mut Outbox<Token>) {
            self.got += inbox.iter().count() as u64;
            if self.me == 0 && self.sent < 5 {
                self.sent += 1;
                out.send(0, Token);
            }
        }
        fn is_active(&self) -> bool {
            self.me == 0 && self.sent < 5
        }
        fn into_output(self, _: &NodeContext<'_>) -> u64 {
            self.got
        }
    }

    /// A crash window freezes the node (no step, deliveries into the
    /// window vanish) and the node resumes with its state intact once the
    /// window closes — identically on every executor.
    #[test]
    fn crashed_node_freezes_and_resumes() {
        let topo = path(2);
        // Node 1 is down for rounds 2 and 3: the tokens *delivered* in
        // those rounds (sent in rounds 1 and 2) are lost; the rest arrive.
        let faults = crate::FaultPlan::new(0).with_crash(1, 2, 4);
        for executor in [ExecutorKind::Serial, ExecutorKind::Pool { workers: 2 }] {
            let cfg = Config::for_n(2)
                .with_faults(faults.clone())
                .with_executor(executor);
            let sim = Simulator::new(&topo, cfg, |ctx| Repeater {
                me: ctx.node_id(),
                sent: 0,
                got: 0,
            });
            let report = sim.run().unwrap();
            assert_eq!(report.outputs, vec![0, 3], "{executor:?}");
            assert_eq!(report.stats.dropped, 2, "{executor:?}");
            assert_eq!(report.stats.crashed, 2, "{executor:?}");
        }
    }
}

#[cfg(test)]
mod obs_tests {
    use super::*;
    use crate::message::Message;
    use crate::obs::{MetricsRecorder, PhaseProfiler, SharedObserver};
    use crate::ReferenceSimulator;

    #[derive(Clone, Debug)]
    struct Tagged {
        origin: u32,
    }
    impl Message for Tagged {
        fn bit_size(&self) -> u32 {
            8
        }
        fn stream_id(&self) -> Option<u32> {
            Some(self.origin)
        }
    }

    /// Every node floods its own id once (a miniature Algorithm 1 pattern).
    struct Gossip {
        seen: Vec<bool>,
        queue: std::collections::VecDeque<Tagged>,
    }
    impl NodeAlgorithm for Gossip {
        type Message = Tagged;
        type Output = usize;
        fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Tagged>) {
            self.seen[ctx.node_id() as usize] = true;
            out.send_to_all(
                0..ctx.degree() as u32,
                Tagged {
                    origin: ctx.node_id(),
                },
            );
        }
        fn on_round(
            &mut self,
            ctx: &NodeContext<'_>,
            inbox: &Inbox<Tagged>,
            out: &mut Outbox<Tagged>,
        ) {
            for (_, m) in inbox.iter() {
                if !self.seen[m.origin as usize] {
                    self.seen[m.origin as usize] = true;
                    self.queue.push_back(m.clone());
                }
            }
            if let Some(m) = self.queue.pop_front() {
                out.send_to_all(0..ctx.degree() as u32, m);
            }
        }
        fn is_active(&self) -> bool {
            !self.queue.is_empty()
        }
        fn into_output(self, _: &NodeContext<'_>) -> usize {
            self.seen.iter().filter(|&&s| s).count()
        }
    }

    fn ring(n: usize) -> Topology {
        let adj = (0..n)
            .map(|v| vec![((v + n - 1) % n) as NodeId, ((v + 1) % n) as NodeId])
            .collect();
        Topology::from_adjacency(adj).unwrap()
    }

    fn gossip(n: usize) -> impl Fn(&NodeContext<'_>) -> Gossip + Copy {
        move |_| Gossip {
            seen: vec![false; n],
            queue: std::collections::VecDeque::new(),
        }
    }

    #[test]
    fn unobserved_runs_carry_no_metrics() {
        let topo = ring(6);
        let report = Simulator::new(&topo, Config::for_n(6), gossip(6))
            .run()
            .unwrap();
        assert!(report.metrics.is_none());
    }

    #[test]
    fn recorder_stream_sums_to_stats() {
        let topo = ring(8);
        let rec = SharedObserver::new(MetricsRecorder::new());
        let cfg = Config::for_n(8)
            .with_phase("gossip")
            .with_observer(rec.observer());
        let report = Simulator::new(&topo, cfg, gossip(8)).run().unwrap();
        let stream = report.metrics.as_ref().expect("recorder attached");
        assert_eq!(stream.len() as u64, report.stats.rounds + 1);
        assert_eq!(
            stream.iter().map(|r| r.messages).sum::<u64>(),
            report.stats.messages
        );
        assert_eq!(
            stream.iter().map(|r| r.bits).sum::<u64>(),
            report.stats.bits
        );
        assert!(stream.iter().all(|r| &*r.phase == "gossip"));
        // Round 0 is every node's on_start flood: all nodes active, every
        // undirected ring edge carrying both directions.
        assert_eq!(stream[0].active_nodes, 8);
        assert_eq!(stream[0].max_edge_load, 2);
        assert_eq!(stream[0].edge_load_hist, vec![0, 8]);
    }

    #[test]
    fn both_engines_feed_identical_streams() {
        let topo = ring(7);
        let opt = SharedObserver::new(MetricsRecorder::new());
        let seed = SharedObserver::new(MetricsRecorder::new());
        let opt_report = Simulator::new(
            &topo,
            Config::for_n(7).with_observer(opt.observer()),
            gossip(7),
        )
        .run()
        .unwrap();
        let seed_report = ReferenceSimulator::new(
            &topo,
            Config::for_n(7).with_observer(seed.observer()),
            gossip(7),
        )
        .run()
        .unwrap();
        assert_eq!(opt_report.stats, seed_report.stats);
        // RoundMetrics equality ignores wall-clock columns, so the streams
        // must match row for row.
        assert_eq!(opt_report.metrics, seed_report.metrics);
        assert_eq!(
            opt.with(|r| r.stream().to_vec()),
            seed.with(|r| r.stream().to_vec())
        );
    }

    #[test]
    fn pool_executor_feeds_the_same_stream() {
        let topo = ring(7);
        let serial = SharedObserver::new(MetricsRecorder::new());
        let pooled = SharedObserver::new(MetricsRecorder::new());
        let serial_report = Simulator::new(
            &topo,
            Config::for_n(7).with_observer(serial.observer()),
            gossip(7),
        )
        .run()
        .unwrap();
        let pool_report = Simulator::new(
            &topo,
            Config::for_n(7)
                .with_threads(3)
                .with_observer(pooled.observer()),
            gossip(7),
        )
        .run()
        .unwrap();
        assert_eq!(serial_report.stats, pool_report.stats);
        assert_eq!(serial_report.metrics, pool_report.metrics);
        assert_eq!(
            serial.with(|r| r.stream().to_vec()),
            pooled.with(|r| r.stream().to_vec())
        );
    }

    #[test]
    fn profiler_measures_rounds_when_attached() {
        let topo = ring(6);
        let prof = SharedObserver::new(PhaseProfiler::new());
        let cfg = Config::for_n(6)
            .with_phase("ring")
            .with_observer(prof.observer());
        let report = Simulator::new(&topo, cfg, gossip(6)).run().unwrap();
        // The profiler records no stream, so the report carries none.
        assert!(report.metrics.is_none());
        prof.with(|p| {
            assert_eq!(p.profiles().len(), 1);
            let total = p.total();
            assert_eq!(total.rounds, report.stats.rounds);
            assert_eq!(total.messages, report.stats.messages);
            assert!(total.step + total.commit > std::time::Duration::ZERO);
            assert_eq!(total.phase, "ring");
        });
    }

    #[test]
    fn report_surfaces_trace_truncation() {
        let topo = ring(8);
        let cfg = Config::for_n(8).with_trace_capacity(5);
        let report = Simulator::new(&topo, cfg, gossip(8)).run().unwrap();
        let trace = report.trace.expect("trace enabled");
        assert!(trace.truncated());
        assert_eq!(trace.events().len(), 5);
        assert_eq!(trace.total_events(), report.stats.messages);
        // An unbounded trace of the same run is not truncated.
        let full = Simulator::new(&topo, Config::for_n(8).with_trace(), gossip(8))
            .run()
            .unwrap()
            .trace
            .expect("trace enabled");
        assert!(!full.truncated());
        assert_eq!(full.total_events(), report.stats.messages);
    }

    #[test]
    fn drops_reach_the_observer() {
        let topo = ring(8);
        let rec = SharedObserver::new(MetricsRecorder::new());
        let cfg = Config::for_n(8)
            .with_loss(0.3, 42)
            .with_observer(rec.observer());
        let report = Simulator::new(&topo, cfg, gossip(8)).run().unwrap();
        assert!(report.stats.dropped > 0, "loss plan should fire");
        let stream = report.metrics.expect("recorder attached");
        assert_eq!(
            stream.iter().map(|r| r.dropped).sum::<u64>(),
            report.stats.dropped
        );
    }

    /// The full adversary — burst loss composed with crash windows — makes
    /// all three engines (serial, pooled, reference) produce bit-identical
    /// outputs, stats, and metric streams, with the crash column of the
    /// stream summing to the stats counter.
    #[test]
    fn fault_adversary_is_identical_across_engines() {
        use crate::{FaultPlan, LossRule, ReferenceSimulator};
        let topo = ring(9);
        // Burst probability stays below 1.0 so round 0 (inside the first
        // burst window) cannot silence the whole network.
        let faults = FaultPlan::new(11)
            .with_rule(LossRule::Burst {
                probability: 0.7,
                period: 5,
                len: 2,
            })
            .with_rule(LossRule::Uniform { probability: 0.05 })
            .with_crash(3, 1, 4)
            .with_crash(6, 2, 3);
        let cfg = || Config::for_n(9).with_faults(faults.clone());
        let observed = |cfg: Config| {
            let rec = SharedObserver::new(MetricsRecorder::new());
            (cfg.with_observer(rec.observer()), rec)
        };
        let (serial_cfg, _) = observed(cfg());
        let serial = Simulator::new(&topo, serial_cfg, gossip(9)).run().unwrap();
        let (pool_cfg, _) = observed(cfg().with_threads(3));
        let pooled = Simulator::new(&topo, pool_cfg, gossip(9)).run().unwrap();
        let (seed_cfg, _) = observed(cfg());
        let seed = ReferenceSimulator::new(&topo, seed_cfg, gossip(9))
            .run()
            .unwrap();
        assert!(serial.stats.dropped > 0, "adversary should drop something");
        assert_eq!(
            serial.stats.crashed, 4,
            "3 rounds down for node 3 + 1 for node 6"
        );
        assert_eq!(serial.stats, pooled.stats);
        assert_eq!(serial.stats, seed.stats);
        assert_eq!(serial.outputs, pooled.outputs);
        assert_eq!(serial.outputs, seed.outputs);
        assert_eq!(serial.metrics, pooled.metrics);
        assert_eq!(serial.metrics, seed.metrics);
        let stream = serial.metrics.expect("recorder attached");
        assert_eq!(
            stream.iter().map(|r| r.crashed).sum::<u64>(),
            serial.stats.crashed
        );
        assert_eq!(
            stream.iter().map(|r| r.dropped).sum::<u64>(),
            serial.stats.dropped
        );
    }
}

#[cfg(test)]
mod profile_tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct T;
    impl crate::Message for T {
        fn bit_size(&self) -> u32 {
            1
        }
    }
    struct Relay {
        seen: bool,
    }
    impl NodeAlgorithm for Relay {
        type Message = T;
        type Output = ();
        fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<T>) {
            if ctx.node_id() == 0 {
                self.seen = true;
                out.send_to_all(0..ctx.degree() as u32, T);
            }
        }
        fn on_round(&mut self, ctx: &NodeContext<'_>, inbox: &Inbox<T>, out: &mut Outbox<T>) {
            if !inbox.is_empty() && !self.seen {
                self.seen = true;
                out.send_to_all(0..ctx.degree() as u32, T);
            }
        }
        fn into_output(self, _: &NodeContext<'_>) {}
    }

    #[test]
    fn round_profile_sums_to_total_messages() {
        let adj = (0..6usize)
            .map(|v| {
                let mut a = vec![];
                if v > 0 {
                    a.push(v as u32 - 1);
                }
                if v + 1 < 6 {
                    a.push(v as u32 + 1);
                }
                a
            })
            .collect();
        let topo = Topology::from_adjacency(adj).unwrap();
        let cfg = Config::for_n(6).with_round_profile();
        let report = Simulator::new(&topo, cfg, |_| Relay { seen: false })
            .run()
            .unwrap();
        assert_eq!(report.round_profile.len() as u64, report.stats.rounds);
        assert_eq!(
            report.round_profile.iter().sum::<u64>(),
            report.stats.messages
        );
        // On a path the flood delivers one message forward (plus one echo)
        // per round: the profile is flat, never zero until the end.
        assert!(report.round_profile.iter().all(|&c| c >= 1));
    }

    #[test]
    fn profile_is_empty_when_disabled() {
        let topo = Topology::from_adjacency(vec![vec![1], vec![0]]).unwrap();
        let report = Simulator::new(&topo, Config::for_n(2), |_| Relay { seen: false })
            .run()
            .unwrap();
        assert!(report.round_profile.is_empty());
    }
}

//! The single-threaded executor: every phase runs in place on the calling
//! thread, over the round's schedule only. Zero coordination overhead —
//! this stays the default.

use crate::algorithm::NodeAlgorithm;
use crate::error::SimError;
use crate::node::{NodeContext, NodeId, Outbox, Port};
use crate::topology::Topology;

use crate::churn::RoundChanges;

use super::commit::DupScratch;
use super::store::NodeStore;
use super::{step_node, Core, Executor, QuiescenceState};

/// Runs the pipeline phases in place over a [`NodeStore`]: the schedule is
/// the sorted union of the wake and awake lists, deliver carves the
/// arrival arena into schedule-ordered inbox slices, step sweeps the
/// state slab forward through them, and commit validates and books each
/// scheduled node's outbox immediately — ascending schedule order *is*
/// node-id order.
pub(crate) struct SerialExecutor<'t, A: NodeAlgorithm> {
    topology: &'t Topology,
    store: NodeStore<A>,
    /// Send buffers, positionally matched to the schedule; grown on demand
    /// and recycled (commit drains them in place).
    outboxes: Vec<Outbox<A::Message>>,
    /// The one inbox buffer every step borrows: filled from the arena,
    /// drained by `step_node`, reused for the next node.
    inbox_buf: Vec<(Port, A::Message)>,
    scratch: DupScratch,
    quiescence: QuiescenceState,
}

impl<'t, A: NodeAlgorithm> SerialExecutor<'t, A> {
    pub(crate) fn new(topology: &'t Topology, store: NodeStore<A>) -> Self {
        SerialExecutor {
            topology,
            store,
            outboxes: Vec::new(),
            inbox_buf: Vec::new(),
            scratch: DupScratch::new(topology.max_degree()),
            quiescence: QuiescenceState::default(),
        }
    }
}

impl<A: NodeAlgorithm> Executor<A> for SerialExecutor<'_, A> {
    fn start(&mut self, core: &mut Core<'_, A::Message>) -> Result<(), SimError> {
        let n = self.store.len();
        let mut start_outbox = Outbox::new();
        {
            let handle = core.config.observer.clone();
            let mut observer = handle.as_ref().map(|h| h.lock());
            for v in 0..n {
                // A node already inside a crash window at round 0 never
                // boots; it runs `on_start` only conceptually, after
                // restarting (i.e. not at all — restarts resume the
                // frozen state).
                if core
                    .config
                    .faults
                    .as_ref()
                    .is_some_and(|f| f.crashed(0, v as NodeId))
                {
                    continue;
                }
                let ctx = NodeContext {
                    node_id: v as NodeId,
                    num_nodes: n,
                    neighbor_ids: self.topology.neighbors(v as NodeId),
                    round: 0,
                };
                self.store
                    .state_mut(v as NodeId)
                    .on_start(&ctx, &mut start_outbox);
                core.commit_outbox(
                    &mut observer,
                    &mut self.scratch,
                    v as NodeId,
                    &mut start_outbox.items,
                )?;
            }
        }
        // Seed the awake list and the termination votes with one full
        // scan — the only O(n) sweep after construction. Crashed-at-0
        // nodes participate with their (frozen) initial state, exactly as
        // the dense reference engine polls them.
        self.quiescence = self.store.seed_awake_and_votes();
        Ok(())
    }

    fn schedule(&mut self, core: &mut Core<'_, A::Message>) -> u64 {
        let scheduled = self.store.build_schedule(core.sorted_wake());
        core.clear_wake();
        while self.outboxes.len() < self.store.schedule.len() {
            self.outboxes.push(Outbox::new());
        }
        scheduled
    }

    fn deliver(&mut self, core: &mut Core<'_, A::Message>) {
        core.arrivals.carve(&self.store.schedule);
    }

    fn step(&mut self, core: &mut Core<'_, A::Message>) {
        let n = self.store.len();
        // Split the core's borrows: the arrival arena is drained while
        // the live (possibly churned) topology is read.
        let Core {
            topology,
            churn,
            config,
            arrivals,
            round,
            ..
        } = core;
        let topo: &Topology = match churn {
            Some(c) => &c.topo,
            None => topology,
        };
        let round = *round;
        let faults = &config.faults;
        // Split the store's borrows: the schedule is read while the state
        // slab is stepped and the next awake list is rebuilt.
        let NodeStore {
            slots,
            schedule,
            awake_next,
            ..
        } = &mut self.store;
        awake_next.clear();
        let mut quiescence = QuiescenceState::fold_start(schedule.len(), n);
        for (i, &v) in schedule.iter().enumerate() {
            // Crashed nodes are not stepped: their state freezes until
            // the window ends. They can only be on the schedule through
            // the awake list (messages to them were discarded at the
            // validation point), and their frozen state keeps voting.
            if faults.as_ref().is_some_and(|f| f.crashed(round, v)) {
                debug_assert!(arrivals.len_at(i) == 0, "crashed node received a message");
            } else {
                arrivals.take_into(i, &mut self.inbox_buf);
                step_node(
                    topo,
                    n,
                    round,
                    v,
                    &mut slots[v as usize],
                    &mut self.inbox_buf,
                    &mut self.outboxes[i],
                );
            }
            let node = slots[v as usize].as_ref().expect("node state present");
            if node.is_active() {
                awake_next.push(v);
            }
            quiescence.vote(node.quiescence());
        }
        self.quiescence = quiescence;
        self.store.publish_awake();
    }

    fn commit(&mut self, core: &mut Core<'_, A::Message>) -> Result<(), SimError> {
        // One observer lock per commit phase; `None` when unobserved.
        let handle = core.config.observer.clone();
        let mut observer = handle.as_ref().map(|h| h.lock());
        for (i, &v) in self.store.schedule.iter().enumerate() {
            core.commit_outbox(
                &mut observer,
                &mut self.scratch,
                v,
                &mut self.outboxes[i].items,
            )?;
        }
        Ok(())
    }

    fn notify_topology(
        &mut self,
        core: &mut Core<'_, A::Message>,
        topo: &Topology,
        changes: &RoundChanges,
    ) -> (u64, u64) {
        self.store
            .notify_topology(topo, &core.config.faults, core.round, changes)
    }

    fn quiescence(&self) -> QuiescenceState {
        self.quiescence
    }

    fn final_votes(&mut self) -> Vec<(NodeId, crate::algorithm::Quiescence)> {
        self.store.final_votes()
    }

    fn into_outputs(self, topology: &Topology, final_round: u64) -> Vec<A::Output> {
        self.store.into_outputs(topology, final_round)
    }
}

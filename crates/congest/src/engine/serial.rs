//! The single-threaded executor: every phase runs in place on the calling
//! thread. This is the pre-pipeline engine's behavior verbatim — zero
//! coordination overhead — and stays the default.

use crate::algorithm::NodeAlgorithm;
use crate::error::SimError;
use crate::node::{NodeContext, NodeId, Outbox};
use crate::topology::Topology;

use super::commit::DupScratch;
use super::{step_node, Core, Executor};

/// Runs the pipeline phases in place: deliver is a buffer swap, step is a
/// sequential sweep over the nodes, commit validates and books each outbox
/// immediately.
pub(crate) struct SerialExecutor<'t, A: NodeAlgorithm> {
    topology: &'t Topology,
    nodes: Vec<Option<A>>,
    /// `delivering[v]` is the inbox buffer handed to `v` this round;
    /// swapped with `Core::pending` each deliver phase and recycled.
    delivering: Vec<Vec<(u32, A::Message)>>,
    /// `outboxes[v]` is `v`'s send buffer, drained on commit and recycled.
    outboxes: Vec<Outbox<A::Message>>,
    scratch: DupScratch,
}

impl<'t, A: NodeAlgorithm> SerialExecutor<'t, A> {
    pub(crate) fn new(topology: &'t Topology, nodes: Vec<Option<A>>) -> Self {
        let n = nodes.len();
        SerialExecutor {
            topology,
            nodes,
            delivering: (0..n).map(|_| Vec::new()).collect(),
            outboxes: (0..n).map(|_| Outbox::new()).collect(),
            scratch: DupScratch::new(topology.max_degree()),
        }
    }
}

impl<A: NodeAlgorithm> Executor<A> for SerialExecutor<'_, A> {
    fn start(&mut self, core: &mut Core<'_, A::Message>) -> Result<(), SimError> {
        let n = self.nodes.len();
        let handle = core.config.observer.clone();
        let mut observer = handle.as_ref().map(|h| h.lock());
        for v in 0..n {
            // A node already inside a crash window at round 0 never boots;
            // it runs `on_start` only conceptually, after restarting (i.e.
            // not at all — restarts resume the frozen state).
            if core
                .config
                .faults
                .as_ref()
                .is_some_and(|f| f.crashed(0, v as NodeId))
            {
                continue;
            }
            let ctx = NodeContext {
                node_id: v as NodeId,
                num_nodes: n,
                neighbor_ids: self.topology.neighbors(v as NodeId),
                round: 0,
            };
            self.nodes[v]
                .as_mut()
                .expect("node state present")
                .on_start(&ctx, &mut self.outboxes[v]);
            core.commit_outbox(
                &mut observer,
                &mut self.scratch,
                v as NodeId,
                &mut self.outboxes[v].items,
            )?;
        }
        Ok(())
    }

    fn deliver(&mut self, core: &mut Core<'_, A::Message>) {
        // Swap the accumulated inboxes in so sends this round are buffered
        // for the next one; `delivering`'s buffers were cleared (capacity
        // kept) at the end of the previous step.
        std::mem::swap(&mut core.pending, &mut self.delivering);
    }

    fn step(&mut self, core: &mut Core<'_, A::Message>) {
        let n = self.nodes.len();
        let round = core.round;
        let faults = &core.config.faults;
        for (v, ((node, inbox), outbox)) in self
            .nodes
            .iter_mut()
            .zip(self.delivering.iter_mut())
            .zip(self.outboxes.iter_mut())
            .enumerate()
        {
            // Crashed nodes are not stepped: their state freezes until the
            // window ends. Their inboxes are empty by construction — every
            // message to them was discarded at the validation point.
            if faults
                .as_ref()
                .is_some_and(|f| f.crashed(round, v as NodeId))
            {
                debug_assert!(inbox.is_empty(), "crashed node received a message");
                continue;
            }
            step_node(self.topology, n, round, v as NodeId, node, inbox, outbox);
        }
    }

    fn commit(&mut self, core: &mut Core<'_, A::Message>) -> Result<(), SimError> {
        // One observer lock per commit phase; `None` when unobserved.
        let handle = core.config.observer.clone();
        let mut observer = handle.as_ref().map(|h| h.lock());
        for (v, outbox) in self.outboxes.iter_mut().enumerate() {
            core.commit_outbox(
                &mut observer,
                &mut self.scratch,
                v as NodeId,
                &mut outbox.items,
            )?;
        }
        Ok(())
    }

    fn any_active(&self) -> bool {
        self.nodes
            .iter()
            .any(|node| node.as_ref().expect("node state present").is_active())
    }

    fn into_outputs(mut self, final_round: u64) -> Vec<A::Output> {
        let n = self.nodes.len();
        self.nodes
            .iter_mut()
            .enumerate()
            .map(|(v, node)| {
                let ctx = NodeContext {
                    node_id: v as NodeId,
                    num_nodes: n,
                    neighbor_ids: self.topology.neighbors(v as NodeId),
                    round: final_round,
                };
                node.take().expect("node state present").into_output(&ctx)
            })
            .collect()
    }
}

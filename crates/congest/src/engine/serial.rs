//! The single-threaded executor: every phase runs in place on the calling
//! thread, over the round's schedule only. Zero coordination overhead —
//! this stays the default.

use crate::algorithm::NodeAlgorithm;
use crate::error::SimError;
use crate::node::{NodeContext, NodeId, Outbox};
use crate::topology::Topology;

use super::commit::DupScratch;
use super::{merge_schedule, step_node, Core, Executor, QuiescenceState};

/// Runs the pipeline phases in place: the schedule is the sorted union of
/// the wake and awake lists, step sweeps it reading inboxes straight out
/// of `Core::pending`, and commit validates and books each scheduled
/// node's outbox immediately — ascending schedule order *is* node-id
/// order.
pub(crate) struct SerialExecutor<'t, A: NodeAlgorithm> {
    topology: &'t Topology,
    nodes: Vec<Option<A>>,
    /// This round's schedule: sorted ids with pending arrivals or awake.
    schedule: Vec<NodeId>,
    /// Nodes reporting `is_active` after their last step, sorted. Always
    /// a subset of the next schedule.
    awake: Vec<NodeId>,
    awake_next: Vec<NodeId>,
    /// Send buffers, positionally matched to `schedule`; grown on demand
    /// and recycled (commit drains them in place).
    outboxes: Vec<Outbox<A::Message>>,
    scratch: DupScratch,
    quiescence: QuiescenceState,
}

impl<'t, A: NodeAlgorithm> SerialExecutor<'t, A> {
    pub(crate) fn new(topology: &'t Topology, nodes: Vec<Option<A>>) -> Self {
        SerialExecutor {
            topology,
            nodes,
            schedule: Vec::new(),
            awake: Vec::new(),
            awake_next: Vec::new(),
            outboxes: Vec::new(),
            scratch: DupScratch::new(topology.max_degree()),
            quiescence: QuiescenceState::default(),
        }
    }
}

impl<A: NodeAlgorithm> Executor<A> for SerialExecutor<'_, A> {
    fn start(&mut self, core: &mut Core<'_, A::Message>) -> Result<(), SimError> {
        let n = self.nodes.len();
        let mut start_outbox = Outbox::new();
        {
            let handle = core.config.observer.clone();
            let mut observer = handle.as_ref().map(|h| h.lock());
            for v in 0..n {
                // A node already inside a crash window at round 0 never
                // boots; it runs `on_start` only conceptually, after
                // restarting (i.e. not at all — restarts resume the
                // frozen state).
                if core
                    .config
                    .faults
                    .as_ref()
                    .is_some_and(|f| f.crashed(0, v as NodeId))
                {
                    continue;
                }
                let ctx = NodeContext {
                    node_id: v as NodeId,
                    num_nodes: n,
                    neighbor_ids: self.topology.neighbors(v as NodeId),
                    round: 0,
                };
                self.nodes[v]
                    .as_mut()
                    .expect("node state present")
                    .on_start(&ctx, &mut start_outbox);
                core.commit_outbox(
                    &mut observer,
                    &mut self.scratch,
                    v as NodeId,
                    &mut start_outbox.items,
                )?;
            }
        }
        // Seed the awake list and the termination votes with one full
        // scan — the only O(n) sweep after construction. Crashed-at-0
        // nodes participate with their (frozen) initial state, exactly as
        // the dense reference engine polls them.
        let mut quiescence = QuiescenceState::fold_start(n, n);
        for (v, node) in self.nodes.iter().enumerate() {
            let node = node.as_ref().expect("node state present");
            if node.is_active() {
                self.awake.push(v as NodeId);
            }
            quiescence.vote(node.quiescence());
        }
        self.quiescence = quiescence;
        Ok(())
    }

    fn schedule(&mut self, core: &mut Core<'_, A::Message>) -> u64 {
        merge_schedule(core.sorted_wake(), &self.awake, &mut self.schedule);
        core.clear_wake();
        while self.outboxes.len() < self.schedule.len() {
            self.outboxes.push(Outbox::new());
        }
        self.schedule.len() as u64
    }

    fn deliver(&mut self, _core: &mut Core<'_, A::Message>) {
        // Nothing to move: step reads each scheduled node's inbox straight
        // out of `core.pending` (and leaves the drained buffer behind for
        // the commit phase to refill).
    }

    fn step(&mut self, core: &mut Core<'_, A::Message>) {
        let n = self.nodes.len();
        let round = core.round;
        let faults = &core.config.faults;
        self.awake_next.clear();
        let mut quiescence = QuiescenceState::fold_start(self.schedule.len(), n);
        for (i, &v) in self.schedule.iter().enumerate() {
            // Crashed nodes are not stepped: their state freezes until
            // the window ends. They can only be on the schedule through
            // the awake list (messages to them were discarded at the
            // validation point), and their frozen state keeps voting.
            if faults.as_ref().is_some_and(|f| f.crashed(round, v)) {
                debug_assert!(
                    core.pending[v as usize].is_empty(),
                    "crashed node received a message"
                );
            } else {
                step_node(
                    self.topology,
                    n,
                    round,
                    v,
                    &mut self.nodes[v as usize],
                    &mut core.pending[v as usize],
                    &mut self.outboxes[i],
                );
            }
            let node = self.nodes[v as usize].as_ref().expect("node state present");
            if node.is_active() {
                self.awake_next.push(v);
            }
            quiescence.vote(node.quiescence());
        }
        self.quiescence = quiescence;
        std::mem::swap(&mut self.awake, &mut self.awake_next);
    }

    fn commit(&mut self, core: &mut Core<'_, A::Message>) -> Result<(), SimError> {
        // One observer lock per commit phase; `None` when unobserved.
        let handle = core.config.observer.clone();
        let mut observer = handle.as_ref().map(|h| h.lock());
        for (i, &v) in self.schedule.iter().enumerate() {
            core.commit_outbox(
                &mut observer,
                &mut self.scratch,
                v,
                &mut self.outboxes[i].items,
            )?;
        }
        Ok(())
    }

    fn quiescence(&self) -> QuiescenceState {
        self.quiescence
    }

    fn final_votes(&mut self) -> Vec<(NodeId, crate::algorithm::Quiescence)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(v, node)| {
                let q = node.as_ref().expect("node state present").quiescence();
                (v as NodeId, q)
            })
            .collect()
    }

    fn into_outputs(mut self, final_round: u64) -> Vec<A::Output> {
        let n = self.nodes.len();
        self.nodes
            .iter_mut()
            .enumerate()
            .map(|(v, node)| {
                let ctx = NodeContext {
                    node_id: v as NodeId,
                    num_nodes: n,
                    neighbor_ids: self.topology.neighbors(v as NodeId),
                    round: final_round,
                };
                node.take().expect("node state present").into_output(&ctx)
            })
            .collect()
    }
}

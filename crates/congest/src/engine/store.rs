//! Struct-of-arrays node storage shared by every engine.
//!
//! Before this module each executor owned its node state ad hoc: the
//! serial executor held a `Vec<Option<A>>`, the pool split that vector
//! into per-worker shards it shipped over channels, and the per-node
//! inboxes lived in `n` separate heap `Vec`s that commit pushed into at
//! random receiver order. [`NodeStore`] centralizes *where state lives* so
//! executors become pure scheduling policy:
//!
//! * **State slab** — one contiguous `Vec<Option<A>>` indexed by node id.
//!   Executors borrow it (or temporarily move single slots out, for the
//!   work-stealing pool) instead of owning node vectors.
//! * **Inbox arena** ([`InboxArena`]) — commits append every accepted
//!   message to one flat staging vector (a cache-linear push, instead of
//!   `n` scattered per-node pushes); the deliver phase then *carves* the
//!   staging into per-node slices laid out in schedule order, so the step
//!   phase reads the whole round's arrivals as one forward sweep.
//! * **Wake/awake sets** — the engine's wake marks are a packed
//!   [`BitSet`] (one bit per node instead of one byte), and the sorted
//!   awake/schedule lists live here next to the slab they index.
//!
//! The store is engine-agnostic: the serial executor, the work-stealing
//! pool, and the dense [`ReferenceSimulator`](crate::ReferenceSimulator)
//! all step through the same slab, which is what keeps their outputs
//! trivially comparable.

use crate::algorithm::{NodeAlgorithm, Quiescence, RepairAction};
use crate::churn::{notify_order, RoundChanges};
use crate::config::FaultPlan;
use crate::node::{NodeContext, NodeId, Port};
use crate::topology::Topology;

use super::{merge_schedule, QuiescenceState};

/// A packed one-bit-per-node membership set (the wake-mark companion of
/// the wake list: `get` answers "already on the list?" in one word load).
pub(crate) struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set over `n` ids.
    pub(crate) fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Whether `i` is in the set.
    pub(crate) fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Inserts `i`.
    pub(crate) fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes `i`.
    pub(crate) fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }
}

/// A buffer-recycling pool: `get` hands out a previously returned value
/// (or a fresh default), `put` takes it back once drained. Replaces the
/// pool executor's former ad-hoc `spare_frontiers` / `spare_inboxes` /
/// `spare_awake` / `spare_shards` vectors with one type, and backs the
/// work-stealing chunk deques — the steady state allocates nothing.
pub(crate) struct Scratch<T> {
    pool: Vec<T>,
}

impl<T: Default> Scratch<T> {
    /// An empty pool.
    pub(crate) fn new() -> Self {
        Scratch { pool: Vec::new() }
    }

    /// A recycled value, or `T::default()` if the pool is dry.
    pub(crate) fn get(&mut self) -> T {
        self.pool.pop().unwrap_or_default()
    }

    /// Returns a (cleared-by-caller) value to the pool.
    pub(crate) fn put(&mut self, item: T) {
        self.pool.push(item);
    }
}

/// All per-node algorithm state of one run, in struct-of-arrays layout:
/// the contiguous state slab plus the schedule/awake id lists that index
/// it. Owned by whichever executor drives the run; the fields are
/// crate-visible so executors can split borrows across them (slab mutably,
/// schedule immutably) inside their step loops.
pub(crate) struct NodeStore<A: NodeAlgorithm> {
    /// The state slab: `slots[v]` is node `v`'s algorithm state, `None`
    /// only transiently while a work-stealing chunk has the state checked
    /// out or after `into_output` consumed it.
    pub(crate) slots: Vec<Option<A>>,
    /// This round's schedule: the sorted union of the engine's wake list
    /// and `awake`.
    pub(crate) schedule: Vec<NodeId>,
    /// Nodes reporting [`NodeAlgorithm::is_active`] after their last
    /// step, sorted ascending. Always a subset of the next schedule.
    pub(crate) awake: Vec<NodeId>,
    /// Next round's awake list under construction during `step`.
    pub(crate) awake_next: Vec<NodeId>,
}

impl<A: NodeAlgorithm> NodeStore<A> {
    /// Wraps the initialized per-node states.
    pub(crate) fn new(slots: Vec<Option<A>>) -> Self {
        NodeStore {
            slots,
            schedule: Vec::new(),
            awake: Vec::new(),
            awake_next: Vec::new(),
        }
    }

    /// Number of nodes.
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Node `v`'s state, immutably.
    pub(crate) fn state(&self, v: NodeId) -> &A {
        self.slots[v as usize].as_ref().expect("node state present")
    }

    /// Node `v`'s state, mutably.
    pub(crate) fn state_mut(&mut self, v: NodeId) -> &mut A {
        self.slots[v as usize].as_mut().expect("node state present")
    }

    /// Builds this round's schedule from the engine's sorted wake list and
    /// the store's awake list; returns its size.
    pub(crate) fn build_schedule(&mut self, wake: &[NodeId]) -> u64 {
        merge_schedule(wake, &self.awake, &mut self.schedule);
        self.schedule.len() as u64
    }

    /// The post-`on_start` full sweep every engine performs: seeds `awake`
    /// with the active nodes and returns the round-0 vote aggregate
    /// (`fold_start(n, n)` — every node is polled, crashed-at-0 nodes with
    /// their frozen initial state).
    pub(crate) fn seed_awake_and_votes(&mut self) -> QuiescenceState {
        let n = self.len();
        let mut votes = QuiescenceState::fold_start(n, n);
        for (v, slot) in self.slots.iter().enumerate() {
            let node = slot.as_ref().expect("node state present");
            if node.is_active() {
                self.awake.push(v as NodeId);
            }
            votes.vote(node.quiescence());
        }
        votes
    }

    /// Publishes the awake list built during `step`: swaps `awake_next`
    /// into place.
    pub(crate) fn publish_awake(&mut self) {
        std::mem::swap(&mut self.awake, &mut self.awake_next);
    }

    /// Delivers one round's churn batch to the algorithm layer: calls
    /// [`NodeAlgorithm::on_topology`] on every node in
    /// [`notify_order`] (present nodes plus the batch's removals, id
    /// order) and returns the `(repaired, recompute)` tallies for
    /// [`RunStats`](crate::RunStats).
    ///
    /// Nodes inside a [`CrashWindow`](crate::CrashWindow) at `round` are
    /// skipped: a crashed node is frozen, so it misses churn notifications
    /// exactly as it misses messages, and must re-derive the topology
    /// after recovery (or recompute). Afterwards the `awake` list is
    /// rebuilt from scratch — repairs may activate or deactivate any node,
    /// and removed nodes must drop off future schedules.
    pub(crate) fn notify_topology(
        &mut self,
        topo: &Topology,
        faults: &Option<FaultPlan>,
        round: u64,
        changes: &RoundChanges,
    ) -> (u64, u64) {
        let n = self.len();
        let mut repaired = 0u64;
        let mut recompute = 0u64;
        for v in notify_order(topo, changes) {
            if faults.as_ref().is_some_and(|p| p.crashed(round, v)) {
                continue;
            }
            let ctx = NodeContext {
                node_id: v,
                num_nodes: n,
                neighbor_ids: topo.neighbors(v),
                round,
            };
            match self.state_mut(v).on_topology(&ctx, &changes.delta_for(v)) {
                RepairAction::Ignored => {}
                RepairAction::Repaired => repaired += 1,
                RepairAction::Recompute => recompute += 1,
            }
        }
        self.awake.clear();
        for (v, slot) in self.slots.iter().enumerate() {
            if topo.node_present(v as NodeId)
                && slot.as_ref().expect("node state present").is_active()
            {
                self.awake.push(v as NodeId);
            }
        }
        (repaired, recompute)
    }

    /// Every node's current termination vote, in node-id order — the
    /// deterministic re-poll behind the run's
    /// [`TerminationCertificate`](crate::TerminationCertificate).
    pub(crate) fn final_votes(&self) -> Vec<(NodeId, Quiescence)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(v, slot)| {
                let q = slot.as_ref().expect("node state present").quiescence();
                (v as NodeId, q)
            })
            .collect()
    }

    /// Consumes the slab into per-node outputs, in node-id order.
    pub(crate) fn into_outputs(self, topology: &Topology, final_round: u64) -> Vec<A::Output> {
        let n = self.slots.len();
        self.slots
            .into_iter()
            .enumerate()
            .map(|(v, slot)| {
                let ctx = NodeContext {
                    node_id: v as NodeId,
                    num_nodes: n,
                    neighbor_ids: topology.neighbors(v as NodeId),
                    round: final_round,
                };
                slot.expect("node state present").into_output(&ctx)
            })
            .collect()
    }
}

/// The per-round inbox arena: one flat staging buffer the commit phase
/// appends to, carved into per-node slices (in schedule order) by the
/// deliver phase.
///
/// Commit-side writes are a single cache-linear `push` per accepted
/// message — the receiver-indexed scatter the old `pending[v].push(..)`
/// did is deferred to [`InboxArena::carve`], which groups the staging by
/// receiver with one counting pass and lays the slices out in ascending
/// schedule position. The step phase then consumes the whole round's
/// arrivals as one forward sweep over `data` (the serial executor walks
/// it in order; the pool moves each chunk's contiguous slice into the
/// chunk). Every buffer is recycled, so the steady state allocates
/// nothing.
pub(crate) struct InboxArena<M> {
    /// Accepted messages awaiting next round's deliver, in commit order:
    /// `(receiver, receiver port, message)`.
    staging: Vec<(NodeId, Port, M)>,
    /// Scratch: `pos[v]` is `1 +` node `v`'s schedule position during
    /// `carve`, `0` outside it. Reset by re-walking the schedule.
    pos: Vec<u32>,
    /// Slice bounds: slot `i` of the schedule owns
    /// `data[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<u32>,
    /// Scatter cursors, one per schedule slot.
    cursor: Vec<u32>,
    /// The carved arena: per-node slices in schedule order, each slot
    /// `Some` until [`InboxArena::take_into`] moves it out.
    data: Vec<Option<(Port, M)>>,
}

impl<M> InboxArena<M> {
    /// An empty arena over `n` nodes.
    pub(crate) fn new(n: usize) -> Self {
        InboxArena {
            staging: Vec::new(),
            pos: vec![0; n],
            offsets: Vec::new(),
            cursor: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Stages one accepted message for delivery next round (the commit
    /// phase's write half).
    pub(crate) fn push(&mut self, to: NodeId, to_port: Port, msg: M) {
        self.staging.push((to, to_port, msg));
    }

    /// Removes every staged message whose `(receiver, receiver port)`
    /// fails `keep`, preserving commit order among the survivors, and
    /// returns the purged entries in commit order. Used by the churn choke
    /// point to discard in-flight messages whose link died mid-flight.
    pub(crate) fn purge(&mut self, keep: impl Fn(NodeId, Port) -> bool) -> Vec<(NodeId, Port, M)> {
        let mut purged = Vec::new();
        let mut survivors = Vec::with_capacity(self.staging.len());
        for entry in self.staging.drain(..) {
            if keep(entry.0, entry.1) {
                survivors.push(entry);
            } else {
                purged.push(entry);
            }
        }
        self.staging = survivors;
        purged
    }

    /// The receivers of the currently staged messages, in commit order
    /// (with duplicates) — what the choke point re-derives the wake list
    /// from after a purge.
    pub(crate) fn staged_receivers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.staging.iter().map(|&(to, _, _)| to)
    }

    /// Groups the staged messages into per-node slices ordered by
    /// `schedule` position, preserving commit order within each node.
    /// Every staged receiver must be on the schedule (an arrival wakes its
    /// receiver, and woken nodes are always scheduled).
    pub(crate) fn carve(&mut self, schedule: &[NodeId]) {
        let sched = schedule.len();
        for (i, &v) in schedule.iter().enumerate() {
            self.pos[v as usize] = i as u32 + 1;
        }
        self.offsets.clear();
        self.offsets.resize(sched + 1, 0);
        for &(to, _, _) in &self.staging {
            let p = self.pos[to as usize];
            debug_assert!(p != 0, "arrival for unscheduled node {to}");
            self.offsets[p as usize] += 1;
        }
        for i in 1..=sched {
            self.offsets[i] += self.offsets[i - 1];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.offsets[..sched]);
        self.data.clear();
        self.data.resize_with(self.staging.len(), || None);
        for (to, port, msg) in self.staging.drain(..) {
            let slot = (self.pos[to as usize] - 1) as usize;
            let at = self.cursor[slot] as usize;
            self.cursor[slot] += 1;
            self.data[at] = Some((port, msg));
        }
        for &v in schedule {
            self.pos[v as usize] = 0;
        }
    }

    /// Arrival count of schedule slot `i` (after `carve`).
    pub(crate) fn len_at(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Moves schedule slot `i`'s arrivals into `buf`, preserving order.
    pub(crate) fn take_into(&mut self, i: usize, buf: &mut Vec<(Port, M)>) {
        for at in self.offsets[i] as usize..self.offsets[i + 1] as usize {
            buf.push(self.data[at].take().expect("arena slot already taken"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_round_trips() {
        let mut s = BitSet::new(130);
        assert!(!s.get(0) && !s.get(129));
        s.set(0);
        s.set(64);
        s.set(129);
        assert!(s.get(0) && s.get(64) && s.get(129) && !s.get(65));
        s.clear(64);
        assert!(!s.get(64) && s.get(0) && s.get(129));
    }

    #[test]
    fn scratch_recycles_instead_of_allocating() {
        let mut pool: Scratch<Vec<u32>> = Scratch::new();
        let mut v = pool.get();
        v.extend([1, 2, 3]);
        let cap = v.capacity();
        v.clear();
        pool.put(v);
        let v2 = pool.get();
        assert_eq!(v2.capacity(), cap, "recycled buffer keeps its capacity");
        assert!(v2.is_empty());
    }

    #[test]
    fn arena_carves_in_schedule_order_preserving_arrival_order() {
        let mut arena: InboxArena<&'static str> = InboxArena::new(8);
        // Commit order interleaves receivers 5, 2, 5, 7.
        arena.push(5, 1, "a");
        arena.push(2, 0, "b");
        arena.push(5, 0, "c");
        arena.push(7, 3, "d");
        let schedule = [2, 5, 6, 7];
        arena.carve(&schedule);
        assert_eq!(arena.len_at(0), 1); // node 2
        assert_eq!(arena.len_at(1), 2); // node 5
        assert_eq!(arena.len_at(2), 0); // node 6: scheduled, no arrivals
        assert_eq!(arena.len_at(3), 1); // node 7
        let mut buf = Vec::new();
        arena.take_into(1, &mut buf);
        assert_eq!(buf, vec![(1, "a"), (0, "c")], "arrival order preserved");
        buf.clear();
        arena.take_into(3, &mut buf);
        assert_eq!(buf, vec![(3, "d")]);
        // The next round starts from a clean arena.
        arena.carve(&[1]);
        assert_eq!(arena.len_at(0), 0);
    }
}

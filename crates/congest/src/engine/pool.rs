//! The persistent-pool executor: long-lived worker threads created once
//! per run, with one channel rendezvous per round instead of a per-round
//! `thread::scope` spawn/join (the ~50–100 µs/round overhead PR 2
//! measured).
//!
//! # Protocol
//!
//! The node ids are split into `workers` contiguous shards of
//! `ceil(n / workers)` ids each. The **engine thread itself owns shard 0**
//! and only `workers - 1` threads are spawned: while the spawned workers
//! step their shards, the engine thread steps shard 0 instead of blocking,
//! so a pool of `k` workers uses exactly `k` threads of compute (not
//! `k + 1` with one parked) and the per-round rendezvous costs one
//! wake/park pair per *spawned* worker.
//!
//! The pool shards the **frontier**, not the id space: each round the
//! engine thread builds the global schedule (sorted union of the wake and
//! awake lists), slices it into per-shard sub-frontiers by id range, and
//! sends every spawned worker whose sub-frontier is non-empty a
//! [`Command::Step`] carrying the frontier ids plus the matching inbox
//! buffers (taken out of `Core::pending`) and an empty [`StagedShard`].
//! Workers owning no frontier node this round are **not woken at all** —
//! on a sparse round the rendezvous cost tracks the frontier, not the
//! thread count. Each dispatched worker steps exactly its frontier nodes,
//! validates their outboxes into the shard queue (per-worker
//! [`DupScratch`], so stamps can never alias across
//! concurrently-validating shards), and sends everything back together
//! with its shard-local awake list and termination votes. Meanwhile the
//! engine thread steps its own sub-frontier of shard 0 in place.
//!
//! The engine thread then merges the staged queues in shard order — which
//! is node-id order, because shards are contiguous and ascending and each
//! sub-frontier is sorted — doing all accounting (stats, trace, observer
//! hooks, pending inboxes) itself. The per-shard awake lists concatenate
//! in the same order into the next round's globally sorted awake list.
//! Every container round-trips through the channels and is recycled, so
//! the steady state stays allocation-free.
//!
//! The crate forbids `unsafe`, so workers are scoped threads: `run`
//! wraps the whole round loop in one `std::thread::scope`, and the
//! executor's channel senders drop when the loop ends, which makes each
//! worker's `recv` fail and the thread exit before the scope joins.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::{Scope, ScopedJoinHandle};

use crate::algorithm::{NodeAlgorithm, Quiescence};
use crate::config::FaultPlan;
use crate::error::SimError;
use crate::node::{NodeContext, NodeId, Outbox, Port};
use crate::topology::Topology;

use super::commit::{stage_outbox, DupScratch, Limits, StagedShard};
use super::{merge_schedule, step_node, Core, Executor, QuiescenceState};

/// Total worker threads ever spawned by pool executors, process-wide.
/// Exists so tests and benches can pin the "threads are created once per
/// run, never once per round" property: the counter's delta across a run
/// must equal the spawned-thread count (`workers - 1`, the engine thread
/// carrying shard 0 itself), independent of how many rounds ran.
static SPAWNED: AtomicU64 = AtomicU64::new(0);

/// One sub-frontier's worth of inbox buffers: `bufs[j]` holds the pending
/// messages for the frontier's `j`-th node. Shipped between the engine
/// and a worker each round with capacities intact.
type ShardInboxes<M> = Vec<Vec<(Port, M)>>;

/// Process-wide count of pool worker threads spawned so far; see
/// [`pool_workers_spawned`](crate::pool_workers_spawned).
pub(crate) fn workers_spawned() -> u64 {
    SPAWNED.load(Ordering::Relaxed)
}

/// Engine-to-worker commands.
enum Command<A: NodeAlgorithm> {
    /// Take ownership of the shard's node states (sent once, right after
    /// the engine thread ran `on_start`).
    Load(Vec<Option<A>>),
    /// Step the shard's sub-frontier for `round`: `inboxes[j]` belongs to
    /// node `frontier[j]`. Stage the resulting outboxes into `shard` and
    /// fill `awake` with the frontier nodes still active afterwards.
    /// `awake` arrives cleared; it rides along purely for recycling.
    Step {
        round: u64,
        frontier: Vec<NodeId>,
        inboxes: ShardInboxes<A::Message>,
        shard: StagedShard<A::Message>,
        awake: Vec<NodeId>,
    },
    /// Poll every shard node's current quiescence vote (for the run's
    /// termination certificate); the worker stays alive.
    Votes,
    /// Return the node states for output extraction; the worker exits.
    Finish,
}

/// Worker-to-engine replies.
enum Reply<A: NodeAlgorithm> {
    /// One stepped round: the frontier and its (drained, capacity-keeping)
    /// inbox buffers, the staged commit queue, the shard-local sorted
    /// awake list, and the shard's aggregated termination votes.
    Stepped {
        frontier: Vec<NodeId>,
        inboxes: ShardInboxes<A::Message>,
        shard: StagedShard<A::Message>,
        awake: Vec<NodeId>,
        votes: QuiescenceState,
    },
    /// Response to [`Command::Votes`]: the shard's final votes, in
    /// node-id order (ids are global).
    Votes(Vec<(NodeId, Quiescence)>),
    /// Response to [`Command::Finish`].
    Finished { nodes: Vec<Option<A>> },
}

struct Worker<'scope, A: NodeAlgorithm> {
    /// First node id of this worker's shard.
    base: usize,
    /// Number of nodes in the shard.
    len: usize,
    cmd: Sender<Command<A>>,
    reply: Receiver<Reply<A>>,
    _thread: ScopedJoinHandle<'scope, ()>,
}

/// The body of one worker thread: step the sub-frontier, stage its
/// outboxes, repeat until the command channel closes or `Finish` arrives.
fn worker_loop<A: NodeAlgorithm>(
    topology: &Topology,
    n: usize,
    base: usize,
    limits: Limits,
    faults: Option<FaultPlan>,
    cmd: Receiver<Command<A>>,
    reply: Sender<Reply<A>>,
) {
    let mut nodes: Vec<Option<A>> = Vec::new();
    let mut outboxes: Vec<Outbox<A::Message>> = Vec::new();
    let mut scratch = DupScratch::new(topology.max_degree());
    while let Ok(command) = cmd.recv() {
        match command {
            Command::Load(shard_nodes) => {
                nodes = shard_nodes;
            }
            Command::Step {
                round,
                frontier,
                mut inboxes,
                mut shard,
                mut awake,
            } => {
                let votes = step_shard(
                    topology,
                    n,
                    base,
                    round,
                    limits,
                    &faults,
                    &mut scratch,
                    &mut nodes,
                    &frontier,
                    &mut inboxes,
                    &mut outboxes,
                    &mut shard,
                    &mut awake,
                );
                if reply
                    .send(Reply::Stepped {
                        frontier,
                        inboxes,
                        shard,
                        awake,
                        votes,
                    })
                    .is_err()
                {
                    return; // engine gone (run aborted)
                }
            }
            Command::Votes => {
                let votes = nodes
                    .iter()
                    .enumerate()
                    .map(|(j, node)| {
                        let q = node.as_ref().expect("node state present").quiescence();
                        ((base + j) as NodeId, q)
                    })
                    .collect();
                if reply.send(Reply::Votes(votes)).is_err() {
                    return; // engine gone (run aborted)
                }
            }
            Command::Finish => {
                let _ = reply.send(Reply::Finished {
                    nodes: std::mem::take(&mut nodes),
                });
                return;
            }
        }
    }
}

/// Steps one shard's sub-frontier and stages its outboxes: the shared
/// body of the worker threads and of the engine thread's own shard 0.
/// `frontier` holds global node ids, ascending, all within
/// `base..base + nodes.len()`; `inboxes` and `outboxes` are positional to
/// it. Staging walks the frontier in id order and stops at the shard's
/// first validation error (mirroring the serial abort point) — nodes off
/// the frontier are inactive with empty inboxes, so they could not have
/// sent anything and the staged order equals full id order. Fills `awake`
/// (cleared first) with the frontier nodes reporting `is_active`
/// afterwards and returns the shard's aggregated termination votes over
/// exactly the frontier nodes.
#[allow(clippy::too_many_arguments)] // one shard-step, described flat
fn step_shard<A: NodeAlgorithm>(
    topology: &Topology,
    n: usize,
    base: usize,
    round: u64,
    limits: Limits,
    faults: &Option<FaultPlan>,
    scratch: &mut DupScratch,
    nodes: &mut [Option<A>],
    frontier: &[NodeId],
    inboxes: &mut [Vec<(Port, A::Message)>],
    outboxes: &mut Vec<Outbox<A::Message>>,
    shard: &mut StagedShard<A::Message>,
    awake: &mut Vec<NodeId>,
) -> QuiescenceState {
    while outboxes.len() < frontier.len() {
        outboxes.push(Outbox::new());
    }
    awake.clear();
    // Shard-locally every vote starts vacuously true; the engine thread
    // vetoes the global `shutdown` bit unless every node in the network
    // was polled this round. Counts start at zero and add up across
    // shards when the engine absorbs the replies.
    let mut votes = QuiescenceState {
        passive: true,
        shutdown: true,
        ..QuiescenceState::default()
    };
    for ((j, &v), inbox) in frontier.iter().enumerate().zip(inboxes.iter_mut()) {
        // Same crash rule as the serial executor: a crashed node's state
        // freezes (it can only be scheduled through the awake list — sends
        // to it were dropped at the validation point) and its frozen state
        // keeps voting.
        if faults.as_ref().is_some_and(|f| f.crashed(round, v)) {
            debug_assert!(inbox.is_empty(), "crashed node received a message");
        } else {
            step_node(
                topology,
                n,
                round,
                v,
                &mut nodes[v as usize - base],
                inbox,
                &mut outboxes[j],
            );
        }
        let node = nodes[v as usize - base]
            .as_ref()
            .expect("node state present");
        if node.is_active() {
            awake.push(v);
        }
        votes.vote(node.quiescence());
    }
    for (j, &v) in frontier.iter().enumerate() {
        if !stage_outbox(
            topology,
            limits,
            faults,
            scratch,
            v,
            &mut outboxes[j].items,
            round,
            shard,
        ) {
            break;
        }
    }
    votes
}

/// The pool executor. Lives inside the `thread::scope` that `run` opens;
/// dropping it (normally or on error) closes the command channels, which
/// terminates every worker before the scope joins them.
pub(crate) struct PoolExecutor<'t, 'scope, A: NodeAlgorithm> {
    topology: &'t Topology,
    n: usize,
    limits: Limits,
    faults: Option<FaultPlan>,
    /// All node states before `start` hands the spawned workers their
    /// shards; shard 0's states afterwards.
    nodes: Vec<Option<A>>,
    /// Shard 0's size — the engine thread steps these nodes itself.
    local_len: usize,
    /// This round's global schedule: sorted union of wake and awake.
    schedule: Vec<NodeId>,
    /// Nodes reporting `is_active` after their last step, globally
    /// sorted — rebuilt every round by concatenating the shard-local
    /// awake lists in shard order.
    awake: Vec<NodeId>,
    awake_next: Vec<NodeId>,
    /// Shard 0's slice of the schedule (copied out so `step` can borrow
    /// the node states mutably alongside it).
    local_frontier: Vec<NodeId>,
    /// Recycled inbox containers, outboxes, and awake list for shard 0.
    local_inboxes: ShardInboxes<A::Message>,
    local_outboxes: Vec<Outbox<A::Message>>,
    local_awake: Vec<NodeId>,
    /// Shard 0's staged commit queue (drained by every merge, so one
    /// long-lived instance suffices).
    local_shard: StagedShard<A::Message>,
    /// The spawned workers, owning shards 1.. in ascending node-id order.
    workers: Vec<Worker<'scope, A>>,
    /// Whether worker `w` was sent a `Step` this round (its sub-frontier
    /// was non-empty); only dispatched workers are awaited in `step` and
    /// merged in `commit`.
    dispatched: Vec<bool>,
    /// Staged queues received this round, one per spawned worker; merged
    /// by `commit` and recycled into `spare_shards`.
    staged: Vec<Option<StagedShard<A::Message>>>,
    spare_shards: Vec<StagedShard<A::Message>>,
    /// Recycled per-worker frontier / inbox / awake containers for the
    /// deliver phase.
    spare_frontiers: Vec<Vec<NodeId>>,
    spare_inboxes: Vec<ShardInboxes<A::Message>>,
    spare_awake: Vec<Vec<NodeId>>,
    quiescence: QuiescenceState,
    /// Scratch for the `on_start` commits and shard 0's staging, all on
    /// the engine thread.
    scratch: DupScratch,
    /// Outbox recycled across the `on_start` calls.
    start_outbox: Outbox<A::Message>,
}

impl<'t, 'scope, A> PoolExecutor<'t, 'scope, A>
where
    A: NodeAlgorithm + Send,
    A::Message: Send,
{
    /// Splits the node ids into `workers` (clamped to `1..=n`) contiguous
    /// shards, keeps shard 0 on the engine thread, and spawns one thread
    /// per remaining shard. This is the only place the pool creates
    /// threads; rounds are pure channel rendezvous.
    pub(crate) fn new<'env>(
        scope: &'scope Scope<'scope, 'env>,
        topology: &'t Topology,
        limits: Limits,
        faults: Option<FaultPlan>,
        nodes: Vec<Option<A>>,
        workers: usize,
    ) -> Self
    where
        't: 'scope,
        A: 'scope,
    {
        let n = nodes.len();
        let workers = workers.clamp(1, n.max(1));
        let chunk = n.div_ceil(workers).max(1);
        let local_len = chunk.min(n);
        let mut pool = Vec::with_capacity(workers.saturating_sub(1));
        for w in 1..workers {
            let base = (w * chunk).min(n);
            let len = chunk.min(n - base);
            let (cmd_tx, cmd_rx) = channel();
            let (reply_tx, reply_rx) = channel();
            SPAWNED.fetch_add(1, Ordering::Relaxed);
            // Each worker owns its copy of the (static, read-only) plan.
            let worker_faults = faults.clone();
            let thread = scope.spawn(move || {
                worker_loop::<A>(topology, n, base, limits, worker_faults, cmd_rx, reply_tx);
            });
            pool.push(Worker {
                base,
                len,
                cmd: cmd_tx,
                reply: reply_rx,
                _thread: thread,
            });
        }
        let spawned = pool.len();
        PoolExecutor {
            topology,
            n,
            limits,
            faults,
            nodes,
            local_len,
            schedule: Vec::new(),
            awake: Vec::new(),
            awake_next: Vec::new(),
            local_frontier: Vec::new(),
            local_inboxes: Vec::new(),
            local_outboxes: Vec::new(),
            local_awake: Vec::new(),
            local_shard: StagedShard::default(),
            dispatched: vec![false; spawned],
            staged: (0..spawned).map(|_| None).collect(),
            spare_shards: (0..spawned).map(|_| StagedShard::default()).collect(),
            spare_frontiers: (0..spawned).map(|_| Vec::new()).collect(),
            spare_inboxes: (0..spawned).map(|_| Vec::new()).collect(),
            spare_awake: (0..spawned).map(|_| Vec::new()).collect(),
            workers: pool,
            quiescence: QuiescenceState::default(),
            scratch: DupScratch::new(topology.max_degree()),
            start_outbox: Outbox::new(),
        }
    }
}

impl<A> Executor<A> for PoolExecutor<'_, '_, A>
where
    A: NodeAlgorithm + Send,
    A::Message: Send,
{
    fn start(&mut self, core: &mut Core<'_, A::Message>) -> Result<(), SimError> {
        // `on_start` and its commits run on the engine thread, exactly as
        // the serial executor does: round 0 has no step phase to shard.
        let n = self.n;
        {
            let handle = core.config.observer.clone();
            let mut observer = handle.as_ref().map(|h| h.lock());
            for v in 0..n {
                // Mirror the serial executor: nodes crashed at round 0
                // never run `on_start`.
                if self
                    .faults
                    .as_ref()
                    .is_some_and(|f| f.crashed(0, v as NodeId))
                {
                    continue;
                }
                let ctx = NodeContext {
                    node_id: v as NodeId,
                    num_nodes: n,
                    neighbor_ids: self.topology.neighbors(v as NodeId),
                    round: 0,
                };
                self.nodes[v]
                    .as_mut()
                    .expect("node state present")
                    .on_start(&ctx, &mut self.start_outbox);
                core.commit_outbox(
                    &mut observer,
                    &mut self.scratch,
                    v as NodeId,
                    &mut self.start_outbox.items,
                )?;
            }
        }
        // Seed the awake list and the termination votes with one full
        // scan, identically to the serial executor (crashed-at-0 nodes
        // participate with their frozen initial state).
        let mut quiescence = QuiescenceState::fold_start(n, n);
        for (v, node) in self.nodes.iter().enumerate() {
            let node = node.as_ref().expect("node state present");
            if node.is_active() {
                self.awake.push(v as NodeId);
            }
            quiescence.vote(node.quiescence());
        }
        self.quiescence = quiescence;
        // Hand each spawned worker its shard's node states — the only time
        // node state crosses threads until `into_outputs`. Shard 0 stays
        // in `self.nodes`.
        let mut rest = self.nodes.split_off(self.local_len).into_iter();
        for worker in &self.workers {
            let shard_nodes: Vec<Option<A>> = rest.by_ref().take(worker.len).collect();
            let _ = worker.cmd.send(Command::Load(shard_nodes));
        }
        Ok(())
    }

    fn schedule(&mut self, core: &mut Core<'_, A::Message>) -> u64 {
        merge_schedule(core.sorted_wake(), &self.awake, &mut self.schedule);
        core.clear_wake();
        self.schedule.len() as u64
    }

    fn deliver(&mut self, core: &mut Core<'_, A::Message>) {
        // Slice the sorted schedule into contiguous per-shard
        // sub-frontiers, move each frontier node's pending inbox into the
        // worker's (recycled) container, and dispatch; workers begin
        // stepping as soon as their own sub-frontier arrives, and workers
        // with an empty sub-frontier are not woken at all. Shard 0's
        // slice is copied out last — the engine thread steps it itself
        // during the step phase.
        let round = core.round;
        let local_end = self
            .schedule
            .partition_point(|&v| (v as usize) < self.local_len);
        let mut cursor = local_end;
        for (w, worker) in self.workers.iter().enumerate() {
            let shard_end = worker.base + worker.len;
            let end =
                cursor + self.schedule[cursor..].partition_point(|&v| (v as usize) < shard_end);
            let slice = &self.schedule[cursor..end];
            cursor = end;
            if slice.is_empty() {
                self.dispatched[w] = false;
                continue;
            }
            self.dispatched[w] = true;
            let mut frontier = std::mem::take(&mut self.spare_frontiers[w]);
            frontier.clear();
            frontier.extend_from_slice(slice);
            let mut inboxes = std::mem::take(&mut self.spare_inboxes[w]);
            for &v in &frontier {
                inboxes.push(std::mem::take(&mut core.pending[v as usize]));
            }
            let shard = std::mem::take(&mut self.spare_shards[w]);
            let awake = std::mem::take(&mut self.spare_awake[w]);
            let _ = worker.cmd.send(Command::Step {
                round,
                frontier,
                inboxes,
                shard,
                awake,
            });
        }
        self.local_frontier.clear();
        self.local_frontier
            .extend_from_slice(&self.schedule[..local_end]);
        for &v in &self.local_frontier {
            self.local_inboxes
                .push(std::mem::take(&mut core.pending[v as usize]));
        }
    }

    fn step(&mut self, core: &mut Core<'_, A::Message>) {
        // Step shard 0's sub-frontier on this thread while the dispatched
        // workers run, then rendezvous: collect every dispatched worker's
        // reply, restore the drained inbox buffers to `pending` (keeping
        // their capacity), concatenate the shard-local awake lists in
        // shard order (= globally sorted), fold the votes, and park the
        // staged queues for the commit phase.
        let mut votes = step_shard(
            self.topology,
            self.n,
            0,
            core.round,
            self.limits,
            &self.faults,
            &mut self.scratch,
            &mut self.nodes,
            &self.local_frontier,
            &mut self.local_inboxes,
            &mut self.local_outboxes,
            &mut self.local_shard,
            &mut self.local_awake,
        );
        for (j, buf) in self.local_inboxes.drain(..).enumerate() {
            core.pending[self.local_frontier[j] as usize] = buf;
        }
        self.awake_next.clear();
        self.awake_next.extend_from_slice(&self.local_awake);
        let mut polled = self.local_frontier.len();
        for (w, worker) in self.workers.iter().enumerate() {
            if !self.dispatched[w] {
                continue;
            }
            match worker.reply.recv() {
                Ok(Reply::Stepped {
                    frontier,
                    mut inboxes,
                    shard,
                    awake,
                    votes: shard_votes,
                }) => {
                    for (j, buf) in inboxes.drain(..).enumerate() {
                        core.pending[frontier[j] as usize] = buf;
                    }
                    self.awake_next.extend_from_slice(&awake);
                    polled += frontier.len();
                    votes.absorb(shard_votes);
                    self.spare_frontiers[w] = frontier;
                    self.spare_inboxes[w] = inboxes;
                    self.spare_awake[w] = awake;
                    self.staged[w] = Some(shard);
                }
                Ok(Reply::Votes(_)) => unreachable!("worker voted mid-run"),
                Ok(Reply::Finished { .. }) => unreachable!("worker finished mid-run"),
                Err(_) => panic!("pool worker {w} disconnected (node panic?)"),
            }
        }
        // Unanimous shutdown requires every node's consent; nodes off the
        // schedule are necessarily `Passive`, which vetoes it.
        votes.shutdown &= polled == self.n;
        self.quiescence = votes;
        std::mem::swap(&mut self.awake, &mut self.awake_next);
    }

    fn commit(&mut self, core: &mut Core<'_, A::Message>) -> Result<(), SimError> {
        let handle = core.config.observer.clone();
        let mut observer = handle.as_ref().map(|h| h.lock());
        // Shard 0 first, then the dispatched workers in ascending shard
        // order: exactly node-id order (undispatched shards staged
        // nothing).
        core.merge_shard(&mut observer, &mut self.local_shard)?;
        for w in 0..self.workers.len() {
            if !self.dispatched[w] {
                continue;
            }
            let mut shard = self.staged[w]
                .take()
                .expect("staged shard present after step");
            let merged = core.merge_shard(&mut observer, &mut shard);
            self.spare_shards[w] = shard;
            merged?;
        }
        Ok(())
    }

    fn quiescence(&self) -> QuiescenceState {
        self.quiescence
    }

    fn final_votes(&mut self) -> Vec<(NodeId, Quiescence)> {
        // Shard 0 locally, then each worker's shard in ascending shard
        // order — node-id order overall. Workers keep their states (the
        // `Finish` handoff happens later, in `into_outputs`).
        let mut votes: Vec<(NodeId, Quiescence)> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(v, node)| {
                let q = node.as_ref().expect("node state present").quiescence();
                (v as NodeId, q)
            })
            .collect();
        for worker in &self.workers {
            let _ = worker.cmd.send(Command::Votes);
        }
        for (w, worker) in self.workers.iter().enumerate() {
            match worker.reply.recv() {
                Ok(Reply::Votes(shard_votes)) => votes.extend(shard_votes),
                _ => panic!("pool worker {w} disconnected before voting"),
            }
        }
        votes
    }

    fn into_outputs(self, final_round: u64) -> Vec<A::Output> {
        let n = self.n;
        for worker in &self.workers {
            let _ = worker.cmd.send(Command::Finish);
        }
        let output_of = |v: NodeId, node: Option<A>| {
            let ctx = NodeContext {
                node_id: v,
                num_nodes: n,
                neighbor_ids: self.topology.neighbors(v),
                round: final_round,
            };
            node.expect("node state present").into_output(&ctx)
        };
        let mut outputs = Vec::with_capacity(n);
        for (j, node) in self.nodes.into_iter().enumerate() {
            outputs.push(output_of(j as NodeId, node));
        }
        for worker in &self.workers {
            match worker.reply.recv() {
                Ok(Reply::Finished { nodes }) => {
                    for (j, node) in nodes.into_iter().enumerate() {
                        outputs.push(output_of((worker.base + j) as NodeId, node));
                    }
                }
                _ => panic!("pool worker disconnected before finishing"),
            }
        }
        outputs
    }
}

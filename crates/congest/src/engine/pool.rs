//! The persistent-pool executor: long-lived worker threads created once
//! per run, with one channel rendezvous per round instead of a per-round
//! `thread::scope` spawn/join (the ~50–100 µs/round overhead PR 2
//! measured).
//!
//! # Protocol
//!
//! The node ids are split into `workers` contiguous shards of
//! `ceil(n / workers)` ids each. The **engine thread itself owns shard 0**
//! and only `workers - 1` threads are spawned: while the spawned workers
//! step their shards, the engine thread steps shard 0 instead of blocking,
//! so a pool of `k` workers uses exactly `k` threads of compute (not
//! `k + 1` with one parked) and the per-round rendezvous costs one
//! wake/park pair per *spawned* worker.
//!
//! Per round the engine thread sends every spawned worker a
//! [`Command::Step`] carrying the shard's inboxes plus an empty
//! [`StagedShard`]; each worker steps its nodes, validates their outboxes
//! into the shard queue (per-worker [`DupScratch`], so stamps can never
//! alias across concurrently-validating shards), and sends everything
//! back. Meanwhile the engine thread steps and stages shard 0 in place.
//! The engine thread then merges the queues in shard order — which is
//! node-id order, because shards are contiguous and ascending — doing all
//! accounting (stats, trace, observer hooks, pending inboxes) itself.
//! Every container round-trips through the channels and is recycled, so
//! the steady state stays allocation-free.
//!
//! The crate forbids `unsafe`, so workers are scoped threads: `run`
//! wraps the whole round loop in one `std::thread::scope`, and the
//! executor's channel senders drop when the loop ends, which makes each
//! worker's `recv` fail and the thread exit before the scope joins.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::{Scope, ScopedJoinHandle};

use crate::algorithm::NodeAlgorithm;
use crate::config::FaultPlan;
use crate::error::SimError;
use crate::node::{NodeContext, NodeId, Outbox, Port};
use crate::topology::Topology;

use super::commit::{stage_outbox, DupScratch, Limits, StagedShard};
use super::{step_node, Core, Executor};

/// Total worker threads ever spawned by pool executors, process-wide.
/// Exists so tests and benches can pin the "threads are created once per
/// run, never once per round" property: the counter's delta across a run
/// must equal the spawned-thread count (`workers - 1`, the engine thread
/// carrying shard 0 itself), independent of how many rounds ran.
static SPAWNED: AtomicU64 = AtomicU64::new(0);

/// One shard's worth of inbox buffers: `bufs[j]` holds the pending
/// messages for the shard's `j`-th node. Shipped between the engine and a
/// worker each round with capacities intact.
type ShardInboxes<M> = Vec<Vec<(Port, M)>>;

/// Process-wide count of pool worker threads spawned so far; see
/// [`pool_workers_spawned`](crate::pool_workers_spawned).
pub(crate) fn workers_spawned() -> u64 {
    SPAWNED.load(Ordering::Relaxed)
}

/// Engine-to-worker commands.
enum Command<A: NodeAlgorithm> {
    /// Take ownership of the shard's node states (sent once, right after
    /// the engine thread ran `on_start`).
    Load(Vec<Option<A>>),
    /// Step the shard for `round`: `inboxes[j]` belongs to node
    /// `base + j`. Stage the resulting outboxes into `shard`.
    Step {
        round: u64,
        inboxes: ShardInboxes<A::Message>,
        shard: StagedShard<A::Message>,
    },
    /// Return the node states for output extraction; the worker exits.
    Finish,
}

/// Worker-to-engine replies.
enum Reply<A: NodeAlgorithm> {
    /// One stepped round: the (drained, capacity-keeping) inbox buffers,
    /// the staged commit queue, and whether any shard node `is_active`.
    Stepped {
        inboxes: ShardInboxes<A::Message>,
        shard: StagedShard<A::Message>,
        any_active: bool,
    },
    /// Response to [`Command::Finish`].
    Finished { nodes: Vec<Option<A>> },
}

struct Worker<'scope, A: NodeAlgorithm> {
    /// First node id of this worker's shard.
    base: usize,
    /// Number of nodes in the shard.
    len: usize,
    cmd: Sender<Command<A>>,
    reply: Receiver<Reply<A>>,
    _thread: ScopedJoinHandle<'scope, ()>,
}

/// The body of one worker thread: step the shard, stage its outboxes,
/// repeat until the command channel closes or `Finish` arrives.
fn worker_loop<A: NodeAlgorithm>(
    topology: &Topology,
    n: usize,
    base: usize,
    limits: Limits,
    faults: Option<FaultPlan>,
    cmd: Receiver<Command<A>>,
    reply: Sender<Reply<A>>,
) {
    let mut nodes: Vec<Option<A>> = Vec::new();
    let mut outboxes: Vec<Outbox<A::Message>> = Vec::new();
    let mut scratch = DupScratch::new(topology.max_degree());
    while let Ok(command) = cmd.recv() {
        match command {
            Command::Load(shard_nodes) => {
                outboxes = (0..shard_nodes.len()).map(|_| Outbox::new()).collect();
                nodes = shard_nodes;
            }
            Command::Step {
                round,
                mut inboxes,
                mut shard,
            } => {
                let any_active = step_shard(
                    topology,
                    n,
                    base,
                    round,
                    limits,
                    &faults,
                    &mut scratch,
                    &mut nodes,
                    &mut inboxes,
                    &mut outboxes,
                    &mut shard,
                );
                if reply
                    .send(Reply::Stepped {
                        inboxes,
                        shard,
                        any_active,
                    })
                    .is_err()
                {
                    return; // engine gone (run aborted)
                }
            }
            Command::Finish => {
                let _ = reply.send(Reply::Finished {
                    nodes: std::mem::take(&mut nodes),
                });
                return;
            }
        }
    }
}

/// Steps one contiguous shard and stages its outboxes: the shared body of
/// the worker threads and of the engine thread's own shard 0. Staging
/// walks nodes in id order and stops at the shard's first validation
/// error (mirroring the serial abort point). Returns whether any shard
/// node `is_active`.
#[allow(clippy::too_many_arguments)] // one shard-step, described flat
fn step_shard<A: NodeAlgorithm>(
    topology: &Topology,
    n: usize,
    base: usize,
    round: u64,
    limits: Limits,
    faults: &Option<FaultPlan>,
    scratch: &mut DupScratch,
    nodes: &mut [Option<A>],
    inboxes: &mut [Vec<(Port, A::Message)>],
    outboxes: &mut [Outbox<A::Message>],
    shard: &mut StagedShard<A::Message>,
) -> bool {
    for (j, ((node, inbox), outbox)) in nodes
        .iter_mut()
        .zip(inboxes.iter_mut())
        .zip(outboxes.iter_mut())
        .enumerate()
    {
        let v = (base + j) as NodeId;
        // Same crash rule as the serial executor: a crashed node's state
        // freezes and its (empty-by-construction) inbox is left untouched.
        if faults.as_ref().is_some_and(|f| f.crashed(round, v)) {
            debug_assert!(inbox.is_empty(), "crashed node received a message");
            continue;
        }
        step_node(topology, n, round, v, node, inbox, outbox);
    }
    for (j, outbox) in outboxes.iter_mut().enumerate() {
        if !stage_outbox(
            topology,
            limits,
            faults,
            scratch,
            (base + j) as NodeId,
            &mut outbox.items,
            round,
            shard,
        ) {
            break;
        }
    }
    nodes
        .iter()
        .any(|node| node.as_ref().expect("node state present").is_active())
}

/// The pool executor. Lives inside the `thread::scope` that `run` opens;
/// dropping it (normally or on error) closes the command channels, which
/// terminates every worker before the scope joins them.
pub(crate) struct PoolExecutor<'t, 'scope, A: NodeAlgorithm> {
    topology: &'t Topology,
    n: usize,
    limits: Limits,
    faults: Option<FaultPlan>,
    /// All node states before `start` hands the spawned workers their
    /// shards; shard 0's states afterwards.
    nodes: Vec<Option<A>>,
    /// Shard 0's size — the engine thread steps these nodes itself.
    local_len: usize,
    /// Recycled inbox containers and outboxes for shard 0.
    local_inboxes: ShardInboxes<A::Message>,
    local_outboxes: Vec<Outbox<A::Message>>,
    /// Shard 0's staged commit queue (drained by every merge, so one
    /// long-lived instance suffices).
    local_shard: StagedShard<A::Message>,
    local_active: bool,
    /// The spawned workers, owning shards 1.. in ascending node-id order.
    workers: Vec<Worker<'scope, A>>,
    /// Staged queues received this round, one per spawned worker; merged
    /// by `commit` and recycled into `spare_shards`.
    staged: Vec<Option<StagedShard<A::Message>>>,
    spare_shards: Vec<StagedShard<A::Message>>,
    /// Recycled per-worker inbox containers for the deliver phase.
    spare_inboxes: Vec<ShardInboxes<A::Message>>,
    any_active: bool,
    /// Scratch for the `on_start` commits and shard 0's staging, all on
    /// the engine thread.
    scratch: DupScratch,
    /// Outbox recycled across the `on_start` calls.
    start_outbox: Outbox<A::Message>,
}

impl<'t, 'scope, A> PoolExecutor<'t, 'scope, A>
where
    A: NodeAlgorithm + Send,
    A::Message: Send,
{
    /// Splits the node ids into `workers` (clamped to `1..=n`) contiguous
    /// shards, keeps shard 0 on the engine thread, and spawns one thread
    /// per remaining shard. This is the only place the pool creates
    /// threads; rounds are pure channel rendezvous.
    pub(crate) fn new<'env>(
        scope: &'scope Scope<'scope, 'env>,
        topology: &'t Topology,
        limits: Limits,
        faults: Option<FaultPlan>,
        nodes: Vec<Option<A>>,
        workers: usize,
    ) -> Self
    where
        't: 'scope,
        A: 'scope,
    {
        let n = nodes.len();
        let workers = workers.clamp(1, n.max(1));
        let chunk = n.div_ceil(workers).max(1);
        let local_len = chunk.min(n);
        let mut pool = Vec::with_capacity(workers.saturating_sub(1));
        for w in 1..workers {
            let base = (w * chunk).min(n);
            let len = chunk.min(n - base);
            let (cmd_tx, cmd_rx) = channel();
            let (reply_tx, reply_rx) = channel();
            SPAWNED.fetch_add(1, Ordering::Relaxed);
            // Each worker owns its copy of the (static, read-only) plan.
            let worker_faults = faults.clone();
            let thread = scope.spawn(move || {
                worker_loop::<A>(topology, n, base, limits, worker_faults, cmd_rx, reply_tx);
            });
            pool.push(Worker {
                base,
                len,
                cmd: cmd_tx,
                reply: reply_rx,
                _thread: thread,
            });
        }
        let spawned = pool.len();
        PoolExecutor {
            topology,
            n,
            limits,
            faults,
            nodes,
            local_len,
            local_inboxes: Vec::new(),
            local_outboxes: (0..local_len).map(|_| Outbox::new()).collect(),
            local_shard: StagedShard::default(),
            local_active: false,
            staged: (0..spawned).map(|_| None).collect(),
            spare_shards: (0..spawned).map(|_| StagedShard::default()).collect(),
            spare_inboxes: (0..spawned).map(|_| Vec::new()).collect(),
            workers: pool,
            any_active: false,
            scratch: DupScratch::new(topology.max_degree()),
            start_outbox: Outbox::new(),
        }
    }
}

impl<A> Executor<A> for PoolExecutor<'_, '_, A>
where
    A: NodeAlgorithm + Send,
    A::Message: Send,
{
    fn start(&mut self, core: &mut Core<'_, A::Message>) -> Result<(), SimError> {
        // `on_start` and its commits run on the engine thread, exactly as
        // the serial executor does: round 0 has no step phase to shard.
        let n = self.n;
        {
            let handle = core.config.observer.clone();
            let mut observer = handle.as_ref().map(|h| h.lock());
            for v in 0..n {
                // Mirror the serial executor: nodes crashed at round 0
                // never run `on_start`.
                if self
                    .faults
                    .as_ref()
                    .is_some_and(|f| f.crashed(0, v as NodeId))
                {
                    continue;
                }
                let ctx = NodeContext {
                    node_id: v as NodeId,
                    num_nodes: n,
                    neighbor_ids: self.topology.neighbors(v as NodeId),
                    round: 0,
                };
                self.nodes[v]
                    .as_mut()
                    .expect("node state present")
                    .on_start(&ctx, &mut self.start_outbox);
                core.commit_outbox(
                    &mut observer,
                    &mut self.scratch,
                    v as NodeId,
                    &mut self.start_outbox.items,
                )?;
            }
        }
        self.any_active = self
            .nodes
            .iter()
            .any(|node| node.as_ref().expect("node state present").is_active());
        // Hand each spawned worker its shard's node states — the only time
        // node state crosses threads until `into_outputs`. Shard 0 stays
        // in `self.nodes`.
        let mut rest = self.nodes.split_off(self.local_len).into_iter();
        for worker in &self.workers {
            let shard_nodes: Vec<Option<A>> = rest.by_ref().take(worker.len).collect();
            let _ = worker.cmd.send(Command::Load(shard_nodes));
        }
        Ok(())
    }

    fn deliver(&mut self, core: &mut Core<'_, A::Message>) {
        // Move each shard's pending inboxes into the worker's (recycled)
        // container and dispatch; workers begin stepping as soon as their
        // own shard arrives. Shard 0's inboxes are pulled last — the
        // engine thread steps them itself during the step phase.
        let round = core.round;
        for (w, worker) in self.workers.iter().enumerate() {
            let mut inboxes = std::mem::take(&mut self.spare_inboxes[w]);
            for pending in &mut core.pending[worker.base..worker.base + worker.len] {
                inboxes.push(std::mem::take(pending));
            }
            let shard = std::mem::take(&mut self.spare_shards[w]);
            let _ = worker.cmd.send(Command::Step {
                round,
                inboxes,
                shard,
            });
        }
        for pending in &mut core.pending[..self.local_len] {
            self.local_inboxes.push(std::mem::take(pending));
        }
    }

    fn step(&mut self, core: &mut Core<'_, A::Message>) {
        // Step shard 0 on this thread while the spawned workers run, then
        // rendezvous: collect every worker's reply, restore the drained
        // inbox buffers to `pending` (keeping their capacity), and park
        // the staged queues for the commit phase.
        self.local_active = step_shard(
            self.topology,
            self.n,
            0,
            core.round,
            self.limits,
            &self.faults,
            &mut self.scratch,
            &mut self.nodes,
            &mut self.local_inboxes,
            &mut self.local_outboxes,
            &mut self.local_shard,
        );
        for (j, buf) in self.local_inboxes.drain(..).enumerate() {
            core.pending[j] = buf;
        }
        self.any_active = self.local_active;
        for (w, worker) in self.workers.iter().enumerate() {
            match worker.reply.recv() {
                Ok(Reply::Stepped {
                    mut inboxes,
                    shard,
                    any_active,
                }) => {
                    for (j, buf) in inboxes.drain(..).enumerate() {
                        core.pending[worker.base + j] = buf;
                    }
                    self.spare_inboxes[w] = inboxes;
                    self.staged[w] = Some(shard);
                    self.any_active |= any_active;
                }
                Ok(Reply::Finished { .. }) => unreachable!("worker finished mid-run"),
                Err(_) => panic!("pool worker {w} disconnected (node panic?)"),
            }
        }
    }

    fn commit(&mut self, core: &mut Core<'_, A::Message>) -> Result<(), SimError> {
        let handle = core.config.observer.clone();
        let mut observer = handle.as_ref().map(|h| h.lock());
        // Shard 0 first, then the spawned workers in ascending shard
        // order: exactly node-id order.
        core.merge_shard(&mut observer, &mut self.local_shard)?;
        for w in 0..self.workers.len() {
            let mut shard = self.staged[w]
                .take()
                .expect("staged shard present after step");
            let merged = core.merge_shard(&mut observer, &mut shard);
            self.spare_shards[w] = shard;
            merged?;
        }
        Ok(())
    }

    fn any_active(&self) -> bool {
        self.any_active
    }

    fn into_outputs(self, final_round: u64) -> Vec<A::Output> {
        let n = self.n;
        for worker in &self.workers {
            let _ = worker.cmd.send(Command::Finish);
        }
        let output_of = |v: NodeId, node: Option<A>| {
            let ctx = NodeContext {
                node_id: v,
                num_nodes: n,
                neighbor_ids: self.topology.neighbors(v),
                round: final_round,
            };
            node.expect("node state present").into_output(&ctx)
        };
        let mut outputs = Vec::with_capacity(n);
        for (j, node) in self.nodes.into_iter().enumerate() {
            outputs.push(output_of(j as NodeId, node));
        }
        for worker in &self.workers {
            match worker.reply.recv() {
                Ok(Reply::Finished { nodes }) => {
                    for (j, node) in nodes.into_iter().enumerate() {
                        outputs.push(output_of((worker.base + j) as NodeId, node));
                    }
                }
                _ => panic!("pool worker disconnected before finishing"),
            }
        }
        outputs
    }
}

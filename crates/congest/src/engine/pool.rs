//! The work-stealing pool executor: long-lived worker threads created
//! once per run, balancing each round's frontier dynamically over
//! fixed-size chunks instead of static id-range shards.
//!
//! # Protocol
//!
//! Each round the engine thread builds the global schedule (sorted union
//! of the wake and awake lists), carves the arrival arena over it, and
//! splits it into **chunks** of consecutive schedule positions. A chunk is
//! self-contained work: it carries its node ids, their algorithm states
//! (checked out of the [`NodeStore`] slab by `Option::take` — ownership
//! transfer is what makes concurrent stepping safe without `unsafe`),
//! their inbox slices (moved flat out of the arena), and an empty
//! [`StagedShard`] for the validated outboxes. Chunks are distributed in
//! contiguous blocks over one `Mutex<VecDeque>` **deque per worker**
//! (deque 0 belongs to the engine thread), and exactly the workers whose
//! deques received chunks are woken — a sparse round costs wakes
//! proportional to its frontier, never to the thread count.
//!
//! Every worker (the engine thread included) then runs the same drain
//! loop: pop a chunk from the front of its own deque; when that is empty,
//! **steal the back half** of the first non-empty victim deque (cyclic
//! scan). A stolen chunk keeps its `home` tag, so `stepped_by != home`
//! counts one steal. Stepping a chunk is two passes, exactly like the old
//! shard protocol: step every node (rebuilding the chunk-local awake list
//! and folding termination votes), then validate every outbox into the
//! chunk's staged queue, stopping at the chunk's first error (the serial
//! abort point). Finished chunks are sent to the engine over one shared
//! results channel.
//!
//! Determinism survives because nothing observable happens on a worker:
//! the engine thread collects all chunks, then replays them **in
//! chunk-index order** — which is node-id order, because chunks are
//! consecutive slices of the sorted schedule — restoring states to the
//! slab, concatenating the chunk-local awake lists, and (in the commit
//! phase) merging the staged queues through the same accounting path the
//! serial executor uses. *Which worker* stepped a chunk is the only
//! timing-dependent fact, and it is exported solely through the
//! steal/chunk telemetry ([`PoolSched`], `RunStats::steals`) that the
//! equality contracts deliberately exclude.
//!
//! Chunk size: [`Config::pool_chunk`] if set, else the `DAPSP_POOL_CHUNK`
//! environment variable, else adaptively `max(16, sched / (4 · workers))`
//! so every worker has a few chunks' worth of slack to steal. All chunk
//! containers are recycled through a [`Scratch`] pool, so the steady
//! state stays allocation-free.
//!
//! The crate forbids `unsafe`, so workers are scoped threads: `run` wraps
//! the whole round loop in one `std::thread::scope`, and the executor's
//! kick senders drop when the loop ends, which makes each worker's `recv`
//! fail and the thread exit before the scope joins. A worker that panics
//! mid-chunk trips its [`PanicFuse`], so the engine fails loudly instead
//! of waiting forever for the lost chunk.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{Scope, ScopedJoinHandle};

use crate::algorithm::{NodeAlgorithm, Quiescence};
use crate::churn::RoundChanges;
use crate::config::{Config, FaultPlan};
use crate::error::SimError;
use crate::node::{NodeContext, NodeId, Outbox, Port};
use crate::topology::Topology;

use super::commit::{stage_outbox, DupScratch, Limits, StagedShard};
use super::store::{NodeStore, Scratch};
use super::{step_node, Core, Executor, PoolSched, QuiescenceState};

/// Total worker threads ever spawned by pool executors, process-wide.
/// Exists so tests and benches can pin the "threads are created once per
/// run, never once per round" property: the counter's delta across a run
/// must equal the spawned-thread count (`workers - 1`, the engine thread
/// working deque 0 itself), independent of how many rounds ran.
static SPAWNED: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of pool worker threads spawned so far; see
/// [`pool_workers_spawned`](crate::pool_workers_spawned).
pub(crate) fn workers_spawned() -> u64 {
    SPAWNED.load(Ordering::Relaxed)
}

/// The effective fixed chunk-size override for a run: the config knob
/// wins, then the `DAPSP_POOL_CHUNK` environment variable (how CI forces
/// the stealing path on tiny graphs); `None` selects the per-round
/// adaptive size.
pub(crate) fn chunk_override(config: &Config) -> Option<usize> {
    config
        .pool_chunk
        .or_else(|| {
            std::env::var("DAPSP_POOL_CHUNK")
                .ok()
                .and_then(|s| s.parse().ok())
        })
        .map(|c: usize| c.max(1))
}

/// One unit of stealable work: a consecutive slice of the round's
/// schedule, carrying everything needed to step it off-thread and
/// everything produced by doing so. All containers are recycled through
/// the executor's [`Scratch`] pool.
struct Chunk<A: NodeAlgorithm> {
    /// The round this chunk belongs to (chunks are self-contained, so a
    /// worker still draining when the next round is enqueued stays
    /// correct).
    round: u64,
    /// Position of this chunk's slice in the schedule — the engine's
    /// replay key: ascending `index` is ascending node id.
    index: u32,
    /// The deque this chunk was initially pushed onto.
    home: u32,
    /// The worker that actually stepped it; `!= home` counts one steal.
    stepped_by: u32,
    /// The chunk's node ids (consecutive schedule entries, ascending).
    ids: Vec<NodeId>,
    /// The nodes' algorithm states, checked out of the store slab
    /// (positional to `ids`); returned by the engine after the step.
    states: Vec<Option<A>>,
    /// All arrivals of the chunk, flat; `inbox_lens[j]` of them belong to
    /// `ids[j]`, in arrival order.
    inbox_data: Vec<(Port, A::Message)>,
    /// Per-node arrival counts, positional to `ids`.
    inbox_lens: Vec<u32>,
    /// The validated outboxes, staged in id order up to the chunk's first
    /// validation error.
    shard: StagedShard<A::Message>,
    /// Chunk-local awake list (ids reporting `is_active` post-step),
    /// ascending.
    awake: Vec<NodeId>,
    /// Chunk-local termination vote aggregate.
    votes: QuiescenceState,
    /// Snapshot of the live (churned) topology this chunk must step
    /// against; `None` on unchurned runs (the executor's base reference
    /// is then current). Carried per chunk because a worker may still be
    /// draining round R when the engine mutates its view for round R+1.
    topo: Option<Arc<Topology>>,
}

impl<A: NodeAlgorithm> Default for Chunk<A> {
    fn default() -> Self {
        Chunk {
            round: 0,
            index: 0,
            home: 0,
            stepped_by: 0,
            ids: Vec::new(),
            states: Vec::new(),
            inbox_data: Vec::new(),
            inbox_lens: Vec::new(),
            shard: StagedShard::default(),
            awake: Vec::new(),
            votes: QuiescenceState::default(),
            topo: None,
        }
    }
}

impl<A: NodeAlgorithm> Chunk<A> {
    /// Empties every container (keeping capacity) so the chunk can go
    /// back into the spare pool.
    fn recycle(&mut self) {
        self.ids.clear();
        self.states.clear();
        self.inbox_data.clear();
        self.inbox_lens.clear();
        self.awake.clear();
        self.topo = None;
        debug_assert!(self.shard.entries.is_empty() && self.shard.error.is_none());
    }
}

/// One chunk deque per worker; index 0 is the engine thread's.
type Deques<A> = Vec<Mutex<VecDeque<Chunk<A>>>>;

/// Sent by a worker's [`PanicFuse`] when the worker unwinds: carries the
/// worker index so the engine can fail loudly instead of deadlocking on a
/// chunk that will never arrive.
struct WorkerPanic(usize);

/// What workers send back on the shared results channel.
type ChunkResult<A> = Result<Chunk<A>, WorkerPanic>;

/// Armed for a worker thread's whole life: if the thread unwinds (a node
/// algorithm or a debug assertion panicked mid-chunk), `Drop` runs during
/// the unwind and tells the engine, which re-panics on receipt. Normal
/// exit drops the fuse without `thread::panicking()` set, sending nothing.
struct PanicFuse<A: NodeAlgorithm> {
    me: usize,
    results: Sender<ChunkResult<A>>,
}

impl<A: NodeAlgorithm> Drop for PanicFuse<A> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let _ = self.results.send(Err(WorkerPanic(self.me)));
        }
    }
}

/// Pops one chunk for worker `me`: front of its own deque first, else the
/// first non-empty victim in cyclic order loses its back half (the chunks
/// the victim would reach last). The extra stolen chunks land on `me`'s
/// own deque — which is empty, or we would not be stealing.
fn grab<A: NodeAlgorithm>(deques: &Deques<A>, me: usize) -> Option<Chunk<A>> {
    if let Some(chunk) = deques[me].lock().expect("chunk deque poisoned").pop_front() {
        return Some(chunk);
    }
    let k = deques.len();
    for offset in 1..k {
        let victim = (me + offset) % k;
        let mut vq = deques[victim].lock().expect("chunk deque poisoned");
        let len = vq.len();
        if len == 0 {
            continue;
        }
        let mut stolen = vq.split_off(len / 2);
        drop(vq);
        let first = stolen.pop_front().expect("stole at least one chunk");
        if !stolen.is_empty() {
            deques[me]
                .lock()
                .expect("chunk deque poisoned")
                .append(&mut stolen);
        }
        return Some(first);
    }
    None
}

/// Steps one chunk in place: pass 1 steps every node (feeding each its
/// slice of the flat inbox data), rebuilding the chunk's awake list and
/// vote aggregate; pass 2 validates every outbox into the chunk's staged
/// queue, stopping at the first error exactly where the serial commit
/// would abort. Shared verbatim by the worker threads and the engine
/// thread's own drain loop.
#[allow(clippy::too_many_arguments)] // one chunk-step, described flat
fn step_chunk<A: NodeAlgorithm>(
    topology: &Topology,
    n: usize,
    limits: Limits,
    faults: &Option<FaultPlan>,
    scratch: &mut DupScratch,
    outboxes: &mut Vec<Outbox<A::Message>>,
    inbox_buf: &mut Vec<(Port, A::Message)>,
    chunk: &mut Chunk<A>,
    me: u32,
) {
    chunk.stepped_by = me;
    let Chunk {
        round,
        ids,
        states,
        inbox_data,
        inbox_lens,
        shard,
        awake,
        topo,
        ..
    } = chunk;
    let round = *round;
    // Step against the chunk's churned snapshot when one was stamped; the
    // executor's base reference is only current on unchurned runs.
    let topology: &Topology = topo.as_deref().unwrap_or(topology);
    while outboxes.len() < ids.len() {
        outboxes.push(Outbox::new());
    }
    awake.clear();
    // Chunk-locally every vote starts vacuously true; the engine thread
    // vetoes the global `shutdown` bit unless every node in the network
    // was polled this round. Counts start at zero and add up when the
    // engine absorbs the chunks.
    let mut votes = QuiescenceState {
        passive: true,
        shutdown: true,
        ..QuiescenceState::default()
    };
    let mut data = inbox_data.drain(..);
    for (j, &v) in ids.iter().enumerate() {
        inbox_buf.extend(data.by_ref().take(inbox_lens[j] as usize));
        // Same crash rule as the serial executor: a crashed node's state
        // freezes (it can only be scheduled through the awake list — sends
        // to it were dropped at the validation point) and its frozen state
        // keeps voting.
        if faults.as_ref().is_some_and(|f| f.crashed(round, v)) {
            debug_assert!(inbox_buf.is_empty(), "crashed node received a message");
            inbox_buf.clear();
        } else {
            step_node(
                topology,
                n,
                round,
                v,
                &mut states[j],
                inbox_buf,
                &mut outboxes[j],
            );
        }
        let node = states[j].as_ref().expect("node state present");
        if node.is_active() {
            awake.push(v);
        }
        votes.vote(node.quiescence());
    }
    drop(data);
    for (j, &v) in ids.iter().enumerate() {
        if !stage_outbox(
            topology,
            limits,
            faults,
            scratch,
            v,
            &mut outboxes[j].items,
            round,
            shard,
        ) {
            break;
        }
    }
    chunk.votes = votes;
}

/// The body of one worker thread: sleep until kicked, then drain chunks
/// (own deque first, stealing when empty) until the whole round is dry,
/// sending each stepped chunk back to the engine. Exits when the kick
/// channel closes (executor dropped) or the engine stops receiving.
#[allow(clippy::too_many_arguments)] // one worker's full context, described flat
fn worker_loop<A: NodeAlgorithm>(
    topology: &Topology,
    n: usize,
    me: usize,
    limits: Limits,
    faults: Option<FaultPlan>,
    deques: Arc<Deques<A>>,
    kick: Receiver<()>,
    results: Sender<ChunkResult<A>>,
) {
    let _fuse = PanicFuse {
        me,
        results: results.clone(),
    };
    let mut scratch = DupScratch::new(topology.max_degree());
    let mut outboxes: Vec<Outbox<A::Message>> = Vec::new();
    let mut inbox_buf: Vec<(Port, A::Message)> = Vec::new();
    while kick.recv().is_ok() {
        while let Some(mut chunk) = grab(&deques, me) {
            step_chunk(
                topology,
                n,
                limits,
                &faults,
                &mut scratch,
                &mut outboxes,
                &mut inbox_buf,
                &mut chunk,
                me as u32,
            );
            if results.send(Ok(chunk)).is_err() {
                return; // engine gone (run aborted)
            }
        }
    }
}

/// The work-stealing pool executor. Lives inside the `thread::scope` that
/// `run` opens; dropping it (normally or on error) closes the kick
/// channels, which terminates every worker before the scope joins them.
pub(crate) struct PoolExecutor<'t, 'scope, A: NodeAlgorithm> {
    topology: &'t Topology,
    n: usize,
    limits: Limits,
    faults: Option<FaultPlan>,
    /// All node state; chunks check states out per round and the engine
    /// checks them back in before the round's votes are read.
    store: NodeStore<A>,
    /// Fixed chunk size (config/env), `None` for per-round adaptive.
    chunk_cap: Option<usize>,
    deques: Arc<Deques<A>>,
    /// One wake signal per spawned worker (`kicks[w - 1]` is deque `w`'s
    /// owner); only workers whose deques received chunks are kicked.
    kicks: Vec<Sender<()>>,
    results: Receiver<ChunkResult<A>>,
    _threads: Vec<ScopedJoinHandle<'scope, ()>>,
    /// Chunks enqueued for the round in flight.
    total_chunks: usize,
    /// The round's stepped chunks, keyed by chunk index — the replay
    /// order; filled by `step`, drained (and recycled) by `commit`.
    done: Vec<Option<Chunk<A>>>,
    /// Recycled chunk containers.
    spare: Scratch<Chunk<A>>,
    quiescence: QuiescenceState,
    /// Scratch for the `on_start` commits and the engine thread's own
    /// chunk stepping.
    scratch: DupScratch,
    outboxes: Vec<Outbox<A::Message>>,
    inbox_buf: Vec<(Port, A::Message)>,
    /// Outbox recycled across the `on_start` calls.
    start_outbox: Outbox<A::Message>,
    /// Telemetry for the round in flight / the whole run.
    round_chunks: u64,
    round_steals: u64,
    steals_total: u64,
    chunks_per_worker: Vec<u64>,
    nodes_per_worker: Vec<u64>,
}

impl<'t, 'scope, A> PoolExecutor<'t, 'scope, A>
where
    A: NodeAlgorithm + Send,
    A::Message: Send,
{
    /// Creates the deques (one per worker, clamped to `1..=n`) and spawns
    /// `workers - 1` threads — the engine thread works deque 0 itself.
    /// This is the only place the pool creates threads; rounds are pure
    /// deque pushes plus one wake per busy worker.
    pub(crate) fn new<'env>(
        scope: &'scope Scope<'scope, 'env>,
        topology: &'t Topology,
        limits: Limits,
        faults: Option<FaultPlan>,
        store: NodeStore<A>,
        workers: usize,
        chunk_cap: Option<usize>,
    ) -> Self
    where
        't: 'scope,
        A: 'scope,
    {
        let n = store.len();
        let workers = workers.clamp(1, n.max(1));
        let deques: Arc<Deques<A>> =
            Arc::new((0..workers).map(|_| Mutex::new(VecDeque::new())).collect());
        let (results_tx, results_rx) = channel();
        let mut kicks = Vec::with_capacity(workers.saturating_sub(1));
        let mut threads = Vec::with_capacity(workers.saturating_sub(1));
        for me in 1..workers {
            let (kick_tx, kick_rx) = channel();
            SPAWNED.fetch_add(1, Ordering::Relaxed);
            // Each worker owns its copy of the (static, read-only) plan
            // and a clone of the shared deques and results sender.
            let worker_faults = faults.clone();
            let worker_deques = Arc::clone(&deques);
            let worker_results = results_tx.clone();
            threads.push(scope.spawn(move || {
                worker_loop::<A>(
                    topology,
                    n,
                    me,
                    limits,
                    worker_faults,
                    worker_deques,
                    kick_rx,
                    worker_results,
                );
            }));
            kicks.push(kick_tx);
        }
        // The engine keeps no sender: once every worker exits, the results
        // channel closes and a blocked `recv` fails loudly instead of
        // hanging.
        drop(results_tx);
        PoolExecutor {
            topology,
            n,
            limits,
            faults,
            store,
            chunk_cap,
            deques,
            kicks,
            results: results_rx,
            _threads: threads,
            total_chunks: 0,
            done: Vec::new(),
            spare: Scratch::new(),
            quiescence: QuiescenceState::default(),
            scratch: DupScratch::new(topology.max_degree()),
            outboxes: Vec::new(),
            inbox_buf: Vec::new(),
            start_outbox: Outbox::new(),
            round_chunks: 0,
            round_steals: 0,
            steals_total: 0,
            chunks_per_worker: vec![0; workers],
            nodes_per_worker: vec![0; workers],
        }
    }
}

impl<A> Executor<A> for PoolExecutor<'_, '_, A>
where
    A: NodeAlgorithm + Send,
    A::Message: Send,
{
    fn start(&mut self, core: &mut Core<'_, A::Message>) -> Result<(), SimError> {
        // `on_start` and its commits run on the engine thread, exactly as
        // the serial executor does: round 0 has no step phase to chunk.
        let n = self.n;
        {
            let handle = core.config.observer.clone();
            let mut observer = handle.as_ref().map(|h| h.lock());
            for v in 0..n {
                // Mirror the serial executor: nodes crashed at round 0
                // never run `on_start`.
                if self
                    .faults
                    .as_ref()
                    .is_some_and(|f| f.crashed(0, v as NodeId))
                {
                    continue;
                }
                let ctx = NodeContext {
                    node_id: v as NodeId,
                    num_nodes: n,
                    neighbor_ids: self.topology.neighbors(v as NodeId),
                    round: 0,
                };
                self.store
                    .state_mut(v as NodeId)
                    .on_start(&ctx, &mut self.start_outbox);
                core.commit_outbox(
                    &mut observer,
                    &mut self.scratch,
                    v as NodeId,
                    &mut self.start_outbox.items,
                )?;
            }
        }
        // Seed the awake list and the termination votes with one full
        // scan, identically to the serial executor (crashed-at-0 nodes
        // participate with their frozen initial state).
        self.quiescence = self.store.seed_awake_and_votes();
        Ok(())
    }

    fn schedule(&mut self, core: &mut Core<'_, A::Message>) -> u64 {
        let scheduled = self.store.build_schedule(core.sorted_wake());
        core.clear_wake();
        scheduled
    }

    fn deliver(&mut self, core: &mut Core<'_, A::Message>) {
        // Carve the arena, cut the schedule into chunks, check the chunk's
        // states out of the slab, and enqueue — then wake exactly the
        // workers whose deques got work. Workers begin stepping (and
        // stealing) immediately; the engine thread joins in during the
        // step phase.
        core.arrivals.carve(&self.store.schedule);
        self.round_chunks = 0;
        self.round_steals = 0;
        self.total_chunks = 0;
        let sched = self.store.schedule.len();
        if sched == 0 {
            return;
        }
        let k = self.deques.len();
        let size = self
            .chunk_cap
            .unwrap_or_else(|| sched.div_ceil(k * 4).max(16))
            .max(1);
        let chunks = sched.div_ceil(size);
        let per_deque = chunks.div_ceil(k);
        self.total_chunks = chunks;
        if self.done.len() < chunks {
            self.done.resize_with(chunks, || None);
        }
        let round = core.round;
        for index in 0..chunks {
            let lo = index * size;
            let hi = (lo + size).min(sched);
            let mut chunk = self.spare.get();
            chunk.round = round;
            chunk.index = index as u32;
            chunk.home = (index / per_deque) as u32;
            chunk.topo = core.churn.as_ref().map(|c| Arc::clone(&c.topo));
            for (pos, &v) in self.store.schedule[lo..hi].iter().enumerate() {
                chunk.ids.push(v);
                let before = chunk.inbox_data.len();
                core.arrivals.take_into(lo + pos, &mut chunk.inbox_data);
                chunk
                    .inbox_lens
                    .push((chunk.inbox_data.len() - before) as u32);
                chunk.states.push(self.store.slots[v as usize].take());
            }
            self.deques[chunk.home as usize]
                .lock()
                .expect("chunk deque poisoned")
                .push_back(chunk);
        }
        for (w, kick) in self.kicks.iter().enumerate() {
            let busy = !self.deques[w + 1]
                .lock()
                .expect("chunk deque poisoned")
                .is_empty();
            if busy {
                let _ = kick.send(());
            }
        }
    }

    fn step(&mut self, core: &mut Core<'_, A::Message>) {
        // Work deque 0 (and steal) on this thread until the round is dry,
        // then collect the remaining chunks from the workers and replay
        // everything in chunk-index order: states back into the slab,
        // awake lists concatenated (= globally sorted), votes folded,
        // telemetry booked. The staged queues stay parked in `done` for
        // the commit phase.
        let _ = core;
        let chunks = self.total_chunks;
        let mut local = 0usize;
        while let Some(mut chunk) = grab(&self.deques, 0) {
            step_chunk(
                self.topology,
                self.n,
                self.limits,
                &self.faults,
                &mut self.scratch,
                &mut self.outboxes,
                &mut self.inbox_buf,
                &mut chunk,
                0,
            );
            let at = chunk.index as usize;
            self.done[at] = Some(chunk);
            local += 1;
        }
        for _ in 0..chunks - local {
            match self.results.recv() {
                Ok(Ok(chunk)) => {
                    let at = chunk.index as usize;
                    self.done[at] = Some(chunk);
                }
                Ok(Err(WorkerPanic(w))) => {
                    panic!("pool worker {w} panicked while stepping a chunk")
                }
                Err(_) => panic!("pool worker disconnected (node panic?)"),
            }
        }
        let mut votes = QuiescenceState {
            passive: true,
            shutdown: true,
            ..QuiescenceState::default()
        };
        let NodeStore {
            slots, awake_next, ..
        } = &mut self.store;
        awake_next.clear();
        let mut polled = 0usize;
        for done in self.done[..chunks].iter_mut() {
            let chunk = done.as_mut().expect("chunk stepped");
            for (j, &v) in chunk.ids.iter().enumerate() {
                slots[v as usize] = chunk.states[j].take();
            }
            awake_next.extend_from_slice(&chunk.awake);
            votes.absorb(chunk.votes);
            polled += chunk.ids.len();
            let by = chunk.stepped_by as usize;
            self.chunks_per_worker[by] += 1;
            self.nodes_per_worker[by] += chunk.ids.len() as u64;
            if chunk.stepped_by != chunk.home {
                self.round_steals += 1;
            }
        }
        self.round_chunks = chunks as u64;
        self.steals_total += self.round_steals;
        // Unanimous shutdown requires every node's consent; nodes off the
        // schedule are necessarily `Passive`, which vetoes it.
        votes.shutdown &= polled == self.n;
        self.quiescence = votes;
        self.store.publish_awake();
    }

    fn commit(&mut self, core: &mut Core<'_, A::Message>) -> Result<(), SimError> {
        let handle = core.config.observer.clone();
        let mut observer = handle.as_ref().map(|h| h.lock());
        // Replay the staged queues in chunk-index order — node-id order,
        // since chunks are consecutive slices of the sorted schedule —
        // recycling each chunk as it drains. An error aborts exactly where
        // the serial commit would: after the partial accounting that
        // precedes the faulty item, with later chunks never booked.
        for index in 0..self.total_chunks {
            let mut chunk = self.done[index].take().expect("chunk stepped");
            let merged = core.merge_shard(&mut observer, &mut chunk.shard);
            chunk.recycle();
            self.spare.put(chunk);
            merged?;
        }
        Ok(())
    }

    fn notify_topology(
        &mut self,
        core: &mut Core<'_, A::Message>,
        topo: &Topology,
        changes: &RoundChanges,
    ) -> (u64, u64) {
        // Runs on the engine thread, between rounds: every chunk of the
        // previous round has been replayed, so the slab is whole.
        self.store
            .notify_topology(topo, &core.config.faults, core.round, changes)
    }

    fn quiescence(&self) -> QuiescenceState {
        self.quiescence
    }

    fn final_votes(&mut self) -> Vec<(NodeId, Quiescence)> {
        self.store.final_votes()
    }

    fn round_telemetry(&self) -> (u64, u64) {
        (self.round_chunks, self.round_steals)
    }

    fn sched(&self) -> Option<PoolSched> {
        Some(PoolSched {
            workers: self.deques.len(),
            chunk_size: self.chunk_cap,
            chunks_per_worker: self.chunks_per_worker.clone(),
            nodes_per_worker: self.nodes_per_worker.clone(),
            steals: self.steals_total,
        })
    }

    fn into_outputs(self, topology: &Topology, final_round: u64) -> Vec<A::Output> {
        // Dropping `self` right after closes the kick channels; every
        // worker's `recv` then fails and the thread exits before the
        // enclosing scope joins it.
        self.store.into_outputs(topology, final_round)
    }
}

//! A bounded event log for debugging and invariant testing.
//!
//! When [`Config::trace`](crate::Config::trace) is enabled, the simulator
//! records one [`Event`] per delivered message. Tests use the trace to check
//! structural claims about executions — for instance Lemma 1 of the paper
//! (no node is simultaneously active for two BFS waves) is verified by
//! inspecting delivery events rather than by trusting the algorithm.

use crate::node::{NodeId, Port};

/// One message delivery, as seen by the receiver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// The round in which the message was delivered.
    pub round: u64,
    /// The sending node.
    pub from: NodeId,
    /// The receiving node.
    pub to: NodeId,
    /// The receiver's port the message arrived on.
    pub port: Port,
    /// The message's size in bits.
    pub bits: u32,
    /// A short, algorithm-chosen description of the payload (the `Debug`
    /// rendering of the message).
    pub payload: String,
}

/// An append-only, capacity-bounded list of [`Event`]s.
///
/// Once `capacity` events have been recorded further events are counted but
/// dropped, so tracing long runs cannot exhaust memory.
#[derive(Clone, Debug)]
pub struct Trace {
    events: Vec<Event>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates an empty trace holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    pub(crate) fn record(&mut self, event: Event) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in delivery order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// How many events were dropped after the capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Default for Trace {
    /// A trace with a one-million-event capacity.
    fn default() -> Self {
        Trace::new(1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(round: u64) -> Event {
        Event {
            round,
            from: 0,
            to: 1,
            port: 0,
            bits: 4,
            payload: "x".into(),
        }
    }

    #[test]
    fn bounded_capacity_drops_overflow() {
        let mut t = Trace::new(2);
        t.record(ev(1));
        t.record(ev(2));
        t.record(ev(3));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn default_is_large() {
        assert!(Trace::default().capacity >= 1_000_000);
    }
}

//! A bounded event log for debugging and invariant testing.
//!
//! When [`Config::trace`](crate::Config::trace) is enabled, the simulator
//! records one [`Event`] per delivered message. Tests use the trace to check
//! structural claims about executions — for instance Lemma 1 of the paper
//! (no node is simultaneously active for two BFS waves) is verified by
//! inspecting delivery events rather than by trusting the algorithm.
//!
//! `Trace` is a thin adapter over the structured trace subsystem's
//! [`Ring`] buffer (configured keep-first: the ring's
//! pinned prefix is the whole capacity), so overflow accounting —
//! [`Trace::dropped`], [`Trace::truncated`], [`Trace::total_events`] — is
//! exact by construction. For typed, causally-linked events with per-kernel
//! attribution, attach a [`TraceRecorder`](crate::trace2::TraceRecorder)
//! observer instead.

use crate::node::{NodeId, Port};
use crate::trace2::Ring;

/// One message delivery, as seen by the receiver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// The round in which the message was delivered.
    pub round: u64,
    /// The sending node.
    pub from: NodeId,
    /// The receiving node.
    pub to: NodeId,
    /// The receiver's port the message arrived on.
    pub port: Port,
    /// The message's size in bits.
    pub bits: u32,
    /// A short, algorithm-chosen description of the payload (the `Debug`
    /// rendering of the message).
    pub payload: String,
}

/// An append-only, capacity-bounded list of [`Event`]s.
///
/// Once `capacity` events have been recorded further events are counted but
/// dropped, so tracing long runs cannot exhaust memory.
#[derive(Clone, Debug)]
pub struct Trace {
    ring: Ring<Event>,
}

impl Trace {
    /// Default stored-event capacity (one million events); see
    /// [`Config::with_trace_capacity`](crate::Config::with_trace_capacity)
    /// to override it per run.
    pub const DEFAULT_CAPACITY: usize = 1_000_000;

    /// Creates an empty trace holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Trace {
            // Keep-first semantics: the whole capacity is pinned prefix.
            ring: Ring::new(capacity, 0),
        }
    }

    pub(crate) fn record(&mut self, event: Event) {
        self.ring.push(event);
    }

    /// Whether the next [`Trace::record`] would store its event. When this
    /// is `false` the engine skips building the event entirely — in
    /// particular the `format!("{msg:?}")` payload rendering — and calls
    /// [`Trace::count_overflow`] instead, so a truncated trace costs one
    /// counter increment per message rather than an allocation.
    pub(crate) fn will_store(&self) -> bool {
        self.ring.stored() < self.ring.prefix_capacity()
    }

    /// Counts an event past capacity without materializing it. Equivalent
    /// to `record(..)` once the trace is full.
    pub(crate) fn count_overflow(&mut self) {
        self.ring.skip();
    }

    /// The stored-event capacity.
    pub fn capacity(&self) -> usize {
        self.ring.prefix_capacity()
    }

    /// The recorded events, in delivery order.
    pub fn events(&self) -> &[Event] {
        self.ring.prefix()
    }

    /// How many events were dropped after the capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.ring.overflow()
    }

    /// Whether any event was dropped, i.e. [`Trace::events`] is an
    /// incomplete record of the run. A caller analyzing a trace should
    /// check this before trusting absence-of-event conclusions.
    pub fn truncated(&self) -> bool {
        self.ring.overflow() > 0
    }

    /// Total events the run produced — stored plus dropped.
    pub fn total_events(&self) -> u64 {
        self.ring.total_pushed()
    }
}

impl Default for Trace {
    /// A trace with the [`Trace::DEFAULT_CAPACITY`] event capacity.
    fn default() -> Self {
        Trace::new(Trace::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(round: u64) -> Event {
        Event {
            round,
            from: 0,
            to: 1,
            port: 0,
            bits: 4,
            payload: "x".into(),
        }
    }

    #[test]
    fn bounded_capacity_drops_overflow() {
        let mut t = Trace::new(2);
        t.record(ev(1));
        assert!(!t.truncated());
        t.record(ev(2));
        t.record(ev(3));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 1);
        assert!(t.truncated());
        assert_eq!(t.total_events(), 3);
        // Keep-first semantics: the stored events are the earliest ones.
        assert_eq!(t.events()[0].round, 1);
        assert_eq!(t.events()[1].round, 2);
    }

    #[test]
    fn default_is_large() {
        assert!(Trace::default().capacity() >= Trace::DEFAULT_CAPACITY);
    }

    #[test]
    fn overflow_counting_matches_record() {
        let mut t = Trace::new(1);
        assert!(t.will_store());
        t.record(ev(1));
        assert!(!t.will_store());
        t.count_overflow();
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.total_events(), 2);
        assert!(t.truncated());
    }
}

//! Simulation parameters.

use crate::message::bits_for_id;
use crate::obs::ObserverHandle;

/// Deterministic message-loss injection: each delivery is dropped
/// independently with `probability`, decided by a hash of
/// `(seed, round, sender, port)` — reproducible across runs.
///
/// The paper's model assumes reliable links; loss plans exist to *test*
/// that assumption (algorithms are expected to miscompute or stall, and
/// callers to detect it).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LossPlan {
    /// Per-message drop probability in `[0, 1]`.
    pub probability: f64,
    /// Seed of the deterministic drop decisions.
    pub seed: u64,
}

impl LossPlan {
    /// Whether the message sent by `node` on `port` in `round` is dropped.
    pub fn drops(&self, round: u64, node: u32, port: u32) -> bool {
        if self.probability <= 0.0 {
            return false;
        }
        if self.probability >= 1.0 {
            return true;
        }
        // SplitMix64-style hash of the coordinates.
        let mut z = self
            .seed
            .wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(u64::from(node) << 32)
            .wrapping_add(u64::from(port));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z as f64 / u64::MAX as f64) < self.probability
    }
}

/// Which executor drives the round pipeline in
/// [`Simulator::run`](crate::Simulator::run).
///
/// Every executor produces bit-for-bit identical runs — outputs,
/// statistics, traces, observer events, and metric streams — because
/// outboxes are always validated and booked in node-id order. The choice
/// only affects wall-clock time (see `DESIGN.md` §"Phase pipeline").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecutorKind {
    /// Single-threaded, in-place pipeline: every phase runs on the calling
    /// thread with zero coordination overhead. The default.
    #[default]
    Serial,
    /// A persistent pool of worker threads created once per run (never per
    /// round). Workers step disjoint shards of consecutive node ids and
    /// stage validated outbound messages into per-worker commit queues;
    /// the engine merges the queues in node-id order on the calling
    /// thread. The calling thread doubles as the first worker (it steps
    /// shard 0 itself), so `workers` threads of compute spawn only
    /// `workers - 1` new threads.
    Pool {
        /// Number of worker threads. Clamped at run time to
        /// `1..=num_nodes`, so oversubscribing a small network degrades to
        /// one node per worker rather than idle threads.
        workers: usize,
    },
}

impl ExecutorKind {
    /// The number of node-stepping threads this executor uses (1 for
    /// [`ExecutorKind::Serial`], before per-run clamping for pools).
    pub fn threads(&self) -> usize {
        match self {
            ExecutorKind::Serial => 1,
            ExecutorKind::Pool { workers } => (*workers).max(1),
        }
    }

    /// A short stable name for logs and benchmark rows: `"serial"` or
    /// `"pool"`.
    pub fn name(&self) -> &'static str {
        match self {
            ExecutorKind::Serial => "serial",
            ExecutorKind::Pool { .. } => "pool",
        }
    }
}

/// Parameters of a simulation run.
///
/// Construct with [`Config::for_n`] for the paper's standard setting
/// (`B = Θ(log n)`), then adjust fields with the builder-style setters.
///
/// # Examples
///
/// ```
/// use dapsp_congest::Config;
///
/// let cfg = Config::for_n(1024).with_max_rounds(50_000);
/// assert_eq!(cfg.bandwidth_bits, 2 * 10 + 8);
/// ```
#[derive(Clone, Debug)]
pub struct Config {
    /// Per-edge, per-direction, per-round bandwidth `B` in bits.
    pub bandwidth_bits: u32,
    /// The CONGEST contract `B = c·⌈log₂ n⌉ + O(1)` as an *enforced*
    /// invariant: in builds with debug assertions, the engine panics if any
    /// message's declared width exceeds this budget (both executors check
    /// it at the single validation point every message passes through).
    /// `None` disables the check. [`Config::for_n`] sets it to the
    /// bandwidth, and [`Config::with_bandwidth_bits`] keeps the two in
    /// sync; decouple them with [`Config::with_message_budget`] to assert
    /// a budget tighter than the transport allows.
    pub message_budget: Option<u32>,
    /// Hard cap on the number of rounds; exceeding it aborts the run with
    /// [`SimError::RoundLimitExceeded`](crate::SimError::RoundLimitExceeded).
    pub max_rounds: u64,
    /// Whether to record a (bounded) event trace; see [`crate::trace`].
    pub trace: bool,
    /// Capacity of the event trace when `trace` is set (default
    /// [`Trace::DEFAULT_CAPACITY`](crate::Trace::DEFAULT_CAPACITY)); events
    /// past it are counted but not stored, and the trace reports itself
    /// [`truncated`](crate::Trace::truncated).
    pub trace_capacity: usize,
    /// Whether to record the per-round delivered-message counts in
    /// [`Report::round_profile`](crate::Report::round_profile).
    pub round_profile: bool,
    /// Optional deterministic message-loss injection.
    pub loss: Option<LossPlan>,
    /// Which executor drives the round pipeline (default
    /// [`ExecutorKind::Serial`]). Any choice produces bit-for-bit identical
    /// runs: outboxes are always committed in node-id order, so outputs,
    /// statistics, traces, and round counts do not depend on this.
    pub executor: ExecutorKind,
    /// Optional observer receiving round/message/timing events as the run
    /// executes (see [`crate::obs`]). `None` — the default — keeps every
    /// hook site a single branch, so observation is free when disabled.
    pub observer: Option<ObserverHandle>,
    /// Label attached to this run in observer events and recorded metric
    /// streams; composite pipelines set one per phase (e.g. `"apsp:waves"`).
    pub phase: String,
}

/// Equality over the *simulation semantics* only: the `observer` handle is
/// ignored (two configs that simulate identically compare equal whether or
/// not someone is watching), mirroring how
/// [`RunStats`](crate::RunStats)' equality ignores wall time. The `phase`
/// label participates: it is part of what a run reports about itself.
impl PartialEq for Config {
    fn eq(&self, other: &Self) -> bool {
        self.bandwidth_bits == other.bandwidth_bits
            && self.message_budget == other.message_budget
            && self.max_rounds == other.max_rounds
            && self.trace == other.trace
            && self.trace_capacity == other.trace_capacity
            && self.round_profile == other.round_profile
            && self.loss == other.loss
            && self.executor == other.executor
            && self.phase == other.phase
    }
}

impl Config {
    /// The standard CONGEST setting for an `n`-node network:
    /// `B = 2·⌈log₂ n⌉ + 8` bits — enough for one node id, one hop count,
    /// and a small message tag, i.e. "a constant number of node or edge IDs
    /// per message" (§2 of the paper).
    ///
    /// The round limit defaults to `max(10_000, 64·n)`, far above any of the
    /// `O(n)` algorithms in this crate family, so hitting it indicates a
    /// bug (e.g. a message loop) rather than a slow algorithm.
    pub fn for_n(n: usize) -> Self {
        Config {
            bandwidth_bits: 2 * bits_for_id(n) + 8,
            message_budget: Some(2 * bits_for_id(n) + 8),
            max_rounds: 10_000u64.max(64 * n as u64),
            trace: false,
            trace_capacity: crate::trace::Trace::DEFAULT_CAPACITY,
            round_profile: false,
            loss: None,
            executor: ExecutorKind::Serial,
            observer: None,
            phase: String::new(),
        }
    }

    /// Overrides the bandwidth `B` (bits per edge-direction per round).
    ///
    /// The debug-build message budget follows the bandwidth (workloads that
    /// widen `B` for fixed-width tokens stay consistent); set a tighter
    /// budget afterwards with [`Config::with_message_budget`].
    pub fn with_bandwidth_bits(mut self, bits: u32) -> Self {
        self.bandwidth_bits = bits;
        self.message_budget = Some(bits);
        self
    }

    /// Overrides the debug-build message-width budget independently of the
    /// transport bandwidth (`None` disables the check). See
    /// [`Config::message_budget`].
    pub fn with_message_budget(mut self, budget: Option<u32>) -> Self {
        self.message_budget = budget;
        self
    }

    /// Overrides the round budget.
    pub fn with_max_rounds(mut self, rounds: u64) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Enables event tracing (see [`crate::trace`]).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Injects deterministic message loss (see [`LossPlan`]).
    pub fn with_loss(mut self, probability: f64, seed: u64) -> Self {
        self.loss = Some(LossPlan { probability, seed });
        self
    }

    /// Records per-round delivered-message counts in the report.
    pub fn with_round_profile(mut self) -> Self {
        self.round_profile = true;
        self
    }

    /// Steps nodes on `threads` worker threads each round. Maps onto the
    /// executor selection: `threads <= 1` keeps [`ExecutorKind::Serial`],
    /// anything larger selects [`ExecutorKind::Pool`] with that many
    /// workers. The simulation stays deterministic: results are identical
    /// to a sequential run, only wall-clock time changes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.executor = if threads <= 1 {
            ExecutorKind::Serial
        } else {
            ExecutorKind::Pool { workers: threads }
        };
        self
    }

    /// Selects the round-pipeline executor explicitly (see
    /// [`ExecutorKind`]). [`Config::with_threads`] is the thread-count
    /// shorthand for the same choice.
    pub fn with_executor(mut self, executor: ExecutorKind) -> Self {
        self.executor = executor;
        self
    }

    /// The configured number of node-stepping threads (1 for the serial
    /// executor).
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }

    /// Caps the event trace at `capacity` stored events (and implies
    /// `with_trace`). Overflowing events are counted, not stored; see
    /// [`Trace::truncated`](crate::Trace::truncated).
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace = true;
        self.trace_capacity = capacity;
        self
    }

    /// Attaches an observer receiving live round/message/timing events
    /// (see [`crate::obs`]). Cloning a config shares the handle, so one
    /// observer can watch every phase of a composite pipeline.
    pub fn with_observer(mut self, observer: ObserverHandle) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Labels this run's observer events and metric rows (e.g.
    /// `"ssp:growth"`).
    pub fn with_phase(mut self, phase: impl Into<String>) -> Self {
        self.phase = phase.into();
        self
    }
}

impl Default for Config {
    /// Equivalent to `Config::for_n(1 << 16)`: a 40-bit bandwidth suitable
    /// for networks of up to 65 536 nodes.
    fn default() -> Self {
        Config::for_n(1 << 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_scales_with_log_n() {
        assert_eq!(Config::for_n(2).bandwidth_bits, 2 + 8);
        assert_eq!(Config::for_n(1 << 10).bandwidth_bits, 20 + 8);
        assert!(Config::for_n(1 << 20).bandwidth_bits > Config::for_n(1 << 10).bandwidth_bits);
    }

    #[test]
    fn builder_setters() {
        let c = Config::for_n(8)
            .with_bandwidth_bits(5)
            .with_max_rounds(7)
            .with_trace();
        assert_eq!(c.bandwidth_bits, 5);
        assert_eq!(c.max_rounds, 7);
        assert!(c.trace);
    }

    #[test]
    fn default_is_for_64k() {
        assert_eq!(Config::default(), Config::for_n(1 << 16));
    }

    #[test]
    fn with_threads_maps_onto_executors() {
        assert_eq!(
            Config::for_n(8).with_threads(0).executor,
            ExecutorKind::Serial
        );
        assert_eq!(
            Config::for_n(8).with_threads(1).executor,
            ExecutorKind::Serial
        );
        assert_eq!(
            Config::for_n(8).with_threads(4).executor,
            ExecutorKind::Pool { workers: 4 }
        );
        assert_eq!(Config::for_n(8).executor, ExecutorKind::Serial);
        assert_eq!(Config::for_n(8).threads(), 1);
        assert_eq!(Config::for_n(8).with_threads(4).threads(), 4);
    }

    #[test]
    fn with_executor_is_explicit_selection() {
        let c = Config::for_n(8).with_executor(ExecutorKind::Pool { workers: 3 });
        assert_eq!(c.executor, ExecutorKind::Pool { workers: 3 });
        assert_eq!(c, Config::for_n(8).with_threads(3));
        assert_eq!(ExecutorKind::Serial.name(), "serial");
        assert_eq!(ExecutorKind::Pool { workers: 3 }.name(), "pool");
        assert_eq!(ExecutorKind::Pool { workers: 0 }.threads(), 1);
        assert_eq!(ExecutorKind::default(), ExecutorKind::Serial);
    }

    #[test]
    fn equality_ignores_observer_but_not_phase() {
        use crate::obs::{MetricsRecorder, SharedObserver};
        let base = Config::for_n(8);
        let watched = base
            .clone()
            .with_observer(SharedObserver::new(MetricsRecorder::new()).observer());
        assert_eq!(base, watched);
        assert_ne!(base, base.clone().with_phase("bfs"));
    }

    #[test]
    fn message_budget_follows_bandwidth_until_decoupled() {
        let n = 1 << 10;
        let c = Config::for_n(n);
        assert_eq!(c.message_budget, Some(c.bandwidth_bits));
        let widened = c.clone().with_bandwidth_bits(64);
        assert_eq!(widened.message_budget, Some(64));
        let tight = widened.with_message_budget(Some(20));
        assert_eq!(tight.bandwidth_bits, 64);
        assert_eq!(tight.message_budget, Some(20));
        assert_eq!(
            Config::for_n(n).with_message_budget(None).message_budget,
            None
        );
        // Budget participates in semantic equality.
        assert_ne!(Config::for_n(n), Config::for_n(n).with_message_budget(None));
    }

    #[test]
    fn trace_capacity_implies_trace() {
        let c = Config::for_n(8).with_trace_capacity(3);
        assert!(c.trace);
        assert_eq!(c.trace_capacity, 3);
        assert!(!Config::for_n(8).trace);
    }

    #[test]
    fn loss_plan_determinism_and_extremes() {
        let plan = LossPlan {
            probability: 0.5,
            seed: 7,
        };
        for round in 0..20 {
            assert_eq!(plan.drops(round, 3, 1), plan.drops(round, 3, 1));
        }
        let never = LossPlan {
            probability: 0.0,
            seed: 7,
        };
        let always = LossPlan {
            probability: 1.0,
            seed: 7,
        };
        assert!(!never.drops(1, 0, 0));
        assert!(always.drops(1, 0, 0));
        // Roughly half of many coordinates drop.
        let hits = (0..1000).filter(|&r| plan.drops(r, 1, 0)).count();
        assert!((350..650).contains(&hits), "hits={hits}");
    }
}

//! Simulation parameters.

use crate::message::bits_for_id;
use crate::obs::ObserverHandle;

/// Deterministic message-loss injection: each delivery is dropped
/// independently with `probability`, decided by a hash of
/// `(seed, round, sender, port)` — reproducible across runs.
///
/// The paper's model assumes reliable links; loss plans exist to *test*
/// that assumption (algorithms are expected to miscompute or stall, and
/// callers to detect it).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LossPlan {
    /// Per-message drop probability in `[0, 1]`.
    pub probability: f64,
    /// Seed of the deterministic drop decisions.
    pub seed: u64,
}

impl LossPlan {
    /// Whether the message sent by `node` on `port` in `round` is dropped.
    pub fn drops(&self, round: u64, node: u32, port: u32) -> bool {
        if self.probability <= 0.0 {
            return false;
        }
        if self.probability >= 1.0 {
            return true;
        }
        // SplitMix64-style hash of the coordinates.
        let mut z = self
            .seed
            .wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(u64::from(node) << 32)
            .wrapping_add(u64::from(port));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z as f64 / u64::MAX as f64) < self.probability
    }
}

/// One deterministic loss pattern inside a [`FaultPlan`].
///
/// Every rule is a pure function of `(seed, round, sender, port)` — no
/// hidden RNG state — so the adversary is identical across executors,
/// thread counts, and reruns.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LossRule {
    /// Drop each delivery independently with `probability` (the classic
    /// [`LossPlan`] behavior).
    Uniform {
        /// Per-message drop probability in `[0, 1]`.
        probability: f64,
    },
    /// Periodic interference: the loss probability applies only while
    /// `round % period < len`; outside the burst the rule drops nothing.
    Burst {
        /// Drop probability during a burst.
        probability: f64,
        /// Length of the repeating cycle, in rounds (`0` disables the rule).
        period: u64,
        /// How many rounds at the start of each cycle are lossy.
        len: u64,
    },
    /// An adversary that degrades the network over time: probability
    /// `min(cap, base + per_round · round)`.
    Adaptive {
        /// Loss probability at round 0.
        base: f64,
        /// Probability added per elapsed round.
        per_round: f64,
        /// Upper bound on the probability.
        cap: f64,
    },
}

impl LossRule {
    /// The effective drop probability of this rule at `round`.
    pub fn probability_at(&self, round: u64) -> f64 {
        match *self {
            LossRule::Uniform { probability } => probability,
            LossRule::Burst {
                probability,
                period,
                len,
            } => {
                if period > 0 && round % period < len {
                    probability
                } else {
                    0.0
                }
            }
            LossRule::Adaptive {
                base,
                per_round,
                cap,
            } => cap.min(base + per_round * round as f64),
        }
    }
}

/// A scheduled crash: `node` is down for every round in
/// `from_round..until_round` and restarts (with its state intact, as under
/// crash-recovery with stable storage) at `until_round`.
///
/// While crashed, a node is not stepped at all and every message addressed
/// to it is discarded at delivery time; since the schedule is part of the
/// static plan, both facts are decided at the engine's single validation
/// point and the run stays bit-for-bit identical across executors.
///
/// A crash is *not* a topology change: a crashed node keeps its edges and
/// its neighbors keep their ports to it — sends into the window drop with
/// [`DropReason::ReceiverCrashed`] and the node resumes where it left off.
/// Contrast [`NodeEvent::Crash`] in a [`TopologyPlan`], which *removes*
/// the node: its edges die with it and sends toward it drop with
/// [`DropReason::TopologyChange`]. When both cover a round, removal wins —
/// the dead-port check runs before the crash-window check at the engine's
/// validation point, so such drops report `TopologyChange`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashing node.
    pub node: u32,
    /// First round (inclusive) the node is down.
    pub from_round: u64,
    /// First round the node is up again (exclusive end of the window).
    pub until_round: u64,
}

/// A composable deterministic fault adversary: any number of loss rules
/// plus a schedule of node crash windows.
///
/// This generalizes [`LossPlan`]: a plan with one [`LossRule::Uniform`]
/// rule and no crashes makes exactly the same per-message decisions as the
/// equivalent `LossPlan` (same hash, same seed). Loss rules compose as
/// independent adversaries — a message is dropped if *any* rule drops it —
/// and each rule hashes with its own salt so rules never correlate.
///
/// The paper's model assumes reliable synchronous links; fault plans exist
/// to *break* that assumption reproducibly, so the recovery layer
/// (`ReliableKernel` in `dapsp-core`) and the tests around it have a
/// deterministic adversary to run against.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of every drop decision.
    pub seed: u64,
    /// Loss rules, composed as independent adversaries.
    pub losses: Vec<LossRule>,
    /// Scheduled crash windows (may overlap; a node is down while any of
    /// its windows covers the round).
    pub crashes: Vec<CrashWindow>,
}

impl FaultPlan {
    /// An empty plan (no loss, no crashes) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            losses: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// The [`LossPlan`]-equivalent plan: uniform loss, no crashes.
    pub fn uniform_loss(probability: f64, seed: u64) -> Self {
        FaultPlan::new(seed).with_rule(LossRule::Uniform { probability })
    }

    /// Adds a loss rule.
    pub fn with_rule(mut self, rule: LossRule) -> Self {
        self.losses.push(rule);
        self
    }

    /// Schedules `node` to be crashed for `from_round..until_round`.
    pub fn with_crash(mut self, node: u32, from_round: u64, until_round: u64) -> Self {
        self.crashes.push(CrashWindow {
            node,
            from_round,
            until_round,
        });
        self
    }

    /// Whether the message sent by `node` on `port` in `round` is dropped
    /// by some loss rule. Crash-induced drops are separate (see
    /// [`FaultPlan::crashed`]).
    pub fn drops(&self, round: u64, node: u32, port: u32) -> bool {
        self.losses.iter().enumerate().any(|(i, rule)| {
            // Salt the seed per rule (rule 0 keeps the plain seed, so a
            // single-rule uniform plan reproduces LossPlan decisions).
            let salted = self
                .seed
                .wrapping_add((i as u64).wrapping_mul(0xA076_1D64_78BD_642F));
            LossPlan {
                probability: rule.probability_at(round),
                seed: salted,
            }
            .drops(round, node, port)
        })
    }

    /// Whether `node` is down at `round`.
    pub fn crashed(&self, round: u64, node: u32) -> bool {
        self.crashes
            .iter()
            .any(|w| w.node == node && round >= w.from_round && round < w.until_round)
    }

    /// True if the plan schedules at least one crash window.
    pub fn has_crashes(&self) -> bool {
        !self.crashes.is_empty()
    }

    /// The nodes down at `round`, deduplicated, in increasing id order —
    /// the deterministic order observer `on_crash` hooks fire in.
    pub fn crashed_nodes(&self, round: u64) -> Vec<u32> {
        let mut nodes: Vec<u32> = self
            .crashes
            .iter()
            .filter(|w| round >= w.from_round && round < w.until_round)
            .map(|w| w.node)
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

/// Why the engine discarded a message (see
/// [`Observer::on_drop`](crate::obs::Observer::on_drop)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// A loss rule of the active [`FaultPlan`] dropped it in transit.
    Loss,
    /// The receiver is inside a [`CrashWindow`] at the delivery round.
    ReceiverCrashed,
    /// A [`TopologyPlan`] event invalidated the link before delivery: the
    /// message was in flight across an edge that was removed (or whose
    /// endpoint was removed), or was sent on an already-dead port.
    TopologyChange,
}

/// A timed edge mutation in a [`TopologyPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeEvent {
    /// Insert the undirected edge `u – v` (appending a fresh port at each
    /// endpoint; see [`Topology::insert_edge`](crate::Topology::insert_edge)).
    Insert {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// Remove the live edge `u – v` (tombstoning its ports; see
    /// [`Topology::remove_edge`](crate::Topology::remove_edge)).
    Remove {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
}

/// A timed node mutation in a [`TopologyPlan`].
///
/// `Crash` here means *permanent removal from the network* — the node's
/// edges die with it — which is deliberately different from a
/// [`CrashWindow`] fault, where the node keeps its edges and recovers. The
/// documented precedence when both apply: removal wins (see
/// [`CrashWindow`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeEvent {
    /// Remove the node and every edge incident to it; the id stays
    /// allocated (and may later [`NodeEvent::Join`] back, edgeless).
    Crash(u32),
    /// Re-join a removed node with no edges; follow with
    /// [`EdgeEvent::Insert`] entries to connect it.
    Join(u32),
}

/// One entry of a [`TopologyPlan`]: an edge or node mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TopologyEvent {
    /// An edge insertion or removal.
    Edge(EdgeEvent),
    /// A node removal or (re-)join.
    Node(NodeEvent),
}

/// A deterministic schedule of topology mutations — the churn sibling of
/// [`FaultPlan`].
///
/// Events are applied at the engine's commit-side choke point at the
/// *start* of their round, before that round's deliveries: messages still
/// in flight across a removed edge are purged (reported as
/// [`DropReason::TopologyChange`] drops), then every present node is
/// notified through its `on_topology` hook, all in node-id order, so runs
/// stay bit-for-bit identical across executors. Event rounds must be
/// `>= 1` (round 0 is `on_start`; mutate the input graph instead). Events
/// sharing a round apply in insertion order as one batch — the batch size
/// is what the kernel layer's divergence-adaptive repair policy sees.
///
/// A run with a pending plan does not terminate before its last event has
/// been applied, even if every node goes quiet in between.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct TopologyPlan {
    /// `(round, event)` entries, kept sorted by round (stable, so same-round
    /// entries keep their insertion order).
    events: Vec<(u64, TopologyEvent)>,
}

impl TopologyPlan {
    /// An empty plan.
    pub fn new() -> Self {
        TopologyPlan::default()
    }

    /// Schedules an event at `round` (must be `>= 1`; the engines reject
    /// round-0 events at run start).
    pub fn at(mut self, round: u64, event: TopologyEvent) -> Self {
        let pos = self.events.partition_point(|&(r, _)| r <= round);
        self.events.insert(pos, (round, event));
        self
    }

    /// Schedules the insertion of edge `u – v` at `round`.
    pub fn with_insert(self, round: u64, u: u32, v: u32) -> Self {
        self.at(round, TopologyEvent::Edge(EdgeEvent::Insert { u, v }))
    }

    /// Schedules the removal of edge `u – v` at `round`.
    pub fn with_remove(self, round: u64, u: u32, v: u32) -> Self {
        self.at(round, TopologyEvent::Edge(EdgeEvent::Remove { u, v }))
    }

    /// Schedules the removal of `node` (and all its edges) at `round`.
    pub fn with_crash(self, round: u64, node: u32) -> Self {
        self.at(round, TopologyEvent::Node(NodeEvent::Crash(node)))
    }

    /// Schedules the edgeless re-join of `node` at `round`.
    pub fn with_join(self, round: u64, node: u32) -> Self {
        self.at(round, TopologyEvent::Node(NodeEvent::Join(node)))
    }

    /// All entries, sorted by round.
    pub fn events(&self) -> &[(u64, TopologyEvent)] {
        &self.events
    }

    /// True if the plan schedules no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events scheduled exactly at `round`, in application order.
    pub fn events_at(&self, round: u64) -> &[(u64, TopologyEvent)] {
        let start = self.events.partition_point(|&(r, _)| r < round);
        let end = self.events.partition_point(|&(r, _)| r <= round);
        &self.events[start..end]
    }

    /// The round of the last scheduled event (`None` for an empty plan).
    pub fn last_round(&self) -> Option<u64> {
        self.events.last().map(|&(r, _)| r)
    }
}

/// Which executor drives the round pipeline in
/// [`Simulator::run`](crate::Simulator::run).
///
/// Every executor produces bit-for-bit identical runs — outputs,
/// statistics, traces, observer events, and metric streams — because
/// outboxes are always validated and booked in node-id order. The choice
/// only affects wall-clock time (see `DESIGN.md` §"Phase pipeline").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecutorKind {
    /// Single-threaded, in-place pipeline: every phase runs on the calling
    /// thread with zero coordination overhead. The default.
    #[default]
    Serial,
    /// A persistent pool of worker threads created once per run (never per
    /// round). The round's schedule is cut into fixed-size chunks dealt
    /// into per-worker deques; an idle worker steals the back half of a
    /// loaded deque, so a high-degree frontier node cannot serialize its
    /// worker's whole share. Each chunk stages its validated outbound
    /// messages locally and the engine merges chunks in schedule order on
    /// the calling thread, which keeps results bit-identical to serial no
    /// matter who stole what. The calling thread doubles as the first
    /// worker (it owns deque 0), so `workers` threads of compute spawn
    /// only `workers - 1` new threads. Chunk size: `Config::pool_chunk`,
    /// else the `DAPSP_POOL_CHUNK` env var, else adaptive.
    Pool {
        /// Number of worker threads. Clamped at run time to
        /// `1..=num_nodes`, so oversubscribing a small network degrades to
        /// one node per worker rather than idle threads.
        workers: usize,
    },
}

impl ExecutorKind {
    /// The number of node-stepping threads this executor uses (1 for
    /// [`ExecutorKind::Serial`], before per-run clamping for pools).
    pub fn threads(&self) -> usize {
        match self {
            ExecutorKind::Serial => 1,
            ExecutorKind::Pool { workers } => (*workers).max(1),
        }
    }

    /// A short stable name for logs and benchmark rows: `"serial"` or
    /// `"pool"`.
    pub fn name(&self) -> &'static str {
        match self {
            ExecutorKind::Serial => "serial",
            ExecutorKind::Pool { .. } => "pool",
        }
    }
}

/// Parameters of a simulation run.
///
/// Construct with [`Config::for_n`] for the paper's standard setting
/// (`B = Θ(log n)`), then adjust fields with the builder-style setters.
///
/// # Examples
///
/// ```
/// use dapsp_congest::Config;
///
/// let cfg = Config::for_n(1024).with_max_rounds(50_000);
/// assert_eq!(cfg.bandwidth_bits, 2 * 10 + 8);
/// ```
#[derive(Clone, Debug)]
pub struct Config {
    /// Per-edge, per-direction, per-round bandwidth `B` in bits.
    pub bandwidth_bits: u32,
    /// The CONGEST contract `B = c·⌈log₂ n⌉ + O(1)` as an *enforced*
    /// invariant: in builds with debug assertions, the engine panics if any
    /// message's declared width exceeds this budget (both executors check
    /// it at the single validation point every message passes through).
    /// `None` disables the check. [`Config::for_n`] sets it to the
    /// bandwidth, and [`Config::with_bandwidth_bits`] keeps the two in
    /// sync; decouple them with [`Config::with_message_budget`] to assert
    /// a budget tighter than the transport allows.
    pub message_budget: Option<u32>,
    /// Hard cap on the number of rounds; exceeding it aborts the run with
    /// [`SimError::RoundLimitExceeded`](crate::SimError::RoundLimitExceeded).
    pub max_rounds: u64,
    /// Whether to record a (bounded) event trace; see [`crate::trace`].
    pub trace: bool,
    /// Capacity of the event trace when `trace` is set (default
    /// [`Trace::DEFAULT_CAPACITY`](crate::Trace::DEFAULT_CAPACITY)); events
    /// past it are counted but not stored, and the trace reports itself
    /// [`truncated`](crate::Trace::truncated).
    pub trace_capacity: usize,
    /// Whether to record the per-round delivered-message counts in
    /// [`Report::round_profile`](crate::Report::round_profile).
    pub round_profile: bool,
    /// Optional deterministic fault adversary (message loss + node
    /// crashes); see [`FaultPlan`].
    pub faults: Option<FaultPlan>,
    /// Optional deterministic topology-churn schedule (edge/node inserts
    /// and removals applied mid-run); see [`TopologyPlan`].
    pub topology: Option<TopologyPlan>,
    /// Which executor drives the round pipeline (default
    /// [`ExecutorKind::Serial`]). Any choice produces bit-for-bit identical
    /// runs: outboxes are always committed in node-id order, so outputs,
    /// statistics, traces, and round counts do not depend on this.
    pub executor: ExecutorKind,
    /// Fixed frontier-chunk size for the pool executor's work-stealing
    /// scheduler. `None` — the default — sizes chunks adaptively per round
    /// (`max(16, sched / (4 · workers))`); the `DAPSP_POOL_CHUNK`
    /// environment variable supplies a process-wide fallback when this is
    /// unset (how CI forces the stealing path on tiny graphs). Has no
    /// effect on [`ExecutorKind::Serial`] and, like the executor choice,
    /// never changes simulation results — only load balance.
    pub pool_chunk: Option<usize>,
    /// Optional observer receiving round/message/timing events as the run
    /// executes (see [`crate::obs`]). `None` — the default — keeps every
    /// hook site a single branch, so observation is free when disabled.
    pub observer: Option<ObserverHandle>,
    /// Label attached to this run in observer events and recorded metric
    /// streams; composite pipelines set one per phase (e.g. `"apsp:waves"`).
    pub phase: String,
}

/// Equality over the *simulation semantics* only: the `observer` handle is
/// ignored (two configs that simulate identically compare equal whether or
/// not someone is watching), mirroring how
/// [`RunStats`](crate::RunStats)' equality ignores wall time. The `phase`
/// label participates: it is part of what a run reports about itself.
impl PartialEq for Config {
    fn eq(&self, other: &Self) -> bool {
        self.bandwidth_bits == other.bandwidth_bits
            && self.message_budget == other.message_budget
            && self.max_rounds == other.max_rounds
            && self.trace == other.trace
            && self.trace_capacity == other.trace_capacity
            && self.round_profile == other.round_profile
            && self.faults == other.faults
            && self.topology == other.topology
            && self.executor == other.executor
            && self.pool_chunk == other.pool_chunk
            && self.phase == other.phase
    }
}

impl Config {
    /// The standard CONGEST setting for an `n`-node network:
    /// `B = 2·⌈log₂ n⌉ + 8` bits — enough for one node id, one hop count,
    /// and a small message tag, i.e. "a constant number of node or edge IDs
    /// per message" (§2 of the paper).
    ///
    /// The round limit defaults to `max(10_000, 64·n)`, far above any of the
    /// `O(n)` algorithms in this crate family, so hitting it indicates a
    /// bug (e.g. a message loop) rather than a slow algorithm.
    pub fn for_n(n: usize) -> Self {
        Config {
            bandwidth_bits: 2 * bits_for_id(n) + 8,
            message_budget: Some(2 * bits_for_id(n) + 8),
            max_rounds: 10_000u64.max(64 * n as u64),
            trace: false,
            trace_capacity: crate::trace::Trace::DEFAULT_CAPACITY,
            round_profile: false,
            faults: None,
            topology: None,
            executor: ExecutorKind::Serial,
            pool_chunk: None,
            observer: None,
            phase: String::new(),
        }
    }

    /// Overrides the bandwidth `B` (bits per edge-direction per round).
    ///
    /// The debug-build message budget follows the bandwidth (workloads that
    /// widen `B` for fixed-width tokens stay consistent); set a tighter
    /// budget afterwards with [`Config::with_message_budget`].
    pub fn with_bandwidth_bits(mut self, bits: u32) -> Self {
        self.bandwidth_bits = bits;
        self.message_budget = Some(bits);
        self
    }

    /// Overrides the debug-build message-width budget independently of the
    /// transport bandwidth (`None` disables the check). See
    /// [`Config::message_budget`].
    pub fn with_message_budget(mut self, budget: Option<u32>) -> Self {
        self.message_budget = budget;
        self
    }

    /// Overrides the round budget.
    pub fn with_max_rounds(mut self, rounds: u64) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Enables event tracing (see [`crate::trace`]).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Injects uniform deterministic message loss — shorthand for a
    /// single-rule [`FaultPlan`] that makes exactly the decisions the old
    /// [`LossPlan`] made for the same `(probability, seed)`.
    pub fn with_loss(self, probability: f64, seed: u64) -> Self {
        self.with_faults(FaultPlan::uniform_loss(probability, seed))
    }

    /// Installs a composable fault adversary (see [`FaultPlan`]).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Installs a deterministic topology-churn schedule (see
    /// [`TopologyPlan`]). Composes with [`Config::with_faults`]: crash
    /// windows freeze nodes in place while topology events rewire the
    /// graph, with the precedence documented on [`CrashWindow`].
    pub fn with_topology(mut self, plan: TopologyPlan) -> Self {
        self.topology = Some(plan);
        self
    }

    /// Records per-round delivered-message counts in the report.
    pub fn with_round_profile(mut self) -> Self {
        self.round_profile = true;
        self
    }

    /// Steps nodes on `threads` worker threads each round. Maps onto the
    /// executor selection: `threads <= 1` keeps [`ExecutorKind::Serial`],
    /// anything larger selects [`ExecutorKind::Pool`] with that many
    /// workers. The simulation stays deterministic: results are identical
    /// to a sequential run, only wall-clock time changes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.executor = if threads <= 1 {
            ExecutorKind::Serial
        } else {
            ExecutorKind::Pool { workers: threads }
        };
        self
    }

    /// Selects the round-pipeline executor explicitly (see
    /// [`ExecutorKind`]). [`Config::with_threads`] is the thread-count
    /// shorthand for the same choice.
    pub fn with_executor(mut self, executor: ExecutorKind) -> Self {
        self.executor = executor;
        self
    }

    /// Fixes the pool executor's frontier-chunk size (clamped to at least
    /// 1 at run time); see [`Config::pool_chunk`]. Tests force `1` to make
    /// steals happen even on tiny graphs.
    pub fn with_pool_chunk(mut self, chunk: usize) -> Self {
        self.pool_chunk = Some(chunk);
        self
    }

    /// The configured number of node-stepping threads (1 for the serial
    /// executor).
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }

    /// Caps the event trace at `capacity` stored events (and implies
    /// `with_trace`). Overflowing events are counted, not stored; see
    /// [`Trace::truncated`](crate::Trace::truncated).
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace = true;
        self.trace_capacity = capacity;
        self
    }

    /// Attaches an observer receiving live round/message/timing events
    /// (see [`crate::obs`]). Cloning a config shares the handle, so one
    /// observer can watch every phase of a composite pipeline.
    pub fn with_observer(mut self, observer: ObserverHandle) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Labels this run's observer events and metric rows (e.g.
    /// `"ssp:growth"`).
    pub fn with_phase(mut self, phase: impl Into<String>) -> Self {
        self.phase = phase.into();
        self
    }
}

impl Default for Config {
    /// Equivalent to `Config::for_n(1 << 16)`: a 40-bit bandwidth suitable
    /// for networks of up to 65 536 nodes.
    fn default() -> Self {
        Config::for_n(1 << 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_scales_with_log_n() {
        assert_eq!(Config::for_n(2).bandwidth_bits, 2 + 8);
        assert_eq!(Config::for_n(1 << 10).bandwidth_bits, 20 + 8);
        assert!(Config::for_n(1 << 20).bandwidth_bits > Config::for_n(1 << 10).bandwidth_bits);
    }

    #[test]
    fn builder_setters() {
        let c = Config::for_n(8)
            .with_bandwidth_bits(5)
            .with_max_rounds(7)
            .with_trace();
        assert_eq!(c.bandwidth_bits, 5);
        assert_eq!(c.max_rounds, 7);
        assert!(c.trace);
    }

    #[test]
    fn default_is_for_64k() {
        assert_eq!(Config::default(), Config::for_n(1 << 16));
    }

    #[test]
    fn with_threads_maps_onto_executors() {
        assert_eq!(
            Config::for_n(8).with_threads(0).executor,
            ExecutorKind::Serial
        );
        assert_eq!(
            Config::for_n(8).with_threads(1).executor,
            ExecutorKind::Serial
        );
        assert_eq!(
            Config::for_n(8).with_threads(4).executor,
            ExecutorKind::Pool { workers: 4 }
        );
        assert_eq!(Config::for_n(8).executor, ExecutorKind::Serial);
        assert_eq!(Config::for_n(8).threads(), 1);
        assert_eq!(Config::for_n(8).with_threads(4).threads(), 4);
    }

    #[test]
    fn with_executor_is_explicit_selection() {
        let c = Config::for_n(8).with_executor(ExecutorKind::Pool { workers: 3 });
        assert_eq!(c.executor, ExecutorKind::Pool { workers: 3 });
        assert_eq!(c, Config::for_n(8).with_threads(3));
        assert_eq!(ExecutorKind::Serial.name(), "serial");
        assert_eq!(ExecutorKind::Pool { workers: 3 }.name(), "pool");
        assert_eq!(ExecutorKind::Pool { workers: 0 }.threads(), 1);
        assert_eq!(ExecutorKind::default(), ExecutorKind::Serial);
    }

    #[test]
    fn equality_ignores_observer_but_not_phase() {
        use crate::obs::{MetricsRecorder, SharedObserver};
        let base = Config::for_n(8);
        let watched = base
            .clone()
            .with_observer(SharedObserver::new(MetricsRecorder::new()).observer());
        assert_eq!(base, watched);
        assert_ne!(base, base.clone().with_phase("bfs"));
    }

    #[test]
    fn message_budget_follows_bandwidth_until_decoupled() {
        let n = 1 << 10;
        let c = Config::for_n(n);
        assert_eq!(c.message_budget, Some(c.bandwidth_bits));
        let widened = c.clone().with_bandwidth_bits(64);
        assert_eq!(widened.message_budget, Some(64));
        let tight = widened.with_message_budget(Some(20));
        assert_eq!(tight.bandwidth_bits, 64);
        assert_eq!(tight.message_budget, Some(20));
        assert_eq!(
            Config::for_n(n).with_message_budget(None).message_budget,
            None
        );
        // Budget participates in semantic equality.
        assert_ne!(Config::for_n(n), Config::for_n(n).with_message_budget(None));
    }

    #[test]
    fn pool_chunk_participates_in_semantic_equality() {
        let c = Config::for_n(8).with_pool_chunk(1);
        assert_eq!(c.pool_chunk, Some(1));
        assert_ne!(c, Config::for_n(8));
        assert_eq!(Config::for_n(8).pool_chunk, None);
    }

    #[test]
    fn trace_capacity_implies_trace() {
        let c = Config::for_n(8).with_trace_capacity(3);
        assert!(c.trace);
        assert_eq!(c.trace_capacity, 3);
        assert!(!Config::for_n(8).trace);
    }

    #[test]
    fn loss_plan_determinism_and_extremes() {
        let plan = LossPlan {
            probability: 0.5,
            seed: 7,
        };
        for round in 0..20 {
            assert_eq!(plan.drops(round, 3, 1), plan.drops(round, 3, 1));
        }
        let never = LossPlan {
            probability: 0.0,
            seed: 7,
        };
        let always = LossPlan {
            probability: 1.0,
            seed: 7,
        };
        assert!(!never.drops(1, 0, 0));
        assert!(always.drops(1, 0, 0));
        // Roughly half of many coordinates drop.
        let hits = (0..1000).filter(|&r| plan.drops(r, 1, 0)).count();
        assert!((350..650).contains(&hits), "hits={hits}");
    }

    #[test]
    fn uniform_fault_plan_reproduces_loss_plan_decisions() {
        let loss = LossPlan {
            probability: 0.3,
            seed: 42,
        };
        let plan = FaultPlan::uniform_loss(0.3, 42);
        for round in 0..200 {
            for port in 0..4 {
                assert_eq!(
                    plan.drops(round, 7, port),
                    loss.drops(round, 7, port),
                    "round={round} port={port}"
                );
            }
        }
    }

    #[test]
    fn burst_rule_is_quiet_outside_its_window() {
        let plan = FaultPlan::new(9).with_rule(LossRule::Burst {
            probability: 1.0,
            period: 10,
            len: 3,
        });
        for round in 0..50u64 {
            let expect = round % 10 < 3;
            assert_eq!(plan.drops(round, 0, 0), expect, "round={round}");
        }
        // A zero period disables the rule instead of dividing by zero.
        let degenerate = FaultPlan::new(9).with_rule(LossRule::Burst {
            probability: 1.0,
            period: 0,
            len: 3,
        });
        assert!(!degenerate.drops(5, 0, 0));
    }

    #[test]
    fn adaptive_rule_ramps_and_caps() {
        let rule = LossRule::Adaptive {
            base: 0.0,
            per_round: 0.1,
            cap: 0.5,
        };
        assert_eq!(rule.probability_at(0), 0.0);
        assert!((rule.probability_at(3) - 0.3).abs() < 1e-12);
        assert_eq!(rule.probability_at(100), 0.5);
        // At cap 1.0 with a steep ramp, late rounds drop everything.
        let plan = FaultPlan::new(1).with_rule(LossRule::Adaptive {
            base: 0.0,
            per_round: 1.0,
            cap: 1.0,
        });
        assert!(!plan.drops(0, 0, 0));
        assert!(plan.drops(1, 0, 0));
    }

    #[test]
    fn composed_rules_drop_when_any_rule_drops() {
        let burst = LossRule::Burst {
            probability: 1.0,
            period: 7,
            len: 1,
        };
        let solo_uniform = FaultPlan::new(3).with_rule(LossRule::Uniform { probability: 0.2 });
        let composed = solo_uniform.clone().with_rule(burst);
        for round in 0..100u64 {
            let expect = solo_uniform.drops(round, 2, 1) || round % 7 == 0;
            assert_eq!(composed.drops(round, 2, 1), expect, "round={round}");
        }
    }

    #[test]
    fn crash_windows_cover_half_open_ranges() {
        let plan = FaultPlan::new(0)
            .with_crash(3, 5, 8)
            .with_crash(1, 6, 7)
            .with_crash(3, 20, 22);
        assert!(!plan.crashed(4, 3));
        assert!(plan.crashed(5, 3));
        assert!(plan.crashed(7, 3));
        assert!(!plan.crashed(8, 3)); // restarted
        assert!(plan.crashed(21, 3));
        assert!(!plan.crashed(6, 0));
        assert!(plan.has_crashes());
        assert!(!FaultPlan::new(0).has_crashes());
        assert_eq!(plan.crashed_nodes(6), vec![1, 3]);
        assert_eq!(plan.crashed_nodes(0), Vec::<u32>::new());
    }

    #[test]
    fn topology_plan_sorts_stably_by_round() {
        let plan = TopologyPlan::new()
            .with_remove(5, 0, 1)
            .with_insert(2, 2, 3)
            .with_crash(5, 4)
            .with_join(9, 4)
            .with_insert(5, 0, 2);
        let rounds: Vec<u64> = plan.events().iter().map(|&(r, _)| r).collect();
        assert_eq!(rounds, vec![2, 5, 5, 5, 9]);
        // Same-round entries keep insertion order.
        assert_eq!(
            plan.events_at(5),
            &[
                (5, TopologyEvent::Edge(EdgeEvent::Remove { u: 0, v: 1 })),
                (5, TopologyEvent::Node(NodeEvent::Crash(4))),
                (5, TopologyEvent::Edge(EdgeEvent::Insert { u: 0, v: 2 })),
            ]
        );
        assert_eq!(plan.events_at(3), &[]);
        assert_eq!(plan.last_round(), Some(9));
        assert!(!plan.is_empty());
        assert!(TopologyPlan::new().is_empty());
        assert_eq!(TopologyPlan::new().last_round(), None);
    }

    #[test]
    fn topology_plan_participates_in_config_equality() {
        let base = Config::for_n(8);
        let churned = base
            .clone()
            .with_topology(TopologyPlan::new().with_remove(1, 0, 1));
        assert_ne!(base, churned);
        assert_eq!(
            churned,
            Config::for_n(8).with_topology(TopologyPlan::new().with_remove(1, 0, 1))
        );
    }

    #[test]
    fn with_loss_builds_a_uniform_fault_plan() {
        let c = Config::for_n(8).with_loss(0.25, 11);
        assert_eq!(c.faults, Some(FaultPlan::uniform_loss(0.25, 11)));
        let crashy = Config::for_n(8).with_faults(FaultPlan::new(0).with_crash(2, 1, 4));
        assert!(crashy.faults.unwrap().crashed(2, 2));
    }
}

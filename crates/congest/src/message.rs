//! Message sizing discipline.

/// A message that knows its own encoded size in bits.
///
/// The CONGEST model restricts every edge to `B` bits per direction per
/// round. Rather than trusting algorithms to respect that, the simulator
/// asks every message for its size and rejects oversized sends with
/// [`SimError::BandwidthExceeded`](crate::SimError::BandwidthExceeded).
///
/// Implementations should report the size of a reasonable binary encoding of
/// the message: a node id costs [`bits_for_id`]`(n)` bits, a hop distance at
/// most [`bits_for_count`]`(n)` bits (distances in an `n`-node graph are
/// `< n`), and an enum discriminant `ceil(log2(#variants))` bits.
///
/// # Examples
///
/// ```
/// use dapsp_congest::{bits_for_id, Message};
///
/// /// A BFS token: the root's id and the sender's distance from it.
/// #[derive(Clone, Debug)]
/// struct Wave { root: u32, dist: u32, n: u32 }
///
/// impl Message for Wave {
///     fn bit_size(&self) -> u32 {
///         2 * bits_for_id(self.n as usize)
///     }
/// }
/// ```
pub trait Message: Clone + std::fmt::Debug {
    /// The size of this message in bits under its binary encoding.
    fn bit_size(&self) -> u32;

    /// The logical stream this message belongs to, if any — e.g. the root
    /// id of the BFS wave it serves. Observers use this to attribute
    /// traffic to concurrent logical executions (the paper's Lemma 1
    /// argues about per-wave congestion, not raw message counts); message
    /// types that don't distinguish streams keep the default `None`.
    fn stream_id(&self) -> Option<u32> {
        None
    }
}

/// Number of bits needed to encode one identifier from `{0, …, n-1}`.
///
/// Returns 1 for `n <= 2` so that even degenerate graphs exchange nonzero
/// payloads.
///
/// # Examples
///
/// ```
/// use dapsp_congest::bits_for_id;
/// assert_eq!(bits_for_id(2), 1);
/// assert_eq!(bits_for_id(1024), 10);
/// assert_eq!(bits_for_id(1025), 11);
/// ```
pub fn bits_for_id(n: usize) -> u32 {
    if n <= 2 {
        1
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Number of bits needed to encode a count in `{0, …, n}` (inclusive).
///
/// Useful for hop distances, which range over `0..=n-1` plus an "infinity"
/// sentinel.
///
/// # Examples
///
/// ```
/// use dapsp_congest::bits_for_count;
/// assert_eq!(bits_for_count(1), 1);
/// assert_eq!(bits_for_count(255), 8);
/// assert_eq!(bits_for_count(256), 9);
/// ```
pub fn bits_for_count(n: usize) -> u32 {
    if n == 0 {
        1
    } else {
        usize::BITS - n.leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_bits_matches_ceil_log2() {
        for n in 2..2000usize {
            let expected = (n as f64).log2().ceil() as u32;
            assert_eq!(bits_for_id(n), expected.max(1), "n={n}");
        }
    }

    #[test]
    fn count_bits_covers_inclusive_range() {
        for n in 1..2000usize {
            let b = bits_for_count(n);
            assert!((1u64 << b) > n as u64, "n={n} b={b}");
            assert!(b == 1 || (1u64 << (b - 1)) <= n as u64, "n={n} b={b}");
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(bits_for_id(0), 1);
        assert_eq!(bits_for_id(1), 1);
        assert_eq!(bits_for_count(0), 1);
    }
}

//! Message sizing discipline.

/// A message that knows its own encoded size in bits.
///
/// The CONGEST model restricts every edge to `B` bits per direction per
/// round. Rather than trusting algorithms to respect that, the simulator
/// asks every message for its size and rejects oversized sends with
/// [`SimError::BandwidthExceeded`](crate::SimError::BandwidthExceeded).
///
/// Implementations should report the size of a reasonable binary encoding of
/// the message: a node id costs [`bits_for_id`]`(n)` bits, a hop distance at
/// most [`bits_for_count`]`(n)` bits (distances in an `n`-node graph are
/// `< n`), and an enum discriminant `ceil(log2(#variants))` bits.
///
/// # Examples
///
/// ```
/// use dapsp_congest::{bits_for_id, Message};
///
/// /// A BFS token: the root's id and the sender's distance from it.
/// #[derive(Clone, Debug)]
/// struct Wave { root: u32, dist: u32, n: u32 }
///
/// impl Message for Wave {
///     fn bit_size(&self) -> u32 {
///         2 * bits_for_id(self.n as usize)
///     }
/// }
/// ```
pub trait Message: Clone + std::fmt::Debug {
    /// The size of this message in bits under its binary encoding.
    fn bit_size(&self) -> u32;

    /// The logical stream this message belongs to, if any — e.g. the root
    /// id of the BFS wave it serves. Observers use this to attribute
    /// traffic to concurrent logical executions (the paper's Lemma 1
    /// argues about per-wave congestion, not raw message counts); message
    /// types that don't distinguish streams keep the default `None`.
    fn stream_id(&self) -> Option<u32> {
        None
    }

    /// Per-kernel attribution tags for this message (see [`TraceTags`]).
    /// Plain message types keep the default — one anonymous kernel, no
    /// transport flags. Kernel-layer envelopes override this so observers
    /// can attribute traffic to individual kernels in a `Stack` and spot
    /// retransmitted/ack frames.
    fn trace_tags(&self) -> TraceTags {
        TraceTags::default()
    }
}

/// Observer-facing attribution tags carried by a message: which kernels of
/// a composed `Stack` contributed components to this frame (a bitmask, bit
/// *i* = kernel *i* in composition order), and whether the transport layer
/// marked it as a retransmission or as carrying an acknowledgement.
///
/// Tags cost **zero wire bits** — they are diagnostic metadata read at the
/// engine's commit choke point, never encoded into the message budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceTags {
    /// Bitmask of kernel slots present in this frame. A plain (non-kernel)
    /// message reports `1`: one anonymous kernel.
    pub kernels: u8,
    /// The transport layer resent this frame (alternating-bit retry).
    pub retransmit: bool,
    /// This frame carries an acknowledgement.
    pub ack: bool,
}

impl Default for TraceTags {
    fn default() -> Self {
        TraceTags {
            kernels: 1,
            retransmit: false,
            ack: false,
        }
    }
}

/// An accumulator for the declared encoded width of a message, built from
/// the same primitives the paper's `B = O(log n)` accounting uses: node
/// ids ([`bits_for_id`]), hop counts ([`bits_for_count`]), and single tag
/// bits for enum discriminants / presence flags.
///
/// Protocol kernels build a `Width` instead of hand-summing bit counts so
/// every field of a multi-field message is visibly accounted for — the
/// under-counting audit this type exists to make impossible.
///
/// # Examples
///
/// ```
/// use dapsp_congest::Width;
///
/// // A wave announcement: 1 presence bit, one id, one hop count.
/// let w = Width::ZERO.tag().id(1024).count(37);
/// assert_eq!(w.bits(), 1 + 10 + 6);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Width(u32);

impl Width {
    /// The empty message.
    pub const ZERO: Width = Width(0);

    /// Total bits accumulated so far.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Adds one tag bit (an enum discriminant or presence flag).
    pub fn tag(self) -> Width {
        Width(self.0 + 1)
    }

    /// Adds one node id drawn from `{0, …, n-1}`.
    pub fn id(self, n: usize) -> Width {
        Width(self.0 + bits_for_id(n))
    }

    /// Adds one count in `{0, …, max}` (inclusive).
    pub fn count(self, max: usize) -> Width {
        Width(self.0 + bits_for_count(max))
    }

    /// Adds `bits` raw bits (for payloads measured elsewhere).
    pub fn raw(self, bits: u32) -> Width {
        Width(self.0 + bits)
    }
}

/// A typed payload wrapped with its declared encoded width and logical
/// stream — the message type of the protocol-kernel layer.
///
/// Kernels produce payloads; the host wraps each one in an `Envelope`
/// whose `width` was computed through [`Width`], so the engine's bandwidth
/// and budget checks see an honest per-message bit count without the
/// payload type itself having to implement [`Message`].
#[derive(Clone, Debug)]
pub struct Envelope<P> {
    /// The protocol-level payload.
    pub payload: P,
    /// Declared encoded width in bits (see [`Width`]).
    pub width: u32,
    /// The logical stream this message serves (e.g. a BFS wave's root id).
    pub stream: Option<u32>,
    /// Per-kernel attribution tags (zero wire bits; see [`TraceTags`]).
    pub tags: TraceTags,
}

impl<P: Clone + std::fmt::Debug> Message for Envelope<P> {
    fn bit_size(&self) -> u32 {
        self.width
    }

    fn stream_id(&self) -> Option<u32> {
        self.stream
    }

    fn trace_tags(&self) -> TraceTags {
        self.tags
    }
}

/// Number of bits needed to encode one identifier from `{0, …, n-1}`.
///
/// Returns 1 for `n <= 2` so that even degenerate graphs exchange nonzero
/// payloads.
///
/// # Examples
///
/// ```
/// use dapsp_congest::bits_for_id;
/// assert_eq!(bits_for_id(2), 1);
/// assert_eq!(bits_for_id(1024), 10);
/// assert_eq!(bits_for_id(1025), 11);
/// ```
pub fn bits_for_id(n: usize) -> u32 {
    if n <= 2 {
        1
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Number of bits needed to encode a count in `{0, …, n}` (inclusive).
///
/// Useful for hop distances, which range over `0..=n-1` plus an "infinity"
/// sentinel.
///
/// # Examples
///
/// ```
/// use dapsp_congest::bits_for_count;
/// assert_eq!(bits_for_count(1), 1);
/// assert_eq!(bits_for_count(255), 8);
/// assert_eq!(bits_for_count(256), 9);
/// ```
pub fn bits_for_count(n: usize) -> u32 {
    if n == 0 {
        1
    } else {
        usize::BITS - n.leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_bits_matches_ceil_log2() {
        for n in 2..2000usize {
            let expected = (n as f64).log2().ceil() as u32;
            assert_eq!(bits_for_id(n), expected.max(1), "n={n}");
        }
    }

    #[test]
    fn count_bits_covers_inclusive_range() {
        for n in 1..2000usize {
            let b = bits_for_count(n);
            assert!((1u64 << b) > n as u64, "n={n} b={b}");
            assert!(b == 1 || (1u64 << (b - 1)) <= n as u64, "n={n} b={b}");
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(bits_for_id(0), 1);
        assert_eq!(bits_for_id(1), 1);
        assert_eq!(bits_for_count(0), 1);
    }

    #[test]
    fn width_accumulates_the_primitives() {
        assert_eq!(Width::ZERO.bits(), 0);
        assert_eq!(Width::ZERO.tag().bits(), 1);
        assert_eq!(Width::ZERO.id(1024).bits(), bits_for_id(1024));
        assert_eq!(Width::ZERO.count(255).bits(), bits_for_count(255));
        assert_eq!(Width::ZERO.raw(7).bits(), 7);
        assert_eq!(
            Width::ZERO.tag().id(100).count(50).raw(3).bits(),
            1 + bits_for_id(100) + bits_for_count(50) + 3
        );
    }

    #[test]
    fn envelope_reports_declared_width_and_stream() {
        let env = Envelope {
            payload: 42u32,
            width: Width::ZERO.tag().id(16).bits(),
            stream: Some(3),
            tags: TraceTags::default(),
        };
        assert_eq!(env.bit_size(), 1 + bits_for_id(16));
        assert_eq!(env.stream_id(), Some(3));
        assert_eq!(env.trace_tags(), TraceTags::default());
        let silent = Envelope {
            payload: (),
            width: 1,
            stream: None,
            tags: TraceTags {
                kernels: 0b10,
                retransmit: true,
                ack: false,
            },
        };
        assert_eq!(silent.stream_id(), None);
        assert_eq!(silent.trace_tags().kernels, 0b10);
        assert!(silent.trace_tags().retransmit);
    }

    #[test]
    fn default_tags_name_one_anonymous_kernel() {
        let t = TraceTags::default();
        assert_eq!(t.kernels, 1);
        assert!(!t.retransmit && !t.ack);
        // Plain messages inherit the default through the trait.
        #[derive(Clone, Debug)]
        struct Plain;
        impl Message for Plain {
            fn bit_size(&self) -> u32 {
                1
            }
        }
        assert_eq!(Plain.trace_tags(), TraceTags::default());
    }
}

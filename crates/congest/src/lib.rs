//! A deterministic simulator for the synchronous **CONGEST** model of
//! distributed computing.
//!
//! The CONGEST model (Peleg, *Distributed Computing: A Locality-Sensitive
//! Approach*) runs a network of processors connected by the edges of an
//! undirected graph. Computation proceeds in synchronous rounds; in each
//! round every node may send a message of at most `B` bits over each of its
//! incident edges (a *different* message per edge is allowed), receive the
//! messages its neighbors sent in the same round, and perform arbitrary free
//! local computation. The complexity of an algorithm is the number of rounds
//! it takes.
//!
//! This crate provides:
//!
//! * [`Topology`] — the communication graph (adjacency lists, validated),
//! * [`Message`] — a trait that makes every message account for its size in
//!   bits, so the simulator can *enforce* the bandwidth restriction instead
//!   of trusting the algorithm,
//! * [`NodeAlgorithm`] — the per-node state machine interface,
//! * [`Simulator`] — the synchronous round engine: an explicit
//!   `deliver → step → commit` phase pipeline over a pluggable executor
//!   ([`ExecutorKind`] — single-threaded, or a persistent worker pool with
//!   bit-for-bit identical results), which detects quiescence, enforces
//!   bandwidth, and collects [`RunStats`] (rounds, messages, bits),
//! * [`trace`] — an optional bounded event log for debugging and for testing
//!   algorithm invariants (e.g. that two BFS waves never congest an edge),
//! * [`obs`] — live observers: per-round metric streams, a wall-clock phase
//!   profiler, and probes that check the paper's congestion/delay invariants
//!   while a run executes (attach with [`Config::with_observer`]).
//!
//! # Example
//!
//! A two-node network where node 0 sends one greeting to node 1:
//!
//! ```
//! use dapsp_congest::{Config, Message, NodeAlgorithm, NodeContext, Inbox,
//!                     Outbox, Simulator, Topology};
//!
//! #[derive(Clone, Debug)]
//! struct Ping;
//! impl Message for Ping {
//!     fn bit_size(&self) -> u32 { 1 }
//! }
//!
//! struct Greeter { heard: bool }
//! impl NodeAlgorithm for Greeter {
//!     type Message = Ping;
//!     type Output = bool;
//!     fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Ping>) {
//!         if ctx.node_id() == 0 {
//!             out.send(0, Ping);
//!         }
//!     }
//!     fn on_round(&mut self, _ctx: &NodeContext<'_>, inbox: &Inbox<Ping>,
//!                 _out: &mut Outbox<Ping>) {
//!         if !inbox.is_empty() { self.heard = true; }
//!     }
//!     fn into_output(self, _ctx: &NodeContext<'_>) -> bool { self.heard }
//! }
//!
//! # fn main() -> Result<(), dapsp_congest::SimError> {
//! let topo = Topology::from_adjacency(vec![vec![1], vec![0]])?;
//! let mut sim = Simulator::new(&topo, Config::for_n(2),
//!                              |_| Greeter { heard: false });
//! let report = sim.run()?;
//! assert_eq!(report.stats.rounds, 1);
//! assert_eq!(report.outputs, vec![false, true]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod churn;
mod config;
mod engine;
mod error;
mod message;
mod node;
mod reference;
mod stats;
mod topology;

pub mod obs;
pub mod trace;
pub mod trace2;

pub use algorithm::{NodeAlgorithm, Quiescence, RepairAction, TopologyDelta};
pub use churn::churned_topology;
pub use config::{
    Config, CrashWindow, DropReason, EdgeEvent, ExecutorKind, FaultPlan, LossPlan, LossRule,
    NodeEvent, TopologyEvent, TopologyPlan,
};
pub use engine::pool_workers_spawned;
pub use engine::{PoolSched, Report, Simulator, TerminationCertificate, TerminationReason};
pub use error::SimError;
pub use message::{bits_for_count, bits_for_id, Envelope, Message, TraceTags, Width};
pub use node::{Inbox, NodeContext, NodeId, Outbox, Port};
pub use obs::{
    EdgeCongestionProbe, FanOut, MetricsRecorder, Observer, ObserverHandle, PhaseProfiler,
    SharedObserver, TransportSummary, WaveArrivalProbe,
};
pub use reference::ReferenceSimulator;
pub use stats::RunStats;
pub use topology::Topology;
pub use trace::Trace;
pub use trace2::{TraceEvent, TraceRecorder, TrackBy};

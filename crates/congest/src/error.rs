//! Error type for the simulator.

use std::error::Error;
use std::fmt;

use crate::node::{NodeId, Port};

/// Errors raised while constructing a topology or running a simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The adjacency lists do not describe a simple undirected graph.
    InvalidTopology(String),
    /// A node attempted to send a message whose encoded size exceeds the
    /// configured per-edge bandwidth `B`.
    BandwidthExceeded {
        /// The offending sender.
        node: NodeId,
        /// The port the message was addressed to.
        port: Port,
        /// The round in which the send was attempted.
        round: u64,
        /// The size of the offending message in bits.
        message_bits: u32,
        /// The configured bandwidth in bits.
        bandwidth_bits: u32,
    },
    /// A node attempted to send two messages over the same edge in the same
    /// round (each edge-direction carries at most one `B`-bit message per
    /// round).
    DuplicateSend {
        /// The offending sender.
        node: NodeId,
        /// The port that was written twice.
        port: Port,
        /// The round in which the duplicate send was attempted.
        round: u64,
    },
    /// A node addressed a message to a port `>= degree(node)`.
    InvalidPort {
        /// The offending sender.
        node: NodeId,
        /// The out-of-range port.
        port: Port,
        /// The sender's degree.
        degree: usize,
    },
    /// The simulation did not quiesce within the configured round budget.
    RoundLimitExceeded {
        /// The configured budget that was exhausted.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidTopology(why) => write!(f, "invalid topology: {why}"),
            SimError::BandwidthExceeded {
                node,
                port,
                round,
                message_bits,
                bandwidth_bits,
            } => write!(
                f,
                "node {node} sent a {message_bits}-bit message on port {port} in round \
                 {round}, exceeding the bandwidth of {bandwidth_bits} bits"
            ),
            SimError::DuplicateSend { node, port, round } => write!(
                f,
                "node {node} sent two messages on port {port} in round {round}"
            ),
            SimError::InvalidPort { node, port, degree } => write!(
                f,
                "node {node} addressed port {port} but has degree {degree}"
            ),
            SimError::RoundLimitExceeded { limit } => {
                write!(f, "simulation exceeded the round limit of {limit}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_informative() {
        let e = SimError::BandwidthExceeded {
            node: 3,
            port: 1,
            round: 7,
            message_bits: 99,
            bandwidth_bits: 32,
        };
        let s = e.to_string();
        assert!(s.contains("99"));
        assert!(s.contains("32"));
        assert!(s.contains("node 3"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}

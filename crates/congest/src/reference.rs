//! The original (pre-optimization) round engine, kept verbatim for A/B
//! benchmarking.
//!
//! [`ReferenceSimulator`] preserves the seed engine's behavior *and* its
//! allocation profile: `n` fresh inbox `Vec`s per round, a fresh [`Outbox`]
//! per node per round, and a fresh `vec![false; degree]` duplicate-send
//! check per commit. The optimized [`Simulator`](crate::Simulator) must
//! produce bit-for-bit identical reports; benchmarks (see
//! `dapsp-bench/engine_throughput`) quantify the throughput difference.

use std::sync::Arc;

use crate::algorithm::NodeAlgorithm;
use crate::churn;
use crate::config::{Config, DropReason, TopologyEvent};
use crate::engine::store::NodeStore;
use crate::engine::{ChurnState, QuiescenceState, Report, TerminationCertificate};
use crate::error::SimError;
use crate::message::Message;
use crate::node::{Inbox, NodeContext, NodeId, Outbox};
use crate::obs::{MessageEvent, RoundTiming, RunInfo};
use crate::stats::RunStats;
use crate::topology::Topology;
use crate::trace::{Event, Trace};

/// The seed round engine: allocates per round, steps sequentially.
///
/// Exists solely as the baseline against which the optimized
/// [`Simulator`](crate::Simulator) is benchmarked and equivalence-tested;
/// use the optimized engine for real runs.
pub struct ReferenceSimulator<'t, A: NodeAlgorithm> {
    topology: &'t Topology,
    config: Config,
    /// The shared state slab: the reference engine steps the same
    /// [`NodeStore`] the optimized executors do (its schedule/awake lists
    /// stay unused — the dense engine visits every node).
    store: NodeStore<A>,
    /// `pending[v]` holds the messages to be delivered to `v` next round.
    pending: Vec<Vec<(u32, A::Message)>>,
    /// The live (possibly churned) topology plus the plan cursor; `None`
    /// when the run has no topology plan. Mirrors the optimized engine's
    /// churn state exactly — same choke point, same event batching.
    churn: Option<ChurnState>,
    in_flight: u64,
    round: u64,
    stats: RunStats,
    trace: Option<Trace>,
    round_profile: Vec<u64>,
    /// Pre-pass marks: `scheduled[v]` iff the active-set engine would
    /// schedule `v` this round. The reference engine still steps every
    /// node (that is what makes it the dense baseline), but it must book
    /// the same per-round scheduled counts and poll termination votes
    /// over the same set, or the two engines' reports would diverge.
    scheduled: Vec<bool>,
    quiescence: QuiescenceState,
}

impl<'t, A: NodeAlgorithm> ReferenceSimulator<'t, A> {
    /// Creates a reference simulator; same contract as
    /// [`Simulator::new`](crate::Simulator::new).
    pub fn new<F>(topology: &'t Topology, config: Config, mut init: F) -> Self
    where
        F: FnMut(&NodeContext<'_>) -> A,
    {
        let n = topology.num_nodes();
        let nodes = (0..n)
            .map(|v| {
                let ctx = NodeContext {
                    node_id: v as NodeId,
                    num_nodes: n,
                    neighbor_ids: topology.neighbors(v as NodeId),
                    round: 0,
                };
                Some(init(&ctx))
            })
            .collect();
        let trace = config.trace.then(|| Trace::new(config.trace_capacity));
        let churn = config
            .topology
            .as_ref()
            .filter(|plan| !plan.is_empty())
            .map(|_| ChurnState {
                topo: Arc::new(topology.clone()),
                next_event: 0,
            });
        ReferenceSimulator {
            topology,
            config,
            store: NodeStore::new(nodes),
            pending: (0..n).map(|_| Vec::new()).collect(),
            churn,
            in_flight: 0,
            round: 0,
            stats: RunStats::default(),
            trace,
            round_profile: Vec::new(),
            scheduled: vec![false; n],
            quiescence: QuiescenceState::default(),
        }
    }

    /// Nodes that run `on_start` (everyone not crashed at round 0).
    fn started_nodes(&self) -> u64 {
        let n = self.store.len();
        match &self.config.faults {
            Some(f) if f.has_crashes() => {
                (0..n).filter(|&v| !f.crashed(0, v as NodeId)).count() as u64
            }
            _ => n as u64,
        }
    }

    fn commit_outbox(
        &mut self,
        v: NodeId,
        outbox: Outbox<A::Message>,
        send_round: u64,
    ) -> Result<(), SimError> {
        // An owned snapshot sidesteps the borrow of `self` the per-item
        // accounting below needs; within one commit the view is constant.
        let churn_topo = self.churn.as_ref().map(|c| Arc::clone(&c.topo));
        let topo: &Topology = churn_topo.as_deref().unwrap_or(self.topology);
        let degree = topo.degree(v);
        let mut used = vec![false; degree];
        let mut observer = self.config.observer.as_ref().map(|h| h.lock());
        for (port, msg) in outbox.items {
            if port as usize >= degree {
                return Err(SimError::InvalidPort {
                    node: v,
                    port,
                    degree,
                });
            }
            if used[port as usize] {
                return Err(SimError::DuplicateSend {
                    node: v,
                    port,
                    round: send_round,
                });
            }
            used[port as usize] = true;
            let bits = msg.bit_size();
            if bits > self.config.bandwidth_bits {
                return Err(SimError::BandwidthExceeded {
                    node: v,
                    port,
                    round: send_round,
                    message_bits: bits,
                    bandwidth_bits: self.config.bandwidth_bits,
                });
            }
            let to = topo.neighbor_at(v, port);
            // Removal wins over crash windows, as documented on
            // `CrashWindow`: the dead-port check precedes the fault plan.
            if !topo.port_live(v, port) {
                self.stats.dropped += 1;
                if let Some(obs) = observer.as_deref_mut() {
                    obs.on_drop(
                        send_round,
                        v,
                        port,
                        DropReason::TopologyChange,
                        msg.trace_tags(),
                    );
                }
                continue;
            }
            if let Some(plan) = &self.config.faults {
                // Same decision order as the optimized engine's validate:
                // loss rules first, then the receiver's crash window at
                // delivery time (send_round + 1).
                let reason = if plan.drops(send_round, v, port) {
                    Some(DropReason::Loss)
                } else if plan.crashed(send_round + 1, to) {
                    Some(DropReason::ReceiverCrashed)
                } else {
                    None
                };
                if let Some(reason) = reason {
                    self.stats.dropped += 1;
                    if let Some(obs) = observer.as_deref_mut() {
                        obs.on_drop(send_round, v, port, reason, msg.trace_tags());
                    }
                    continue;
                }
            }
            let to_port = topo.reverse_port(v, port);
            if let Some(trace) = &mut self.trace {
                trace.record(Event {
                    round: send_round + 1,
                    from: v,
                    to,
                    port: to_port,
                    bits,
                    payload: format!("{msg:?}"),
                });
            }
            if let Some(obs) = observer.as_deref_mut() {
                obs.on_message(&MessageEvent {
                    send_round,
                    from: v,
                    to,
                    to_port,
                    edge: topo.directed_edge_index(v, port),
                    reverse_edge: topo.directed_edge_index(to, to_port),
                    bits,
                    stream: msg.stream_id(),
                    tags: msg.trace_tags(),
                });
            }
            self.stats.messages += 1;
            self.stats.bits += u64::from(bits);
            self.stats.max_message_bits = self.stats.max_message_bits.max(bits);
            self.pending[to as usize].push((to_port, msg));
            self.in_flight += 1;
        }
        Ok(())
    }

    fn start_all(&mut self) -> Result<(), SimError> {
        for v in 0..self.store.len() {
            // A node already inside a crash window at round 0 never boots.
            if self
                .config
                .faults
                .as_ref()
                .is_some_and(|f| f.crashed(0, v as NodeId))
            {
                continue;
            }
            let ctx = NodeContext {
                node_id: v as NodeId,
                num_nodes: self.store.len(),
                neighbor_ids: self.topology.neighbors(v as NodeId),
                round: 0,
            };
            let mut outbox = Outbox::new();
            self.store
                .state_mut(v as NodeId)
                .on_start(&ctx, &mut outbox);
            self.commit_outbox(v as NodeId, outbox, 0)?;
        }
        // Seed the termination votes with one full poll, exactly as the
        // optimized executors do after their `on_start` sweep (crashed-at-0
        // nodes participate with their frozen initial state).
        let n = self.store.len();
        let mut quiescence = QuiescenceState::fold_start(n, n);
        for node in &self.store.slots {
            quiescence.vote(node.as_ref().expect("node state present").quiescence());
        }
        self.quiescence = quiescence;
        Ok(())
    }

    /// True while the topology plan still has unapplied events: the run
    /// must keep stepping to reach them even through quiet stretches.
    fn churn_pending(&self) -> bool {
        matches!(
            (&self.churn, &self.config.topology),
            (Some(c), Some(p)) if c.next_event < p.events().len()
        )
    }

    /// Mirror of the optimized engine's choke point (same batching, same
    /// observer order, same drop stream): applies every plan event due by
    /// this round, purges pending deliveries that were crossing a killed
    /// link — per receiver ascending, entries in commit order, exactly the
    /// optimized engine's receiver-sorted purge — and notifies affected
    /// nodes through the shared [`NodeStore`].
    fn apply_churn(&mut self) -> Result<(), SimError> {
        let round = self.round;
        let (changes, batch_events) = {
            let (Some(churn), Some(plan)) = (self.churn.as_mut(), self.config.topology.as_ref())
            else {
                return Ok(());
            };
            let events = plan.events();
            let lo = churn.next_event;
            let mut hi = lo;
            while hi < events.len() && events[hi].0 <= round {
                hi += 1;
            }
            if hi == lo {
                return Ok(());
            }
            churn.next_event = hi;
            let batch_events: Vec<TopologyEvent> = events[lo..hi].iter().map(|&(_, e)| e).collect();
            let changes = churn::apply_events(Arc::make_mut(&mut churn.topo), &events[lo..hi])?;
            (changes, batch_events)
        };
        self.stats.topo_events += batch_events.len() as u64;
        if let Some(obs) = &self.config.observer {
            let mut obs = obs.lock();
            for ev in &batch_events {
                obs.on_topology(round, ev);
            }
        }
        let topo = Arc::clone(&self.churn.as_ref().expect("churn state present").topo);
        let mut purged: u64 = 0;
        {
            let mut observer = self.config.observer.as_ref().map(|h| h.lock());
            for (v, queue) in self.pending.iter_mut().enumerate() {
                let v = v as NodeId;
                queue.retain(|&(port, ref msg)| {
                    let live = topo.port_live(v, port);
                    if !live {
                        purged += 1;
                        if let Some(obs) = observer.as_deref_mut() {
                            // Tombstoned ports still resolve sender and
                            // port; the message was sent last round.
                            obs.on_drop(
                                round - 1,
                                topo.neighbor_at(v, port),
                                topo.reverse_port(v, port),
                                DropReason::TopologyChange,
                                msg.trace_tags(),
                            );
                        }
                    }
                    live
                });
            }
        }
        self.stats.dropped += purged;
        self.in_flight -= purged;
        let (repaired, recompute) =
            self.store
                .notify_topology(&topo, &self.config.faults, round, &changes);
        self.stats.repaired_node_rounds += repaired;
        self.stats.recompute_fallbacks += recompute;
        Ok(())
    }

    fn step(&mut self) -> Result<(), SimError> {
        self.round += 1;
        self.stats.rounds = self.round;
        // The topology choke point: identical position to the optimized
        // engine's (after the round stamp, before the in-flight peak is
        // booked — purged messages never count toward the peak).
        if self.churn.is_some() {
            self.apply_churn()?;
        }
        let churn_topo = self.churn.as_ref().map(|c| Arc::clone(&c.topo));
        let topo: &Topology = churn_topo.as_deref().unwrap_or(self.topology);
        self.stats.max_messages_per_round = self.stats.max_messages_per_round.max(self.in_flight);
        if self.config.round_profile {
            self.round_profile.push(self.in_flight);
        }
        let delivered = self.in_flight;
        self.in_flight = 0;
        let n = self.store.len();
        // Pre-pass: mark the set the active-set engine would schedule —
        // nodes with arrivals waiting or reporting `is_active` after their
        // last step. The marks drive the scheduled-count metrics and the
        // post-step vote poll; the dense step loop below still visits
        // every node.
        let mut scheduled_count: u64 = 0;
        for v in 0..n {
            let active = self.store.state(v as NodeId).is_active();
            // Absent (removed) nodes are never scheduled: their arrivals
            // were purged at the choke point and the active-set engine
            // filters them out of its awake rebuild.
            let on = topo.node_present(v as NodeId) && (!self.pending[v].is_empty() || active);
            self.scheduled[v] = on;
            scheduled_count += u64::from(on);
        }
        self.stats.scheduled_node_rounds += scheduled_count;
        self.stats.max_scheduled_per_round =
            self.stats.max_scheduled_per_round.max(scheduled_count);
        let watch = self.config.observer.is_some();
        let mut timing = RoundTiming::default();
        if let Some(obs) = &self.config.observer {
            obs.lock()
                .on_round_start(self.round, delivered, scheduled_count);
        }
        // Crash bookkeeping sits between round start and delivery, exactly
        // where the optimized engine books it, so observers see identical
        // event orders from both engines.
        if let Some(plan) = &self.config.faults {
            if plan.has_crashes() {
                let down = plan.crashed_nodes(self.round);
                self.stats.crashed += down.len() as u64;
                if let Some(obs) = &self.config.observer {
                    let mut obs = obs.lock();
                    for &v in &down {
                        obs.on_crash(self.round, v);
                    }
                }
            }
        }
        // The seed engine allocates n fresh inboxes per round — its
        // "deliver" time is real work, unlike the optimized engine's swap.
        let clock = watch.then(std::time::Instant::now);
        let mut inboxes: Vec<Vec<(u32, A::Message)>> =
            std::mem::replace(&mut self.pending, (0..n).map(|_| Vec::new()).collect());
        if let Some(t) = clock {
            timing.deliver = t.elapsed();
        }
        // Stepping and committing interleave per node here, so the split
        // accumulates per-node durations instead of bracketing two loops.
        #[allow(clippy::needless_range_loop)] // v doubles as the node id
        for v in 0..n {
            // Removed nodes are gone: no step, no commit, inboxes purged
            // at the choke point.
            if !topo.node_present(v as NodeId) {
                debug_assert!(inboxes[v].is_empty(), "absent node received a message");
                continue;
            }
            // Crashed nodes freeze: no step, no commit. Their inboxes are
            // empty by construction (deliveries into the window dropped).
            if self
                .config
                .faults
                .as_ref()
                .is_some_and(|f| f.crashed(self.round, v as NodeId))
            {
                debug_assert!(inboxes[v].is_empty(), "crashed node received a message");
                continue;
            }
            let clock = watch.then(std::time::Instant::now);
            inboxes[v].sort_by_key(|(p, _)| *p);
            let inbox = Inbox {
                items: std::mem::take(&mut inboxes[v]),
            };
            let ctx = NodeContext {
                node_id: v as NodeId,
                num_nodes: n,
                neighbor_ids: topo.neighbors(v as NodeId),
                round: self.round,
            };
            let mut outbox = Outbox::new();
            self.store
                .state_mut(v as NodeId)
                .on_round(&ctx, &inbox, &mut outbox);
            if let Some(t) = clock {
                timing.step += t.elapsed();
            }
            let clock = watch.then(std::time::Instant::now);
            self.commit_outbox(v as NodeId, outbox, self.round)?;
            if let Some(t) = clock {
                timing.commit += t.elapsed();
            }
        }
        if let Some(obs) = &self.config.observer {
            let mut obs = obs.lock();
            // The reference engine has no chunk scheduler; it still emits
            // the hook (all-zero) so observers see the same call sequence
            // as from the optimized pipeline.
            obs.on_sched(self.round, 0, 0);
            obs.on_round_end(self.round, &timing);
        }
        // Poll termination votes over exactly the scheduled set: the
        // active-set engine only polls the nodes it stepped (off-schedule
        // nodes are inactive, hence at most `Passive` by contract), and a
        // mismatch in who votes could shift the termination round.
        let mut quiescence = QuiescenceState::fold_start(scheduled_count as usize, n);
        for v in 0..n {
            if self.scheduled[v] {
                quiescence.vote(self.store.state(v as NodeId).quiescence());
            }
        }
        self.quiescence = quiescence;
        // Vote decomposition, emitted after `on_round_end` — the same
        // position the optimized pipeline uses, so streams stay identical.
        if let Some(obs) = &self.config.observer {
            obs.lock().on_quiescence(
                self.round,
                quiescence.votes_active,
                quiescence.votes_passive,
                quiescence.votes_shutdown,
            );
        }
        Ok(())
    }

    /// Runs to quiescence; same contract as
    /// [`Simulator::run`](crate::Simulator::run) (minus the `Send` bounds —
    /// the reference engine is strictly sequential).
    ///
    /// # Errors
    ///
    /// Propagates any bandwidth/port violation committed by a node, and
    /// returns [`SimError::RoundLimitExceeded`] if the run does not quiesce
    /// within [`Config::max_rounds`].
    pub fn run(mut self) -> Result<Report<A::Output>, SimError> {
        let started = std::time::Instant::now();
        let started_nodes = self.started_nodes();
        if let Some(obs) = &self.config.observer {
            obs.lock().on_run_start(&RunInfo {
                phase: &self.config.phase,
                nodes: self.topology.num_nodes(),
                directed_edges: self.topology.num_directed_edges(),
                started: started_nodes,
            });
        }
        self.start_all()?;
        // Round 0 schedules every started node (they all run `on_start`).
        self.stats.scheduled_node_rounds += started_nodes;
        self.stats.max_scheduled_per_round = self.stats.max_scheduled_per_round.max(started_nodes);
        if let Some(obs) = &self.config.observer {
            let q = self.quiescence;
            obs.lock()
                .on_quiescence(0, q.votes_active, q.votes_passive, q.votes_shutdown);
        }
        while self.churn_pending() || !self.quiescence.terminal(self.in_flight) {
            if self.round >= self.config.max_rounds {
                return Err(SimError::RoundLimitExceeded {
                    limit: self.config.max_rounds,
                });
            }
            self.step()?;
        }
        if let Some(obs) = &self.config.observer {
            obs.lock().on_terminate(self.round, self.in_flight);
        }
        let certificate = Some(TerminationCertificate::from_votes(
            self.round,
            self.in_flight,
            self.quiescence,
            self.store.final_votes(),
        ));
        let churn_topo = self.churn.as_ref().map(|c| Arc::clone(&c.topo));
        let outputs = self
            .store
            .into_outputs(churn_topo.as_deref().unwrap_or(self.topology), self.round);
        self.stats.wall_time = started.elapsed();
        let metrics = if let Some(obs) = &self.config.observer {
            let mut obs = obs.lock();
            obs.on_run_end(&self.stats);
            obs.take_run_stream()
        } else {
            None
        };
        Ok(Report {
            outputs,
            stats: self.stats,
            trace: self.trace,
            round_profile: self.round_profile,
            metrics,
            certificate,
            sched: None,
        })
    }
}

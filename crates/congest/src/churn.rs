//! Shared churn application: turning a round's [`TopologyPlan`] batch into
//! topology mutations plus the per-node change summary every engine hands
//! to [`NodeAlgorithm::on_topology`](crate::NodeAlgorithm::on_topology).
//!
//! All three engines funnel their round's events through
//! [`apply_events`] at the same choke point, so the mutation order, the
//! resulting epoch, and the per-node deltas are identical by construction
//! — the churn analogue of the single outbox-validation point that keeps
//! fault injection bit-identical.

use std::collections::BTreeMap;

use crate::algorithm::TopologyDelta;
use crate::config::{EdgeEvent, NodeEvent, TopologyEvent};
use crate::error::SimError;
use crate::node::{NodeId, Port};
use crate::topology::Topology;

/// The digest of one round's applied churn batch: which ports each node
/// lost/gained and which nodes were removed or re-joined, plus the global
/// batch size ([`TopologyDelta::batch`]) and the post-batch epoch.
#[derive(Debug, Default)]
pub(crate) struct RoundChanges {
    pub epoch: u64,
    /// Directed port halves removed + inserted, plus one per node event.
    pub batch: u32,
    pub removed_ports: BTreeMap<NodeId, Vec<Port>>,
    pub inserted_ports: BTreeMap<NodeId, Vec<(Port, NodeId)>>,
    /// Sorted, deduplicated.
    pub removed_nodes: Vec<NodeId>,
    /// Sorted, deduplicated.
    pub joined_nodes: Vec<NodeId>,
}

impl RoundChanges {
    /// The node-local view of this batch for `v`.
    pub(crate) fn delta_for(&self, v: NodeId) -> TopologyDelta<'_> {
        static NO_PORTS: [Port; 0] = [];
        static NO_INSERTS: [(Port, NodeId); 0] = [];
        TopologyDelta {
            epoch: self.epoch,
            batch: self.batch,
            removed_ports: self
                .removed_ports
                .get(&v)
                .map(Vec::as_slice)
                .unwrap_or(&NO_PORTS),
            inserted_ports: self
                .inserted_ports
                .get(&v)
                .map(Vec::as_slice)
                .unwrap_or(&NO_INSERTS),
            removed: self.removed_nodes.binary_search(&v).is_ok(),
            joined: self.joined_nodes.binary_search(&v).is_ok(),
        }
    }
}

/// Applies one round's batch of events to `topo` in plan order, returning
/// the digest. On error the topology may be partially mutated — the
/// engines surface the error and abort the run, so the partial state is
/// never observed by algorithm code.
pub(crate) fn apply_events(
    topo: &mut Topology,
    events: &[(u64, TopologyEvent)],
) -> Result<RoundChanges, SimError> {
    let mut ch = RoundChanges::default();
    for &(_, event) in events {
        match event {
            TopologyEvent::Edge(EdgeEvent::Insert { u, v }) => {
                let [(u, pu), (v, pv)] = topo.insert_edge(u, v)?;
                ch.inserted_ports.entry(u).or_default().push((pu, v));
                ch.inserted_ports.entry(v).or_default().push((pv, u));
                ch.batch += 2;
            }
            TopologyEvent::Edge(EdgeEvent::Remove { u, v }) => {
                let halves = topo.remove_edge(u, v)?;
                for (w, p) in halves {
                    ch.removed_ports.entry(w).or_default().push(p);
                    ch.batch += 1;
                }
            }
            TopologyEvent::Node(NodeEvent::Crash(v)) => {
                let halves = topo.remove_node(v)?;
                ch.batch += halves.len() as u32 + 1;
                for (w, p) in halves {
                    ch.removed_ports.entry(w).or_default().push(p);
                }
                ch.removed_nodes.push(v);
            }
            TopologyEvent::Node(NodeEvent::Join(v)) => {
                topo.join_node(v)?;
                ch.joined_nodes.push(v);
                ch.batch += 1;
            }
        }
    }
    ch.removed_nodes.sort_unstable();
    ch.removed_nodes.dedup();
    ch.joined_nodes.sort_unstable();
    ch.joined_nodes.dedup();
    ch.epoch = topo.epoch();
    Ok(ch)
}

/// The topology `base` ends up as after *every* event of `plan` has been
/// applied — the oracle-side helper: recompute reference answers on the
/// post-churn graph (via [`Topology::to_adjacency`]) and compare them to a
/// churned run's repaired outputs.
///
/// # Errors
///
/// Propagates the same validation errors a running engine would hit at its
/// choke point (removing a missing edge, inserting a duplicate, …).
pub fn churned_topology(
    base: &Topology,
    plan: &crate::config::TopologyPlan,
) -> Result<Topology, SimError> {
    let mut topo = base.clone();
    apply_events(&mut topo, plan.events())?;
    Ok(topo)
}

/// The nodes that get an `on_topology` notification for this batch, in
/// id order: every present node, plus the nodes the batch itself removed
/// (their final notification).
pub(crate) fn notify_order(topo: &Topology, changes: &RoundChanges) -> Vec<NodeId> {
    (0..topo.num_nodes() as NodeId)
        .filter(|&v| topo.node_present(v) || changes.removed_nodes.binary_search(&v).is_ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TopologyPlan;

    fn path4() -> Topology {
        Topology::from_adjacency(vec![vec![1], vec![0, 2], vec![1, 3], vec![2]]).unwrap()
    }

    #[test]
    fn batch_digest_covers_all_event_kinds() {
        let mut topo = path4();
        let plan = TopologyPlan::new()
            .with_remove(3, 1, 2)
            .with_insert(3, 0, 3)
            .with_crash(3, 2);
        let ch = apply_events(&mut topo, plan.events_at(3)).unwrap();
        assert_eq!(ch.epoch, 3);
        // remove(1,2): 2 halves; insert(0,3): 2 halves; crash(2): one
        // remaining edge (2-3) = 2 halves + 1 node event.
        assert_eq!(ch.batch, 2 + 2 + 3);
        assert_eq!(ch.removed_nodes, vec![2]);
        assert!(ch.joined_nodes.is_empty());
        let d1 = ch.delta_for(1);
        assert_eq!(d1.removed_ports, &[1]);
        assert!(d1.inserted_ports.is_empty());
        assert!(!d1.removed && !d1.joined);
        let d2 = ch.delta_for(2);
        assert!(d2.removed);
        assert_eq!(d2.removed_ports, &[0, 1]);
        let d0 = ch.delta_for(0);
        assert_eq!(d0.inserted_ports, &[(1, 3)]);
        let d3 = ch.delta_for(3);
        assert_eq!(d3.inserted_ports, &[(1, 0)]);
        assert_eq!(d3.removed_ports, &[0]);
        // Removed node 2 still gets its final notification.
        assert_eq!(notify_order(&topo, &ch), vec![0, 1, 2, 3]);
        // A later batch no longer notifies it.
        let later = apply_events(
            &mut topo,
            TopologyPlan::new().with_remove(4, 0, 1).events_at(4),
        )
        .unwrap();
        assert_eq!(notify_order(&topo, &later), vec![0, 1, 3]);
    }

    #[test]
    fn invalid_events_error_out() {
        let mut topo = path4();
        let bad = TopologyPlan::new().with_remove(1, 0, 3);
        assert!(apply_events(&mut topo, bad.events_at(1)).is_err());
        let bad = TopologyPlan::new().with_insert(1, 0, 1);
        assert!(apply_events(&mut topo, bad.events_at(1)).is_err());
        let bad = TopologyPlan::new().with_join(1, 0);
        assert!(apply_events(&mut topo, bad.events_at(1)).is_err());
    }
}

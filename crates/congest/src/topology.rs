//! The communication graph over which a distributed algorithm runs.

use crate::error::SimError;
use crate::node::NodeId;

/// Per-node mutable overlay, materialized lazily the first time a node's
/// adjacency changes. The base CSR arrays stay immutable; a spilled node's
/// port space lives here instead.
///
/// Ports are *stable*: removing an edge tombstones its port (the `dead`
/// flag) rather than shifting later ports, and inserting an edge appends a
/// fresh port at each endpoint. A dead port keeps its neighbor id and
/// reverse port so observers and purge logic can still resolve the edge it
/// used to be; liveness is monotone (live → dead, never back — a
/// re-inserted edge gets a new port).
#[derive(Clone, Debug, PartialEq, Eq)]
struct Spill {
    neighbors: Vec<NodeId>,
    reverse_ports: Vec<u32>,
    dead: Vec<bool>,
    /// Directed-edge index per port: base ports keep their CSR slot;
    /// inserted ports get fresh indices `>= 2m_base` from a monotone
    /// counter, so indices never collide or get reused.
    edge_idx: Vec<u32>,
}

/// A validated, undirected communication topology given as adjacency lists.
///
/// Node identifiers are `0..n`. [`Topology::from_adjacency`] checks that the
/// lists describe a simple undirected graph (symmetric, no self-loops, no
/// parallel edges).
///
/// The *port* of a neighbor is its index in the node's adjacency list; ports
/// are the only way algorithms address messages, mirroring the CONGEST
/// assumption that a node initially knows nothing beyond its immediate
/// neighborhood.
///
/// # Examples
///
/// ```
/// use dapsp_congest::Topology;
///
/// # fn main() -> Result<(), dapsp_congest::SimError> {
/// let triangle = Topology::from_adjacency(vec![vec![1, 2], vec![0, 2], vec![0, 1]])?;
/// assert_eq!(triangle.num_nodes(), 3);
/// assert_eq!(triangle.num_edges(), 3);
/// assert_eq!(triangle.degree(0), 2);
/// # Ok(())
/// # }
/// ```
/// The topology is stored in CSR (compressed sparse row) form: one flat
/// neighbor array plus per-node offsets, so a whole simulation round walks
/// memory sequentially instead of chasing one heap allocation per node.
///
/// # Versioned views
///
/// A topology is a *versioned view*: the CSR base is immutable, and the
/// mutators ([`Topology::insert_edge`], [`Topology::remove_edge`],
/// [`Topology::remove_node`], [`Topology::join_node`]) record changes in a
/// per-node delta overlay in `O(degree)` per event, bumping
/// [`Topology::epoch`]. Ports never shift: removals tombstone their port
/// (query liveness with [`Topology::port_live`]), insertions append fresh
/// ports, and removed nodes become [absent](Topology::node_present) while
/// keeping their id. [`Topology::degree`] and [`Topology::neighbors`] span
/// the full port space including tombstones — algorithm code that walks
/// ports on a churned topology must filter by `port_live`. Equality is
/// representational: two views compare equal iff they went through the same
/// mutation history, not merely if they describe the same live graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    /// `offsets[v]..offsets[v+1]` delimits `v`'s slice of `neighbors` and
    /// `reverse_ports`; `offsets.len() == n + 1`.
    offsets: Vec<u32>,
    /// Flat neighbor array: `neighbors[offsets[v] + p]` is the node reached
    /// from `v` through port `p`.
    neighbors: Vec<NodeId>,
    /// `reverse_ports[offsets[v] + p]` is the port *at the neighbor*
    /// reached through `(v, p)` that leads back to `v`. Precomputed so
    /// message delivery is O(1).
    reverse_ports: Vec<u32>,
    num_edges: usize,
    /// Version counter: 0 at construction, +1 per applied mutation.
    epoch: u64,
    /// Per-node overlays; empty until the first mutation (so unmutated
    /// topologies pay one `is_empty` check per accessor).
    spills: Vec<Option<Box<Spill>>>,
    /// `absent[v]` iff `v` was removed by [`Topology::remove_node`] and not
    /// re-joined; empty means everyone is present.
    absent: Vec<bool>,
    /// Directed edges added beyond the base CSR; inserted ports take
    /// indices `base_2m + 0, base_2m + 1, …` in insertion order.
    ext_edges: u32,
}

impl Topology {
    /// Builds a topology from adjacency lists.
    ///
    /// Construction and validation run in `O(n + m)` time (one stamped
    /// scatter array replaces the per-neighbor membership scans), so even
    /// clique inputs cost linear-in-`m` work.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTopology`] if any list mentions a node id
    /// `>= n`, contains a self-loop or a duplicate neighbor, or if the lists
    /// are not symmetric (`u` lists `v` but `v` does not list `u`).
    pub fn from_adjacency(adj: Vec<Vec<NodeId>>) -> Result<Self, SimError> {
        let n = adj.len();
        // `mark[v] == u` iff node u already listed v in this pass; node ids
        // are `< n <= u32::MAX`, so `u32::MAX` is a safe "never" value.
        let mut mark = vec![u32::MAX; n];
        let mut degree_pairs = 0usize;
        for (u, neighbors) in adj.iter().enumerate() {
            for &v in neighbors {
                if v as usize >= n {
                    return Err(SimError::InvalidTopology(format!(
                        "node {u} lists neighbor {v}, but there are only {n} nodes"
                    )));
                }
                if v as usize == u {
                    return Err(SimError::InvalidTopology(format!(
                        "node {u} has a self-loop"
                    )));
                }
                if mark[v as usize] == u as u32 {
                    return Err(SimError::InvalidTopology(format!(
                        "node {u} lists neighbor {v} twice"
                    )));
                }
                mark[v as usize] = u as u32;
            }
            degree_pairs += neighbors.len();
        }
        // Flatten into CSR.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(degree_pairs);
        offsets.push(0u32);
        for list in &adj {
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len() as u32);
        }
        drop(adj);
        // Reverse ports in O(n + m): bucket every directed edge u--p-->v by
        // its target v (a counting sort), then for each v scatter v's own
        // neighbor->port map into a stamped array and resolve its bucket.
        let mut incoming = vec![0u32; n + 1];
        for &v in &neighbors {
            incoming[v as usize + 1] += 1;
        }
        for v in 0..n {
            incoming[v + 1] += incoming[v];
        }
        let mut cursor = incoming.clone();
        // Bucketed entries grouped by target: the flat index
        // `offsets[u] + p` of each directed edge plus its source `u`.
        let mut by_target = vec![(0u32, 0u32); degree_pairs];
        for u in 0..n {
            let start = offsets[u] as usize;
            for (off, &nb) in neighbors[start..offsets[u + 1] as usize].iter().enumerate() {
                let v = nb as usize;
                by_target[cursor[v] as usize] = ((start + off) as u32, u as u32);
                cursor[v] += 1;
            }
        }
        let mut reverse_ports = vec![0u32; degree_pairs];
        // Stamped scatter: port_at[w] is meaningful iff stamp[w] == v.
        let mut port_at = vec![0u32; n];
        let mut stamp = vec![u32::MAX; n];
        for v in 0..n {
            let (start, end) = (offsets[v] as usize, offsets[v + 1] as usize);
            for (q, &w) in neighbors[start..end].iter().enumerate() {
                stamp[w as usize] = v as u32;
                port_at[w as usize] = q as u32;
            }
            for &(e, u) in &by_target[incoming[v] as usize..incoming[v + 1] as usize] {
                // Edge e is u --p--> v; symmetric iff v also lists u.
                if stamp[u as usize] != v as u32 {
                    return Err(SimError::InvalidTopology(format!(
                        "edge {u}->{v} is not symmetric: {v} does not list {u}"
                    )));
                }
                reverse_ports[e as usize] = port_at[u as usize];
            }
        }
        Ok(Self {
            offsets,
            neighbors,
            reverse_ports,
            num_edges: degree_pairs / 2,
            epoch: 0,
            spills: Vec::new(),
            absent: Vec::new(),
            ext_edges: 0,
        })
    }

    /// Number of nodes `n` (including [absent](Topology::node_present)
    /// ones — ids are never reused).
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of *live* undirected edges `m`.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of node `v` — the size of its port space, *including*
    /// tombstoned (dead) ports. Use [`Topology::live_degree`] for the count
    /// of live edges.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn degree(&self, v: NodeId) -> usize {
        match self.spill(v) {
            Some(s) => s.neighbors.len(),
            None => (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize,
        }
    }

    /// The largest degree (port-space size) of any node (0 for an edgeless
    /// graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes() as NodeId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// The neighbors of `v`, in port order — including the former
    /// neighbors behind tombstoned ports (filter with
    /// [`Topology::port_live`] on a churned view).
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        match self.spill(v) {
            Some(s) => &s.neighbors,
            None => {
                &self.neighbors
                    [self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
            }
        }
    }

    /// The node reached from `v` through port `p` (still resolvable when
    /// the port is dead — the id of the former neighbor).
    ///
    /// # Panics
    ///
    /// Panics if `v` or `p` is out of range.
    pub fn neighbor_at(&self, v: NodeId, p: u32) -> NodeId {
        self.neighbors(v)[p as usize]
    }

    /// The port at `neighbor_at(v, p)` that leads back to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `p` is out of range.
    pub fn reverse_port(&self, v: NodeId, p: u32) -> u32 {
        match self.spill(v) {
            Some(s) => s.reverse_ports[p as usize],
            None => {
                self.reverse_ports
                    [self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
                    [p as usize]
            }
        }
    }

    /// The flat index of the directed edge leaving `v` through port `p`:
    /// a unique value (base ports use their CSR slot in `0..2m_base`;
    /// ports inserted by churn take fresh indices `>= 2m_base`), used by
    /// observers to key per-edge accounting without hashing. Indices are
    /// never reused, so they stay unique across the whole run even as
    /// edges come and go.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range; an out-of-range `p` on an unmutated
    /// node yields an index beyond `v`'s slice rather than panicking here.
    pub fn directed_edge_index(&self, v: NodeId, p: u32) -> u32 {
        match self.spill(v) {
            Some(s) => s.edge_idx[p as usize],
            None => self.offsets[v as usize] + p,
        }
    }

    /// Number of directed edge *indices* ever allocated (`2m_base` plus
    /// inserted directions), the exclusive upper bound of
    /// [`Topology::directed_edge_index`].
    pub fn num_directed_edges(&self) -> usize {
        self.neighbors.len() + self.ext_edges as usize
    }

    /// The version counter: 0 at construction, incremented once per applied
    /// mutation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether node `v` is present (not removed by
    /// [`Topology::remove_node`]).
    ///
    /// # Panics
    ///
    /// Panics if `v >= n` on a node-churned view.
    pub fn node_present(&self, v: NodeId) -> bool {
        self.absent.is_empty() || !self.absent[v as usize]
    }

    /// Whether port `p` of node `v` is live (its edge not removed).
    ///
    /// # Panics
    ///
    /// Panics if `v` or `p` is out of range on a mutated node.
    pub fn port_live(&self, v: NodeId, p: u32) -> bool {
        match self.spill(v) {
            Some(s) => !s.dead[p as usize],
            None => true,
        }
    }

    /// Number of live edges at `v` (its degree in the current live graph).
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn live_degree(&self, v: NodeId) -> usize {
        match self.spill(v) {
            Some(s) => s.dead.iter().filter(|&&d| !d).count(),
            None => self.degree(v),
        }
    }

    /// The current *live* graph as adjacency lists (absent nodes get empty
    /// lists, i.e. they stay in the id space as isolated vertices). Feeding
    /// the result back through [`Topology::from_adjacency`] yields a fresh
    /// epoch-0 view of the post-churn graph — the oracle-side mirror of a
    /// churned run.
    pub fn to_adjacency(&self) -> Vec<Vec<NodeId>> {
        (0..self.num_nodes() as NodeId)
            .map(|v| {
                if !self.node_present(v) {
                    return Vec::new();
                }
                (0..self.degree(v) as u32)
                    .filter(|&p| self.port_live(v, p))
                    .map(|p| self.neighbor_at(v, p))
                    .collect()
            })
            .collect()
    }

    fn spill(&self, v: NodeId) -> Option<&Spill> {
        match self.spills.get(v as usize) {
            Some(slot) => slot.as_deref(),
            None => None,
        }
    }

    /// Materializes (or fetches) `v`'s overlay, copying its base CSR slice
    /// on first touch — the `O(degree)` part of every mutator.
    fn spill_mut(&mut self, v: NodeId) -> &mut Spill {
        if self.spills.is_empty() {
            self.spills = std::iter::repeat_with(|| None)
                .take(self.num_nodes())
                .collect();
        }
        let idx = v as usize;
        if self.spills[idx].is_none() {
            let (s, e) = (self.offsets[idx] as usize, self.offsets[idx + 1] as usize);
            self.spills[idx] = Some(Box::new(Spill {
                neighbors: self.neighbors[s..e].to_vec(),
                reverse_ports: self.reverse_ports[s..e].to_vec(),
                dead: vec![false; e - s],
                edge_idx: (s as u32..e as u32).collect(),
            }));
        }
        self.spills[idx].as_mut().expect("just materialized")
    }

    /// The live port at `u` whose neighbor is `v`, if the edge exists.
    fn live_port_to(&self, u: NodeId, v: NodeId) -> Option<u32> {
        (0..self.degree(u) as u32).find(|&p| self.port_live(u, p) && self.neighbor_at(u, p) == v)
    }

    fn check_node(&self, v: NodeId) -> Result<(), SimError> {
        if v as usize >= self.num_nodes() {
            let n = self.num_nodes();
            return Err(SimError::InvalidTopology(format!(
                "topology event names node {v}, but there are only {n} nodes"
            )));
        }
        Ok(())
    }

    /// Inserts the undirected edge `u – v`, appending a fresh port at each
    /// endpoint (the new port index is the endpoint's previous port-space
    /// size). Returns the two new `(node, port)` halves as
    /// `[(u, pu), (v, pv)]`. `O(degree)` in the endpoints' degrees.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidTopology`] if an endpoint is out of range or
    /// absent, `u == v`, or a live `u – v` edge already exists.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<[(NodeId, u32); 2], SimError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(SimError::InvalidTopology(format!(
                "cannot insert self-loop at node {u}"
            )));
        }
        for w in [u, v] {
            if !self.node_present(w) {
                return Err(SimError::InvalidTopology(format!(
                    "cannot insert edge {u}-{v}: node {w} is absent"
                )));
            }
        }
        if self.live_port_to(u, v).is_some() {
            return Err(SimError::InvalidTopology(format!(
                "edge {u}-{v} already exists"
            )));
        }
        let pu = self.degree(u) as u32;
        let pv = self.degree(v) as u32;
        let base = self.neighbors.len() as u32;
        let eu = base + self.ext_edges;
        let ev = base + self.ext_edges + 1;
        self.ext_edges += 2;
        let su = self.spill_mut(u);
        su.neighbors.push(v);
        su.reverse_ports.push(pv);
        su.dead.push(false);
        su.edge_idx.push(eu);
        let sv = self.spill_mut(v);
        sv.neighbors.push(u);
        sv.reverse_ports.push(pu);
        sv.dead.push(false);
        sv.edge_idx.push(ev);
        self.num_edges += 1;
        self.epoch += 1;
        Ok([(u, pu), (v, pv)])
    }

    /// Removes the live edge `u – v`, tombstoning its port at each
    /// endpoint (ports never shift). Returns the two dead `(node, port)`
    /// halves as `[(u, pu), (v, pv)]`. `O(degree)`.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidTopology`] if an endpoint is out of range or no
    /// live `u – v` edge exists.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<[(NodeId, u32); 2], SimError> {
        self.check_node(u)?;
        self.check_node(v)?;
        let Some(pu) = self.live_port_to(u, v) else {
            return Err(SimError::InvalidTopology(format!(
                "cannot remove edge {u}-{v}: no such live edge"
            )));
        };
        let pv = self.reverse_port(u, pu);
        self.spill_mut(u).dead[pu as usize] = true;
        self.spill_mut(v).dead[pv as usize] = true;
        self.num_edges -= 1;
        self.epoch += 1;
        Ok([(u, pu), (v, pv)])
    }

    /// Removes node `v` from the network: marks it absent and tombstones
    /// every live port at `v` *and* the matching reverse port at each
    /// neighbor (a removed node loses its edges — unlike a
    /// [`CrashWindow`](crate::CrashWindow) fault, which keeps them).
    /// Returns every tombstoned `(node, port)` half, in `v`'s port order,
    /// each of `v`'s halves immediately followed by the neighbor's.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidTopology`] if `v` is out of range or already
    /// absent.
    pub fn remove_node(&mut self, v: NodeId) -> Result<Vec<(NodeId, u32)>, SimError> {
        self.check_node(v)?;
        if !self.node_present(v) {
            return Err(SimError::InvalidTopology(format!(
                "cannot remove node {v}: already absent"
            )));
        }
        let mut dead = Vec::new();
        for p in 0..self.degree(v) as u32 {
            if !self.port_live(v, p) {
                continue;
            }
            let u = self.neighbor_at(v, p);
            let q = self.reverse_port(v, p);
            self.spill_mut(v).dead[p as usize] = true;
            self.spill_mut(u).dead[q as usize] = true;
            dead.push((v, p));
            dead.push((u, q));
            self.num_edges -= 1;
        }
        if self.absent.is_empty() {
            self.absent = vec![false; self.num_nodes()];
        }
        self.absent[v as usize] = true;
        self.epoch += 1;
        Ok(dead)
    }

    /// Re-joins the absent node `v` with *no* edges (connect it with
    /// subsequent [`Topology::insert_edge`] events). Its old ports stay
    /// tombstoned.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidTopology`] if `v` is out of range or currently
    /// present.
    pub fn join_node(&mut self, v: NodeId) -> Result<(), SimError> {
        self.check_node(v)?;
        if self.node_present(v) {
            return Err(SimError::InvalidTopology(format!(
                "cannot join node {v}: already present"
            )));
        }
        self.absent[v as usize] = false;
        self.epoch += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Vec<Vec<NodeId>> {
        vec![vec![1], vec![0, 2], vec![1]]
    }

    #[test]
    fn accepts_valid_path() {
        let t = Topology::from_adjacency(path3()).unwrap();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_edges(), 2);
        assert_eq!(t.degree(1), 2);
        assert_eq!(t.neighbors(1), &[0, 2]);
    }

    #[test]
    fn reverse_ports_round_trip() {
        let t = Topology::from_adjacency(path3()).unwrap();
        for v in 0..3u32 {
            for p in 0..t.degree(v) as u32 {
                let u = t.neighbor_at(v, p);
                let back = t.reverse_port(v, p);
                assert_eq!(t.neighbor_at(u, back), v);
            }
        }
    }

    #[test]
    fn rejects_self_loop() {
        let err = Topology::from_adjacency(vec![vec![0]]).unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(_)));
    }

    #[test]
    fn rejects_asymmetric() {
        let err = Topology::from_adjacency(vec![vec![1], vec![]]).unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(_)));
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Topology::from_adjacency(vec![vec![5]]).unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(_)));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let err = Topology::from_adjacency(vec![vec![1, 1], vec![0, 0]]).unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(_)));
    }

    #[test]
    fn csr_handles_isolated_nodes_between_edges() {
        // Node 1 is isolated; 0, 2, 3 form a path 0-2-3 with unsorted lists.
        let t = Topology::from_adjacency(vec![vec![2], vec![], vec![3, 0], vec![2]]).unwrap();
        assert_eq!(t.num_edges(), 2);
        assert_eq!(t.degree(1), 0);
        assert_eq!(t.neighbors(1), &[] as &[NodeId]);
        assert_eq!(t.neighbors(2), &[3, 0]);
        assert_eq!(t.max_degree(), 2);
        for v in [0u32, 2, 3] {
            for p in 0..t.degree(v) as u32 {
                let u = t.neighbor_at(v, p);
                assert_eq!(t.neighbor_at(u, t.reverse_port(v, p)), v);
            }
        }
    }

    #[test]
    fn clique_reverse_ports_round_trip() {
        let n = 40u32;
        let adj: Vec<Vec<NodeId>> = (0..n)
            .map(|u| (0..n).filter(|&v| v != u).collect())
            .collect();
        let t = Topology::from_adjacency(adj).unwrap();
        assert_eq!(t.num_edges(), (n as usize * (n as usize - 1)) / 2);
        assert_eq!(t.max_degree(), n as usize - 1);
        for v in 0..n {
            for p in 0..t.degree(v) as u32 {
                let u = t.neighbor_at(v, p);
                assert_eq!(t.neighbor_at(u, t.reverse_port(v, p)), v);
            }
        }
    }

    #[test]
    fn directed_edge_indices_are_unique_and_dense() {
        let t = Topology::from_adjacency(vec![vec![2], vec![], vec![3, 0], vec![2]]).unwrap();
        assert_eq!(t.num_directed_edges(), 4);
        let mut seen = vec![false; t.num_directed_edges()];
        for v in 0..t.num_nodes() as NodeId {
            for p in 0..t.degree(v) as u32 {
                let e = t.directed_edge_index(v, p) as usize;
                assert!(!seen[e], "index {e} repeated");
                seen[e] = true;
                // The reverse direction pairs up through reverse_port.
                let u = t.neighbor_at(v, p);
                let r = t.directed_edge_index(u, t.reverse_port(v, p));
                assert_ne!(e as u32, r);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn empty_and_single_node() {
        let t = Topology::from_adjacency(vec![]).unwrap();
        assert_eq!(t.num_nodes(), 0);
        let t = Topology::from_adjacency(vec![vec![]]).unwrap();
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.num_edges(), 0);
    }

    #[test]
    fn fresh_view_reports_everything_live() {
        let t = Topology::from_adjacency(path3()).unwrap();
        assert_eq!(t.epoch(), 0);
        for v in 0..3u32 {
            assert!(t.node_present(v));
            assert_eq!(t.live_degree(v), t.degree(v));
            for p in 0..t.degree(v) as u32 {
                assert!(t.port_live(v, p));
            }
        }
        assert_eq!(t.to_adjacency(), path3());
    }

    #[test]
    fn remove_edge_tombstones_without_shifting_ports() {
        let mut t = Topology::from_adjacency(path3()).unwrap();
        let dead = t.remove_edge(1, 0).unwrap();
        assert_eq!(dead, [(1, 0), (0, 0)]);
        assert_eq!(t.epoch(), 1);
        assert_eq!(t.num_edges(), 1);
        // Port space unchanged; port 1 of node 1 still reaches node 2.
        assert_eq!(t.degree(1), 2);
        assert_eq!(t.live_degree(1), 1);
        assert!(!t.port_live(1, 0));
        assert!(t.port_live(1, 1));
        assert_eq!(t.neighbor_at(1, 1), 2);
        // The tombstone still resolves to its former neighbor.
        assert_eq!(t.neighbor_at(1, 0), 0);
        assert_eq!(t.to_adjacency(), vec![vec![], vec![2], vec![1]]);
        // Removing again fails: liveness is monotone.
        assert!(t.remove_edge(0, 1).is_err());
    }

    #[test]
    fn insert_edge_appends_fresh_ports_and_edge_indices() {
        let mut t = Topology::from_adjacency(path3()).unwrap();
        let base_2m = t.num_directed_edges();
        let added = t.insert_edge(0, 2).unwrap();
        assert_eq!(added, [(0, 1), (2, 1)]);
        assert_eq!(t.num_edges(), 3);
        assert_eq!(t.degree(0), 2);
        assert_eq!(t.neighbor_at(0, 1), 2);
        assert_eq!(t.reverse_port(0, 1), 1);
        assert_eq!(t.neighbor_at(2, 1), 0);
        // Fresh directed-edge indices, past the base range.
        assert_eq!(t.directed_edge_index(0, 1) as usize, base_2m);
        assert_eq!(t.directed_edge_index(2, 1) as usize, base_2m + 1);
        assert_eq!(t.num_directed_edges(), base_2m + 2);
        // Unmutated node 1 keeps its base indices.
        assert_eq!(t.directed_edge_index(1, 0), 1);
        assert!(t.insert_edge(0, 2).is_err(), "duplicate live edge");
        assert!(t.insert_edge(2, 0).is_err(), "duplicate, reversed");
        assert!(t.insert_edge(1, 1).is_err(), "self-loop");
    }

    #[test]
    fn reinserted_edge_gets_new_port_not_resurrection() {
        let mut t = Topology::from_adjacency(path3()).unwrap();
        t.remove_edge(0, 1).unwrap();
        let added = t.insert_edge(0, 1).unwrap();
        // Old port 0 stays dead; the edge returns on fresh ports.
        assert_eq!(added, [(0, 1), (1, 2)]);
        assert!(!t.port_live(0, 0));
        assert!(t.port_live(0, 1));
        assert_eq!(t.epoch(), 2);
        assert_eq!(t.to_adjacency(), vec![vec![1], vec![2, 0], vec![1]]);
    }

    #[test]
    fn remove_node_kills_both_sides_and_join_returns_isolated() {
        let mut t = Topology::from_adjacency(path3()).unwrap();
        let dead = t.remove_node(1).unwrap();
        assert_eq!(dead, vec![(1, 0), (0, 0), (1, 1), (2, 0)]);
        assert!(!t.node_present(1));
        assert_eq!(t.num_edges(), 0);
        assert_eq!(t.live_degree(0), 0);
        assert_eq!(t.to_adjacency(), vec![vec![], vec![], vec![]]);
        assert!(t.remove_node(1).is_err(), "already absent");
        assert!(t.insert_edge(0, 1).is_err(), "absent endpoint");
        assert!(t.join_node(0).is_err(), "node 0 is present");
        t.join_node(1).unwrap();
        assert!(t.node_present(1));
        assert_eq!(t.live_degree(1), 0, "joins with no edges");
        t.insert_edge(1, 2).unwrap();
        assert_eq!(t.to_adjacency(), vec![vec![], vec![2], vec![1]]);
    }

    #[test]
    fn churned_reverse_ports_round_trip() {
        let mut t = Topology::from_adjacency(vec![vec![2], vec![], vec![3, 0], vec![2]]).unwrap();
        t.insert_edge(1, 3).unwrap();
        t.remove_edge(2, 3).unwrap();
        t.insert_edge(0, 1).unwrap();
        let mut seen = std::collections::HashSet::new();
        for v in 0..t.num_nodes() as NodeId {
            for p in 0..t.degree(v) as u32 {
                assert!(seen.insert(t.directed_edge_index(v, p)), "index reused");
                if !t.port_live(v, p) {
                    continue;
                }
                let u = t.neighbor_at(v, p);
                let back = t.reverse_port(v, p);
                assert_eq!(t.neighbor_at(u, back), v);
                assert!(t.port_live(u, back), "liveness is symmetric");
            }
        }
        assert_eq!(
            t.to_adjacency(),
            vec![vec![2, 1], vec![3, 0], vec![0], vec![1]]
        );
    }
}

//! The communication graph over which a distributed algorithm runs.

use crate::error::SimError;
use crate::node::NodeId;

/// A validated, undirected communication topology given as adjacency lists.
///
/// Node identifiers are `0..n`. The structure is immutable after
/// construction; [`Topology::from_adjacency`] checks that the lists describe
/// a simple undirected graph (symmetric, no self-loops, no parallel edges).
///
/// The *port* of a neighbor is its index in the node's adjacency list; ports
/// are the only way algorithms address messages, mirroring the CONGEST
/// assumption that a node initially knows nothing beyond its immediate
/// neighborhood.
///
/// # Examples
///
/// ```
/// use dapsp_congest::Topology;
///
/// # fn main() -> Result<(), dapsp_congest::SimError> {
/// let triangle = Topology::from_adjacency(vec![vec![1, 2], vec![0, 2], vec![0, 1]])?;
/// assert_eq!(triangle.num_nodes(), 3);
/// assert_eq!(triangle.num_edges(), 3);
/// assert_eq!(triangle.degree(0), 2);
/// # Ok(())
/// # }
/// ```
/// The topology is stored in CSR (compressed sparse row) form: one flat
/// neighbor array plus per-node offsets, so a whole simulation round walks
/// memory sequentially instead of chasing one heap allocation per node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    /// `offsets[v]..offsets[v+1]` delimits `v`'s slice of `neighbors` and
    /// `reverse_ports`; `offsets.len() == n + 1`.
    offsets: Vec<u32>,
    /// Flat neighbor array: `neighbors[offsets[v] + p]` is the node reached
    /// from `v` through port `p`.
    neighbors: Vec<NodeId>,
    /// `reverse_ports[offsets[v] + p]` is the port *at the neighbor*
    /// reached through `(v, p)` that leads back to `v`. Precomputed so
    /// message delivery is O(1).
    reverse_ports: Vec<u32>,
    num_edges: usize,
}

impl Topology {
    /// Builds a topology from adjacency lists.
    ///
    /// Construction and validation run in `O(n + m)` time (one stamped
    /// scatter array replaces the per-neighbor membership scans), so even
    /// clique inputs cost linear-in-`m` work.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTopology`] if any list mentions a node id
    /// `>= n`, contains a self-loop or a duplicate neighbor, or if the lists
    /// are not symmetric (`u` lists `v` but `v` does not list `u`).
    pub fn from_adjacency(adj: Vec<Vec<NodeId>>) -> Result<Self, SimError> {
        let n = adj.len();
        // `mark[v] == u` iff node u already listed v in this pass; node ids
        // are `< n <= u32::MAX`, so `u32::MAX` is a safe "never" value.
        let mut mark = vec![u32::MAX; n];
        let mut degree_pairs = 0usize;
        for (u, neighbors) in adj.iter().enumerate() {
            for &v in neighbors {
                if v as usize >= n {
                    return Err(SimError::InvalidTopology(format!(
                        "node {u} lists neighbor {v}, but there are only {n} nodes"
                    )));
                }
                if v as usize == u {
                    return Err(SimError::InvalidTopology(format!(
                        "node {u} has a self-loop"
                    )));
                }
                if mark[v as usize] == u as u32 {
                    return Err(SimError::InvalidTopology(format!(
                        "node {u} lists neighbor {v} twice"
                    )));
                }
                mark[v as usize] = u as u32;
            }
            degree_pairs += neighbors.len();
        }
        // Flatten into CSR.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(degree_pairs);
        offsets.push(0u32);
        for list in &adj {
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len() as u32);
        }
        drop(adj);
        // Reverse ports in O(n + m): bucket every directed edge u--p-->v by
        // its target v (a counting sort), then for each v scatter v's own
        // neighbor->port map into a stamped array and resolve its bucket.
        let mut incoming = vec![0u32; n + 1];
        for &v in &neighbors {
            incoming[v as usize + 1] += 1;
        }
        for v in 0..n {
            incoming[v + 1] += incoming[v];
        }
        let mut cursor = incoming.clone();
        // Bucketed entries grouped by target: the flat index
        // `offsets[u] + p` of each directed edge plus its source `u`.
        let mut by_target = vec![(0u32, 0u32); degree_pairs];
        for u in 0..n {
            let start = offsets[u] as usize;
            for (off, &nb) in neighbors[start..offsets[u + 1] as usize].iter().enumerate() {
                let v = nb as usize;
                by_target[cursor[v] as usize] = ((start + off) as u32, u as u32);
                cursor[v] += 1;
            }
        }
        let mut reverse_ports = vec![0u32; degree_pairs];
        // Stamped scatter: port_at[w] is meaningful iff stamp[w] == v.
        let mut port_at = vec![0u32; n];
        let mut stamp = vec![u32::MAX; n];
        for v in 0..n {
            let (start, end) = (offsets[v] as usize, offsets[v + 1] as usize);
            for (q, &w) in neighbors[start..end].iter().enumerate() {
                stamp[w as usize] = v as u32;
                port_at[w as usize] = q as u32;
            }
            for &(e, u) in &by_target[incoming[v] as usize..incoming[v + 1] as usize] {
                // Edge e is u --p--> v; symmetric iff v also lists u.
                if stamp[u as usize] != v as u32 {
                    return Err(SimError::InvalidTopology(format!(
                        "edge {u}->{v} is not symmetric: {v} does not list {u}"
                    )));
                }
                reverse_ports[e as usize] = port_at[u as usize];
            }
        }
        Ok(Self {
            offsets,
            neighbors,
            reverse_ports,
            num_edges: degree_pairs / 2,
        })
    }

    /// Number of nodes `n`.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// The largest degree of any node (0 for an edgeless graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes() as NodeId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// The neighbors of `v`, in port order.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// The node reached from `v` through port `p`.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `p` is out of range.
    pub fn neighbor_at(&self, v: NodeId, p: u32) -> NodeId {
        self.neighbors(v)[p as usize]
    }

    /// The port at `neighbor_at(v, p)` that leads back to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `p` is out of range.
    pub fn reverse_port(&self, v: NodeId, p: u32) -> u32 {
        self.reverse_ports[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
            [p as usize]
    }

    /// The flat index of the directed edge leaving `v` through port `p`:
    /// a unique value in `0..2m` (it is `v`'s CSR slot for that port), used
    /// by observers to key per-edge accounting without hashing.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range; an out-of-range `p` yields an index
    /// beyond `v`'s slice rather than panicking here.
    pub fn directed_edge_index(&self, v: NodeId, p: u32) -> u32 {
        self.offsets[v as usize] + p
    }

    /// Number of directed edges (`2m`), the exclusive upper bound of
    /// [`Topology::directed_edge_index`].
    pub fn num_directed_edges(&self) -> usize {
        self.neighbors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Vec<Vec<NodeId>> {
        vec![vec![1], vec![0, 2], vec![1]]
    }

    #[test]
    fn accepts_valid_path() {
        let t = Topology::from_adjacency(path3()).unwrap();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_edges(), 2);
        assert_eq!(t.degree(1), 2);
        assert_eq!(t.neighbors(1), &[0, 2]);
    }

    #[test]
    fn reverse_ports_round_trip() {
        let t = Topology::from_adjacency(path3()).unwrap();
        for v in 0..3u32 {
            for p in 0..t.degree(v) as u32 {
                let u = t.neighbor_at(v, p);
                let back = t.reverse_port(v, p);
                assert_eq!(t.neighbor_at(u, back), v);
            }
        }
    }

    #[test]
    fn rejects_self_loop() {
        let err = Topology::from_adjacency(vec![vec![0]]).unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(_)));
    }

    #[test]
    fn rejects_asymmetric() {
        let err = Topology::from_adjacency(vec![vec![1], vec![]]).unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(_)));
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Topology::from_adjacency(vec![vec![5]]).unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(_)));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let err = Topology::from_adjacency(vec![vec![1, 1], vec![0, 0]]).unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(_)));
    }

    #[test]
    fn csr_handles_isolated_nodes_between_edges() {
        // Node 1 is isolated; 0, 2, 3 form a path 0-2-3 with unsorted lists.
        let t = Topology::from_adjacency(vec![vec![2], vec![], vec![3, 0], vec![2]]).unwrap();
        assert_eq!(t.num_edges(), 2);
        assert_eq!(t.degree(1), 0);
        assert_eq!(t.neighbors(1), &[] as &[NodeId]);
        assert_eq!(t.neighbors(2), &[3, 0]);
        assert_eq!(t.max_degree(), 2);
        for v in [0u32, 2, 3] {
            for p in 0..t.degree(v) as u32 {
                let u = t.neighbor_at(v, p);
                assert_eq!(t.neighbor_at(u, t.reverse_port(v, p)), v);
            }
        }
    }

    #[test]
    fn clique_reverse_ports_round_trip() {
        let n = 40u32;
        let adj: Vec<Vec<NodeId>> = (0..n)
            .map(|u| (0..n).filter(|&v| v != u).collect())
            .collect();
        let t = Topology::from_adjacency(adj).unwrap();
        assert_eq!(t.num_edges(), (n as usize * (n as usize - 1)) / 2);
        assert_eq!(t.max_degree(), n as usize - 1);
        for v in 0..n {
            for p in 0..t.degree(v) as u32 {
                let u = t.neighbor_at(v, p);
                assert_eq!(t.neighbor_at(u, t.reverse_port(v, p)), v);
            }
        }
    }

    #[test]
    fn directed_edge_indices_are_unique_and_dense() {
        let t = Topology::from_adjacency(vec![vec![2], vec![], vec![3, 0], vec![2]]).unwrap();
        assert_eq!(t.num_directed_edges(), 4);
        let mut seen = vec![false; t.num_directed_edges()];
        for v in 0..t.num_nodes() as NodeId {
            for p in 0..t.degree(v) as u32 {
                let e = t.directed_edge_index(v, p) as usize;
                assert!(!seen[e], "index {e} repeated");
                seen[e] = true;
                // The reverse direction pairs up through reverse_port.
                let u = t.neighbor_at(v, p);
                let r = t.directed_edge_index(u, t.reverse_port(v, p));
                assert_ne!(e as u32, r);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn empty_and_single_node() {
        let t = Topology::from_adjacency(vec![]).unwrap();
        assert_eq!(t.num_nodes(), 0);
        let t = Topology::from_adjacency(vec![vec![]]).unwrap();
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.num_edges(), 0);
    }
}

//! The communication graph over which a distributed algorithm runs.

use crate::error::SimError;
use crate::node::NodeId;

/// A validated, undirected communication topology given as adjacency lists.
///
/// Node identifiers are `0..n`. The structure is immutable after
/// construction; [`Topology::from_adjacency`] checks that the lists describe
/// a simple undirected graph (symmetric, no self-loops, no parallel edges).
///
/// The *port* of a neighbor is its index in the node's adjacency list; ports
/// are the only way algorithms address messages, mirroring the CONGEST
/// assumption that a node initially knows nothing beyond its immediate
/// neighborhood.
///
/// # Examples
///
/// ```
/// use dapsp_congest::Topology;
///
/// # fn main() -> Result<(), dapsp_congest::SimError> {
/// let triangle = Topology::from_adjacency(vec![vec![1, 2], vec![0, 2], vec![0, 1]])?;
/// assert_eq!(triangle.num_nodes(), 3);
/// assert_eq!(triangle.num_edges(), 3);
/// assert_eq!(triangle.degree(0), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    /// `adj[v]` lists the neighbors of `v`; `adj[v][p]` is the node reached
    /// from `v` through port `p`.
    adj: Vec<Vec<NodeId>>,
    /// `reverse_port[v][p]` is the port *at the neighbor* `adj[v][p]` that
    /// leads back to `v`. Precomputed so message delivery is O(1).
    reverse_port: Vec<Vec<u32>>,
    num_edges: usize,
}

impl Topology {
    /// Builds a topology from adjacency lists.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTopology`] if any list mentions a node id
    /// `>= n`, contains a self-loop or a duplicate neighbor, or if the lists
    /// are not symmetric (`u` lists `v` but `v` does not list `u`).
    pub fn from_adjacency(adj: Vec<Vec<NodeId>>) -> Result<Self, SimError> {
        let n = adj.len();
        let mut degree_pairs = 0usize;
        for (u, neighbors) in adj.iter().enumerate() {
            let mut seen = vec![];
            for &v in neighbors {
                if v as usize >= n {
                    return Err(SimError::InvalidTopology(format!(
                        "node {u} lists neighbor {v}, but there are only {n} nodes"
                    )));
                }
                if v as usize == u {
                    return Err(SimError::InvalidTopology(format!(
                        "node {u} has a self-loop"
                    )));
                }
                if seen.contains(&v) {
                    return Err(SimError::InvalidTopology(format!(
                        "node {u} lists neighbor {v} twice"
                    )));
                }
                seen.push(v);
            }
            degree_pairs += neighbors.len();
        }
        // Symmetry check and reverse-port table.
        let mut reverse_port = vec![vec![]; n];
        for (u, neighbors) in adj.iter().enumerate() {
            let mut rp = Vec::with_capacity(neighbors.len());
            for &v in neighbors {
                match adj[v as usize].iter().position(|&w| w as usize == u) {
                    Some(p) => rp.push(p as u32),
                    None => {
                        return Err(SimError::InvalidTopology(format!(
                            "edge {u}->{v} is not symmetric: {v} does not list {u}"
                        )))
                    }
                }
            }
            reverse_port[u] = rp;
        }
        Ok(Self {
            adj,
            reverse_port,
            num_edges: degree_pairs / 2,
        })
    }

    /// Number of nodes `n`.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges `m`.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize].len()
    }

    /// The neighbors of `v`, in port order.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v as usize]
    }

    /// The node reached from `v` through port `p`.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `p` is out of range.
    pub fn neighbor_at(&self, v: NodeId, p: u32) -> NodeId {
        self.adj[v as usize][p as usize]
    }

    /// The port at `neighbor_at(v, p)` that leads back to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `p` is out of range.
    pub fn reverse_port(&self, v: NodeId, p: u32) -> u32 {
        self.reverse_port[v as usize][p as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Vec<Vec<NodeId>> {
        vec![vec![1], vec![0, 2], vec![1]]
    }

    #[test]
    fn accepts_valid_path() {
        let t = Topology::from_adjacency(path3()).unwrap();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_edges(), 2);
        assert_eq!(t.degree(1), 2);
        assert_eq!(t.neighbors(1), &[0, 2]);
    }

    #[test]
    fn reverse_ports_round_trip() {
        let t = Topology::from_adjacency(path3()).unwrap();
        for v in 0..3u32 {
            for p in 0..t.degree(v) as u32 {
                let u = t.neighbor_at(v, p);
                let back = t.reverse_port(v, p);
                assert_eq!(t.neighbor_at(u, back), v);
            }
        }
    }

    #[test]
    fn rejects_self_loop() {
        let err = Topology::from_adjacency(vec![vec![0]]).unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(_)));
    }

    #[test]
    fn rejects_asymmetric() {
        let err = Topology::from_adjacency(vec![vec![1], vec![]]).unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(_)));
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Topology::from_adjacency(vec![vec![5]]).unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(_)));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let err = Topology::from_adjacency(vec![vec![1, 1], vec![0, 0]]).unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(_)));
    }

    #[test]
    fn empty_and_single_node() {
        let t = Topology::from_adjacency(vec![]).unwrap();
        assert_eq!(t.num_nodes(), 0);
        let t = Topology::from_adjacency(vec![vec![]]).unwrap();
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.num_edges(), 0);
    }
}

//! Property tests for the simulator's core guarantees: message delivery,
//! determinism, and bandwidth enforcement.

use proptest::prelude::*;

use dapsp_congest::{
    Config, Inbox, Message, NodeAlgorithm, NodeContext, Outbox, Port, SimError, Simulator, Topology,
};

/// A flood token carrying a configurable size.
#[derive(Clone, Debug)]
struct Sized(u32);
impl Message for Sized {
    fn bit_size(&self) -> u32 {
        self.0
    }
}

struct Flood {
    bits: u32,
    seen_round: Option<u64>,
}
impl NodeAlgorithm for Flood {
    type Message = Sized;
    type Output = Option<u64>;
    fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Sized>) {
        if ctx.node_id() == 0 {
            self.seen_round = Some(0);
            out.send_to_all(0..ctx.degree() as Port, Sized(self.bits));
        }
    }
    fn on_round(&mut self, ctx: &NodeContext<'_>, inbox: &Inbox<Sized>, out: &mut Outbox<Sized>) {
        if !inbox.is_empty() && self.seen_round.is_none() {
            self.seen_round = Some(ctx.round());
            out.send_to_all(0..ctx.degree() as Port, Sized(self.bits));
        }
    }
    fn into_output(self, _: &NodeContext<'_>) -> Option<u64> {
        self.seen_round
    }
}

/// Builds a random connected topology: a random-attachment tree plus extra
/// edges decided by the seed.
fn random_connected_adj(n: usize, seed: u64, extra_per_node: usize) -> Vec<Vec<u32>> {
    let mut edges = std::collections::BTreeSet::new();
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for v in 1..n as u64 {
        let p = next() % v;
        edges.insert((p.min(v) as u32, p.max(v) as u32));
    }
    for _ in 0..extra_per_node * n {
        let a = (next() % n as u64) as u32;
        let b = (next() % n as u64) as u32;
        if a != b {
            edges.insert((a.min(b), a.max(b)));
        }
    }
    let mut adj = vec![vec![]; n];
    for (a, b) in edges {
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    }
    adj
}

/// Centralized BFS for the expected delivery rounds.
fn bfs_rounds(adj: &[Vec<u32>]) -> Vec<u64> {
    let mut dist = vec![u64::MAX; adj.len()];
    dist[0] = 0;
    let mut q = std::collections::VecDeque::from([0u32]);
    while let Some(u) = q.pop_front() {
        for &v in &adj[u as usize] {
            if dist[v as usize] == u64::MAX {
                dist[v as usize] = dist[u as usize] + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A flood from node 0 reaches node v exactly at round d(0, v).
    #[test]
    fn flood_delivery_times_match_bfs(n in 2usize..40, seed in any::<u64>(), extra in 0usize..3) {
        let adj = random_connected_adj(n, seed, extra);
        let expected = bfs_rounds(&adj);
        let topo = Topology::from_adjacency(adj).expect("valid");
        let sim = Simulator::new(&topo, Config::for_n(n), |_| Flood { bits: 1, seen_round: None });
        let report = sim.run().expect("runs");
        for (v, got) in report.outputs.iter().enumerate() {
            prop_assert_eq!(got.unwrap(), expected[v], "node {}", v);
        }
        // Total rounds: last delivery plus at most two quiescence rounds.
        let max = *expected.iter().max().unwrap();
        prop_assert!(report.stats.rounds <= max + 2);
    }

    /// Message sizes above the bandwidth are rejected, at or below pass.
    #[test]
    fn bandwidth_is_enforced_exactly(n in 2usize..20, seed in any::<u64>(), over in 1u32..50) {
        let adj = random_connected_adj(n, seed, 1);
        let topo = Topology::from_adjacency(adj).expect("valid");
        let budget = Config::for_n(n).bandwidth_bits;
        // At the limit: fine.
        let sim = Simulator::new(&topo, Config::for_n(n), |_| Flood { bits: budget, seen_round: None });
        prop_assert!(sim.run().is_ok());
        // One bit over: rejected with the precise error.
        let sim = Simulator::new(&topo, Config::for_n(n), |_| Flood { bits: budget + over, seen_round: None });
        match sim.run() {
            Err(SimError::BandwidthExceeded { message_bits, bandwidth_bits, .. }) => {
                prop_assert_eq!(message_bits, budget + over);
                prop_assert_eq!(bandwidth_bits, budget);
            }
            other => prop_assert!(false, "expected bandwidth error, got {:?}", other.is_ok()),
        }
    }

    /// Runs are deterministic: identical inputs give identical outputs and
    /// statistics.
    #[test]
    fn simulation_is_deterministic(n in 2usize..30, seed in any::<u64>()) {
        let adj = random_connected_adj(n, seed, 2);
        let topo = Topology::from_adjacency(adj).expect("valid");
        let run = || {
            let sim = Simulator::new(&topo, Config::for_n(n), |_| Flood { bits: 3, seen_round: None });
            sim.run().expect("runs")
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.outputs, b.outputs);
        prop_assert_eq!(a.stats, b.stats);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fault injection: zero loss behaves identically to no plan; full loss
    /// delivers nothing; partial loss is deterministic in the seed and
    /// drops are accounted.
    #[test]
    fn loss_injection_properties(n in 3usize..24, seed in any::<u64>()) {
        let adj = random_connected_adj(n, seed, 1);
        let topo = Topology::from_adjacency(adj).expect("valid");
        let base = Simulator::new(&topo, Config::for_n(n), |_| Flood { bits: 1, seen_round: None })
            .run().expect("runs");
        let zero = Simulator::new(&topo, Config::for_n(n).with_loss(0.0, seed), |_| Flood { bits: 1, seen_round: None })
            .run().expect("runs");
        prop_assert_eq!(&base.outputs, &zero.outputs);
        prop_assert_eq!(zero.stats.dropped, 0);

        let full = Simulator::new(&topo, Config::for_n(n).with_loss(1.0, seed), |_| Flood { bits: 1, seen_round: None })
            .run().expect("runs");
        // Only the origin ever sees the token; everything it sent was lost.
        for (v, got) in full.outputs.iter().enumerate() {
            prop_assert_eq!(got.is_some(), v == 0);
        }
        prop_assert!(full.stats.dropped > 0);
        prop_assert_eq!(full.stats.messages, 0);

        let half_a = Simulator::new(&topo, Config::for_n(n).with_loss(0.5, seed), |_| Flood { bits: 1, seen_round: None })
            .run().expect("runs");
        let half_b = Simulator::new(&topo, Config::for_n(n).with_loss(0.5, seed), |_| Flood { bits: 1, seen_round: None })
            .run().expect("runs");
        prop_assert_eq!(half_a.outputs, half_b.outputs);
        prop_assert_eq!(half_a.stats.dropped, half_b.stats.dropped);
    }
}

//! Property tests for the round engine's determinism guarantees: a
//! `k`-threaded run must be bit-for-bit identical to the sequential run —
//! same outputs, same statistics, same trace, same per-round profile — and
//! the optimized engine must agree with the verbatim seed engine
//! ([`ReferenceSimulator`]).

use proptest::prelude::*;

use dapsp_congest::{
    Config, ExecutorKind, FaultPlan, Inbox, Message, MetricsRecorder, NodeAlgorithm, NodeContext,
    Outbox, Port, ReferenceSimulator, SharedObserver, Simulator, TerminationReason, Topology,
    TopologyPlan, TraceRecorder,
};

/// A gossip token: (origin id, hop count). Sized like a real CONGEST
/// message so bandwidth checks run on the same path as production code.
#[derive(Clone, Debug)]
struct Token {
    origin: u32,
    hops: u32,
}
impl Message for Token {
    fn bit_size(&self) -> u32 {
        16
    }
}

/// Every node floods its own id and records, per known origin, the round
/// it first heard it and the hop count it arrived with. Newly-learned
/// origins are queued and re-flooded one per round (a port accepts only one
/// message per round), so all-to-all traffic keeps every edge busy for many
/// rounds — the interesting regime for the commit-order guarantee.
struct Gossip {
    first_heard: Vec<Option<(u64, u32)>>,
    queue: std::collections::VecDeque<Token>,
}
impl NodeAlgorithm for Gossip {
    type Message = Token;
    type Output = Vec<Option<(u64, u32)>>;

    fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Token>) {
        self.first_heard[ctx.node_id() as usize] = Some((0, 0));
        out.send_to_all(
            0..ctx.degree() as Port,
            Token {
                origin: ctx.node_id(),
                hops: 1,
            },
        );
    }

    fn on_round(&mut self, ctx: &NodeContext<'_>, inbox: &Inbox<Token>, out: &mut Outbox<Token>) {
        // Adopt in port order; queue each newly-learned origin for one
        // forward. Port order is deterministic, so the queue order is too.
        for (_, msg) in inbox.iter() {
            let o = msg.origin as usize;
            if self.first_heard[o].is_none() {
                self.first_heard[o] = Some((ctx.round(), msg.hops));
                self.queue.push_back(Token {
                    origin: msg.origin,
                    hops: msg.hops + 1,
                });
            }
        }
        if let Some(t) = self.queue.pop_front() {
            out.send_to_all(0..ctx.degree() as Port, t);
        }
    }

    fn is_active(&self) -> bool {
        !self.queue.is_empty()
    }

    fn into_output(self, _: &NodeContext<'_>) -> Vec<Option<(u64, u32)>> {
        self.first_heard
    }
}

/// A single wave from node 0, forwarded exactly once per node: the
/// frontier-sparse regime the active-set scheduler targets. Purely
/// reactive (`is_active` stays `false`), so after the wave passes a node
/// it never reappears on the schedule.
#[derive(Clone)]
struct Wavefront {
    forwarded: bool,
    heard: Option<u64>,
}
impl NodeAlgorithm for Wavefront {
    type Message = Token;
    type Output = Option<u64>;

    fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Token>) {
        if ctx.node_id() == 0 {
            self.heard = Some(0);
            self.forwarded = true;
            out.send_to_all(0..ctx.degree() as Port, Token { origin: 0, hops: 1 });
        }
    }

    fn on_round(&mut self, ctx: &NodeContext<'_>, inbox: &Inbox<Token>, out: &mut Outbox<Token>) {
        if inbox.is_empty() {
            return;
        }
        if self.heard.is_none() {
            self.heard = Some(ctx.round());
        }
        if !self.forwarded {
            self.forwarded = true;
            let hops = inbox.iter().map(|(_, m)| m.hops).min().unwrap_or(0);
            out.send_to_all(
                0..ctx.degree() as Port,
                Token {
                    origin: 0,
                    hops: hops + 1,
                },
            );
        }
    }

    fn into_output(self, _: &NodeContext<'_>) -> Option<u64> {
        self.heard
    }
}

/// A node that idles `ticks` rounds (awake, sending nothing), counting how
/// often the engine steps it; with `ticks == 0` it is fully passive.
struct IdleTimer {
    ticks: u64,
    steps: u64,
}
impl NodeAlgorithm for IdleTimer {
    type Message = Token;
    type Output = u64;

    fn on_round(&mut self, _: &NodeContext<'_>, _: &Inbox<Token>, _: &mut Outbox<Token>) {
        self.steps += 1;
        if self.ticks > 0 {
            self.ticks -= 1;
        }
    }

    fn is_active(&self) -> bool {
        self.ticks > 0
    }

    fn into_output(self, _: &NodeContext<'_>) -> u64 {
        self.steps
    }
}

/// Random connected topology: random-attachment tree plus extra edges.
fn random_connected_adj(n: usize, seed: u64, extra_per_node: usize) -> Vec<Vec<u32>> {
    let mut edges = std::collections::BTreeSet::new();
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for v in 1..n as u64 {
        let p = next() % v;
        edges.insert((p.min(v) as u32, p.max(v) as u32));
    }
    for _ in 0..extra_per_node * n {
        let a = (next() % n as u64) as u32;
        let b = (next() % n as u64) as u32;
        if a != b {
            edges.insert((a.min(b), a.max(b)));
        }
    }
    let mut adj = vec![vec![]; n];
    for (a, b) in edges {
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    }
    adj
}

fn gossip_config(n: usize) -> Config {
    // 16-bit tokens need a floor on B for tiny n; trace + profile so the
    // comparison covers every observable the engine produces.
    let base = Config::for_n(n);
    let bw = base.bandwidth_bits.max(16);
    base.with_bandwidth_bits(bw)
        .with_trace()
        .with_round_profile()
}

fn run_with(topo: &Topology, config: Config) -> dapsp_congest::Report<Vec<Option<(u64, u32)>>> {
    let n = topo.num_nodes();
    Simulator::new(topo, config, |_| Gossip {
        first_heard: vec![None; n],
        queue: std::collections::VecDeque::new(),
    })
    .run()
    .expect("gossip runs")
}

/// The active-set regression the sparse engine exists for: a protocol in
/// which one node idles on a timer and everyone else is passive performs
/// O(1) engine work per round — exactly one node is stepped — instead of
/// the dense engine's n steps. Verified by counting actual `on_round`
/// invocations and the scheduled-node accounting, on every executor, and
/// cross-checked for bit-identity against the dense seed engine (which
/// steps everyone but books the same scheduled counts).
#[test]
fn mostly_idle_protocol_steps_one_node_per_round() {
    const N: usize = 64;
    const TICKS: u64 = 50;
    let adj = random_connected_adj(N, 9, 1);
    let topo = Topology::from_adjacency(adj).expect("valid");
    let init = |ctx: &NodeContext<'_>| IdleTimer {
        ticks: if ctx.node_id() == 0 { TICKS } else { 0 },
        steps: 0,
    };
    let dense = ReferenceSimulator::new(&topo, Config::for_n(N), init)
        .run()
        .expect("reference runs");
    for threads in [1usize, 2, 4] {
        let report = Simulator::new(&topo, Config::for_n(N).with_threads(threads), init)
            .run()
            .expect("runs");
        assert_eq!(report.stats.rounds, TICKS, "t{threads}: rounds");
        // Total on_round invocations across all nodes: one per round, not
        // n per round. (The dense engine steps everyone, so its own
        // outputs differ by design — stepping an inactive node with an
        // empty inbox is unobservable only for honest no-op on_rounds,
        // which the step counter deliberately is not.)
        let total_steps: u64 = report.outputs.iter().sum();
        assert_eq!(total_steps, TICKS, "t{threads}: steps");
        assert_eq!(
            report.stats.scheduled_node_rounds,
            N as u64 + TICKS,
            "t{threads}: scheduled node-rounds"
        );
        assert_eq!(
            report.stats.max_scheduled_per_round, N as u64,
            "t{threads}: round-0 peak"
        );
        assert_eq!(report.stats, dense.stats, "t{threads}: stats vs dense");
    }
}

/// A fully-passive protocol quiesces without executing a single round, on
/// every executor and on the dense reference engine alike.
#[test]
fn fully_idle_protocol_quiesces_at_round_zero() {
    const N: usize = 16;
    let adj = random_connected_adj(N, 3, 0);
    let topo = Topology::from_adjacency(adj).expect("valid");
    let init = |_: &NodeContext<'_>| IdleTimer { ticks: 0, steps: 0 };
    let dense = ReferenceSimulator::new(&topo, Config::for_n(N), init)
        .run()
        .expect("reference runs");
    assert_eq!(dense.stats.rounds, 0);
    for threads in [1usize, 4] {
        let report = Simulator::new(&topo, Config::for_n(N).with_threads(threads), init)
            .run()
            .expect("runs");
        assert_eq!(report.stats.rounds, 0, "t{threads}");
        assert!(report.outputs.iter().all(|&s| s == 0), "t{threads}");
        assert_eq!(report.stats.scheduled_node_rounds, N as u64, "t{threads}");
        assert_eq!(report.stats, dense.stats, "t{threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole guarantee: for k ∈ {2, 4}, a k-threaded run is
    /// indistinguishable from the sequential run — outputs, stats
    /// (wall-time excluded by `RunStats`'s `PartialEq`), round counts,
    /// per-round profiles, and the full delivery trace all match.
    #[test]
    fn threaded_runs_match_sequential(n in 2usize..40, seed in any::<u64>(), extra in 0usize..3) {
        let adj = random_connected_adj(n, seed, extra);
        let topo = Topology::from_adjacency(adj).expect("valid");
        let sequential = run_with(&topo, gossip_config(n));
        for k in [2usize, 4] {
            let threaded = run_with(&topo, gossip_config(n).with_threads(k));
            prop_assert_eq!(&sequential.outputs, &threaded.outputs, "outputs, k={}", k);
            prop_assert_eq!(sequential.stats, threaded.stats, "stats, k={}", k);
            prop_assert_eq!(&sequential.round_profile, &threaded.round_profile, "profile, k={}", k);
            let (st, tt) = (sequential.trace.as_ref().unwrap(), threaded.trace.as_ref().unwrap());
            prop_assert_eq!(st.events(), tt.events(), "trace, k={}", k);
        }
    }

    /// Forcing unit chunks puts every node in its own work-stealing chunk —
    /// the maximum-stealing regime — and the pool must still be
    /// bit-identical to the serial run: chunk boundaries and steal counts
    /// are pure scheduling, invisible to the model.
    #[test]
    fn forced_unit_chunks_stay_deterministic(n in 2usize..32, seed in any::<u64>()) {
        let adj = random_connected_adj(n, seed, 1);
        let topo = Topology::from_adjacency(adj).expect("valid");
        let sequential = run_with(&topo, gossip_config(n));
        for k in [2usize, 4] {
            let threaded = run_with(&topo, gossip_config(n).with_threads(k).with_pool_chunk(1));
            prop_assert_eq!(&sequential.outputs, &threaded.outputs, "outputs, k={}", k);
            prop_assert_eq!(sequential.stats, threaded.stats, "stats, k={}", k);
            prop_assert_eq!(&sequential.round_profile, &threaded.round_profile, "profile, k={}", k);
            let (st, tt) = (sequential.trace.as_ref().unwrap(), threaded.trace.as_ref().unwrap());
            prop_assert_eq!(st.events(), tt.events(), "trace, k={}", k);
        }
    }

    /// Oversubscription (more threads than nodes) and loss injection keep
    /// the same guarantee: the loss plan keys on (round, sender, port), all
    /// of which are thread-count independent.
    #[test]
    fn threads_and_loss_stay_deterministic(n in 2usize..24, seed in any::<u64>()) {
        let adj = random_connected_adj(n, seed, 1);
        let topo = Topology::from_adjacency(adj).expect("valid");
        let lossy = |threads: usize| {
            run_with(&topo, gossip_config(n).with_loss(0.3, seed).with_threads(threads))
        };
        let sequential = lossy(1);
        for k in [3usize, 64] {
            let threaded = lossy(k);
            prop_assert_eq!(&sequential.outputs, &threaded.outputs, "outputs, k={}", k);
            prop_assert_eq!(sequential.stats, threaded.stats, "stats, k={}", k);
        }
    }

    /// Four-way executor parity under every observability mode: Serial vs
    /// Pool(2) vs Pool(4) vs the seed-verbatim `ReferenceSimulator`, on
    /// random graphs × loss plans × observer attached/detached. Asserts
    /// identical `RunStats`, identical metric streams whose column sums
    /// decompose the stats, and identical (truncated) trace prefixes —
    /// the tight capacity keeps the stored-prefix/counted-overflow split
    /// itself part of the comparison.
    #[test]
    fn executors_match_reference_under_observation(
        n in 2usize..24,
        seed in any::<u64>(),
        lossy in any::<bool>(),
        observed in any::<bool>(),
    ) {
        let adj = random_connected_adj(n, seed, 1);
        let topo = Topology::from_adjacency(adj).expect("valid");
        let make_config = || {
            let mut c = gossip_config(n).with_trace_capacity(64).with_phase("parity");
            if lossy {
                c = c.with_loss(0.25, seed);
            }
            c
        };
        let init = |_: &NodeContext<'_>| Gossip {
            first_heard: vec![None; n],
            queue: std::collections::VecDeque::new(),
        };
        // `reference: true` ignores the executor and runs the seed engine.
        let run_one = |executor: ExecutorKind, reference: bool| {
            let mut config = make_config().with_executor(executor);
            if observed {
                let rec = SharedObserver::new(MetricsRecorder::new());
                config = config.with_observer(rec.observer());
            }
            if reference {
                ReferenceSimulator::new(&topo, config, init).run().expect("reference runs")
            } else {
                Simulator::new(&topo, config, init).run().expect("pipeline runs")
            }
        };
        let baseline = run_one(ExecutorKind::Serial, false);
        if observed {
            // The metric stream's columns decompose the aggregate stats.
            let stream = baseline.metrics.as_ref().expect("recorder attached");
            prop_assert_eq!(stream.len() as u64, baseline.stats.rounds + 1);
            prop_assert_eq!(
                stream.iter().map(|r| r.messages).sum::<u64>(),
                baseline.stats.messages
            );
            prop_assert_eq!(stream.iter().map(|r| r.bits).sum::<u64>(), baseline.stats.bits);
            prop_assert_eq!(
                stream.iter().map(|r| r.dropped).sum::<u64>(),
                baseline.stats.dropped
            );
            prop_assert_eq!(
                stream.iter().map(|r| r.scheduled_nodes).sum::<u64>(),
                baseline.stats.scheduled_node_rounds
            );
            prop_assert_eq!(
                stream.iter().map(|r| r.scheduled_nodes).max().unwrap_or(0),
                baseline.stats.max_scheduled_per_round
            );
        } else {
            prop_assert!(baseline.metrics.is_none());
        }
        let candidates = [
            (ExecutorKind::Pool { workers: 2 }, false),
            (ExecutorKind::Pool { workers: 4 }, false),
            (ExecutorKind::Serial, true),
        ];
        for (executor, reference) in candidates {
            let other = run_one(executor, reference);
            let label = if reference { "reference" } else { executor.name() };
            prop_assert_eq!(&baseline.outputs, &other.outputs, "outputs vs {}", label);
            prop_assert_eq!(baseline.stats, other.stats, "stats vs {}", label);
            prop_assert_eq!(
                &baseline.round_profile, &other.round_profile,
                "profile vs {}", label
            );
            // RoundMetrics equality ignores wall-clock columns, so entire
            // streams must match row for row (both None when unobserved).
            prop_assert_eq!(&baseline.metrics, &other.metrics, "metrics vs {}", label);
            let (bt, ot) = (baseline.trace.as_ref().unwrap(), other.trace.as_ref().unwrap());
            prop_assert_eq!(bt.events(), ot.events(), "trace prefix vs {}", label);
            prop_assert_eq!(bt.dropped(), ot.dropped(), "trace overflow vs {}", label);
            prop_assert_eq!(bt.total_events(), ot.total_events(), "trace totals vs {}", label);
        }
    }

    /// Sparse-vs-dense bit-identity on a workload whose frontier really is
    /// sparse: a single wave expands from node 0 and each node forwards
    /// exactly once, so most rounds schedule only the wavefront. The
    /// active-set engines (serial, pool-2, pool-4) must agree with the
    /// dense seed engine — which steps every node every round — on
    /// outputs, stats (including the scheduled-node columns), metric
    /// streams, and traces, across loss × observer modes.
    #[test]
    fn sparse_frontier_matches_dense_reference(
        n in 2usize..32,
        seed in any::<u64>(),
        lossy in any::<bool>(),
        observed in any::<bool>(),
    ) {
        let adj = random_connected_adj(n, seed, 0);
        let topo = Topology::from_adjacency(adj).expect("valid");
        let make_config = || {
            let mut c = gossip_config(n).with_trace_capacity(64).with_phase("sparse");
            if lossy {
                c = c.with_loss(0.2, seed);
            }
            c
        };
        let init = |_: &NodeContext<'_>| Wavefront { forwarded: false, heard: None };
        let run_one = |executor: ExecutorKind, reference: bool| {
            let mut config = make_config().with_executor(executor);
            if observed {
                let rec = SharedObserver::new(MetricsRecorder::new());
                config = config.with_observer(rec.observer());
            }
            if reference {
                ReferenceSimulator::new(&topo, config, init).run().expect("reference runs")
            } else {
                Simulator::new(&topo, config, init).run().expect("pipeline runs")
            }
        };
        let dense = run_one(ExecutorKind::Serial, true);
        // The wavefront keeps the schedule strictly sparse on any graph
        // with more than a couple of nodes: once the wave has passed, a
        // node never reappears on the schedule.
        prop_assert!(dense.stats.scheduled_node_rounds <= (n as u64) * 3 + dense.stats.messages + dense.stats.dropped);
        for executor in [
            ExecutorKind::Serial,
            ExecutorKind::Pool { workers: 2 },
            ExecutorKind::Pool { workers: 4 },
        ] {
            let sparse = run_one(executor, false);
            let label = executor.name();
            prop_assert_eq!(&dense.outputs, &sparse.outputs, "outputs vs {}", label);
            prop_assert_eq!(dense.stats, sparse.stats, "stats vs {}", label);
            prop_assert_eq!(&dense.round_profile, &sparse.round_profile, "profile vs {}", label);
            prop_assert_eq!(&dense.metrics, &sparse.metrics, "metrics vs {}", label);
            let (dt, st) = (dense.trace.as_ref().unwrap(), sparse.trace.as_ref().unwrap());
            prop_assert_eq!(dt.events(), st.events(), "trace vs {}", label);
        }
    }

    /// The structured trace contract: the typed event stream recorded by
    /// [`TraceRecorder`] renders to bit-identical JSONL on Serial, Pool(2),
    /// Pool(4) and the seed reference engine, under loss × trace-attached
    /// runs — and the termination certificate every engine attaches to its
    /// report is equal too, with internally consistent vote tallies.
    #[test]
    fn trace2_streams_and_certificates_match_four_ways(
        n in 2usize..24,
        seed in any::<u64>(),
        lossy in any::<bool>(),
    ) {
        let adj = random_connected_adj(n, seed, 1);
        let topo = Topology::from_adjacency(adj).expect("valid");
        let init = |_: &NodeContext<'_>| Gossip {
            first_heard: vec![None; n],
            queue: std::collections::VecDeque::new(),
        };
        let run_one = |executor: ExecutorKind, reference: bool| {
            let mut config = gossip_config(n).with_phase("trace2").with_executor(executor);
            if lossy {
                config = config.with_loss(0.25, seed);
            }
            let rec = SharedObserver::new(TraceRecorder::new());
            let config = config.with_observer(rec.observer());
            let report = if reference {
                ReferenceSimulator::new(&topo, config, init).run().expect("reference runs")
            } else {
                Simulator::new(&topo, config, init).run().expect("pipeline runs")
            };
            let (jsonl, total) = rec.with(|r| (r.events_jsonl(), r.total_events()));
            (report, jsonl, total)
        };
        let (base_report, base_jsonl, base_total) = run_one(ExecutorKind::Serial, false);
        // Certificate invariants: present on success, every node votes,
        // the tallies decompose n, and the final poll saw no active node.
        let cert = base_report.certificate.as_ref().expect("success carries a certificate");
        prop_assert_eq!(cert.node_votes.len(), n, "one vote per node");
        prop_assert_eq!(
            cert.votes_active + cert.votes_passive + cert.votes_shutdown,
            n as u64,
            "vote tallies decompose n"
        );
        prop_assert_eq!(cert.votes_active, 0, "terminated with an active voter");
        prop_assert_eq!(cert.round, base_report.stats.rounds, "certificate round");
        if cert.reason == TerminationReason::PassiveDrained {
            prop_assert_eq!(cert.in_flight, 0, "passive-drained with messages in flight");
        } else {
            prop_assert_eq!(cert.votes_shutdown, n as u64, "shutdown-unanimous tally");
        }
        for (executor, reference) in [
            (ExecutorKind::Pool { workers: 2 }, false),
            (ExecutorKind::Pool { workers: 4 }, false),
            (ExecutorKind::Serial, true),
        ] {
            let (other_report, other_jsonl, other_total) = run_one(executor, reference);
            let label = if reference { "reference" } else { executor.name() };
            prop_assert_eq!(&base_jsonl, &other_jsonl, "trace2 JSONL vs {}", label);
            prop_assert_eq!(base_total, other_total, "trace2 totals vs {}", label);
            prop_assert_eq!(
                &base_report.certificate, &other_report.certificate,
                "certificate vs {}", label
            );
        }
    }

    /// Churned runs stay deterministic four ways: Serial, Pool(2),
    /// Pool(2) with forced unit chunks (maximum stealing), and the seed
    /// reference engine must agree on outputs, stats (including the new
    /// `topo_events` / `repaired_node_rounds` / `recompute_fallbacks`
    /// columns) and the trace2 stream — `TopologyChange` events included —
    /// on random graphs × random plans × loss × observer modes.
    #[test]
    fn churned_runs_match_four_ways(
        n in 3usize..20,
        seed in any::<u64>(),
        lossy in any::<bool>(),
        observed in any::<bool>(),
        crash in any::<bool>(),
    ) {
        let adj = random_connected_adj(n, seed, 1);
        let topo = Topology::from_adjacency(adj.clone()).expect("valid");
        // Build a plan that is valid against the initial graph: insert a
        // non-edge (when one exists) at round 1, remove an original edge
        // at round 2, optionally remove a whole node at round 3.
        let mut edges = Vec::new();
        let mut non_edges = Vec::new();
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                if adj[u as usize].contains(&v) {
                    edges.push((u, v));
                } else {
                    non_edges.push((u, v));
                }
            }
        }
        let mut plan = TopologyPlan::new();
        if !non_edges.is_empty() {
            let (u, v) = non_edges[seed as usize % non_edges.len()];
            plan = plan.with_insert(1, u, v);
        }
        let (u, v) = edges[(seed / 7) as usize % edges.len()];
        plan = plan.with_remove(2, u, v);
        if crash {
            plan = plan.with_crash(3, (seed % n as u64) as u32);
        }
        let init = |_: &NodeContext<'_>| Gossip {
            first_heard: vec![None; n],
            queue: std::collections::VecDeque::new(),
        };
        let run_one = |executor: ExecutorKind, chunk: usize, reference: bool| {
            let mut config = gossip_config(n)
                .with_phase("churn")
                .with_executor(executor)
                .with_topology(plan.clone());
            if chunk > 0 {
                config = config.with_pool_chunk(chunk);
            }
            if lossy {
                config = config.with_loss(0.25, seed);
            }
            let rec = observed.then(|| SharedObserver::new(TraceRecorder::new()));
            if let Some(rec) = &rec {
                config = config.with_observer(rec.observer());
            }
            let report = if reference {
                ReferenceSimulator::new(&topo, config, init).run().expect("reference runs")
            } else {
                Simulator::new(&topo, config, init).run().expect("pipeline runs")
            };
            let jsonl = rec.map(|r| r.with(|t| t.events_jsonl()));
            (report, jsonl)
        };
        let (baseline, base_jsonl) = run_one(ExecutorKind::Serial, 0, false);
        let applied = plan.events().len() as u64;
        prop_assert_eq!(baseline.stats.topo_events, applied, "every event applies");
        if let Some(jsonl) = &base_jsonl {
            prop_assert_eq!(
                jsonl.matches("\"ev\":\"topology\"").count() as u64,
                applied,
                "one trace2 event per plan event"
            );
        }
        for (executor, chunk, reference) in [
            (ExecutorKind::Pool { workers: 2 }, 0, false),
            (ExecutorKind::Pool { workers: 2 }, 1, false),
            (ExecutorKind::Serial, 0, true),
        ] {
            let (other, other_jsonl) = run_one(executor, chunk, reference);
            let label = if reference {
                "reference".to_string()
            } else {
                format!("{}/chunk{}", executor.name(), chunk)
            };
            prop_assert_eq!(&baseline.outputs, &other.outputs, "outputs vs {}", &label);
            prop_assert_eq!(baseline.stats, other.stats, "stats vs {}", &label);
            prop_assert_eq!(&baseline.round_profile, &other.round_profile, "profile vs {}", &label);
            prop_assert_eq!(&base_jsonl, &other_jsonl, "trace2 vs {}", &label);
            let (bt, ot) = (baseline.trace.as_ref().unwrap(), other.trace.as_ref().unwrap());
            prop_assert_eq!(bt.events(), ot.events(), "trace vs {}", &label);
        }
    }

    /// The optimized engine agrees with the verbatim seed engine on every
    /// observable — the buffer recycling and skip-sort paths change nothing.
    #[test]
    fn optimized_engine_matches_seed_engine(n in 2usize..32, seed in any::<u64>(), extra in 0usize..2) {
        let adj = random_connected_adj(n, seed, extra);
        let topo = Topology::from_adjacency(adj).expect("valid");
        let optimized = run_with(&topo, gossip_config(n));
        let reference = ReferenceSimulator::new(&topo, gossip_config(n), |_| Gossip {
            first_heard: vec![None; n],
            queue: std::collections::VecDeque::new(),
        })
        .run()
        .expect("reference runs");
        prop_assert_eq!(&optimized.outputs, &reference.outputs);
        prop_assert_eq!(optimized.stats, reference.stats);
        prop_assert_eq!(&optimized.round_profile, &reference.round_profile);
        let (ot, rt) = (optimized.trace.as_ref().unwrap(), reference.trace.as_ref().unwrap());
        prop_assert_eq!(ot.events(), rt.events());
    }
}

/// A node that sends a token on port 0 every round for `rounds` rounds —
/// a steady message source for drop-attribution tests.
struct Pinger {
    remaining: u64,
}
impl NodeAlgorithm for Pinger {
    type Message = Token;
    type Output = ();

    fn on_round(&mut self, ctx: &NodeContext<'_>, _: &Inbox<Token>, out: &mut Outbox<Token>) {
        if self.remaining > 0 && ctx.degree() > 0 {
            self.remaining -= 1;
            out.send(
                0,
                Token {
                    origin: ctx.node_id(),
                    hops: 0,
                },
            );
        }
    }

    fn is_active(&self) -> bool {
        self.remaining > 0
    }

    fn into_output(self, _: &NodeContext<'_>) {}
}

/// The documented composition of [`FaultPlan`] crash windows with
/// [`TopologyPlan`] removals: a *crashed* node keeps its edges (messages
/// to it drop as [`DropReason::ReceiverCrashed`] and delivery resumes when
/// the window closes), while a *removed* edge is gone for good — and when
/// both apply to the same delivery, **removal wins**: the dead-port check
/// runs before the fault-plan check at the commit choke point, so the
/// drop is attributed to [`DropReason::TopologyChange`]. Verified on both
/// the optimized and the seed reference engine.
#[test]
fn removal_wins_over_crash_windows() {
    // Path 0 – 1: node 0 pings node 1 every round. Node 1 is inside a
    // crash window for rounds 1..=4; the plan removes the edge at round 3,
    // mid-window.
    let topo = Topology::from_adjacency(vec![vec![1], vec![0]]).expect("valid");
    let faults = FaultPlan::new(7).with_crash(1, 1, 4);
    let plan = TopologyPlan::new().with_remove(3, 0, 1);
    let run_one = |reference: bool| {
        let config = Config::for_n(2)
            .with_bandwidth_bits(16)
            .with_faults(faults.clone())
            .with_topology(plan.clone());
        let rec = SharedObserver::new(TraceRecorder::new());
        let config = config.with_observer(rec.observer());
        let init = |ctx: &NodeContext<'_>| Pinger {
            remaining: if ctx.node_id() == 0 { 6 } else { 0 },
        };
        let report = if reference {
            ReferenceSimulator::new(&topo, config, init)
                .run()
                .expect("reference runs")
        } else {
            Simulator::new(&topo, config, init).run().expect("runs")
        };
        (report, rec.with(|t| t.events_jsonl()))
    };
    let (report, jsonl) = run_one(false);
    // Rounds 1–2: in the window, edge intact → ReceiverCrashed. Rounds
    // 3–6: the edge is gone; round 3 overlaps the window and must still be
    // attributed to the removal, not the crash.
    let crashed = jsonl.matches("\"reason\":\"ReceiverCrashed\"").count();
    let churned = jsonl.matches("\"reason\":\"TopologyChange\"").count();
    assert_eq!(crashed, 2, "rounds 1-2 drop as crashes:\n{jsonl}");
    assert_eq!(churned, 4, "rounds 3-6 drop as removals:\n{jsonl}");
    assert_eq!(report.stats.dropped, 6);
    let (ref_report, ref_jsonl) = run_one(true);
    assert_eq!(
        report.stats, ref_report.stats,
        "engines agree on precedence"
    );
    assert_eq!(jsonl, ref_jsonl, "trace2 agrees on precedence");
}

/// The other half of the composition: a crash window alone never touches
/// the topology — the node resumes with all its edges when the window
/// closes, and every drop is attributed to the crash.
#[test]
fn crash_windows_keep_edges() {
    let topo = Topology::from_adjacency(vec![vec![1], vec![0]]).expect("valid");
    // Node 1 is crashed for rounds 1–3 (windows are half-open). A send in
    // round R delivers in round R+1, and the crash check keys on the
    // delivery round: sends of rounds 1–2 drop, everything later lands.
    let faults = FaultPlan::new(7).with_crash(1, 1, 4);
    let config = Config::for_n(2).with_bandwidth_bits(16).with_faults(faults);
    let rec = SharedObserver::new(TraceRecorder::new());
    let config = config.with_observer(rec.observer());
    let report = Simulator::new(&topo, config, |ctx| Pinger {
        remaining: if ctx.node_id() == 0 { 5 } else { 0 },
    })
    .run()
    .expect("runs");
    let jsonl = rec.with(|t| t.events_jsonl());
    assert_eq!(jsonl.matches("\"reason\":\"ReceiverCrashed\"").count(), 2);
    assert_eq!(jsonl.matches("\"reason\":\"TopologyChange\"").count(), 0);
    assert_eq!(report.stats.dropped, 2);
    assert_eq!(report.stats.messages, 3, "post-window pings deliver");
}

//! Property tests for the observer layer: the recorded per-round metric
//! stream must be an *exact decomposition* of [`RunStats`] — column sums
//! reproduce the run totals with no event lost or double-counted — on both
//! engines and at every thread count, with and without message loss.

use proptest::prelude::*;

use dapsp_congest::obs::RoundMetrics;
use dapsp_congest::{
    Config, Inbox, Message, MetricsRecorder, NodeAlgorithm, NodeContext, Outbox, Port,
    ReferenceSimulator, Report, RunStats, SharedObserver, Simulator, Topology,
};

/// A gossip token: (origin id, hop count), tagged with its origin stream.
#[derive(Clone, Debug)]
struct Token {
    origin: u32,
    hops: u32,
}
impl Message for Token {
    fn bit_size(&self) -> u32 {
        16
    }
    fn stream_id(&self) -> Option<u32> {
        Some(self.origin)
    }
}

/// All-to-all gossip (the engine-equivalence workload): every node floods
/// its id; newly-learned origins are re-flooded one per round.
struct Gossip {
    first_heard: Vec<Option<(u64, u32)>>,
    queue: std::collections::VecDeque<Token>,
}
impl NodeAlgorithm for Gossip {
    type Message = Token;
    type Output = Vec<Option<(u64, u32)>>;

    fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Token>) {
        self.first_heard[ctx.node_id() as usize] = Some((0, 0));
        out.send_to_all(
            0..ctx.degree() as Port,
            Token {
                origin: ctx.node_id(),
                hops: 1,
            },
        );
    }

    fn on_round(&mut self, ctx: &NodeContext<'_>, inbox: &Inbox<Token>, out: &mut Outbox<Token>) {
        for (_, msg) in inbox.iter() {
            let o = msg.origin as usize;
            if self.first_heard[o].is_none() {
                self.first_heard[o] = Some((ctx.round(), msg.hops));
                self.queue.push_back(Token {
                    origin: msg.origin,
                    hops: msg.hops + 1,
                });
            }
        }
        if let Some(t) = self.queue.pop_front() {
            out.send_to_all(0..ctx.degree() as Port, t);
        }
    }

    fn is_active(&self) -> bool {
        !self.queue.is_empty()
    }

    fn into_output(self, _: &NodeContext<'_>) -> Vec<Option<(u64, u32)>> {
        self.first_heard
    }
}

/// Random connected topology: random-attachment tree plus extra edges.
fn random_connected_adj(n: usize, seed: u64, extra_per_node: usize) -> Vec<Vec<u32>> {
    let mut edges = std::collections::BTreeSet::new();
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for v in 1..n as u64 {
        let p = next() % v;
        edges.insert((p.min(v) as u32, p.max(v) as u32));
    }
    for _ in 0..extra_per_node * n {
        let a = (next() % n as u64) as u32;
        let b = (next() % n as u64) as u32;
        if a != b {
            edges.insert((a.min(b), a.max(b)));
        }
    }
    let mut adj = vec![vec![]; n];
    for (a, b) in edges {
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    }
    adj
}

fn base_config(n: usize, loss: Option<(f64, u64)>) -> Config {
    let base = Config::for_n(n);
    let bw = base.bandwidth_bits.max(16);
    let config = base.with_bandwidth_bits(bw).with_phase("gossip");
    match loss {
        Some((p, seed)) => config.with_loss(p, seed),
        None => config,
    }
}

/// Runs the gossip workload with a recorder attached; returns the report
/// (whose `metrics` field holds the moved-out stream).
fn run_observed(
    topo: &Topology,
    engine: &str,
    threads: usize,
    loss: Option<(f64, u64)>,
) -> Report<Vec<Option<(u64, u32)>>> {
    let n = topo.num_nodes();
    let recorder = SharedObserver::new(MetricsRecorder::new());
    let config = base_config(n, loss)
        .with_threads(threads)
        .with_observer(recorder.observer());
    let init = |_: &NodeContext<'_>| Gossip {
        first_heard: vec![None; n],
        queue: std::collections::VecDeque::new(),
    };
    match engine {
        "seed" => ReferenceSimulator::new(topo, config, init)
            .run()
            .expect("seed engine runs"),
        _ => Simulator::new(topo, config, init)
            .run()
            .expect("optimized engine runs"),
    }
}

/// The decomposition invariant: stream column sums == `RunStats` totals.
fn assert_decomposes(stream: &[RoundMetrics], stats: &RunStats, tag: &str) {
    assert_eq!(
        stream.len() as u64,
        stats.rounds + 1,
        "{tag}: one row per round plus the on_start row"
    );
    let messages: u64 = stream.iter().map(|m| m.messages).sum();
    let bits: u64 = stream.iter().map(|m| m.bits).sum();
    let dropped: u64 = stream.iter().map(|m| m.dropped).sum();
    assert_eq!(messages, stats.messages, "{tag}: messages");
    assert_eq!(bits, stats.bits, "{tag}: bits");
    assert_eq!(dropped, stats.dropped, "{tag}: dropped");
    // Row r counts commits during round r, all delivered in round r + 1,
    // so the per-round delivery peak equals the per-row commit peak.
    let peak = stream.iter().map(|m| m.messages).max().unwrap_or(0);
    assert_eq!(peak, stats.max_messages_per_round, "{tag}: peak");
    // The scheduled column decomposes the active-set accounting the same
    // way: row 0 carries the on_start count, later rows the per-round
    // schedule sizes.
    let scheduled: u64 = stream.iter().map(|m| m.scheduled_nodes).sum();
    assert_eq!(
        scheduled, stats.scheduled_node_rounds,
        "{tag}: scheduled node-rounds"
    );
    let sched_peak = stream.iter().map(|m| m.scheduled_nodes).max().unwrap_or(0);
    assert_eq!(
        sched_peak, stats.max_scheduled_per_round,
        "{tag}: scheduled peak"
    );
    // The scheduler-telemetry columns (excluded from row equality) sum to
    // the RunStats totals: every stepped chunk and every steal the pool
    // booked appears in exactly one row. All-zero on serial/seed runs.
    let chunks: u64 = stream.iter().map(|m| m.chunks).sum();
    let steals: u64 = stream.iter().map(|m| m.steals).sum();
    assert_eq!(chunks, stats.chunks_stepped, "{tag}: chunks column sum");
    assert_eq!(steals, stats.steals, "{tag}: steals column sum");
    for m in stream {
        assert_eq!(&*m.phase, "gossip", "{tag}: phase label");
    }
    // The quiescence-vote decomposition: each row's three vote columns
    // tally exactly the nodes polled in that round's termination check —
    // everyone after on_start (row 0), the scheduled set afterwards. The
    // crash-free workloads here make row 0's scheduled count n itself, so
    // one invariant covers both cases.
    for m in stream {
        assert_eq!(
            m.votes_active + m.votes_passive + m.votes_shutdown,
            m.scheduled_nodes,
            "{tag}: row {} vote tally != polled nodes",
            m.round
        );
    }
    // The run terminated, so the final poll saw no active node.
    let last = stream.last().expect("nonempty stream");
    assert_eq!(last.votes_active, 0, "{tag}: final row has active voters");
}

/// Pins the `dropped` column to a run that demonstrably loses messages,
/// so the lossy decomposition checks below can't pass vacuously.
#[test]
fn fixed_lossy_run_exercises_the_dropped_column() {
    let adj = random_connected_adj(24, 0xC0FFEE, 2);
    let topo = Topology::from_adjacency(adj).expect("valid");
    let report = run_observed(&topo, "optimized", 1, Some((0.3, 7)));
    assert!(
        report.stats.dropped > 0,
        "expected the 0.3 loss plan to drop at least one of {} messages",
        report.stats.messages + report.stats.dropped
    );
    let stream = report.metrics.expect("stream");
    assert_decomposes(&stream, &report.stats, "fixed-lossy");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite invariant: on random connected graphs, the recorded
    /// stream decomposes `RunStats` exactly for the seed engine and for
    /// the optimized engine at 1, 2, and 4 threads — and all four streams
    /// are identical row-for-row (timing fields excluded by
    /// `RoundMetrics`'s `PartialEq`).
    #[test]
    fn stream_decomposes_stats_across_engines_and_threads(
        n in 2usize..28,
        seed in any::<u64>(),
        extra in 0usize..2,
    ) {
        let adj = random_connected_adj(n, seed, extra);
        let topo = Topology::from_adjacency(adj).expect("valid");
        let mut streams: Vec<Vec<RoundMetrics>> = Vec::new();
        for (engine, threads) in [("seed", 1usize), ("optimized", 1), ("optimized", 2), ("optimized", 4)] {
            let report = run_observed(&topo, engine, threads, None);
            let stream = report.metrics.expect("observed run returns a stream");
            assert_decomposes(&stream, &report.stats, &format!("{engine}/t{threads}"));
            streams.push(stream);
        }
        for s in &streams[1..] {
            prop_assert_eq!(&streams[0], s, "streams identical across engines/threads");
        }
    }

    /// Same decomposition under deterministic message loss: dropped events
    /// land in the stream's `dropped` column, delivered ones in
    /// `messages`, and the two never double-count.
    #[test]
    fn lossy_streams_decompose_and_stay_deterministic(
        n in 2usize..20,
        seed in any::<u64>(),
    ) {
        let adj = random_connected_adj(n, seed, 1);
        let topo = Topology::from_adjacency(adj).expect("valid");
        let loss = Some((0.3, seed));
        let sequential = run_observed(&topo, "optimized", 1, loss);
        let s_stream = sequential.metrics.expect("stream");
        assert_decomposes(&s_stream, &sequential.stats, "lossy/opt/t1");
        for (engine, threads) in [("seed", 1usize), ("optimized", 4)] {
            let other = run_observed(&topo, engine, threads, loss);
            let o_stream = other.metrics.expect("stream");
            assert_decomposes(&o_stream, &other.stats, &format!("lossy/{engine}/t{threads}"));
            prop_assert_eq!(&s_stream, &o_stream, "lossy stream identical, {}/t{}", engine, threads);
        }
    }
}

//! Regression tests for the pool executor's frontier work stealing.
//!
//! A star topology makes the hub's chunk far heavier than every spoke's,
//! so with the chunk size forced to 1 the worker that doesn't own the hub
//! drains its own deque and must steal to stay busy. These tests pin down
//! that (a) stealing actually happens on such a frontier, (b) the
//! [`PoolSched`] accounting is exact — per-worker chunk and node counts
//! sum to the `RunStats` totals — and (c) none of it perturbs results:
//! outputs and model-level stats stay bit-identical to the serial engine.

use dapsp_congest::{
    Config, Inbox, Message, NodeAlgorithm, NodeContext, Outbox, Port, Report, Simulator, Topology,
};

/// A gossip token (origin, hops); 32 bits like a real CONGEST message.
#[derive(Clone, Debug)]
struct Token {
    origin: u32,
    hops: u32,
}
impl Message for Token {
    fn bit_size(&self) -> u32 {
        32
    }
}

/// All-pairs gossip: adopt the first arrival per origin, re-flood one
/// adopted origin per round. Keeps the hub node active (and its chunk
/// heavy) for many consecutive rounds.
struct Gossip {
    dist: Vec<u32>,
    queue: std::collections::VecDeque<Token>,
}
impl NodeAlgorithm for Gossip {
    type Message = Token;
    type Output = Vec<u32>;

    fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Token>) {
        self.dist[ctx.node_id() as usize] = 0;
        out.send_to_all(
            0..ctx.degree() as Port,
            Token {
                origin: ctx.node_id(),
                hops: 1,
            },
        );
    }

    fn on_round(&mut self, ctx: &NodeContext<'_>, inbox: &Inbox<Token>, out: &mut Outbox<Token>) {
        for (_, m) in inbox.iter() {
            if self.dist[m.origin as usize] == u32::MAX {
                self.dist[m.origin as usize] = m.hops;
                self.queue.push_back(Token {
                    origin: m.origin,
                    hops: m.hops + 1,
                });
            }
        }
        if let Some(t) = self.queue.pop_front() {
            out.send_to_all(0..ctx.degree() as Port, t);
        }
    }

    fn is_active(&self) -> bool {
        !self.queue.is_empty()
    }

    fn into_output(self, _: &NodeContext<'_>) -> Vec<u32> {
        self.dist
    }
}

/// A star: node 0 adjacent to every other node.
fn star_topology(n: usize) -> Topology {
    let mut adj = vec![Vec::new(); n];
    for v in 1..n as u32 {
        adj[0].push(v);
        adj[v as usize].push(0);
    }
    Topology::from_adjacency(adj).expect("valid star")
}

fn run(topo: &Topology, config: Config) -> Report<Vec<u32>> {
    let n = topo.num_nodes();
    Simulator::new(topo, config, |_| Gossip {
        dist: vec![u32::MAX; n],
        queue: std::collections::VecDeque::new(),
    })
    .run()
    .expect("run succeeds")
}

fn config(n: usize) -> Config {
    let base = Config::for_n(n);
    let bw = base.bandwidth_bits.max(32);
    base.with_bandwidth_bits(bw)
}

/// The exact accounting invariants every pool run must satisfy,
/// steal-count aside (that one is timing-dependent).
fn assert_sched_exact(report: &Report<Vec<u32>>, n: usize, workers: usize, chunk: usize) {
    let sched = report.sched.as_ref().expect("pool run reports a PoolSched");
    assert_eq!(sched.workers, workers);
    assert_eq!(sched.chunk_size, Some(chunk));
    assert_eq!(sched.chunks_per_worker.len(), workers);
    assert_eq!(sched.nodes_per_worker.len(), workers);
    assert_eq!(
        sched.chunks_per_worker.iter().sum::<u64>(),
        report.stats.chunks_stepped,
        "per-worker chunk counts must sum to the RunStats total"
    );
    assert_eq!(sched.steals, report.stats.steals);
    // Rounds >= 1 step their schedules through chunks; round 0 (the
    // on_start sweep over all n nodes, crash-free here) runs unchunked on
    // the engine thread. So chunked node-rounds + n = scheduled_node_rounds.
    assert_eq!(
        sched.nodes_per_worker.iter().sum::<u64>() + n as u64,
        report.stats.scheduled_node_rounds,
        "per-worker node counts + the on_start sweep must cover the schedule"
    );
    // Chunk size 1 means exactly one node per chunk.
    if chunk == 1 {
        assert_eq!(
            sched.chunks_per_worker, sched.nodes_per_worker,
            "unit chunks hold exactly one node"
        );
    }
}

#[test]
fn star_frontier_records_steals_with_exact_accounting() {
    let n = 64;
    let topo = star_topology(n);
    let serial = run(&topo, config(n));
    assert!(
        serial.sched.is_none(),
        "serial runs have no chunk scheduler"
    );
    assert_eq!(serial.stats.chunks_stepped, 0);
    assert_eq!(serial.stats.steals, 0);

    // Steals are timing-dependent: a single run may (very rarely) finish
    // with every chunk stepped at home. The accounting invariants must
    // hold on every run; at least one of the attempts must observe a
    // steal — with unit chunks on a star frontier that is all but certain.
    let mut stolen = 0u64;
    for _ in 0..20 {
        let pool = run(&topo, config(n).with_threads(2).with_pool_chunk(1));
        assert_eq!(pool.outputs, serial.outputs, "outputs bit-identical");
        assert_eq!(pool.stats, serial.stats, "model-level stats identical");
        assert!(pool.stats.chunks_stepped > 0, "pool runs step chunks");
        assert_sched_exact(&pool, n, 2, 1);
        stolen += pool.stats.steals;
        if stolen > 0 {
            break;
        }
    }
    assert!(
        stolen > 0,
        "no steal observed in 20 unit-chunk star runs at 2 threads"
    );
}

#[test]
fn adaptive_chunks_keep_accounting_exact_at_higher_thread_counts() {
    let n = 96;
    let topo = star_topology(n);
    let serial = run(&topo, config(n));
    for workers in [2usize, 4] {
        let pool = run(&topo, config(n).with_threads(workers).with_pool_chunk(3));
        assert_eq!(pool.outputs, serial.outputs, "workers={workers}: outputs");
        assert_eq!(pool.stats, serial.stats, "workers={workers}: stats");
        assert_sched_exact(&pool, n, workers, 3);
    }
}

#[test]
fn steal_fraction_reads_from_run_stats() {
    let n = 48;
    let topo = star_topology(n);
    let pool = run(&topo, config(n).with_threads(2).with_pool_chunk(1));
    let f = pool.stats.steal_fraction();
    assert!(
        (0.0..=1.0).contains(&f),
        "steal fraction in [0, 1], got {f}"
    );
    assert_eq!(
        f == 0.0,
        pool.stats.steals == 0,
        "fraction is zero exactly when no chunk was stolen"
    );
}

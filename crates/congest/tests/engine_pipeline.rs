//! Targeted regression tests for the phase-pipeline/executor split:
//! worker-pool lifecycle (threads spawn once per run, never per round),
//! shard-safe duplicate-send stamps, truncated traces skipping payload
//! rendering, and error parity between executors.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

use dapsp_congest::{
    pool_workers_spawned, Config, ExecutorKind, Inbox, Message, NodeAlgorithm, NodeContext, Outbox,
    Port, SimError, Simulator, Topology,
};

/// `pool_workers_spawned` is process-wide, and the test harness runs this
/// binary's tests in parallel — every test that creates a pool takes this
/// gate so spawn-count deltas can't interleave.
static SPAWN_GATE: Mutex<()> = Mutex::new(());

fn spawn_gate() -> MutexGuard<'static, ()> {
    SPAWN_GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn path(n: usize) -> Topology {
    let adj = (0..n)
        .map(|v| {
            let mut a = vec![];
            if v > 0 {
                a.push(v as u32 - 1);
            }
            if v + 1 < n {
                a.push(v as u32 + 1);
            }
            a
        })
        .collect();
    Topology::from_adjacency(adj).unwrap()
}

#[derive(Clone, Debug)]
struct Tick;
impl Message for Tick {
    fn bit_size(&self) -> u32 {
        1
    }
}

/// Every node sends on every port for `rounds` rounds — maximal legal
/// same-round commit pressure (every node's outbox is non-empty in every
/// round, so every shard commits concurrently under the pool).
struct Chatter {
    rounds: u64,
    received: u64,
}
impl NodeAlgorithm for Chatter {
    type Message = Tick;
    type Output = u64;
    fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Tick>) {
        out.send_to_all(0..ctx.degree() as Port, Tick);
    }
    fn on_round(&mut self, ctx: &NodeContext<'_>, inbox: &Inbox<Tick>, out: &mut Outbox<Tick>) {
        self.received += inbox.len() as u64;
        if ctx.round() < self.rounds {
            out.send_to_all(0..ctx.degree() as Port, Tick);
        }
    }
    fn into_output(self, _: &NodeContext<'_>) -> u64 {
        self.received
    }
}

/// The pool must create its worker threads exactly once per run: the
/// process-wide spawn counter's delta equals the worker count minus one
/// (the engine thread steps shard 0 itself) no matter how many rounds the
/// run takes. A per-round-spawn regression (what the pre-pipeline engine
/// did with `thread::scope`) multiplies the delta by the round count and
/// fails here.
#[test]
fn pool_spawns_workers_once_per_run_not_per_round() {
    let _gate = spawn_gate();
    let topo = path(16);
    for workers in [2usize, 4] {
        let before = pool_workers_spawned();
        let report = Simulator::new(
            &topo,
            Config::for_n(16).with_executor(ExecutorKind::Pool { workers }),
            |_| Chatter {
                rounds: 50,
                received: 0,
            },
        )
        .run()
        .unwrap();
        assert!(
            report.stats.rounds >= 50,
            "enough rounds to expose per-round spawns"
        );
        assert_eq!(
            pool_workers_spawned() - before,
            workers as u64 - 1,
            "exactly {} spawned threads for a {}-round run",
            workers - 1,
            report.stats.rounds
        );
    }
}

/// Regression for the `used_stamp` sharing hazard: duplicate-send
/// detection is per-outbox scratch, and each pool worker owns its own, so
/// two nodes committing in the same round can never alias stamps. Nodes 0
/// and 2 of a path both send on their port 0 in the same rounds; with a
/// shared stamp (or a stamp not reset per outbox) one of them would be
/// falsely rejected as a duplicate.
#[test]
fn same_round_commits_cannot_alias_duplicate_stamps() {
    let _gate = spawn_gate();
    let topo = path(3);
    for executor in [
        ExecutorKind::Serial,
        ExecutorKind::Pool { workers: 2 },
        ExecutorKind::Pool { workers: 3 },
    ] {
        let report = Simulator::new(&topo, Config::for_n(3).with_executor(executor), |_| {
            Chatter {
                rounds: 4,
                received: 0,
            }
        })
        .run()
        .unwrap_or_else(|e| panic!("{executor:?}: false duplicate? {e}"));
        // Sends happen in rounds 0..=3, so the middle node hears both
        // neighbors in each of 4 delivery rounds.
        assert_eq!(report.outputs[1], 2 * 4, "{executor:?}");
        assert_eq!(report.outputs[0], 4, "{executor:?}");
    }
}

/// A *real* duplicate send must still be caught, with the same error the
/// serial engine reports, even when the faulty node lives in a later
/// worker's shard.
struct DoubleAtTwo;
impl NodeAlgorithm for DoubleAtTwo {
    type Message = Tick;
    type Output = ();
    fn on_round(&mut self, ctx: &NodeContext<'_>, _: &Inbox<Tick>, out: &mut Outbox<Tick>) {
        if ctx.node_id() == 2 && ctx.round() == 1 {
            out.send(0, Tick);
            out.send(0, Tick);
        }
    }
    fn is_active(&self) -> bool {
        true // keep the clock running to round 1
    }
    fn into_output(self, _: &NodeContext<'_>) {}
}

#[test]
fn duplicate_detection_is_shard_local_but_still_fires() {
    let _gate = spawn_gate();
    let topo = path(4);
    let mut errors = vec![];
    for executor in [
        ExecutorKind::Serial,
        ExecutorKind::Pool { workers: 2 },
        ExecutorKind::Pool { workers: 4 },
    ] {
        let err = Simulator::new(&topo, Config::for_n(4).with_executor(executor), |_| {
            DoubleAtTwo
        })
        .run()
        .unwrap_err();
        assert!(
            matches!(
                err,
                SimError::DuplicateSend {
                    node: 2,
                    port: 0,
                    round: 1
                }
            ),
            "{executor:?}: {err:?}"
        );
        errors.push(err);
    }
    assert_eq!(errors[0], errors[1]);
    assert_eq!(errors[0], errors[2]);
}

/// A message whose `Debug` rendering counts how often it runs: the trace
/// must stop paying for `format!("{msg:?}")` once it hits capacity.
static RENDERED: AtomicUsize = AtomicUsize::new(0);

#[derive(Clone)]
struct CountsFormats;
impl std::fmt::Debug for CountsFormats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        RENDERED.fetch_add(1, Ordering::SeqCst);
        write!(f, "CountsFormats")
    }
}
impl Message for CountsFormats {
    fn bit_size(&self) -> u32 {
        1
    }
}

struct Wave {
    seen: bool,
}
impl NodeAlgorithm for Wave {
    type Message = CountsFormats;
    type Output = ();
    fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<CountsFormats>) {
        if ctx.node_id() == 0 {
            self.seen = true;
            out.send_to_all(0..ctx.degree() as Port, CountsFormats);
        }
    }
    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        inbox: &Inbox<CountsFormats>,
        out: &mut Outbox<CountsFormats>,
    ) {
        if !inbox.is_empty() && !self.seen {
            self.seen = true;
            out.send_to_all(0..ctx.degree() as Port, CountsFormats);
        }
    }
    fn into_output(self, _: &NodeContext<'_>) {}
}

#[test]
fn truncated_trace_skips_payload_formatting() {
    let _gate = spawn_gate();
    let topo = path(8); // the flood sends 2·(n−1) = 14 messages
    for executor in [ExecutorKind::Serial, ExecutorKind::Pool { workers: 3 }] {
        let before = RENDERED.load(Ordering::SeqCst);
        let cfg = Config::for_n(8)
            .with_trace_capacity(3)
            .with_executor(executor);
        let report = Simulator::new(&topo, cfg, |_| Wave { seen: false })
            .run()
            .unwrap();
        let trace = report.trace.expect("trace enabled");
        assert_eq!(report.stats.messages, 14, "{executor:?}");
        // Only the 3 stored events rendered their payload…
        assert_eq!(
            RENDERED.load(Ordering::SeqCst) - before,
            3,
            "{executor:?}: formats past capacity"
        );
        // …yet the overflow is still counted in full.
        assert_eq!(trace.events().len(), 3, "{executor:?}");
        assert!(trace.truncated(), "{executor:?}");
        assert_eq!(trace.total_events(), report.stats.messages, "{executor:?}");
    }
}

/// Oversubscribed pools (more workers than nodes) clamp instead of
/// spawning idle threads, and still replay commits in node-id order.
/// With 3 nodes the pool clamps to 3 workers, two of them spawned (the
/// engine thread owns shard 0).
#[test]
fn oversubscribed_pool_clamps_workers_to_nodes() {
    let _gate = spawn_gate();
    let topo = path(3);
    let before = pool_workers_spawned();
    let report = Simulator::new(
        &topo,
        Config::for_n(3).with_executor(ExecutorKind::Pool { workers: 64 }),
        |_| Chatter {
            rounds: 2,
            received: 0,
        },
    )
    .run()
    .unwrap();
    assert_eq!(pool_workers_spawned() - before, 2);
    assert_eq!(report.outputs, vec![2, 4, 2]);
}

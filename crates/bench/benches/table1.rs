//! Criterion wall-clock benches, one group per Table 1 experiment.
//!
//! The paper's complexity measure is *rounds*, which the `table1_*`
//! binaries report; these benches complement them by profiling the
//! simulator wall-time of each algorithm on representative instances, so
//! performance regressions in the implementation itself are caught.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dapsp_core::{approx, apsp, girth, girth_approx, metrics, ssp, three_halves, two_vs_four};
use dapsp_graph::{generators, lowerbound};

fn e1_apsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_apsp");
    group.sample_size(10);
    for n in [64usize, 128] {
        let g = generators::erdos_renyi_connected(n, 8.0 / n as f64, 1);
        group.bench_with_input(BenchmarkId::new("algorithm1", n), &g, |b, g| {
            b.iter(|| apsp::run(g).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sequential_bfs", n), &g, |b, g| {
            b.iter(|| dapsp_baselines::sequential_bfs(g).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("dv_eager", n), &g, |b, g| {
            b.iter(|| dapsp_baselines::distance_vector_eager(g).unwrap())
        });
    }
    group.finish();
}

fn e2_ssp(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_ssp");
    group.sample_size(10);
    let g = generators::erdos_renyi_connected(128, 8.0 / 128.0, 2);
    for s in [8usize, 32] {
        let sources: Vec<u32> = (0..s as u32).collect();
        group.bench_with_input(BenchmarkId::new("ssp", s), &sources, |b, sources| {
            b.iter(|| ssp::run(&g, sources).unwrap())
        });
    }
    group.finish();
}

fn e3_exact_apps(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_exact_apps");
    group.sample_size(10);
    let g = generators::grid(8, 8);
    group.bench_function("diameter", |b| b.iter(|| metrics::diameter(&g).unwrap()));
    group.bench_function("center", |b| b.iter(|| metrics::center(&g).unwrap()));
    group.finish();
}

fn e4_girth(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_girth");
    group.sample_size(10);
    let g = generators::tadpole(9, 96);
    group.bench_function("girth_exact", |b| b.iter(|| girth::run(&g).unwrap()));
    group.finish();
}

fn e5_lower_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_lower_bounds");
    group.sample_size(10);
    let (a, bb) = lowerbound::canonical_inputs(32, true);
    group.bench_function("build_and_certify", |b| {
        b.iter(|| {
            let inst = lowerbound::two_vs_three(32, &a, &bb);
            inst.bound.rounds(20)
        })
    });
    let inst = lowerbound::two_vs_three(32, &a, &bb);
    group.bench_function("exact_diameter_on_hard_instance", |b| {
        b.iter(|| metrics::diameter(&inst.graph).unwrap())
    });
    group.finish();
}

fn e6_approx_diameter(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_approx_diameter");
    group.sample_size(10);
    let g = generators::double_broom(256, 64);
    group.bench_function("exact", |b| b.iter(|| metrics::diameter(&g).unwrap()));
    group.bench_function("approx_eps_0.5", |b| {
        b.iter(|| approx::diameter(&g, 0.5).unwrap())
    });
    group.finish();
}

fn e7_approx_girth(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_approx_girth");
    group.sample_size(10);
    let g = generators::tadpole(32, 128);
    group.bench_function("exact", |b| b.iter(|| girth::run(&g).unwrap()));
    group.bench_function("approx_eps_0.5", |b| {
        b.iter(|| girth_approx::run(&g, 0.5).unwrap())
    });
    group.finish();
}

fn e8_two_vs_four(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_two_vs_four");
    group.sample_size(10);
    let (a, bb) = lowerbound::canonical_inputs(48, false);
    let inst = lowerbound::two_vs_three(48, &a, &bb);
    group.bench_function("algorithm3", |b| {
        b.iter(|| two_vs_four::run(&inst.graph, 3).unwrap())
    });
    group.finish();
}

fn e9_cor1(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_cor1_crossover");
    group.sample_size(10);
    for d in [4usize, 64] {
        let g = generators::double_broom(192, d);
        group.bench_with_input(BenchmarkId::new("three_halves", d), &g, |b, g| {
            b.iter(|| three_halves::run(g, 9).unwrap())
        });
    }
    group.finish();
}

fn e10_bits(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_bits");
    group.sample_size(10);
    let g = generators::erdos_renyi_connected(96, 16.0 / 96.0, 2);
    let sources: Vec<u32> = (0..32).collect();
    group.bench_function("ssp_message_accounting", |b| {
        b.iter(|| ssp::run(&g, &sources).unwrap().stats.bits)
    });
    group.finish();
}

criterion_group!(
    table1,
    e1_apsp,
    e2_ssp,
    e3_exact_apps,
    e4_girth,
    e5_lower_bounds,
    e6_approx_diameter,
    e7_approx_girth,
    e8_two_vs_four,
    e9_cor1,
    e10_bits
);
criterion_main!(table1);

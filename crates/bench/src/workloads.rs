//! Shared engine-benchmark workloads and helpers.
//!
//! Both engine benchmarks (`engine_throughput`, `engine_profile`) drive the
//! same two synthetic workloads over the same four topology families, so
//! their numbers are comparable:
//!
//! * [`BfsFlood`] — one wave from node 0; every node forwards once.
//!   Sparse traffic, dominated by per-round engine overhead.
//! * [`ApspGossip`] — every node floods its id and adopts the first
//!   arrival per origin, queueing forwards at one token per port per round
//!   (n simultaneous BFS waves, the Algorithm 1 traffic pattern). Dense
//!   traffic, dominated by per-message commit cost.

use std::collections::VecDeque;

use dapsp_congest::{
    Config, ExecutorKind, Inbox, Message, NodeAlgorithm, NodeContext, Outbox, Port, Topology,
};
use dapsp_graph::generators;

/// A token carrying an origin id and a hop count; sized like a real
/// CONGEST message (id + counter).
#[derive(Clone, Debug)]
pub struct Token {
    /// The node whose wave this token serves.
    pub origin: u32,
    /// Hop count the receiver would be at.
    pub hops: u32,
}

impl Message for Token {
    fn bit_size(&self) -> u32 {
        32
    }

    /// Tokens belong to their origin's wave, so observers can attribute
    /// gossip traffic per logical stream.
    fn stream_id(&self) -> Option<u32> {
        Some(self.origin)
    }
}

/// Single-source flood: forward the first arrival, then go quiet.
#[derive(Default)]
pub struct BfsFlood {
    dist: Option<u32>,
}

impl BfsFlood {
    /// A node that has not heard the wave yet.
    pub fn new() -> Self {
        Self::default()
    }
}

impl NodeAlgorithm for BfsFlood {
    type Message = Token;
    type Output = u32;

    fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Token>) {
        if ctx.node_id() == 0 {
            self.dist = Some(0);
            out.send_to_all(0..ctx.degree() as Port, Token { origin: 0, hops: 1 });
        }
    }

    fn on_round(&mut self, ctx: &NodeContext<'_>, inbox: &Inbox<Token>, out: &mut Outbox<Token>) {
        if self.dist.is_none() {
            if let Some((_, m)) = inbox.iter().next() {
                self.dist = Some(m.hops);
                out.send_to_all(
                    0..ctx.degree() as Port,
                    Token {
                        origin: 0,
                        hops: m.hops + 1,
                    },
                );
            }
        }
    }

    fn is_active(&self) -> bool {
        false
    }

    fn into_output(self, _: &NodeContext<'_>) -> u32 {
        self.dist.unwrap_or(u32::MAX)
    }
}

/// n simultaneous waves: adopt the first arrival per origin, forward each
/// adopted origin once, one token per port per round.
pub struct ApspGossip {
    dist: Vec<u32>,
    queue: VecDeque<Token>,
}

impl ApspGossip {
    /// A node of an `n`-node network that knows only its own distance.
    pub fn new(n: usize) -> Self {
        ApspGossip {
            dist: vec![u32::MAX; n],
            queue: VecDeque::new(),
        }
    }
}

impl NodeAlgorithm for ApspGossip {
    type Message = Token;
    type Output = u64;

    fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Token>) {
        self.dist[ctx.node_id() as usize] = 0;
        out.send_to_all(
            0..ctx.degree() as Port,
            Token {
                origin: ctx.node_id(),
                hops: 1,
            },
        );
    }

    fn on_round(&mut self, ctx: &NodeContext<'_>, inbox: &Inbox<Token>, out: &mut Outbox<Token>) {
        for (_, m) in inbox.iter() {
            if self.dist[m.origin as usize] == u32::MAX {
                self.dist[m.origin as usize] = m.hops;
                self.queue.push_back(Token {
                    origin: m.origin,
                    hops: m.hops + 1,
                });
            }
        }
        if let Some(t) = self.queue.pop_front() {
            out.send_to_all(0..ctx.degree() as Port, t);
        }
    }

    fn is_active(&self) -> bool {
        !self.queue.is_empty()
    }

    fn into_output(self, _: &NodeContext<'_>) -> u64 {
        // A distance checksum, enough to catch any cross-engine divergence.
        self.dist
            .iter()
            .enumerate()
            .map(|(i, &d)| u64::from(d).wrapping_mul(i as u64 + 1))
            .fold(0u64, u64::wrapping_add)
    }
}

/// The benchmark config for an `n`-node run: standard `Config::for_n`, but
/// with at least 32 bandwidth bits so a [`Token`] always fits.
pub fn engine_config(n: usize) -> Config {
    let base = Config::for_n(n);
    let bw = base.bandwidth_bits.max(32);
    base.with_bandwidth_bits(bw)
}

/// The topology families both engine benchmarks sweep.
pub const FAMILY_NAMES: &[&str] = &["path", "tree", "regular6", "clique", "hub"];

/// The large-`n` scaling families (`engine_throughput`'s `scaling` rows):
/// small-world (`ws`) and preferential-attachment (`ba`) graphs whose BFS
/// frontier per round is a vanishing fraction of `n` — the regime the
/// active-set scheduler exists for.
pub const SCALING_FAMILY_NAMES: &[&str] = &["ws", "ba"];

/// Builds the `n`-node member of `family` as a [`Graph`](dapsp_graph::Graph)
/// (deterministic
/// seeds) — for benchmarks that also need the sequential oracles.
///
/// # Panics
///
/// Panics on an unknown family name (see [`FAMILY_NAMES`] and
/// [`SCALING_FAMILY_NAMES`]).
pub fn family_graph(family: &str, n: usize) -> dapsp_graph::Graph {
    match family {
        "path" => generators::path(n),
        "tree" => generators::random_tree(n, 12),
        // Near-regular random graph: a Watts–Strogatz rewired ring, every
        // degree 6 before rewiring and 6 on average after.
        "regular6" => generators::watts_strogatz(n, 3, 0.1, 12),
        "clique" => generators::complete(n),
        // A high-degree hub inside a small world: a Watts–Strogatz ring
        // with a star overlay from node 0 to every 8th node. The hub's
        // per-round work dwarfs its peers', which makes static per-worker
        // schedule splits lopsided — the imbalance the pool executor's
        // work stealing exists to absorb.
        "hub" => {
            let base = generators::watts_strogatz(n, 3, 0.1, 7);
            let mut b = dapsp_graph::Graph::builder(n);
            for (u, v) in base.edges() {
                b.add_edge(u, v).expect("valid edge");
            }
            for v in (8..n as u32).step_by(8) {
                b.add_edge(0, v).expect("valid edge");
            }
            b.build()
        }
        // Scaling families: distinct seeds from regular6 so the small
        // CI instances and the large scaling instances never coincide.
        // The sparser rewiring (beta = 0.02) keeps the small-world
        // diameter in the tens of rounds, so the BFS frontier stays a
        // small fraction of n for long enough to measure.
        "ws" => generators::watts_strogatz(n, 3, 0.02, 42),
        "ba" => generators::barabasi_albert(n, 3, 42),
        other => panic!("unknown family {other}"),
    }
}

/// Builds the `n`-node member of `family` (deterministic seeds).
///
/// # Panics
///
/// Panics on an unknown family name (see [`FAMILY_NAMES`]).
pub fn family_topology(family: &str, n: usize) -> Topology {
    family_graph(family, n).to_topology()
}

/// The executor [`Config::with_threads`] maps `threads` onto — benchmarks
/// resolve it through the real config so JSON rows name exactly the
/// executor that produced them.
pub fn executor_for(threads: usize) -> ExecutorKind {
    Config::for_n(1).with_threads(threads).executor
}

/// Parsed CLI for the engine benchmarks:
/// `[--smoke] [--threads LIST] [OUT_PATH]`.
pub struct BenchArgs {
    /// `--smoke`: tiny instances, throwaway output path.
    pub smoke: bool,
    /// Worker-thread counts to sweep the optimized engine over, from
    /// `--threads 1,2,4` (or `--threads=1,2,4`).
    pub threads: Vec<usize>,
    /// Positional output path override, if given.
    pub out_path: Option<String>,
}

/// Parses `args` (without `argv[0]`); `default_threads` applies when no
/// `--threads` flag is present.
///
/// # Panics
///
/// Panics on unknown flags or a malformed thread list — these binaries are
/// developer-facing, so a loud failure beats a silently ignored argument.
pub fn parse_bench_args(args: &[String], default_threads: &[usize]) -> BenchArgs {
    let mut smoke = false;
    let mut threads: Option<Vec<usize>> = None;
    let mut out_path = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--smoke" {
            smoke = true;
        } else if arg == "--threads" {
            let list = it.next().expect("--threads needs a comma-separated list");
            threads = Some(parse_threads_list(list));
        } else if let Some(list) = arg.strip_prefix("--threads=") {
            threads = Some(parse_threads_list(list));
        } else if arg.starts_with("--") {
            panic!("unknown flag {arg}; usage: [--smoke] [--threads LIST] [OUT_PATH]");
        } else {
            out_path = Some(arg.clone());
        }
    }
    BenchArgs {
        smoke,
        threads: threads.unwrap_or_else(|| default_threads.to_vec()),
        out_path,
    }
}

fn parse_threads_list(list: &str) -> Vec<usize> {
    let parsed: Vec<usize> = list
        .split(',')
        .map(|t| {
            t.trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad thread count {t:?} in --threads {list}"))
        })
        .collect();
    assert!(!parsed.is_empty(), "--threads list is empty");
    parsed
}

/// The host's logical CPU count, from `/proc/cpuinfo` where available
/// (Linux), else [`host_parallelism`] — recorded in every bench JSON row
/// so cross-host comparisons are detectable (`dapsp-inspect bench-gate`
/// warns when rows disagree).
pub fn host_cpus() -> usize {
    if let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") {
        let count = info.lines().filter(|l| l.starts_with("processor")).count();
        if count > 0 {
            return count;
        }
    }
    host_parallelism()
}

/// `std::thread::available_parallelism()` as a plain number (0 when the
/// platform cannot say) — the parallelism the pool executor actually gets,
/// which on cgroup-limited CI boxes can be far below [`host_cpus`].
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(0)
}

/// The host-identification fields every bench JSON row carries, as a JSON
/// fragment (no surrounding braces): `"host_cpus":…,"host_parallelism":…`.
pub fn host_json_fields() -> String {
    format!(
        "\"host_cpus\":{},\"host_parallelism\":{}",
        host_cpus(),
        host_parallelism()
    )
}

/// Order-sensitive hash of a run's outputs, for cross-engine equality
/// checks.
pub fn digest<O: std::hash::Hash>(outputs: &[O]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    outputs.hash(&mut h);
    h.finish()
}

/// Renders pre-serialized JSON objects as a pretty-printed JSON array —
/// the on-disk format of `BENCH_engine.json` and `BENCH_profile.json`.
pub fn json_array(objects: &[String]) -> String {
    std::iter::once("[".to_string())
        .chain(objects.iter().enumerate().map(|(i, obj)| {
            let sep = if i + 1 == objects.len() { "" } else { "," };
            format!("\n  {obj}{sep}")
        }))
        .chain(std::iter::once("\n]\n".to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapsp_congest::Simulator;

    #[test]
    fn gossip_token_carries_its_stream() {
        let t = Token { origin: 7, hops: 2 };
        assert_eq!(t.stream_id(), Some(7));
        assert_eq!(t.bit_size(), 32);
    }

    #[test]
    fn families_build_and_flood_converges() {
        for &family in FAMILY_NAMES.iter().chain(SCALING_FAMILY_NAMES) {
            let topo = family_topology(family, 16);
            let report = Simulator::new(&topo, engine_config(16), |_| BfsFlood::new())
                .run()
                .unwrap();
            assert!(
                report.outputs.iter().all(|&d| d != u32::MAX),
                "{family}: flood reached everyone"
            );
        }
    }

    #[test]
    fn bench_args_parse_threads_and_paths() {
        let to_vec =
            |args: &[&str]| -> Vec<String> { args.iter().map(|s| s.to_string()).collect() };
        let parsed = parse_bench_args(
            &to_vec(&["--smoke", "--threads", "1,2,4", "out.json"]),
            &[1],
        );
        assert!(parsed.smoke);
        assert_eq!(parsed.threads, vec![1, 2, 4]);
        assert_eq!(parsed.out_path.as_deref(), Some("out.json"));

        let parsed = parse_bench_args(&to_vec(&["--threads=8"]), &[1, 4]);
        assert_eq!(parsed.threads, vec![8]);
        assert!(!parsed.smoke);
        assert!(parsed.out_path.is_none());

        let parsed = parse_bench_args(&[], &[1, 4]);
        assert_eq!(parsed.threads, vec![1, 4]);
    }

    #[test]
    fn executor_for_matches_with_threads_mapping() {
        assert_eq!(executor_for(1), ExecutorKind::Serial);
        assert_eq!(executor_for(1).name(), "serial");
        assert_eq!(executor_for(4), ExecutorKind::Pool { workers: 4 });
        assert_eq!(executor_for(4).name(), "pool");
    }

    #[test]
    fn json_array_shapes_rows() {
        let arr = json_array(&["{\"a\":1}".into(), "{\"b\":2}".into()]);
        assert_eq!(arr, "[\n  {\"a\":1},\n  {\"b\":2}\n]\n");
        assert_eq!(json_array(&[]), "[\n]\n");
    }
}

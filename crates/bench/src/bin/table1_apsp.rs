//! E1 — APSP round complexity (Theorem 1) versus the serialized baselines
//! of §3.1.
//!
//! Expected shapes: Algorithm 1 is `Θ(n)` on every family; the unpipelined
//! BFS-per-node schedule and the round-robin distance vector are `Θ(n·D)`
//! (quadratic on paths); link-state is `Θ(m + D)` rounds with `Θ(m²)`
//! messages.

use dapsp_bench::{loglog_slope, print_table};
use dapsp_core::apsp;
use dapsp_graph::{generators, Graph};

fn families(n: usize) -> Vec<(String, Graph)> {
    vec![
        (format!("path n={n}"), generators::path(n)),
        (format!("cycle n={n}"), generators::cycle(n)),
        (
            format!("broom(D=√n) n={n}"),
            generators::double_broom(n, (n as f64).sqrt() as usize),
        ),
        (
            format!("ER(8/n) n={n}"),
            generators::erdos_renyi_connected(n, 8.0 / n as f64, 12),
        ),
        (format!("tree n={n}"), generators::random_tree(n, 12)),
    ]
}

fn main() {
    println!("# E1: APSP in O(n) rounds (Theorem 1) vs serialized baselines\n");
    let ns = [32usize, 64, 128, 256];

    let mut rows = Vec::new();
    let mut apsp_path: Vec<(f64, f64)> = Vec::new();
    let mut seq_path: Vec<(f64, f64)> = Vec::new();
    let mut dv_path: Vec<(f64, f64)> = Vec::new();
    for &n in &ns {
        for (label, g) in families(n) {
            let a = apsp::run(&g).expect("apsp");
            let seq = dapsp_baselines::sequential_bfs(&g).expect("sequential");
            let eager = dapsp_baselines::distance_vector_eager(&g).expect("eager dv");
            // The round-robin protocol is Θ(n·D); cap it to keep runtimes sane.
            let dv = if n <= 128 {
                Some(dapsp_baselines::distance_vector(&g).expect("dv"))
            } else {
                None
            };
            let ls = if g.num_edges() <= 2000 {
                Some(dapsp_baselines::link_state(&g).expect("link state"))
            } else {
                None
            };
            if label.starts_with("path") {
                apsp_path.push((n as f64, a.stats.rounds as f64));
                seq_path.push((n as f64, seq.stats.rounds as f64));
                if let Some(d) = &dv {
                    dv_path.push((n as f64, d.rounds_to_converge as f64));
                }
            }
            rows.push(vec![
                label,
                a.stats.rounds.to_string(),
                seq.stats.rounds.to_string(),
                eager.rounds_to_converge.to_string(),
                dv.map_or("-".into(), |d| d.rounds_to_converge.to_string()),
                ls.map_or("-".into(), |l| l.rounds_to_converge.to_string()),
            ]);
        }
    }
    print_table(
        "rounds by algorithm",
        &[
            "instance",
            "Alg.1 APSP",
            "seq. BFS (n·D)",
            "eager DV",
            "round-robin DV",
            "link-state",
        ],
        &rows,
    );

    let split = |pts: &[(f64, f64)]| -> (Vec<f64>, Vec<f64>) {
        (
            pts.iter().map(|p| p.0).collect(),
            pts.iter().map(|p| p.1).collect(),
        )
    };
    let (xs, ys) = split(&apsp_path);
    let apsp_slope = loglog_slope(&xs, &ys);
    let (xs, ys) = split(&seq_path);
    let seq_slope = loglog_slope(&xs, &ys);
    let (xs, ys) = split(&dv_path);
    let dv_slope = loglog_slope(&xs, &ys);
    print_table(
        "empirical growth exponents on paths (rounds ~ n^slope)",
        &["algorithm", "paper bound", "measured slope"],
        &[
            vec![
                "Alg.1 APSP".into(),
                "Θ(n) → 1".into(),
                format!("{apsp_slope:.2}"),
            ],
            vec![
                "sequential BFS".into(),
                "Θ(n·D) → 2 on paths".into(),
                format!("{seq_slope:.2}"),
            ],
            vec![
                "round-robin DV".into(),
                "Θ(n·D) → 2 on paths".into(),
                format!("{dv_slope:.2}"),
            ],
        ],
    );
    assert!(
        apsp_slope < 1.25,
        "APSP must scale ~linearly, got {apsp_slope:.2}"
    );
    assert!(
        seq_slope > 1.7,
        "sequential BFS must be ~quadratic on paths"
    );
    assert!(dv_slope > 1.7, "round-robin DV must be ~quadratic on paths");
    println!("OK: shapes match the paper (APSP linear; naive baselines quadratic on paths).");
}

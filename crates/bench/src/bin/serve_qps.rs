//! Serve-layer throughput benchmark: query rate and tail latency **while
//! the control plane recomputes and swaps tables underneath the readers**.
//!
//! The serving layer's claim is that republishing is invisible to the
//! read path: a recompute runs entirely off-thread and lands as one
//! atomic pointer swap, so readers never block and never see a torn
//! table. This benchmark measures exactly that regime — no quiet-period
//! numbers. For each reader-thread count it:
//!
//! 1. builds a [`RouteService`] on the Watts–Strogatz `ws` family
//!    (`watts_strogatz(192, 3, 0.02, 42)`, the scaling-family seed) and
//!    spawns its background control plane;
//! 2. starts `t` reader threads doing point `dist` lookups through a
//!    shared [`ServeHandle`] (each lookup pays the full read path:
//!    snapshot load + flat-array read), checking **every** answer against
//!    the per-epoch sequential oracle and sampling per-query latency;
//! 3. drives `K` republishes through the control plane back to back
//!    (alternating chord insert/remove, so each epoch's oracle is
//!    precomputable), then stops the clock: every measured query ran
//!    during a live recompute-and-swap window.
//!
//! Results go to stdout as a table and to `BENCH_serve.json` at the repo
//! root: one row per reader count with `label`, `engine` (`serve`),
//! `executor`/`ctl_threads` (the control plane's), `threads` (readers),
//! `republishes`, `queries`, `correct`, `wrong`, `qps`, `p99_us`,
//! `repub_ms`, `final_epoch`, plus the host fields every bench row
//! carries. `dapsp-inspect bench-gate` gates these rows: `wrong != 0` or
//! `correct != queries` fails anywhere, qps ratios gate same-host and
//! warn cross-host.
//!
//! Usage: `serve_qps [--smoke] [--threads LIST] [OUT_PATH]` (threads =
//! reader counts, default `1,2,4`). `--smoke` keeps the same instance and
//! row keys but fewer republishes, so the smoke rows gate against the
//! committed baseline.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use dapsp_bench::print_table;
use dapsp_bench::workloads::{
    executor_for, family_graph, host_json_fields, json_array, parse_bench_args,
};
use dapsp_congest::TopologyPlan;
use dapsp_core::churned_graph;
use dapsp_graph::{reference, DistanceMatrix, Graph};
use dapsp_serve::{RouteService, ServeHandle};

/// Instance size: large enough that a republish takes long enough to
/// measure readers *during* it, small enough for CI smoke.
const N: usize = 192;
/// Control-plane worker threads (fixed so reader-thread sweeps are
/// comparable).
const CTL_THREADS: usize = 2;
/// Latency sample rate: every 32nd query is individually timed.
const SAMPLE_EVERY: u64 = 32;

struct Row {
    label: String,
    threads: usize,
    republishes: u64,
    queries: u64,
    correct: u64,
    wrong: u64,
    qps: f64,
    p99_us: f64,
    repub_ms: f64,
    final_epoch: u64,
}

impl Row {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"label\":\"{}\",\"engine\":\"serve\",\"executor\":\"{}\",",
                "\"ctl_threads\":{},\"threads\":{},\"republishes\":{},\"queries\":{},",
                "\"correct\":{},\"wrong\":{},\"qps\":{:.0},\"p99_us\":{:.2},",
                "\"repub_ms\":{:.1},\"final_epoch\":{},{}}}"
            ),
            self.label,
            executor_for(CTL_THREADS).name(),
            CTL_THREADS,
            self.threads,
            self.republishes,
            self.queries,
            self.correct,
            self.wrong,
            self.qps,
            self.p99_us,
            self.repub_ms,
            self.final_epoch,
            host_json_fields(),
        )
    }
}

/// The epoch-`e` churn step: odd epochs insert the (0, n/2) chord, even
/// epochs remove it again — so the graph at every epoch is known up front.
fn plan_for(epoch: u64) -> TopologyPlan {
    if epoch % 2 == 1 {
        TopologyPlan::new().with_insert(1, 0, N as u32 / 2)
    } else {
        TopologyPlan::new().with_remove(1, 0, N as u32 / 2)
    }
}

/// Per-epoch distance oracles for epochs `0..=k`.
fn epoch_oracles(g: &Graph, k: u64) -> Vec<DistanceMatrix> {
    let mut oracles = Vec::with_capacity(k as usize + 1);
    let mut current = g.clone();
    oracles.push(reference::apsp(&current));
    for epoch in 1..=k {
        current = churned_graph(&current, &plan_for(epoch)).expect("plan applies");
        oracles.push(reference::apsp(&current));
    }
    oracles
}

struct ReaderOutcome {
    queries: u64,
    correct: u64,
    wrong: u64,
    latencies_ns: Vec<u64>,
}

/// One reader: point lookups through the handle (each pays the full
/// load-and-read path) until `done`, verifying every answer against the
/// oracle of the epoch the loaded snapshot claims.
fn reader(
    handle: &ServeHandle,
    oracles: &[DistanceMatrix],
    seed: u64,
    done: &AtomicBool,
) -> ReaderOutcome {
    let n = N as u32;
    let mut out = ReaderOutcome {
        queries: 0,
        correct: 0,
        wrong: 0,
        latencies_ns: Vec::with_capacity(1 << 16),
    };
    let mut x = seed | 1;
    while !done.load(Ordering::Acquire) {
        for _ in 0..1024 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = (x >> 33) as u32 % n;
            let d = (x >> 13) as u32 % n;
            let sampled = out.queries.is_multiple_of(SAMPLE_EVERY);
            let t0 = sampled.then(Instant::now);
            // The measured operation: snapshot load + two flat reads. The
            // snapshot also tells us which epoch answered.
            let snap = handle.load();
            let got = snap.dist(s, d);
            if let Some(t0) = t0 {
                out.latencies_ns.push(t0.elapsed().as_nanos() as u64);
            }
            let want = oracles[snap.epoch() as usize].get(s, d);
            out.queries += 1;
            if got == want {
                out.correct += 1;
            } else {
                out.wrong += 1;
                eprintln!(
                    "WRONG: d({s},{d}) at epoch {} = {got:?}, oracle {want:?}",
                    snap.epoch()
                );
            }
        }
    }
    out
}

fn p99_us(mut samples: Vec<u64>) -> f64 {
    assert!(!samples.is_empty(), "no latency samples collected");
    samples.sort_unstable();
    let idx = (samples.len() - 1) * 99 / 100;
    samples[idx] as f64 / 1000.0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_bench_args(&args, &[1, 2, 4]);
    let smoke = parsed.smoke;
    let reader_counts = parsed.threads;
    let default_path = if smoke {
        format!(
            "{}/../../target/BENCH_serve_smoke.json",
            env!("CARGO_MANIFEST_DIR")
        )
    } else {
        format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR"))
    };
    let out_path = parsed.out_path.unwrap_or(default_path);
    let republishes: u64 = if smoke { 2 } else { 6 };

    println!("# Serve qps under live recompute+swap (ws family, n={N})\n");

    let g = family_graph("ws", N);
    let oracles = epoch_oracles(&g, republishes);

    let mut rows: Vec<Row> = Vec::new();
    for &t in &reader_counts {
        // A fresh service per row: every row starts at epoch 0 and sees
        // the same republish schedule.
        let service = RouteService::with_threads(&g, CTL_THREADS).expect("apsp runs");
        let controller = service.spawn();
        let done = AtomicBool::new(false);

        let (outcomes, repub_ms, elapsed) = std::thread::scope(|scope| {
            let readers: Vec<_> = (0..t)
                .map(|r| {
                    let handle = controller.handle();
                    let (done, oracles) = (&done, &oracles);
                    scope.spawn(move || reader(&handle, oracles, 0x9e3779b9 * (r as u64 + 1), done))
                })
                .collect();

            let clock = Instant::now();
            for epoch in 1..=republishes {
                let published = controller.apply_wait(plan_for(epoch)).expect("republish");
                assert_eq!(published, epoch, "epochs publish in order");
            }
            let elapsed = clock.elapsed();
            done.store(true, Ordering::Release);
            let outcomes: Vec<ReaderOutcome> =
                readers.into_iter().map(|r| r.join().unwrap()).collect();
            (
                outcomes,
                elapsed.as_secs_f64() * 1000.0 / republishes as f64,
                elapsed,
            )
        });

        let service = controller.shutdown();
        assert_eq!(service.epoch(), republishes);

        let queries: u64 = outcomes.iter().map(|o| o.queries).sum();
        let correct: u64 = outcomes.iter().map(|o| o.correct).sum();
        let wrong: u64 = outcomes.iter().map(|o| o.wrong).sum();
        assert_eq!(wrong, 0, "readers saw wrong answers — see stderr");
        assert_eq!(correct, queries, "every query must be oracle-checked");
        let latencies: Vec<u64> = outcomes.into_iter().flat_map(|o| o.latencies_ns).collect();
        rows.push(Row {
            label: format!("serve/ws/n={N}"),
            threads: t,
            republishes,
            queries,
            correct,
            wrong,
            qps: queries as f64 / elapsed.as_secs_f64(),
            p99_us: p99_us(latencies),
            repub_ms,
            final_epoch: republishes,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.threads.to_string(),
                r.republishes.to_string(),
                r.queries.to_string(),
                format!("{:.0}", r.qps),
                format!("{:.2}", r.p99_us),
                format!("{:.1}", r.repub_ms),
            ]
        })
        .collect();
    print_table(
        "serve qps during live republishes",
        &[
            "instance", "readers", "repubs", "queries", "qps", "p99_us", "repub_ms",
        ],
        &table,
    );

    let json_rows: Vec<String> = rows.iter().map(Row::json).collect();
    std::fs::write(&out_path, json_array(&json_rows)).expect("write bench json");
    println!("\nwrote {}", out_path);
}

//! Churn-repair benchmark: rounds-to-repair versus rounds-to-recompute
//! across churn rates.
//!
//! The repair protocol's whole premise is that patching a converged
//! distance computation after a topology change is cheaper — in CONGEST
//! rounds, the paper's complexity measure — than recomputing from scratch,
//! *as long as the change set is small*. This benchmark measures both
//! sides of that trade on the Watts–Strogatz `ws` scaling family
//! (`watts_strogatz(n, 3, 0.02, 42)`, the same instances as
//! `engine_throughput`'s scaling rows):
//!
//! 1. run churned APSP with a plan that removes `k` spread-out edges in
//!    one batch *after* the initial computation has converged, and count
//!    the rounds from the event to quiescence (**rounds_repair**);
//! 2. run the same computation from scratch on the post-churn graph and
//!    count its rounds (**rounds_recompute**).
//!
//! For small `k` the repair wave only travels as far as the damage, so
//! `rounds_repair < rounds_recompute`. As `k` grows past the adaptive
//! threshold (`max(4, n/8)` directed port halves), every node falls back
//! to a full cache recompute — the `policy` column flips from `repair` to
//! `recompute` and the two round counts converge. Every removal batch is
//! chosen to keep the graph connected, so no row mixes repair latency
//! with count-to-infinity retraction.
//!
//! Results go to stdout as a table and to `BENCH_churn.json` at the repo
//! root: one JSON object per row with `family`, `n`, `churn_edges`,
//! `batch_halves`, `threshold`, `policy`, `event_round`, `rounds_total`,
//! `rounds_repair`, `rounds_recompute`, `repaired_node_rounds`,
//! `recompute_fallbacks`, `messages`, plus the host-identification fields
//! (`host_cpus`, `host_parallelism`) every bench row carries.
//!
//! Usage: `churn_repair [--smoke] [--threads LIST] [OUT_PATH]`. Every row
//! is additionally recomputed at every requested thread count (default
//! `1,2`) and asserted bit-identical — combined with an external
//! `DAPSP_POOL_CHUNK=1` this is the forced-stealing parity check CI runs.

use dapsp_bench::print_table;
use dapsp_bench::workloads::{
    executor_for, family_graph, host_json_fields, json_array, parse_bench_args,
};
use dapsp_congest::TopologyPlan;
use dapsp_core::{apsp, churned_graph, ChurnedResult, Obs};
use dapsp_graph::{reference, Graph, INFINITY};

struct Row {
    n: usize,
    churn_edges: usize,
    batch_halves: u32,
    threshold: u32,
    policy: &'static str,
    event_round: u64,
    rounds_total: u64,
    rounds_repair: u64,
    rounds_recompute: u64,
    repaired_node_rounds: u64,
    recompute_fallbacks: u64,
    messages: u64,
}

impl Row {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"family\":\"ws\",\"n\":{},\"churn_edges\":{},\"batch_halves\":{},",
                "\"threshold\":{},\"policy\":\"{}\",\"event_round\":{},\"rounds_total\":{},",
                "\"rounds_repair\":{},\"rounds_recompute\":{},\"repaired_node_rounds\":{},",
                "\"recompute_fallbacks\":{},\"messages\":{},{}}}"
            ),
            self.n,
            self.churn_edges,
            self.batch_halves,
            self.threshold,
            self.policy,
            self.event_round,
            self.rounds_total,
            self.rounds_repair,
            self.rounds_recompute,
            self.repaired_node_rounds,
            self.recompute_fallbacks,
            self.messages,
            host_json_fields(),
        )
    }
}

/// `k` spread-out edges whose removal keeps `g` connected, found by a
/// deterministic scan (greedy: strided candidates, skip any edge whose
/// removal would disconnect the current mutated graph).
fn removal_batch(g: &Graph, k: usize) -> Vec<(u32, u32)> {
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let stride = (edges.len() / k).max(1);
    let mut picked: Vec<(u32, u32)> = Vec::new();
    for offset in 0..edges.len() {
        if picked.len() == k {
            break;
        }
        let (u, v) = edges[(offset * stride + offset / stride) % edges.len()];
        if picked.contains(&(u, v)) {
            continue;
        }
        let mut b = Graph::builder(g.num_nodes());
        for &(a, c) in edges
            .iter()
            .filter(|e| !picked.contains(e) && **e != (u, v))
        {
            b.add_edge(a, c).expect("valid edge");
        }
        let candidate = b.build();
        if reference::bfs(&candidate, 0).iter().all(|&d| d != INFINITY) {
            picked.push((u, v));
        }
    }
    assert_eq!(picked.len(), k, "could not find {k} safe removals");
    picked
}

/// Churned APSP at the given thread count.
fn run(g: &Graph, plan: &TopologyPlan, threads: usize) -> ChurnedResult {
    let obs = Obs::none().with_executor(executor_for(threads));
    apsp::run_churned_on(&g.to_topology(), plan, obs).expect("churned apsp runs")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_bench_args(&args, &[1, 2]);
    let smoke = parsed.smoke;
    let threads_list = parsed.threads;
    let default_path = if smoke {
        format!(
            "{}/../../target/BENCH_churn_smoke.json",
            env!("CARGO_MANIFEST_DIR")
        )
    } else {
        format!("{}/../../BENCH_churn.json", env!("CARGO_MANIFEST_DIR"))
    };
    let out_path = parsed.out_path.unwrap_or(default_path);

    println!("# Churn repair: rounds to patch vs rounds to recompute (ws family)\n");

    let sizes: &[usize] = if smoke { &[24] } else { &[48, 96] };
    let churn_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8, 16] };
    let mut rows: Vec<Row> = Vec::new();
    for &n in sizes {
        let g = family_graph("ws", n);
        let threshold = dapsp_core::kernel::repair_threshold(n);
        // Natural convergence round of the from-scratch computation on the
        // unchurned graph; churn events land two rounds after it, so every
        // repair starts from a fully converged state.
        let baseline = run(&g, &TopologyPlan::new(), threads_list[0]);
        let event_round = baseline.stats.rounds + 2;
        for &k in churn_counts {
            let batch = removal_batch(&g, k);
            let mut plan = TopologyPlan::new();
            for &(u, v) in &batch {
                plan = plan.with_remove(event_round, u, v);
            }
            let repaired = run(&g, &plan, threads_list[0]);
            // Engine parity at every requested thread count (CI wraps this
            // in DAPSP_POOL_CHUNK=1 for the forced-stealing regime).
            for &threads in &threads_list[1..] {
                let other = run(&g, &plan, threads);
                assert_eq!(repaired.dist, other.dist, "t{threads}: dist diverged");
                assert_eq!(
                    repaired.parent_port, other.parent_port,
                    "t{threads}: parents diverged"
                );
                assert_eq!(repaired.stats, other.stats, "t{threads}: stats diverged");
            }
            let mutated = churned_graph(&g, &plan).expect("plan applies");
            let oracle = reference::apsp(&mutated);
            for v in 0..n as u32 {
                for r in 0..n as u32 {
                    assert_eq!(
                        repaired.dist_to(v, r),
                        oracle.get(v, r).or(Some(INFINITY)),
                        "n={n} k={k}: repaired d({v},{r}) is wrong"
                    );
                }
            }
            let recompute = run(&mutated, &TopologyPlan::new(), threads_list[0]);
            let fallbacks = repaired.stats.recompute_fallbacks;
            rows.push(Row {
                n,
                churn_edges: k,
                batch_halves: 2 * k as u32,
                threshold,
                policy: if fallbacks > 0 { "recompute" } else { "repair" },
                event_round,
                rounds_total: repaired.stats.rounds,
                rounds_repair: repaired.stats.rounds.saturating_sub(event_round),
                rounds_recompute: recompute.stats.rounds,
                repaired_node_rounds: repaired.stats.repaired_node_rounds,
                recompute_fallbacks: fallbacks,
                messages: repaired.stats.messages,
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("ws/n={}", r.n),
                r.churn_edges.to_string(),
                format!("{}/{}", r.batch_halves, r.threshold),
                r.policy.to_string(),
                r.rounds_repair.to_string(),
                r.rounds_recompute.to_string(),
                r.recompute_fallbacks.to_string(),
            ]
        })
        .collect();
    print_table(
        "churn repair",
        &[
            "instance",
            "edges",
            "batch/thr",
            "policy",
            "repair",
            "recompute",
            "fallbacks",
        ],
        &table,
    );

    // The headline claims, asserted so CI notices if repair stops paying:
    // small batches repair in fewer rounds than a recompute takes, and the
    // largest batch crosses the adaptive threshold.
    for r in &rows {
        if r.batch_halves < r.threshold {
            assert!(
                r.rounds_repair < r.rounds_recompute,
                "n={}, k={}: repair ({}) not cheaper than recompute ({})",
                r.n,
                r.churn_edges,
                r.rounds_repair,
                r.rounds_recompute
            );
            assert_eq!(r.recompute_fallbacks, 0, "small batch must not fall back");
        } else {
            assert!(
                r.recompute_fallbacks > 0,
                "n={}, k={}: batch {} >= threshold {} must fall back",
                r.n,
                r.churn_edges,
                r.batch_halves,
                r.threshold
            );
        }
    }

    let json_rows: Vec<String> = rows.iter().map(Row::json).collect();
    std::fs::write(&out_path, json_array(&json_rows)).expect("write bench json");
    println!("\nwrote {}", out_path);
}

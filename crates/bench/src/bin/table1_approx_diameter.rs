//! E6 — the `(×, 1+ε)` approximations in `O(n/D + D)` rounds (Theorem 4,
//! Corollary 4).
//!
//! Sweep `D` at fixed `n` via double brooms: exact stays ≈ `c·n` while the
//! approximation falls like `n/D + D`, so the speedup factor approaches
//! `Θ(D)` — exactly the trade-off the Theorem 2 lower bound says is the
//! best possible for a `(+,1)` answer. A second sweep varies `ε`.

use dapsp_bench::print_table;
use dapsp_core::{approx, metrics};
use dapsp_graph::generators;

fn main() {
    println!("# E6: (1+eps)-approx diameter/eccentricities in O(n/D + D) (Thm 4, Cor 4)\n");
    let n = 384;
    let mut rows = Vec::new();
    for d in [12usize, 24, 48, 96, 192] {
        let g = generators::double_broom(n, d);
        let exact = metrics::diameter(&g).expect("exact");
        let apx = approx::diameter(&g, 0.5).expect("approx");
        assert!(apx.value >= exact.value);
        assert!(f64::from(apx.value) <= 1.5 * f64::from(exact.value));
        rows.push(vec![
            format!("broom n={n} D={d}"),
            exact.value.to_string(),
            apx.value.to_string(),
            apx.k.to_string(),
            apx.dom_size.to_string(),
            exact.stats.rounds.to_string(),
            apx.stats.rounds.to_string(),
            format!("{:.2}", exact.stats.rounds as f64 / apx.stats.rounds as f64),
        ]);
    }
    print_table(
        "sweep D at fixed n (eps = 0.5)",
        &[
            "instance",
            "D exact",
            "D approx",
            "k",
            "|DOM|",
            "exact rounds",
            "approx rounds",
            "speedup",
        ],
        &rows,
    );

    let mut rows = Vec::new();
    let g = generators::double_broom(n, 96);
    for eps in [0.1, 0.25, 0.5, 1.0, 2.0] {
        let apx = approx::diameter(&g, eps).expect("approx");
        let ecc = approx::eccentricities(&g, eps).expect("ecc approx");
        rows.push(vec![
            format!("eps={eps}"),
            apx.value.to_string(),
            format!("{:.3}", f64::from(apx.value) / 96.0),
            apx.dom_size.to_string(),
            apx.stats.rounds.to_string(),
            ecc.stats.rounds.to_string(),
        ]);
    }
    print_table(
        "sweep eps on broom n=384 D=96 (true D = 96)",
        &[
            "eps",
            "estimate",
            "estimate/D",
            "|DOM|",
            "diam rounds",
            "ecc rounds",
        ],
        &rows,
    );
    println!("OK: speedup grows with D; accuracy degrades gracefully with eps.");
}

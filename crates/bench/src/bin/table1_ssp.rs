//! E2 — S-SP in `O(|S| + D)` rounds (Theorem 3).
//!
//! Two sweeps isolate the two terms: `|S|` varies at fixed `D` (expect
//! rounds to grow with slope ≈ 1 in `|S|` after the `O(D)` offset), and `D`
//! varies at fixed `|S|` via double brooms (expect linear growth in `D`).

use dapsp_bench::print_table;
use dapsp_core::ssp;
use dapsp_graph::generators;

fn main() {
    println!("# E2: S-SP in O(|S| + D) rounds (Theorem 3)\n");

    // Sweep |S| at fixed n and D (ER graph, D stays ~4).
    let n = 192;
    let g = generators::erdos_renyi_connected(n, 10.0 / n as f64, 5);
    let mut rows = Vec::new();
    let mut prev: Option<(usize, u64)> = None;
    let mut increments = Vec::new();
    for s_count in [4usize, 16, 48, 96, 160] {
        let sources: Vec<u32> = (0..s_count as u32).collect();
        let r = ssp::run(&g, &sources).expect("ssp");
        if let Some((ps, pr)) = prev {
            increments.push((r.stats.rounds - pr) as f64 / (s_count - ps) as f64);
        }
        rows.push(vec![
            format!("ER n={n}, |S|={s_count}"),
            r.d0.to_string(),
            r.stats.rounds.to_string(),
            (s_count as u64 + u64::from(r.d0)).to_string(),
            r.relaxations.to_string(),
        ]);
        prev = Some((s_count, r.stats.rounds));
    }
    print_table(
        "sweep |S| at fixed D",
        &["instance", "D0", "rounds", "|S|+D0 budget", "relaxations"],
        &rows,
    );
    let avg_inc = increments.iter().sum::<f64>() / increments.len() as f64;
    println!("marginal rounds per extra source: {avg_inc:.2} (theory: ~1)\n");
    assert!(
        avg_inc < 2.0,
        "rounds must grow ~1 per source, got {avg_inc:.2}"
    );

    // Sweep D at fixed |S| and n (double brooms).
    let mut rows = Vec::new();
    for d in [8usize, 16, 32, 64, 120] {
        let g = generators::double_broom(128, d);
        let sources: Vec<u32> = (0..8).collect();
        let r = ssp::run(&g, &sources).expect("ssp");
        rows.push(vec![
            format!("broom n=128 D={d}, |S|=8"),
            r.stats.rounds.to_string(),
            format!("{:.2}", r.stats.rounds as f64 / d as f64),
            r.relaxations.to_string(),
        ]);
    }
    print_table(
        "sweep D at fixed |S| (rounds/D should approach a constant)",
        &["instance", "rounds", "rounds / D", "relaxations"],
        &rows,
    );
    println!("OK: rounds grow additively in |S| and D, as Theorem 3 predicts.");
}

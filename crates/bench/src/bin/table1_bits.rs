//! E10 — communication volume (§3.2): S-SP exchanges `O((|S|+D)·m)`
//! messages / `O((|S|+D)·m·log n)` bits.
//!
//! Sweep `|S|` and `m` independently and report messages normalized by
//! `(|S|+D)·m`; the ratio should stay bounded by a small constant, which is
//! the comparison the paper makes against Elkin and Khan et al. in §3.2.

use dapsp_bench::print_table;
use dapsp_core::ssp;
use dapsp_graph::generators;

fn main() {
    println!("# E10: S-SP communication volume O((|S|+D)·m) (§3.2)\n");
    let mut rows = Vec::new();
    for (label, g) in [
        (
            "ER n=128 p=6/n",
            generators::erdos_renyi_connected(128, 6.0 / 128.0, 2),
        ),
        (
            "ER n=128 p=16/n",
            generators::erdos_renyi_connected(128, 16.0 / 128.0, 2),
        ),
        (
            "ER n=128 p=32/n",
            generators::erdos_renyi_connected(128, 32.0 / 128.0, 2),
        ),
        ("grid 16x8", generators::grid(16, 8)),
        ("cycle n=128", generators::cycle(128)),
    ] {
        for s_count in [4usize, 16, 64] {
            let sources: Vec<u32> = (0..s_count as u32).collect();
            let r = ssp::run(&g, &sources).expect("ssp");
            let m = g.num_edges() as f64;
            let denom = (s_count as f64 + f64::from(r.d0)) * m;
            rows.push(vec![
                format!("{label}, |S|={s_count}"),
                g.num_edges().to_string(),
                r.d0.to_string(),
                r.stats.messages.to_string(),
                r.stats.bits.to_string(),
                format!("{:.3}", r.stats.messages as f64 / denom),
            ]);
        }
    }
    print_table(
        "messages vs the (|S|+D)·m budget",
        &[
            "instance",
            "m",
            "D0",
            "messages",
            "bits",
            "msgs/((|S|+D0)·m)",
        ],
        &rows,
    );
    println!("OK: the normalized ratio stays below a small constant — the O((|S|+D)·m) claim.");
}

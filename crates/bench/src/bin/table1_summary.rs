//! The capstone index: the paper's Table 1, cell by cell, mapped to what
//! this repository implements, measures, or certifies.
//!
//! Upper bounds (`O(...)`) are implemented algorithms whose round counts
//! the experiment binaries measure; lower bounds (`Ω(...)`) are certified
//! by the constructed hard families in `dapsp_graph::lowerbound`; `—`
//! marks cells the paper itself leaves open.

use dapsp_bench::print_table;

fn main() {
    println!("# Table 1 of the paper, mapped to this repository\n");
    let rows = vec![
        vec![
            "APSP".into(),
            "Θ̃(n) — core::apsp (E1)".into(),
            "Ω(n/(D·B))+D — lowerbound::diameter_gap (E5)".into(),
            "Ω(n/B) — Lemma 11 via Thm 6 family (E5)".into(),
            "—".into(),
            "—".into(),
            "—".into(),
        ],
        vec![
            "eccentricity".into(),
            "Θ̃(n) — core::metrics (E3)".into(),
            "Ω(n/(D·B))+D — same family (E5)".into(),
            "Ω(√n/B)+D — cited [22]".into(),
            "—".into(),
            "O(n/D + D) — core::approx (E6)".into(),
            "Θ(D) — approx::eccentricities_times_two".into(),
        ],
        vec![
            "diameter".into(),
            "Θ̃(n) — core::metrics (E1/E3)".into(),
            "Ω(n/(D·B))+D — Thm 2 family (E5)".into(),
            "O(n¾+D) — core::three_halves (E9); Ω(√n/B)+D cited [22]".into(),
            "O(n¾+D) — Corollary 1 (E9)".into(),
            "O(n/D + D) — core::approx (E6)".into(),
            "Θ(D) — approx::diameter_times_two".into(),
        ],
        vec![
            "radius".into(),
            "O(n) — core::metrics (E3)".into(),
            "—".into(),
            "—".into(),
            "—".into(),
            "O(n/D + D) — core::approx".into(),
            "Θ(D) — approx::radius_times_two".into(),
        ],
        vec![
            "center".into(),
            "Θ̃(n) — core::metrics (E3)".into(),
            "Ω(n/(D·B))+D — Lemma 9".into(),
            "Ω(√n/B)+D — Lemma 9".into(),
            "—".into(),
            "O(n/D + D) — core::approx::center (E6)".into(),
            "0 — approx::center_times_two (Rem. 2)".into(),
        ],
        vec![
            "p. vertices".into(),
            "Θ̃(n) — core::metrics (E3)".into(),
            "Ω(n/(D·B))+D — Lemma 8".into(),
            "Ω(√n/B)+D — Lemma 8".into(),
            "—".into(),
            "O(n/D + D) — core::approx (E6)".into(),
            "0 — approx::peripheral_times_two (Rem. 2)".into(),
        ],
        vec![
            "girth".into(),
            "O(n) — core::girth (E4)".into(),
            "—".into(),
            "—".into(),
            "—".into(),
            "O(n/g + D·log(D/g)) — core::girth_approx (E7)".into(),
            "(×,2−1/g): girth_approx::corollary2 (Cor. 2)".into(),
        ],
    ];
    print_table(
        "problem × approximation ratio → bound, module, experiment",
        &[
            "problem",
            "exact",
            "(+, 1)",
            "(×, 3/2−ε) / (×, 3/2)",
            "(×, 3/2) combined",
            "(×, 1+ε)",
            "(×, 2)",
        ],
        &rows,
    );
    println!("Supporting results: S-SP in O(|S|+D) — core::ssp (E2, E10);");
    println!("2-vs-4 in O(√(n log n)) — core::two_vs_four (E8); 2-vs-3 hardness — Thm 6 family (E5, E8);");
    println!("all k-BFS trees (§8) — apsp::run_truncated, measured against the Thm 8 family (E5).");
    println!("\nRun `table1_all` for the measured tables behind every cell.");
}

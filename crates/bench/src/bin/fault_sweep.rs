//! Fault-adversary sweep: what does exactness under message loss cost?
//!
//! The [`ReliableKernel`](dapsp_core::kernel::ReliableKernel) promises that
//! `apsp::run_faulty` and `ssp::run_faulty` return *bit-identical* results
//! to their fault-free counterparts for any loss rate below one, at the
//! price of extra rounds (the stop-and-wait synchronizer roughly doubles
//! the round count fault-free, and loss `p` inflates it by about
//! `1/(1 − p)` on top). This benchmark measures that price across the
//! engine-benchmark topology families and *checks the promise while doing
//! so*: every cell's distances are compared against the sequential oracle,
//! and every pool run against the serial run of the same cell.
//!
//! Sweep: **apsp** and **ssp** over path / random tree / near-regular /
//! clique, each at loss rates 0 / 0.05 / 0.1 / 0.2 under the serial
//! executor and the worker pool at every requested thread count. The
//! loss-0 reliable rows isolate the synchronizer's own overhead from the
//! retransmission cost.
//!
//! Results go to stdout as a table and to `BENCH_faults.json` at the repo
//! root: one JSON object per row with `label`, `family`, `workload`, `n`,
//! `loss`, `executor`, `threads`, `rounds`, `clean_rounds`, `overhead`
//! (rounds ÷ fault-free-unwrapped rounds), `messages`, `dropped`,
//! `frames`, `retransmissions`, `acks`, `wall_ms`.
//!
//! Usage: `fault_sweep [--smoke] [--threads LIST] [OUT_PATH]`. `--smoke`
//! runs tiny instances and writes to `target/BENCH_faults_smoke.json`, so
//! CI exercises the full path without touching the committed numbers.

use dapsp_bench::print_table;
use dapsp_bench::workloads::{executor_for, family_graph, json_array, parse_bench_args};
use dapsp_congest::FaultPlan;
use dapsp_core::kernel::RelStats;
use dapsp_core::{apsp, ssp, Obs};
use dapsp_graph::reference;

/// One measured cell of the sweep.
struct Row {
    label: String,
    family: &'static str,
    workload: &'static str,
    n: usize,
    loss: f64,
    executor: &'static str,
    threads: usize,
    rounds: u64,
    clean_rounds: u64,
    overhead: f64,
    messages: u64,
    dropped: u64,
    frames: u64,
    retransmissions: u64,
    acks: u64,
    wall_ms: f64,
}

impl Row {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"label\":\"{}\",\"family\":\"{}\",\"workload\":\"{}\",\"n\":{},",
                "\"loss\":{},\"executor\":\"{}\",\"threads\":{},\"rounds\":{},",
                "\"clean_rounds\":{},\"overhead\":{:.4},\"messages\":{},\"dropped\":{},",
                "\"frames\":{},\"retransmissions\":{},\"acks\":{},\"wall_ms\":{:.4},{}}}"
            ),
            self.label,
            self.family,
            self.workload,
            self.n,
            self.loss,
            self.executor,
            self.threads,
            self.rounds,
            self.clean_rounds,
            self.overhead,
            self.messages,
            self.dropped,
            self.frames,
            self.retransmissions,
            self.acks,
            self.wall_ms,
            dapsp_bench::workloads::host_json_fields(),
        )
    }
}

const MS: f64 = 1e3;

/// What one reliable run must expose for checking and reporting.
struct Run {
    /// Order-sensitive fingerprint of every per-node result — equal
    /// fingerprints mean bit-identical outputs.
    fingerprint: u64,
    rounds: u64,
    messages: u64,
    dropped: u64,
    wall_ms: f64,
    rel: RelStats,
}

fn fingerprint<H: std::hash::Hash>(value: &H) -> u64 {
    use std::hash::Hasher;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// Runs one workload cell at every executor in the sweep, asserting the
/// pool runs reproduce the serial run bit-for-bit.
#[allow(clippy::too_many_arguments)] // a flat description of one sweep cell
fn sweep_cell<F>(
    label: &str,
    family: &'static str,
    workload: &'static str,
    n: usize,
    loss: f64,
    clean_rounds: u64,
    threads_list: &[usize],
    run: F,
) -> Vec<Row>
where
    F: Fn(Obs<'_>) -> Run,
{
    let mut rows = Vec::new();
    let mut serial_fp = None;
    for &threads in threads_list {
        let kind = executor_for(threads);
        let r = run(Obs::none().with_executor(kind));
        assert!(!r.rel.gave_up, "{label}: a link exhausted its retries");
        assert_eq!(r.rel.truncated_sends, 0, "{label}: horizon too short");
        match serial_fp {
            None => serial_fp = Some(r.fingerprint),
            Some(fp) => assert_eq!(
                fp,
                r.fingerprint,
                "{label}: {}@{threads} diverged from the first executor",
                kind.name()
            ),
        }
        rows.push(Row {
            label: label.into(),
            family,
            workload,
            n,
            loss,
            executor: kind.name(),
            threads,
            rounds: r.rounds,
            clean_rounds,
            overhead: r.rounds as f64 / clean_rounds as f64,
            messages: r.messages,
            dropped: r.dropped,
            frames: r.rel.frames_sent,
            retransmissions: r.rel.retransmissions,
            acks: r.rel.acks_sent,
            wall_ms: r.wall_ms,
        });
    }
    rows
}

/// (family, apsp size, ssp size) per sweep mode. Reliable runs cost
/// `O(n)` sim rounds at ~2×/(1−p) real rounds each, so sizes stay modest.
const FULL: &[(&str, usize, usize)] = &[
    ("path", 64, 64),
    ("tree", 64, 64),
    ("regular6", 64, 64),
    ("clique", 32, 32),
];
const SMOKE: &[(&str, usize, usize)] = &[("path", 12, 12), ("regular6", 12, 12)];

const FULL_LOSSES: &[f64] = &[0.0, 0.05, 0.1, 0.2];
const SMOKE_LOSSES: &[f64] = &[0.0, 0.2];

/// Deterministic per-cell adversary seed, so rerunning the sweep
/// reproduces the committed numbers exactly.
fn cell_seed(family: &str, workload: &str, loss: f64) -> u64 {
    fingerprint(&(family, workload, (loss * 1000.0) as u64))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_bench_args(&args, &[1, 2, 4]);
    let smoke = parsed.smoke;
    let threads_list = parsed.threads;
    let default_path = if smoke {
        format!(
            "{}/../../target/BENCH_faults_smoke.json",
            env!("CARGO_MANIFEST_DIR")
        )
    } else {
        format!("{}/../../BENCH_faults.json", env!("CARGO_MANIFEST_DIR"))
    };
    let out_path = parsed.out_path.unwrap_or(default_path);

    println!("# Fault sweep: round overhead of exact APSP/S-SP under message loss\n");

    let losses = if smoke { SMOKE_LOSSES } else { FULL_LOSSES };
    let mut rows: Vec<Row> = Vec::new();
    for &(family, apsp_n, ssp_n) in if smoke { SMOKE } else { FULL } {
        // APSP: fault-free baseline, oracle, then the loss × executor grid.
        let g = family_graph(family, apsp_n);
        let topo = g.to_topology();
        let oracle = reference::apsp(&g);
        let clean = apsp::run_on(&topo).expect("fault-free apsp runs");
        assert_eq!(clean.distances, oracle, "{family}: clean apsp is wrong");
        for &loss in losses {
            let label = format!("apsp/{family}/n={apsp_n}/p={loss}");
            let plan = FaultPlan::uniform_loss(loss, cell_seed(family, "apsp", loss));
            rows.extend(sweep_cell(
                &label,
                family,
                "apsp",
                apsp_n,
                loss,
                clean.stats.rounds,
                &threads_list,
                |obs| {
                    let (r, rel) = apsp::run_faulty_on(&topo, plan.clone(), obs)
                        .expect("reliable apsp runs to completion");
                    assert_eq!(r.distances, oracle, "{label}: distances diverged");
                    Run {
                        fingerprint: fingerprint(&(&r.next_hop, r.girth_candidate)),
                        rounds: r.stats.rounds,
                        messages: r.stats.messages,
                        dropped: r.stats.dropped,
                        wall_ms: r.stats.wall_time.as_secs_f64() * MS,
                        rel,
                    }
                },
            ));
        }

        // S-SP with |S| = n/4 spread sources, same grid.
        let g = family_graph(family, ssp_n);
        let topo = g.to_topology();
        let sources: Vec<u32> = (0..ssp_n as u32).step_by(4).collect();
        let s_oracle = reference::s_shortest_paths(&g, &sources);
        let clean = ssp::run_on(&topo, &sources).expect("fault-free ssp runs");
        for &loss in losses {
            let label = format!("ssp/{family}/n={ssp_n}/p={loss}");
            let plan = FaultPlan::uniform_loss(loss, cell_seed(family, "ssp", loss));
            rows.extend(sweep_cell(
                &label,
                family,
                "ssp",
                ssp_n,
                loss,
                clean.stats.rounds,
                &threads_list,
                |obs| {
                    let (r, rel) = ssp::run_faulty_on(&topo, &sources, plan.clone(), obs)
                        .expect("reliable ssp runs to completion");
                    for (i, src_dists) in s_oracle.iter().enumerate() {
                        for (v, &d) in src_dists.iter().enumerate() {
                            assert_eq!(r.dist[v][i], d, "{label}: d({v}, src {i}) diverged");
                        }
                    }
                    Run {
                        fingerprint: fingerprint(&(&r.dist, &r.next_hop, r.d0)),
                        rounds: r.stats.rounds,
                        messages: r.stats.messages,
                        dropped: r.stats.dropped,
                        wall_ms: r.stats.wall_time.as_secs_f64() * MS,
                        rel,
                    }
                },
            ));
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.executor.to_string(),
                r.threads.to_string(),
                r.rounds.to_string(),
                format!("{:.2}x", r.overhead),
                r.dropped.to_string(),
                r.retransmissions.to_string(),
            ]
        })
        .collect();
    print_table(
        "fault sweep",
        &[
            "workload", "executor", "thr", "rounds", "overhead", "dropped", "retx",
        ],
        &table,
    );

    // Mean round-overhead factor per loss rate: the headline number.
    for &loss in losses {
        let overheads: Vec<f64> = rows
            .iter()
            .filter(|r| r.loss == loss)
            .map(|r| r.overhead)
            .collect();
        let mean = overheads.iter().sum::<f64>() / overheads.len() as f64;
        println!("mean round overhead at loss {loss}: {mean:.2}x");
    }

    let objects: Vec<String> = rows.iter().map(Row::json).collect();
    std::fs::write(&out_path, json_array(&objects)).expect("write BENCH_faults.json");
    println!("wrote {out_path}");
}

//! Runs every Table 1 experiment (E1–E10) in sequence by invoking the
//! sibling experiment binaries. Intended as the one-shot regeneration of
//! EXPERIMENTS.md's measured columns:
//!
//! ```text
//! cargo run --release -p dapsp-bench --bin table1_all
//! ```

use std::process::Command;

fn main() {
    let bins = [
        "table1_apsp",
        "table1_ssp",
        "table1_exact_apps",
        "table1_girth",
        "table1_lower_bounds",
        "table1_approx_diameter",
        "table1_approx_girth",
        "table1_two_vs_four",
        "table1_cor1_crossover",
        "table1_bits",
        "ablation_ssp_variants",
        "ablation_pebble_wait",
        "table1_summary",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for bin in bins {
        println!("\n===== {bin} =====\n");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failures.push(bin);
        }
    }
    if failures.is_empty() {
        println!("\nAll Table 1 experiments completed with their shape assertions passing.");
    } else {
        eprintln!("\nFAILED experiments: {failures:?}");
        std::process::exit(1);
    }
}

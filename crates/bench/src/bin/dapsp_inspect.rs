//! `dapsp-inspect` — run a workload under the structured trace recorder and
//! inspect the result, or gate benchmark JSON against a committed baseline.
//!
//! Subcommands:
//!
//! * `summary` — run a workload with a [`TraceRecorder`] attached and print
//!   the per-kernel traffic breakdown, the most congested undirected edges,
//!   the wave-delay histogram, and the termination story.
//! * `diff` — run the same workload on the serial executor and the worker
//!   pool and line-diff the two JSONL event streams (they must be
//!   bit-identical; any divergence prints the first differing line).
//! * `perfetto` — export the trace as Chrome-trace/Perfetto JSON
//!   (`ui.perfetto.dev` / `chrome://tracing`).
//! * `bench-gate BASELINE CURRENT` — compare two `BENCH_engine.json`-shaped
//!   files on matching `(label, engine, executor, threads)` rows: fail on
//!   any round-count or message-count mismatch (determinism) or on a
//!   throughput regression beyond `--max-ratio` (default 3×). Rows carry
//!   `host_cpus`; when the two files were measured on different hosts the
//!   gate still checks determinism but warns that the throughput ratios
//!   are not comparable. `BENCH_serve.json`-shaped rows (carrying `qps`
//!   instead of `rounds`) gate analogously: a nonzero `wrong` count or
//!   `correct != queries` fails absolutely (those are oracle checks), qps
//!   ratios fail same-host and warn cross-host.
//! * `--smoke` — self-check every subcommand on tiny instances.
//!
//! Workload flags (for `summary`/`diff`/`perfetto`):
//! `[--workload apsp|bfs|ssp] [--family FAM] [--n N] [--loss P]
//! [--threads T] [--seed S] [--churn K]`; `--churn K` runs the *churned*
//! variant of the workload — a [`TopologyPlan`] removing `K` edges and
//! inserting one mid-run — so the trace carries `TopologyChange` events
//! and the summary shows them alongside the per-kernel drop attribution.
//! `perfetto` adds `[--out PATH] [--by node|kernel]`, `bench-gate` adds
//! `[--max-ratio R]`.

use std::process::ExitCode;

use dapsp_bench::workloads::{executor_for, family_graph};
use dapsp_bench::{print_table, render_table};
use dapsp_congest::{
    EdgeEvent, FaultPlan, NodeEvent, SharedObserver, TopologyEvent, TopologyPlan, TraceEvent,
    TraceRecorder, TrackBy,
};
use dapsp_core::{apsp, bfs, ssp, Obs};

/// One traced workload configuration.
#[derive(Clone, Debug)]
struct RunOpts {
    workload: String,
    family: String,
    n: usize,
    loss: f64,
    threads: usize,
    seed: u64,
    churn: usize,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            workload: "apsp".into(),
            family: "regular6".into(),
            n: 48,
            loss: 0.0,
            threads: 1,
            seed: 7,
            churn: 0,
        }
    }
}

impl RunOpts {
    fn describe(&self) -> String {
        format!(
            "{}/{}/n={} loss={} threads={} churn={}",
            self.workload, self.family, self.n, self.loss, self.threads, self.churn
        )
    }

    /// The churn plan `--churn K` stands for: `K` edge removals at round 2
    /// (deterministic spread picks) plus the first available non-edge
    /// inserted at round 3.
    fn churn_plan(&self, graph: &dapsp_graph::Graph) -> TopologyPlan {
        let edges: Vec<(u32, u32)> = graph.edges().collect();
        let mut plan = TopologyPlan::new();
        let stride = (edges.len() / self.churn.max(1)).max(1);
        for i in 0..self.churn.min(edges.len()) {
            let (u, v) = edges[(i * stride) % edges.len()];
            plan = plan.with_remove(2, u, v);
        }
        'outer: for u in 0..self.n as u32 {
            for v in (u + 1)..self.n as u32 {
                if !edges.contains(&(u, v)) && !edges.contains(&(v, u)) {
                    plan = plan.with_insert(3, u, v);
                    break 'outer;
                }
            }
        }
        plan
    }
}

/// Runs the configured workload with a fresh [`TraceRecorder`] attached and
/// returns the recorder.
fn run_traced(opts: &RunOpts) -> SharedObserver<TraceRecorder> {
    let graph = family_graph(&opts.family, opts.n);
    let topology = graph.to_topology();
    let shared = SharedObserver::new(TraceRecorder::new());
    let handle = shared.observer();
    let obs = Obs::watching(&handle).with_executor(executor_for(opts.threads));
    let sources: Vec<u32> = vec![0, (opts.n / 2) as u32];
    let outcome = if opts.churn > 0 {
        // The churned entry points repair in place of recomputing; loss is
        // not composed here (the repair kernel assumes reliable links).
        let plan = opts.churn_plan(&graph);
        match opts.workload.as_str() {
            "bfs" => bfs::run_churned_on(&topology, 0, &plan, obs).map(|_| ()),
            "ssp" => ssp::run_churned_on(&topology, &sources, &plan, obs).map(|_| ()),
            "apsp" => apsp::run_churned_on(&topology, &plan, obs).map(|_| ()),
            other => panic!("unknown workload {other}; expected apsp|bfs|ssp"),
        }
    } else if opts.loss > 0.0 {
        let faults = FaultPlan::uniform_loss(opts.loss, opts.seed);
        match opts.workload.as_str() {
            "bfs" => bfs::run_faulty_on(&topology, 0, faults, obs).map(|_| ()),
            "ssp" => ssp::run_faulty_on(&topology, &sources, faults, obs).map(|_| ()),
            "apsp" => apsp::run_faulty_on(&topology, faults, obs).map(|_| ()),
            other => panic!("unknown workload {other}; expected apsp|bfs|ssp"),
        }
    } else {
        match opts.workload.as_str() {
            "bfs" => bfs::run_on_obs(&topology, 0, obs).map(|_| ()),
            "ssp" => ssp::run_on_obs(&topology, &sources, obs).map(|_| ()),
            "apsp" => apsp::run_on_obs(&topology, obs).map(|_| ()),
            other => panic!("unknown workload {other}; expected apsp|bfs|ssp"),
        }
    };
    outcome.unwrap_or_else(|e| panic!("{}: workload failed: {e}", opts.describe()));
    shared
}

fn cmd_summary(opts: &RunOpts) -> ExitCode {
    let shared = run_traced(opts);
    shared.with(|rec| {
        println!(
            "# trace summary: {} — {} events recorded, {} stored, {} overflowed\n",
            opts.describe(),
            rec.total_events(),
            rec.total_events() - rec.overflow(),
            rec.overflow()
        );
        let kernel_rows: Vec<Vec<String>> = rec
            .kernels()
            .iter()
            .map(|(mask, k)| {
                vec![
                    format!("{mask:#010b}"),
                    k.messages.to_string(),
                    k.bits.to_string(),
                    k.dropped.to_string(),
                    k.retransmits.to_string(),
                    k.acks.to_string(),
                ]
            })
            .collect();
        print_table(
            "per-kernel traffic (mask bit i = kernel i of the stack)",
            &["mask", "messages", "bits", "dropped", "retransmits", "acks"],
            &kernel_rows,
        );
        // Churned runs: every TopologyPlan event that took effect, in
        // commit order. The drops such an event forces (in-flight messages
        // on severed ports) are already attributed to their kernels in the
        // `dropped` column above.
        let topo_rows: Vec<Vec<String>> = rec
            .events()
            .filter_map(|e| match e {
                TraceEvent::TopologyChange { round, event } => Some(match event {
                    TopologyEvent::Edge(EdgeEvent::Insert { u, v }) => {
                        vec![round.to_string(), "insert".into(), format!("{u}-{v}")]
                    }
                    TopologyEvent::Edge(EdgeEvent::Remove { u, v }) => {
                        vec![round.to_string(), "remove".into(), format!("{u}-{v}")]
                    }
                    TopologyEvent::Node(NodeEvent::Crash(n)) => {
                        vec![round.to_string(), "crash".into(), format!("node {n}")]
                    }
                    TopologyEvent::Node(NodeEvent::Join(n)) => {
                        vec![round.to_string(), "join".into(), format!("node {n}")]
                    }
                }),
                _ => None,
            })
            .collect();
        if !topo_rows.is_empty() {
            print_table(
                "topology changes",
                &["round", "kind", "where"],
                &topo_rows,
            );
        }
        let edge_rows: Vec<Vec<String>> = rec
            .top_edges(10)
            .iter()
            .map(|((u, v), load)| vec![format!("{u}-{v}"), load.to_string()])
            .collect();
        print_table("top congested edges", &["edge", "messages"], &edge_rows);
        let hist = rec.wave_delay_histogram();
        let hist_rows: Vec<Vec<String>> = hist
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(d, &c)| vec![d.to_string(), c.to_string()])
            .collect();
        print_table(
            "wave-delay histogram (rounds after wave start)",
            &["delay", "arrivals"],
            &hist_rows,
        );
        let mut term_rows: Vec<Vec<String>> = Vec::new();
        for e in rec.events() {
            match e {
                TraceEvent::QuiescenceVotes {
                    round,
                    active,
                    passive,
                    shutdown,
                } => {
                    term_rows.push(vec![
                        format!("votes@{round}"),
                        format!("active={active} passive={passive} shutdown={shutdown}"),
                    ]);
                }
                TraceEvent::EarlyTermination { round, in_flight } => {
                    term_rows.push(vec![
                        format!("terminate@{round}"),
                        format!("in_flight={in_flight}"),
                    ]);
                }
                TraceEvent::Transport {
                    frames_sent,
                    retransmissions,
                    acks_sent,
                    gave_up,
                } => {
                    term_rows.push(vec![
                        "transport".into(),
                        format!(
                            "frames={frames_sent} retransmits={retransmissions} acks={acks_sent} gave_up={gave_up}"
                        ),
                    ]);
                }
                _ => {}
            }
        }
        // The full per-round vote series would swamp the table; keep the
        // first and last three vote rows around the termination story.
        if term_rows.len() > 8 {
            let tail = term_rows.split_off(term_rows.len() - 5);
            term_rows.truncate(3);
            term_rows.push(vec!["...".into(), "...".into()]);
            term_rows.extend(tail);
        }
        print_table("termination story", &["event", "detail"], &term_rows);
    });
    ExitCode::SUCCESS
}

fn cmd_diff(opts: &RunOpts) -> ExitCode {
    let serial = RunOpts {
        threads: 1,
        ..opts.clone()
    };
    let pool = RunOpts {
        threads: opts.threads.max(2),
        ..opts.clone()
    };
    let a = run_traced(&serial).with(|r| r.events_jsonl());
    let b = run_traced(&pool).with(|r| r.events_jsonl());
    diff_streams(
        &format!("serial ({})", serial.describe()),
        &a,
        &format!("pool ({})", pool.describe()),
        &b,
    )
}

/// Line-diffs two JSONL event streams; identical streams succeed.
fn diff_streams(label_a: &str, a: &str, label_b: &str, b: &str) -> ExitCode {
    if a == b {
        println!(
            "identical: {} events — {label_a} == {label_b}",
            a.lines().count()
        );
        return ExitCode::SUCCESS;
    }
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            println!("streams diverge at event {i}:");
            println!("  {label_a}: {la}");
            println!("  {label_b}: {lb}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "streams diverge in length: {label_a} has {} events, {label_b} has {}",
        a.lines().count(),
        b.lines().count()
    );
    ExitCode::FAILURE
}

fn cmd_perfetto(opts: &RunOpts, out: Option<&str>, by: TrackBy) -> ExitCode {
    let default_out = format!(
        "{}/../../target/TRACE_perfetto.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let out = out.unwrap_or(&default_out);
    let shared = run_traced(opts);
    let (json, events) = shared.with(|rec| (rec.to_perfetto(by), rec.total_events()));
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!(
        "wrote {out}: {} bytes from {events} events ({})",
        json.len(),
        opts.describe()
    );
    ExitCode::SUCCESS
}

/// One parsed `BENCH_engine.json` row, keyed for baseline matching.
#[derive(Clone, Debug)]
struct BenchRow {
    key: String,
    rounds: u64,
    messages: u64,
    msgs_per_sec: f64,
    /// `host_cpus` when the row carries it (rows written before the field
    /// existed don't).
    host_cpus: Option<u64>,
}

/// Extracts `"key":value` from a flat JSON object line; strings lose their
/// quotes. The rows are machine-written with no commas inside values.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

/// One parsed `BENCH_serve.json` row: a query-throughput measurement with
/// per-query oracle-correctness counters instead of round/message counts.
#[derive(Clone, Debug)]
struct ServeRow {
    key: String,
    queries: u64,
    correct: u64,
    wrong: u64,
    qps: f64,
    p99_us: f64,
    host_cpus: Option<u64>,
}

/// Parses the flat-row JSON array format of `BENCH_engine.json`. Serve
/// rows (which carry `qps` instead of `rounds`) are left to
/// [`parse_serve_rows`].
fn parse_bench_rows(text: &str, path: &str) -> Vec<BenchRow> {
    let mut rows = Vec::new();
    for line in text.lines() {
        if !line.contains("\"label\"") || line.contains("\"qps\"") {
            continue;
        }
        let get = |key: &str| {
            field(line, key).unwrap_or_else(|| panic!("{path}: row missing \"{key}\": {line}"))
        };
        rows.push(BenchRow {
            key: row_key(line, path),
            rounds: get("rounds").parse().expect("rounds"),
            messages: get("messages").parse().expect("messages"),
            msgs_per_sec: get("msgs_per_sec").parse().expect("msgs_per_sec"),
            host_cpus: field(line, "host_cpus").and_then(|v| v.parse().ok()),
        });
    }
    rows
}

/// Parses the serve rows (`qps`-carrying) of a bench JSON file.
fn parse_serve_rows(text: &str, path: &str) -> Vec<ServeRow> {
    let mut rows = Vec::new();
    for line in text.lines() {
        if !line.contains("\"label\"") || !line.contains("\"qps\"") {
            continue;
        }
        let get = |key: &str| {
            field(line, key).unwrap_or_else(|| panic!("{path}: row missing \"{key}\": {line}"))
        };
        rows.push(ServeRow {
            key: row_key(line, path),
            queries: get("queries").parse().expect("queries"),
            correct: get("correct").parse().expect("correct"),
            wrong: get("wrong").parse().expect("wrong"),
            qps: get("qps").parse().expect("qps"),
            p99_us: get("p99_us").parse().expect("p99_us"),
            host_cpus: field(line, "host_cpus").and_then(|v| v.parse().ok()),
        });
    }
    rows
}

/// The `label|engine|executor|threads` key both row kinds match on.
fn row_key(line: &str, path: &str) -> String {
    let get = |key: &str| {
        field(line, key).unwrap_or_else(|| panic!("{path}: row missing \"{key}\": {line}"))
    };
    format!(
        "{}|{}|{}|{}",
        get("label"),
        get("engine"),
        get("executor"),
        get("threads")
    )
}

/// Gates `current` rows against `baseline` rows on matching keys. Returns
/// the rendered comparison table, the failure messages (empty = pass), and
/// warnings (printed but non-fatal).
fn gate_rows(
    baseline: &[BenchRow],
    current: &[BenchRow],
    max_ratio: f64,
) -> (String, Vec<String>, Vec<String>) {
    let mut failures = Vec::new();
    let mut warnings = Vec::new();
    let mut table_rows = Vec::new();
    let mut matched = 0usize;
    // Rows record the host they were measured on; comparing throughput
    // across different machines is meaningless, so a host mismatch
    // downgrades ratio violations from failures to warnings (round and
    // message determinism still gates — those are machine-independent).
    let cross_host = current.iter().any(|cur| {
        baseline.iter().any(|base| {
            base.key == cur.key
                && matches!(
                    (base.host_cpus, cur.host_cpus),
                    (Some(b), Some(c)) if b != c
                )
        })
    });
    if cross_host {
        warnings.push(
            "host mismatch: baseline and current rows were measured on hosts with \
             different cpu counts — throughput ratios compare different machines \
             and are advisory only; round/message determinism still gates"
                .into(),
        );
    }
    for cur in current {
        let Some(base) = baseline.iter().find(|b| b.key == cur.key) else {
            continue;
        };
        matched += 1;
        if base.rounds != cur.rounds {
            failures.push(format!(
                "{}: round count changed {} -> {} (determinism break)",
                cur.key, base.rounds, cur.rounds
            ));
        }
        if base.messages != cur.messages {
            failures.push(format!(
                "{}: message count changed {} -> {} (determinism break)",
                cur.key, base.messages, cur.messages
            ));
        }
        let ratio = if cur.msgs_per_sec > 0.0 {
            base.msgs_per_sec / cur.msgs_per_sec
        } else {
            f64::INFINITY
        };
        if ratio > max_ratio {
            let msg = format!(
                "{}: throughput regressed {:.1}x (baseline {:.0} msgs/s, current {:.0} msgs/s, limit {max_ratio}x)",
                cur.key, ratio, base.msgs_per_sec, cur.msgs_per_sec
            );
            if cross_host {
                warnings.push(msg);
            } else {
                failures.push(msg);
            }
        }
        table_rows.push(vec![
            cur.key.clone(),
            format!("{:.0}", base.msgs_per_sec),
            format!("{:.0}", cur.msgs_per_sec),
            format!("{ratio:.2}x"),
            if base.rounds == cur.rounds {
                "ok"
            } else {
                "MISMATCH"
            }
            .to_string(),
        ]);
    }
    if matched == 0 {
        failures.push(
            "no matching (label, engine, executor, threads) rows — the gate compared nothing"
                .into(),
        );
    }
    let table = render_table(
        "bench gate (ratio = baseline / current throughput)",
        &["row", "base msgs/s", "cur msgs/s", "ratio", "rounds"],
        &table_rows,
    );
    (table, failures, warnings)
}

/// Gates serve (`qps`) rows. Correctness is absolute: any current row
/// with `wrong != 0` or `correct != queries` fails regardless of host —
/// those counters are oracle checks, not performance. Throughput ratios
/// gate like engine rows: fail same-host, warn-only cross-host (a qps
/// measured on a different machine is advisory).
fn gate_serve_rows(
    baseline: &[ServeRow],
    current: &[ServeRow],
    max_ratio: f64,
) -> (String, Vec<String>, Vec<String>) {
    let mut failures = Vec::new();
    let mut warnings = Vec::new();
    let mut table_rows = Vec::new();
    let mut matched = 0usize;
    let cross_host = current.iter().any(|cur| {
        baseline.iter().any(|base| {
            base.key == cur.key
                && matches!(
                    (base.host_cpus, cur.host_cpus),
                    (Some(b), Some(c)) if b != c
                )
        })
    });
    if cross_host {
        warnings.push(
            "host mismatch on serve rows: qps ratios compare different machines and are \
             advisory only; correctness counters still gate"
                .into(),
        );
    }
    for cur in current {
        let consistent = cur.wrong == 0 && cur.correct == cur.queries;
        if cur.wrong != 0 {
            failures.push(format!(
                "{}: {} of {} answers disagreed with the oracle",
                cur.key, cur.wrong, cur.queries
            ));
        }
        if cur.correct != cur.queries {
            failures.push(format!(
                "{}: correctness counters don't add up ({} correct of {} queries)",
                cur.key, cur.correct, cur.queries
            ));
        }
        let Some(base) = baseline.iter().find(|b| b.key == cur.key) else {
            continue;
        };
        matched += 1;
        let ratio = if cur.qps > 0.0 {
            base.qps / cur.qps
        } else {
            f64::INFINITY
        };
        if ratio > max_ratio {
            let msg = format!(
                "{}: qps regressed {:.1}x (baseline {:.0}, current {:.0}, limit {max_ratio}x)",
                cur.key, ratio, base.qps, cur.qps
            );
            if cross_host {
                warnings.push(msg);
            } else {
                failures.push(msg);
            }
        }
        table_rows.push(vec![
            cur.key.clone(),
            format!("{:.0}", base.qps),
            format!("{:.0}", cur.qps),
            format!("{ratio:.2}x"),
            format!("{:.2}/{:.2}", base.p99_us, cur.p99_us),
            if consistent { "ok" } else { "WRONG" }.to_string(),
        ]);
    }
    if matched == 0 && !(baseline.is_empty() && current.is_empty()) {
        failures.push("no matching serve rows — the serve gate compared nothing".into());
    }
    let table = render_table(
        "serve gate (ratio = baseline / current qps)",
        &[
            "row",
            "base qps",
            "cur qps",
            "ratio",
            "p99_us b/c",
            "oracle",
        ],
        &table_rows,
    );
    (table, failures, warnings)
}

fn cmd_bench_gate(baseline_path: &str, current_path: &str, max_ratio: f64) -> ExitCode {
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
    };
    let (base_text, cur_text) = (read(baseline_path), read(current_path));
    let baseline = parse_bench_rows(&base_text, baseline_path);
    let current = parse_bench_rows(&cur_text, current_path);
    let base_serve = parse_serve_rows(&base_text, baseline_path);
    let cur_serve = parse_serve_rows(&cur_text, current_path);
    assert!(
        !(baseline.is_empty() && base_serve.is_empty()),
        "{baseline_path}: no benchmark rows found"
    );
    assert!(
        !(current.is_empty() && cur_serve.is_empty()),
        "{current_path}: no benchmark rows found"
    );
    let mut failures = Vec::new();
    let mut warnings = Vec::new();
    if !baseline.is_empty() || !current.is_empty() {
        let (table, f, w) = gate_rows(&baseline, &current, max_ratio);
        print!("{table}");
        failures.extend(f);
        warnings.extend(w);
    }
    if !base_serve.is_empty() || !cur_serve.is_empty() {
        let (table, f, w) = gate_serve_rows(&base_serve, &cur_serve, max_ratio);
        print!("{table}");
        failures.extend(f);
        warnings.extend(w);
    }
    for w in &warnings {
        eprintln!("bench gate warning: {w}");
    }
    if failures.is_empty() {
        println!("bench gate passed ({baseline_path} vs {current_path})");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench gate FAILED: {f}");
        }
        ExitCode::FAILURE
    }
}

/// Self-check: every subcommand on tiny instances; panics on failure.
fn cmd_smoke() -> ExitCode {
    // summary path: a lossy BFS records kernel masks, drops and waves.
    let opts = RunOpts {
        workload: "bfs".into(),
        family: "path".into(),
        n: 16,
        loss: 0.2,
        ..RunOpts::default()
    };
    let shared = run_traced(&opts);
    shared.with(|rec| {
        assert!(rec.total_events() > 0, "smoke: trace recorded no events");
        assert!(
            !rec.kernels().is_empty(),
            "smoke: no kernel attribution recorded"
        );
        assert!(
            rec.events()
                .any(|e| matches!(e, TraceEvent::Transport { .. })),
            "smoke: reliable run reported no transport summary"
        );
    });
    println!("smoke: summary recorded traced events with kernel attribution");

    // churned summary path: the trace must carry the plan's TopologyChange
    // events so `summary` can render the topology-changes table.
    let opts = RunOpts {
        workload: "apsp".into(),
        family: "regular6".into(),
        n: 12,
        churn: 1,
        ..RunOpts::default()
    };
    let shared = run_traced(&opts);
    shared.with(|rec| {
        let topo_events = rec
            .events()
            .filter(|e| matches!(e, TraceEvent::TopologyChange { .. }))
            .count();
        assert!(
            topo_events >= 2,
            "smoke: churned trace recorded {topo_events} TopologyChange events, expected the \
             plan's remove + insert"
        );
        assert!(
            !rec.kernels().is_empty(),
            "smoke: churned run lost kernel attribution"
        );
    });
    assert!(
        cmd_summary(&opts) == ExitCode::SUCCESS,
        "smoke: churned summary failed"
    );
    println!("smoke: churned summary shows TopologyChange events");

    // diff path: serial vs pool event streams must be bit-identical.
    let opts = RunOpts {
        workload: "apsp".into(),
        family: "path".into(),
        n: 12,
        loss: 0.15,
        threads: 2,
        ..RunOpts::default()
    };
    assert!(
        cmd_diff(&opts) == ExitCode::SUCCESS,
        "smoke: serial/pool trace streams diverged"
    );

    // perfetto path: balanced JSON written to target/.
    let opts = RunOpts {
        workload: "apsp".into(),
        family: "tree".into(),
        n: 16,
        ..RunOpts::default()
    };
    let out = format!(
        "{}/../../target/TRACE_perfetto_smoke.json",
        env!("CARGO_MANIFEST_DIR")
    );
    assert!(cmd_perfetto(&opts, Some(&out), TrackBy::Kernel) == ExitCode::SUCCESS);
    let json = std::fs::read_to_string(&out).expect("smoke perfetto output");
    assert_eq!(
        json.matches(['{', '[']).count(),
        json.matches(['}', ']']).count(),
        "smoke: unbalanced perfetto JSON"
    );

    // bench-gate path: a file gates cleanly against itself and catches a
    // doctored regression.
    let row = |msgs_per_sec: f64, rounds: u64| BenchRow {
        key: "demo/path/n=8|optimized|serial|1".into(),
        rounds,
        messages: 14,
        msgs_per_sec,
        host_cpus: Some(8),
    };
    let (_, failures, warnings) = gate_rows(&[row(1000.0, 8)], &[row(1000.0, 8)], 3.0);
    assert!(failures.is_empty(), "smoke: self-gate failed: {failures:?}");
    assert!(warnings.is_empty(), "smoke: same-host gate warned");
    let (_, failures, _) = gate_rows(&[row(1000.0, 8)], &[row(100.0, 8)], 3.0);
    assert!(!failures.is_empty(), "smoke: 10x regression not caught");
    let (_, failures, _) = gate_rows(&[row(1000.0, 8)], &[row(1000.0, 9)], 3.0);
    assert!(!failures.is_empty(), "smoke: round mismatch not caught");
    // Cross-host comparison: determinism still gates, throughput does not.
    let other_host = |msgs_per_sec: f64, rounds: u64| BenchRow {
        host_cpus: Some(128),
        ..row(msgs_per_sec, rounds)
    };
    let (_, failures, warnings) = gate_rows(&[row(1000.0, 8)], &[other_host(100.0, 8)], 3.0);
    assert!(
        failures.is_empty(),
        "smoke: cross-host throughput gap must warn, not fail: {failures:?}"
    );
    assert!(
        warnings.len() >= 2,
        "smoke: cross-host gate missing host + ratio warnings: {warnings:?}"
    );
    let (_, failures, _) = gate_rows(&[row(1000.0, 8)], &[other_host(1000.0, 9)], 3.0);
    assert!(
        !failures.is_empty(),
        "smoke: cross-host round mismatch must still fail"
    );

    // serve-gate path: qps rows gate like throughput, correctness gates
    // absolutely.
    let serve = |qps: f64, correct: u64, wrong: u64| ServeRow {
        key: "serve/ws/n=192|serve|pool|2".into(),
        queries: correct + wrong,
        correct,
        wrong,
        qps,
        p99_us: 0.2,
        host_cpus: Some(8),
    };
    let (_, failures, warnings) =
        gate_serve_rows(&[serve(1e7, 500, 0)], &[serve(1e7, 500, 0)], 3.0);
    assert!(
        failures.is_empty(),
        "smoke: serve self-gate failed: {failures:?}"
    );
    assert!(warnings.is_empty(), "smoke: same-host serve gate warned");
    let (_, failures, _) = gate_serve_rows(&[serve(1e7, 500, 0)], &[serve(1e6, 500, 0)], 3.0);
    assert!(!failures.is_empty(), "smoke: 10x qps regression not caught");
    let (_, failures, _) = gate_serve_rows(&[serve(1e7, 500, 0)], &[serve(1e7, 499, 1)], 3.0);
    assert!(
        !failures.is_empty(),
        "smoke: a wrong answer must fail the serve gate"
    );
    // Cross-host: qps becomes advisory, but wrong answers still fail.
    let other_host_serve = |qps: f64, correct: u64, wrong: u64| ServeRow {
        host_cpus: Some(128),
        ..serve(qps, correct, wrong)
    };
    let (_, failures, warnings) =
        gate_serve_rows(&[serve(1e7, 500, 0)], &[other_host_serve(1e6, 500, 0)], 3.0);
    assert!(
        failures.is_empty(),
        "smoke: cross-host qps gap must warn, not fail: {failures:?}"
    );
    assert!(
        warnings.len() >= 2,
        "smoke: cross-host serve gate missing host + ratio warnings: {warnings:?}"
    );
    let (_, failures, _) =
        gate_serve_rows(&[serve(1e7, 500, 0)], &[other_host_serve(1e7, 499, 1)], 3.0);
    assert!(
        !failures.is_empty(),
        "smoke: cross-host wrong answer must still fail"
    );
    println!("smoke: all inspect self-checks passed");
    ExitCode::SUCCESS
}

const USAGE: &str = "usage: dapsp-inspect <summary|diff|perfetto|bench-gate|--smoke> \
[--workload apsp|bfs|ssp] [--family FAM] [--n N] [--loss P] [--threads T] [--seed S] \
[--churn K] [--out PATH] [--by node|kernel] [--max-ratio R] [BASELINE CURRENT]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let mut opts = RunOpts::default();
    let mut out: Option<String> = None;
    let mut by = TrackBy::Node;
    let mut max_ratio = 3.0;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{flag} needs a value; {USAGE}"))
                .clone()
        };
        match arg.as_str() {
            "--workload" => opts.workload = value("--workload"),
            "--family" => opts.family = value("--family"),
            "--n" => opts.n = value("--n").parse().expect("--n"),
            "--loss" => opts.loss = value("--loss").parse().expect("--loss"),
            "--threads" => opts.threads = value("--threads").parse().expect("--threads"),
            "--seed" => opts.seed = value("--seed").parse().expect("--seed"),
            "--churn" => opts.churn = value("--churn").parse().expect("--churn"),
            "--out" => out = Some(value("--out")),
            "--by" => {
                by = match value("--by").as_str() {
                    "node" => TrackBy::Node,
                    "kernel" => TrackBy::Kernel,
                    other => panic!("--by {other}: expected node|kernel"),
                }
            }
            "--max-ratio" => max_ratio = value("--max-ratio").parse().expect("--max-ratio"),
            flag if flag.starts_with("--") => panic!("unknown flag {flag}; {USAGE}"),
            other => positional.push(other.to_string()),
        }
    }
    match cmd.as_str() {
        "summary" => cmd_summary(&opts),
        "diff" => cmd_diff(&opts),
        "perfetto" => cmd_perfetto(&opts, out.as_deref(), by),
        "bench-gate" => {
            let [baseline, current] = positional.as_slice() else {
                eprintln!("bench-gate needs BASELINE and CURRENT paths; {USAGE}");
                return ExitCode::FAILURE;
            };
            cmd_bench_gate(baseline, current, max_ratio)
        }
        "--smoke" | "smoke" => cmd_smoke(),
        other => {
            eprintln!("unknown subcommand {other}; {USAGE}");
            ExitCode::FAILURE
        }
    }
}

//! E9 — Corollary 1: the `(×, 3/2)` diameter approximation in
//! `O(min{D·√n, n/D + D})` rounds, i.e. `O(n^{3/4} + D)`.
//!
//! Sweep `D` at fixed `n`: the branch chooser should switch from the
//! sampled estimator (small `D`) to the dominating-set approximation
//! (large `D`) around `D ≈ n^{1/4}`, and the estimate must stay in
//! `[D, 3D/2]` (modulo rounding) throughout.

use dapsp_bench::print_table;
use dapsp_core::three_halves::{self, Branch};
use dapsp_graph::{generators, reference};

fn main() {
    println!("# E9: Corollary 1 crossover, O(min{{D*sqrt(n), n/D + D}})\n");
    let n = 256;
    println!(
        "n = {n}, so the theoretical crossover sits near D ≈ n^(1/4) = {:.1}\n",
        (n as f64).powf(0.25)
    );
    let mut rows = Vec::new();
    let mut seen_sampled = false;
    let mut seen_domset = false;
    for d in [2usize, 4, 8, 16, 32, 64, 128] {
        let g = generators::double_broom(n, d);
        let truth = reference::diameter(&g).unwrap();
        assert_eq!(truth as usize, d);
        let r = three_halves::run(&g, 9).expect("corollary 1");
        assert!(r.estimate >= truth, "estimate below D");
        assert!(
            f64::from(r.estimate) <= 1.5 * f64::from(truth) + 2.0,
            "estimate {} above 1.5·{truth}+2",
            r.estimate
        );
        match r.branch {
            Branch::Sampled => seen_sampled = true,
            Branch::DominatingSet => seen_domset = true,
        }
        rows.push(vec![
            format!("broom n={n} D={d}"),
            truth.to_string(),
            r.estimate.to_string(),
            format!("{:?}", r.branch),
            r.stats.rounds.to_string(),
        ]);
    }
    print_table(
        "branch choice and accuracy across D",
        &["instance", "D", "estimate", "branch", "rounds"],
        &rows,
    );
    assert!(
        seen_sampled && seen_domset,
        "both branches must fire across the sweep (crossover exists)"
    );
    println!("OK: crossover observed; estimates within the (×,3/2) band throughout.");
}

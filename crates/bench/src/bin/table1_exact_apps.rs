//! E3 — the `O(n)` applications of APSP (Lemmas 2–6): eccentricities,
//! diameter, radius, center, peripheral vertices.
//!
//! For each family the values are checked against the centralized oracle
//! and the end-to-end rounds (APSP + `O(D)` aggregations) are shown to stay
//! within a small constant of the plain APSP rounds.

use dapsp_bench::print_table;
use dapsp_core::{apsp, metrics};
use dapsp_graph::{generators, reference, Graph};

fn main() {
    println!("# E3: exact applications in O(n) rounds (Lemmas 2-6)\n");
    let instances: Vec<(String, Graph)> = vec![
        ("path n=96".into(), generators::path(96)),
        ("cycle n=96".into(), generators::cycle(96)),
        ("grid 10x10".into(), generators::grid(10, 10)),
        ("broom n=96 D=24".into(), generators::double_broom(96, 24)),
        (
            "ER n=96 p=8/n".into(),
            generators::erdos_renyi_connected(96, 8.0 / 96.0, 3),
        ),
        ("tree n=96".into(), generators::random_tree(96, 3)),
    ];
    let mut rows = Vec::new();
    for (label, g) in &instances {
        let a = apsp::run(g).expect("apsp");
        let bundle = metrics::from_apsp(g, &a).expect("metrics");
        assert_eq!(Some(bundle.diameter), reference::diameter(g), "{label}");
        assert_eq!(Some(bundle.radius), reference::radius(g), "{label}");
        assert_eq!(
            Some(bundle.eccentricities.clone()),
            reference::eccentricities(g),
            "{label}"
        );
        let center: Vec<u32> = bundle
            .center
            .iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(v, _)| v as u32)
            .collect();
        assert_eq!(Some(center.clone()), reference::center(g), "{label}");
        let periph_count = bundle.peripheral.iter().filter(|&&p| p).count();
        rows.push(vec![
            label.clone(),
            bundle.diameter.to_string(),
            bundle.radius.to_string(),
            center.len().to_string(),
            periph_count.to_string(),
            a.stats.rounds.to_string(),
            bundle.stats.rounds.to_string(),
            format!("{:.2}", bundle.stats.rounds as f64 / g.num_nodes() as f64),
        ]);
    }
    print_table(
        "all metrics verified against the oracle",
        &[
            "instance",
            "D",
            "rad",
            "|center|",
            "|periph|",
            "APSP rounds",
            "total rounds",
            "rounds/n",
        ],
        &rows,
    );
    println!("OK: every metric exact; total rounds stay a small multiple of n.");
}

//! E8 — Algorithm 3 distinguishes diameter 2 from 4 in `O(√(n·log n))`
//! rounds (Theorem 7), while 2-vs-3 is certified `Ω(n/B)` (Theorem 6).
//!
//! Sweep `n` on promise instances: Algorithm 3's rounds should grow
//! sublinearly (slope ≈ 0.5 in log–log) while the exact computation grows
//! linearly and the Theorem 6 certificate grows linearly too — the
//! intriguing contrast the paper highlights in §7.

use dapsp_bench::{loglog_slope, print_table};
use dapsp_congest::Config;
use dapsp_core::{metrics, two_vs_four};
use dapsp_graph::{generators, lowerbound, reference};

fn main() {
    println!("# E8: 2-vs-4 in O(sqrt(n log n)) (Theorem 7) vs 2-vs-3 hardness (Theorem 6)\n");
    let mut rows = Vec::new();
    let mut xs = Vec::new();
    let mut alg3 = Vec::new();
    let mut exact_rounds = Vec::new();
    for k in [16usize, 32, 64, 128] {
        // Promise D=2 instance: the disjoint branch of the hard family
        // (dense, all pairwise distances <= 2).
        let (a, b) = lowerbound::canonical_inputs(k, false);
        let inst = lowerbound::two_vs_three(k, &a, &b);
        let n = inst.graph.num_nodes();
        assert_eq!(reference::diameter(&inst.graph), Some(2));
        let fast = two_vs_four::run(&inst.graph, 3).expect("algorithm 3");
        assert_eq!(fast.claimed_diameter, 2);
        let exact = metrics::diameter(&inst.graph).expect("exact");
        let bw = Config::for_n(n).bandwidth_bits;
        let lb23 = inst.bound.rounds(bw);
        xs.push(n as f64);
        alg3.push(fast.stats.rounds as f64);
        exact_rounds.push(exact.stats.rounds as f64);
        rows.push(vec![
            format!("2-vs-3 family (D=2), k={k}"),
            n.to_string(),
            fast.probed_sources.to_string(),
            fast.stats.rounds.to_string(),
            exact.stats.rounds.to_string(),
            lb23.to_string(),
        ]);
    }
    // Promise D=4 instances.
    for n in [64usize, 128, 256] {
        let g = generators::double_broom(n, 4);
        let fast = two_vs_four::run(&g, 3).expect("algorithm 3");
        assert_eq!(fast.claimed_diameter, 4);
        rows.push(vec![
            format!("broom D=4, n={n}"),
            n.to_string(),
            fast.probed_sources.to_string(),
            fast.stats.rounds.to_string(),
            "-".into(),
            "-".into(),
        ]);
    }
    // Dense promise instances with no low-degree node: the sampled branch
    // fires and the probe count grows like √(n·log n).
    let mut dense_xs = Vec::new();
    let mut dense_probes = Vec::new();
    for half in [32usize, 64, 128] {
        let g = generators::complete_bipartite(half, half);
        let n = 2 * half;
        let fast = two_vs_four::run(&g, 3).expect("algorithm 3");
        assert_eq!(fast.claimed_diameter, 2);
        dense_xs.push(n as f64);
        dense_probes.push(fast.probed_sources as f64);
        rows.push(vec![
            format!("K_{{{half},{half}}} (D=2)"),
            n.to_string(),
            fast.probed_sources.to_string(),
            fast.stats.rounds.to_string(),
            "-".into(),
            "-".into(),
        ]);
    }
    print_table(
        "Algorithm 3 on promise instances",
        &[
            "instance",
            "n",
            "probes",
            "Alg.3 rounds",
            "exact rounds",
            "2-vs-3 certified LB",
        ],
        &rows,
    );
    let fast_slope = loglog_slope(&xs, &alg3);
    let exact_slope = loglog_slope(&xs, &exact_rounds);
    let probe_slope = loglog_slope(&dense_xs, &dense_probes);
    println!(
        "Alg.3 rounds exponent on the hard family: {fast_slope:.2}; exact: {exact_slope:.2} (theory 1.0)"
    );
    println!("Alg.3 probe-count exponent on dense promise graphs: {probe_slope:.2} (theory ~0.5)");
    assert!(
        fast_slope < exact_slope,
        "Algorithm 3 must scale strictly better than exact diameter"
    );
    assert!(
        probe_slope > 0.3 && probe_slope < 0.8,
        "probe count must grow ~sqrt(n), got {probe_slope:.2}"
    );
    println!("OK: 2-vs-4 is genuinely sublinear while 2-vs-3 is certified linear.");
}

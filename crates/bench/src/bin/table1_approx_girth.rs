//! E7 — the `(×, 1+ε)` girth approximation in
//! `O(min{n/g + D·log(D/g), n})` rounds (Theorem 5).
//!
//! Sweep the girth via tadpoles at fixed `n`: the estimate stays within
//! `(1+ε)·g` while the refinement needs only `O(log(D/g))` iterations, and
//! for large `g` the approximation beats the exact `O(n)` computation.

use dapsp_bench::print_table;
use dapsp_core::{girth, girth_approx};
use dapsp_graph::{generators, reference};

fn main() {
    println!("# E7: (1+eps)-approx girth (Theorem 5)\n");
    let n = 192;
    let eps = 0.5;
    // Hairy cycles: girth g with diameter ~g/2, the regime where
    // O(n/g + D·log(D/g)) beats O(n).
    let mut rows = Vec::new();
    let mut best_speedup: f64 = 0.0;
    for g_target in [6usize, 12, 24, 48, 96] {
        let g = generators::hairy_cycle(g_target, n);
        let truth = reference::girth(&g).expect("has a cycle");
        assert_eq!(truth as usize, g_target);
        let exact = girth::run(&g).expect("exact girth");
        let apx = girth_approx::run(&g, eps).expect("approx girth");
        let est = apx.estimate.expect("cycle exists");
        assert!(est >= truth);
        assert!(f64::from(est) <= (1.0 + eps) * f64::from(truth) + 1e-9);
        let speedup = exact.stats.rounds as f64 / apx.stats.rounds as f64;
        best_speedup = best_speedup.max(speedup);
        rows.push(vec![
            format!("hairy g={g_target} n={n}"),
            truth.to_string(),
            est.to_string(),
            apx.iterations.to_string(),
            exact.stats.rounds.to_string(),
            apx.stats.rounds.to_string(),
            format!("{speedup:.2}"),
        ]);
    }
    print_table(
        "hairy cycles: sweep girth at fixed n, D ~ g/2 (eps = 0.5)",
        &[
            "instance",
            "g",
            "estimate",
            "iterations",
            "exact rounds",
            "approx rounds",
            "speedup",
        ],
        &rows,
    );
    assert!(
        best_speedup > 1.0,
        "the approximation must beat exact somewhere in its favourable regime"
    );

    // Tadpoles have D ~ n, the regime where the theorem's min{·, n} branch
    // says nothing can be saved — reported for honesty.
    let mut rows = Vec::new();
    for g_target in [8usize, 32, 128] {
        let g = generators::tadpole(g_target, n);
        let truth = reference::girth(&g).expect("has a cycle");
        let exact = girth::run(&g).expect("exact girth");
        let apx = girth_approx::run(&g, eps).expect("approx girth");
        let est = apx.estimate.expect("cycle exists");
        assert!(est >= truth);
        assert!(f64::from(est) <= (1.0 + eps) * f64::from(truth) + 1e-9);
        rows.push(vec![
            format!("tadpole g={g_target} n={n}"),
            truth.to_string(),
            est.to_string(),
            apx.iterations.to_string(),
            exact.stats.rounds.to_string(),
            apx.stats.rounds.to_string(),
        ]);
    }
    print_table(
        "tadpoles: D ~ n, the min{·, n} regime (no speedup expected)",
        &[
            "instance",
            "g",
            "estimate",
            "iterations",
            "exact rounds",
            "approx rounds",
        ],
        &rows,
    );
    println!("OK: estimates within (1+eps)·g everywhere; speedup in the small-D regime.");
}

//! Ablation — Algorithm 1's one-slot wait (paper line 5) is load-bearing.
//!
//! Lemma 1's proof needs `t_v >= t_u + d(u, v) + 1` between consecutive
//! BFS starts; the `+1` comes exactly from the wait. This binary removes
//! the wait and shows the simulator's bandwidth discipline catching the
//! resulting wave collision on every family, with the round at which the
//! first collision happens.

use dapsp_bench::print_table;
use dapsp_congest::SimError;
use dapsp_core::{apsp, CoreError};
use dapsp_graph::{generators, Graph};

fn main() {
    println!("# Ablation: Algorithm 1 without the one-slot wait (Lemma 1)\n");
    let instances: Vec<(String, Graph)> = vec![
        ("path n=24".into(), generators::path(24)),
        ("cycle n=24".into(), generators::cycle(24)),
        ("grid 5x5".into(), generators::grid(5, 5)),
        ("tree n=31".into(), generators::balanced_tree(2, 4)),
        (
            "ER n=32 p=0.2".into(),
            generators::erdos_renyi_connected(32, 0.2, 7),
        ),
        ("hypercube d=5".into(), generators::hypercube(5)),
    ];
    let mut rows = Vec::new();
    for (label, g) in &instances {
        let with_wait = apsp::run(g).expect("with the wait everything is clean");
        let outcome = match apsp::run_without_wait(g) {
            Err(CoreError::Sim(SimError::DuplicateSend { node, round, .. })) => {
                format!("collision at node {node}, round {round}")
            }
            Ok(_) => "no collision (traversal order got lucky)".into(),
            Err(other) => format!("other failure: {other}"),
        };
        rows.push(vec![
            label.clone(),
            with_wait.stats.rounds.to_string(),
            outcome,
        ]);
    }
    print_table(
        "the wait removed: the simulator detects Lemma 1 violations",
        &["instance", "rounds (with wait)", "without wait"],
        &rows,
    );
    println!("The one-slot wait costs n rounds total and buys congestion-freedom for all n waves.");
}

//! Ablation — Algorithm 2 as written vs. the repaired implementation.
//!
//! DESIGN.md §5 documents that the paper's drop-and-retry rule with bare-id
//! priority can adopt non-shortest distances and outlast its own
//! `|S| + D₀` budget. This binary quantifies it: for each instance it runs
//! the verbatim transcription (`dapsp_core::ssp_paper`) and the production
//! implementation (`dapsp_core::ssp`), counting unresolved pairs, wrong
//! distances (vs. the oracle), and rounds.

use dapsp_bench::print_table;
use dapsp_core::{ssp, ssp_paper};
use dapsp_graph::{generators, reference, Graph, INFINITY};

fn wrong_count(dist: &[Vec<u32>], sources: &[u32], g: &Graph) -> (u64, u64) {
    let oracle = reference::s_shortest_paths(g, sources);
    let mut wrong = 0;
    let mut unresolved = 0;
    for v in 0..g.num_nodes() {
        for (i, _) in sources.iter().enumerate() {
            if dist[v][i] == INFINITY {
                unresolved += 1;
            } else if dist[v][i] != oracle[i][v] {
                wrong += 1;
            }
        }
    }
    (wrong, unresolved)
}

fn main() {
    println!("# Ablation: Algorithm 2 verbatim vs repaired (DESIGN.md §5)\n");
    let instances: Vec<(String, Graph, Vec<u32>)> = vec![
        (
            "path n=24, |S|=4".into(),
            generators::path(24),
            (0..4).collect(),
        ),
        (
            "complete n=16, |S|=8".into(),
            generators::complete(16),
            (0..8).collect(),
        ),
        (
            "ER n=48 p=0.25, |S|=24".into(),
            generators::erdos_renyi_connected(48, 0.25, 3),
            (0..24).collect(),
        ),
        (
            "BA n=64 m=3, |S|=32".into(),
            generators::barabasi_albert(64, 3, 5),
            (0..32).collect(),
        ),
        (
            "grid 8x8, |S|=16".into(),
            generators::grid(8, 8),
            (0..16).collect(),
        ),
        (
            "small world n=64, |S|=64".into(),
            generators::watts_strogatz(64, 3, 0.2, 9),
            (0..64).collect(),
        ),
    ];
    let mut rows = Vec::new();
    let mut total_paper_defects = 0;
    for (label, g, sources) in &instances {
        let paper = ssp_paper::run(g, sources).expect("verbatim");
        let fixed = ssp::run(g, sources).expect("repaired");
        let (paper_wrong, paper_unresolved) = wrong_count(&paper.dist, sources, g);
        let (fixed_wrong, fixed_unresolved) = wrong_count(&fixed.dist, sources, g);
        assert_eq!(
            fixed_wrong + fixed_unresolved,
            0,
            "{label}: repaired must be exact"
        );
        total_paper_defects += paper_wrong + paper_unresolved;
        rows.push(vec![
            label.clone(),
            paper.budget.to_string(),
            paper.stats.rounds.to_string(),
            paper_wrong.to_string(),
            paper_unresolved.to_string(),
            fixed.stats.rounds.to_string(),
            fixed.relaxations.to_string(),
        ]);
    }
    print_table(
        "verbatim (id-priority, drop/retry, fixed schedule) vs repaired ((dist,id)-priority, accept-all, quiescence)",
        &[
            "instance",
            "|S|+D0",
            "verbatim rounds",
            "verbatim wrong",
            "verbatim unresolved",
            "repaired rounds",
            "repaired relaxations",
        ],
        &rows,
    );
    assert!(
        total_paper_defects > 0,
        "the ablation should exhibit at least one verbatim defect"
    );
    println!(
        "verbatim defects across instances: {total_paper_defects}; repaired: 0 everywhere.\n\
         The repair keeps the O(|S| + D) shape (see E2) while restoring exactness."
    );
}

//! Engine throughput benchmark: the seed round engine versus the
//! zero-allocation engine, on identical workloads.
//!
//! The workloads and topology families are shared with `engine_profile`
//! (see [`dapsp_bench::workloads`]): **bfs-flood** (sparse, per-round
//! overhead dominated) and **apsp-gossip** (dense, per-message commit cost
//! dominated) over path / random tree / near-regular / clique graphs.
//!
//! Engines compared: the verbatim seed engine
//! ([`ReferenceSimulator`]), the optimized engine sequentially, and the
//! optimized engine with 4 worker threads. Outputs are asserted identical
//! across all three before a row is recorded. Timed rows run observer-free
//! (observation must cost nothing when disabled — that claim is *checked*
//! here, not assumed: at the smallest size of every family an extra,
//! untimed run repeats the workload with a
//! [`MetricsRecorder`] attached and
//! asserts the recorded per-round stream sums back to exactly the
//! `RunStats` the timed rows report).
//!
//! Results go to stdout as a table and to `BENCH_engine.json` at the repo
//! root (override with the first CLI argument): one JSON object per row
//! with `label`, `family`, `n`, `engine`, `threads`, `rounds`, `messages`,
//! `wall_ms`, `msgs_per_sec`.

use dapsp_bench::print_table;
use dapsp_bench::workloads::{
    digest, engine_config, family_topology, json_array, ApspGossip, BfsFlood,
};
use dapsp_congest::{
    MetricsRecorder, NodeAlgorithm, NodeContext, ReferenceSimulator, RunStats, SharedObserver,
    Simulator, Topology,
};

/// One benchmark row.
struct Row {
    label: String,
    family: &'static str,
    n: usize,
    engine: &'static str,
    threads: usize,
    stats: RunStats,
}

impl Row {
    fn wall_ms(&self) -> f64 {
        self.stats.wall_time.as_secs_f64() * 1e3
    }

    fn msgs_per_sec(&self) -> f64 {
        let secs = self.stats.wall_time.as_secs_f64();
        if secs > 0.0 {
            self.stats.messages as f64 / secs
        } else {
            0.0
        }
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"label\":\"{}\",\"family\":\"{}\",\"n\":{},",
                "\"engine\":\"{}\",\"threads\":{},\"rounds\":{},",
                "\"messages\":{},\"wall_ms\":{:.4},\"msgs_per_sec\":{:.1}}}"
            ),
            self.label,
            self.family,
            self.n,
            self.engine,
            self.threads,
            self.stats.rounds,
            self.stats.messages,
            self.wall_ms(),
            self.msgs_per_sec(),
        )
    }
}

/// Runs `workload` on all three engines and returns the rows, panicking if
/// any engine disagrees on the outputs or round/message counts.
fn measure<A, F>(label: &str, family: &'static str, topo: &Topology, init: F) -> Vec<Row>
where
    A: NodeAlgorithm + Send,
    A::Message: Send,
    A::Output: std::hash::Hash,
    F: Fn(&NodeContext<'_>) -> A + Copy,
{
    let n = topo.num_nodes();
    let seed = ReferenceSimulator::new(topo, engine_config(n), init)
        .run()
        .expect("seed engine runs");
    let opt = Simulator::new(topo, engine_config(n), init)
        .run()
        .expect("optimized engine runs");
    let par = Simulator::new(topo, engine_config(n).with_threads(4), init)
        .run()
        .expect("threaded engine runs");
    let d = digest(&seed.outputs);
    assert_eq!(d, digest(&opt.outputs), "{label}: optimized output diverged");
    assert_eq!(d, digest(&par.outputs), "{label}: threaded output diverged");
    assert_eq!(seed.stats, opt.stats, "{label}: optimized stats diverged");
    assert_eq!(seed.stats, par.stats, "{label}: threaded stats diverged");
    vec![
        Row {
            label: label.into(),
            family,
            n,
            engine: "seed",
            threads: 1,
            stats: seed.stats,
        },
        Row {
            label: label.into(),
            family,
            n,
            engine: "optimized",
            threads: 1,
            stats: opt.stats,
        },
        Row {
            label: label.into(),
            family,
            n,
            engine: "optimized",
            threads: 4,
            stats: par.stats,
        },
    ]
}

/// Re-runs `workload` with a [`MetricsRecorder`] attached and asserts the
/// recorded stream reproduces `expected` exactly — the cross-check that
/// the observer-free timed rows and the recorder path report the same
/// numbers (one source of truth for metrics).
fn verify_recorder<A, F>(label: &str, topo: &Topology, init: F, expected: &RunStats)
where
    A: NodeAlgorithm + Send,
    A::Message: Send,
    F: Fn(&NodeContext<'_>) -> A + Copy,
{
    let n = topo.num_nodes();
    let recorder = SharedObserver::new(MetricsRecorder::new());
    let config = engine_config(n)
        .with_observer(recorder.observer())
        .with_phase(label);
    let report = Simulator::new(topo, config, init)
        .run()
        .expect("observed engine runs");
    assert_eq!(&report.stats, expected, "{label}: observed stats diverged");
    let stream = report.metrics.expect("observed run returns its stream");
    assert_eq!(stream.len() as u64, expected.rounds + 1, "{label}: rows");
    let messages: u64 = stream.iter().map(|m| m.messages).sum();
    let bits: u64 = stream.iter().map(|m| m.bits).sum();
    assert_eq!(messages, expected.messages, "{label}: recorder messages");
    assert_eq!(bits, expected.bits, "{label}: recorder bits");
}

/// (family, sizes for the sparse bfs-flood workload, sizes for the dense
/// apsp-gossip workload). Cliques get smaller sizes: their edge count is
/// quadratic in `n`.
const FAMILIES: &[(&str, &[usize], &[usize])] = &[
    ("path", &[256, 1024, 4096], &[64, 128, 256]),
    ("tree", &[256, 1024, 4096], &[64, 128, 256]),
    ("regular6", &[256, 1024, 4096], &[64, 128, 256]),
    ("clique", &[128, 256, 512], &[48, 96]),
];

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| format!("{}/../../BENCH_engine.json", env!("CARGO_MANIFEST_DIR")));
    let mut rows: Vec<Row> = Vec::new();

    println!("# Engine throughput: seed vs zero-allocation engine\n");

    for &(family, flood_sizes, gossip_sizes) in FAMILIES {
        for (i, &n) in flood_sizes.iter().enumerate() {
            let topo = family_topology(family, n);
            let label = format!("bfs-flood/{family}/n={n}");
            rows.extend(measure(&label, family, &topo, |_| BfsFlood::new()));
            if i == 0 {
                let expected = rows.last().expect("rows recorded").stats;
                verify_recorder(&label, &topo, |_| BfsFlood::new(), &expected);
            }
        }
        for (i, &n) in gossip_sizes.iter().enumerate() {
            let topo = family_topology(family, n);
            let label = format!("apsp-gossip/{family}/n={n}");
            rows.extend(measure(&label, family, &topo, move |_| ApspGossip::new(n)));
            if i == 0 {
                let expected = rows.last().expect("rows recorded").stats;
                verify_recorder(&label, &topo, move |_| ApspGossip::new(n), &expected);
            }
        }
    }

    // Table: one line per (label, engine, threads), plus the speedup of the
    // optimized sequential engine over the seed engine.
    let mut table = Vec::new();
    for chunk in rows.chunks(3) {
        let speedup = chunk[0].stats.wall_time.as_secs_f64()
            / chunk[1].stats.wall_time.as_secs_f64().max(1e-9);
        for r in chunk {
            table.push(vec![
                r.label.clone(),
                r.engine.to_string(),
                r.threads.to_string(),
                r.stats.rounds.to_string(),
                r.stats.messages.to_string(),
                format!("{:.3}", r.wall_ms()),
                format!("{:.2e}", r.msgs_per_sec()),
                if r.engine == "optimized" && r.threads == 1 {
                    format!("{speedup:.2}x")
                } else {
                    String::new()
                },
            ]);
        }
    }
    print_table(
        "engine throughput",
        &[
            "workload", "engine", "thr", "rounds", "msgs", "wall ms", "msg/s", "vs seed",
        ],
        &table,
    );

    // Geometric-mean speedup of the optimized sequential engine.
    let mut log_sum = 0.0;
    let mut count = 0u32;
    for chunk in rows.chunks(3) {
        let s = chunk[0].stats.wall_time.as_secs_f64()
            / chunk[1].stats.wall_time.as_secs_f64().max(1e-9);
        log_sum += s.ln();
        count += 1;
    }
    println!(
        "geometric-mean speedup (optimized sequential vs seed): {:.2}x over {count} workloads",
        (log_sum / f64::from(count)).exp()
    );

    let objects: Vec<String> = rows.iter().map(Row::json).collect();
    std::fs::write(&out_path, json_array(&objects)).expect("write BENCH_engine.json");
    println!("wrote {out_path}");
}

//! Engine throughput benchmark: the seed round engine versus the
//! zero-allocation engine, on identical workloads.
//!
//! The workloads and topology families are shared with `engine_profile`
//! (see [`dapsp_bench::workloads`]): **bfs-flood** (sparse, per-round
//! overhead dominated) and **apsp-gossip** (dense, per-message commit cost
//! dominated) over path / random tree / near-regular / clique graphs,
//! plus a `hub` family (a high-degree star overlaid on a Watts–Strogatz
//! ring) whose lopsided frontier exercises the pool's work stealing.
//!
//! Engines compared: the verbatim seed engine ([`ReferenceSimulator`])
//! and the optimized engine at every requested worker-thread count
//! (`--threads 1,4` by default). Outputs are asserted identical across
//! all of them before a row is recorded. Timed rows run observer-free
//! (observation must cost nothing when disabled — that claim is *checked*
//! here, not assumed: at the smallest size of every family an extra,
//! untimed run repeats the workload with a
//! [`MetricsRecorder`] attached and
//! asserts the recorded per-round stream sums back to exactly the
//! `RunStats` the timed rows report).
//!
//! A `scaling` row family stresses the active-set scheduler where it
//! matters: **bfs-flood** on Watts–Strogatz (`ws`) and Barabási–Albert
//! (`ba`) graphs at n = 10⁴, 10⁵, 10⁶. Per round only the BFS frontier is
//! live, so the dense seed engine (which steps all n nodes every round) is
//! the baseline the active-set engine must beat — the `vs seed` column is
//! that ratio, and the `sched` column shows the mean fraction of node
//! slots the sparse schedule actually touched.
//!
//! Results go to stdout as a table and to `BENCH_engine.json` at the repo
//! root: one JSON object per row with `label`, `family`, `n`, `engine`,
//! `executor`, `threads`, `rounds`, `messages`, `scheduled_node_rounds`,
//! `mean_scheduled_fraction`, `wall_ms`, `msgs_per_sec`. `executor` names
//! the engine that produced the row: `reference` (the seed engine),
//! `serial`, or `pool`.
//!
//! Usage: `engine_throughput [--smoke] [--threads LIST] [OUT_PATH]`.
//! `--smoke` runs CI-sized instances of every family plus one large-n
//! scaling row, and writes to `target/BENCH_engine_smoke.json` instead.

use dapsp_bench::print_table;
use dapsp_bench::workloads::{
    digest, engine_config, executor_for, family_topology, json_array, parse_bench_args, ApspGossip,
    BfsFlood,
};
use dapsp_congest::{
    pool_workers_spawned, ExecutorKind, MetricsRecorder, NodeAlgorithm, NodeContext,
    ReferenceSimulator, RunStats, SharedObserver, Simulator, Topology,
};

/// One benchmark row.
struct Row {
    label: String,
    family: &'static str,
    n: usize,
    engine: &'static str,
    executor: &'static str,
    threads: usize,
    stats: RunStats,
}

impl Row {
    fn wall_ms(&self) -> f64 {
        self.stats.wall_time.as_secs_f64() * 1e3
    }

    fn msgs_per_sec(&self) -> f64 {
        let secs = self.stats.wall_time.as_secs_f64();
        if secs > 0.0 {
            self.stats.messages as f64 / secs
        } else {
            0.0
        }
    }

    /// Scheduled node-rounds over total node slots (`(rounds + 1) · n`,
    /// counting the on_start row) — 1.0 means the run was effectively
    /// dense, small values are the active-set scheduler's win.
    fn mean_scheduled_fraction(&self) -> f64 {
        let slots = (self.stats.rounds + 1).saturating_mul(self.n as u64);
        if slots == 0 {
            0.0
        } else {
            self.stats.scheduled_node_rounds as f64 / slots as f64
        }
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"label\":\"{}\",\"family\":\"{}\",\"n\":{},",
                "\"engine\":\"{}\",\"executor\":\"{}\",\"threads\":{},\"rounds\":{},",
                "\"messages\":{},\"scheduled_node_rounds\":{},",
                "\"mean_scheduled_fraction\":{:.4},",
                "\"wall_ms\":{:.4},\"msgs_per_sec\":{:.1},{}}}"
            ),
            self.label,
            self.family,
            self.n,
            self.engine,
            self.executor,
            self.threads,
            self.stats.rounds,
            self.stats.messages,
            self.stats.scheduled_node_rounds,
            self.mean_scheduled_fraction(),
            self.wall_ms(),
            self.msgs_per_sec(),
            dapsp_bench::workloads::host_json_fields(),
        )
    }
}

/// Runs `workload` on the seed engine plus the optimized engine at every
/// thread count in `threads_list`, returning one row per engine and
/// panicking if any engine disagrees on the outputs or round/message
/// counts.
fn measure<A, F>(
    label: &str,
    family: &'static str,
    topo: &Topology,
    init: F,
    threads_list: &[usize],
) -> Vec<Row>
where
    A: NodeAlgorithm + Send,
    A::Message: Send,
    A::Output: std::hash::Hash,
    F: Fn(&NodeContext<'_>) -> A + Copy,
{
    let n = topo.num_nodes();
    let seed = ReferenceSimulator::new(topo, engine_config(n), init)
        .run()
        .expect("seed engine runs");
    let d = digest(&seed.outputs);
    let mut rows = vec![Row {
        label: label.into(),
        family,
        n,
        engine: "seed",
        executor: "reference",
        threads: 1,
        stats: seed.stats,
    }];
    for &threads in threads_list {
        let kind = executor_for(threads);
        let spawned_before = pool_workers_spawned();
        let report = Simulator::new(topo, engine_config(n).with_executor(kind), init)
            .run()
            .expect("optimized engine runs");
        // Spawn-per-round regression check: the pool creates its threads
        // once per run (workers minus the engine-resident shard 0).
        if let ExecutorKind::Pool { workers } = kind {
            assert_eq!(
                pool_workers_spawned() - spawned_before,
                workers.clamp(1, n) as u64 - 1,
                "{label}: pool spawned threads more than once per run"
            );
        }
        let name = kind.name();
        assert_eq!(
            d,
            digest(&report.outputs),
            "{label}: {name}@{threads} output diverged"
        );
        assert_eq!(
            seed.stats, report.stats,
            "{label}: {name}@{threads} stats diverged"
        );
        rows.push(Row {
            label: label.into(),
            family,
            n,
            engine: "optimized",
            executor: name,
            threads,
            stats: report.stats,
        });
    }
    rows
}

/// Re-runs `workload` with a [`MetricsRecorder`] attached and asserts the
/// recorded stream reproduces `expected` exactly — the cross-check that
/// the observer-free timed rows and the recorder path report the same
/// numbers (one source of truth for metrics).
fn verify_recorder<A, F>(label: &str, topo: &Topology, init: F, expected: &RunStats)
where
    A: NodeAlgorithm + Send,
    A::Message: Send,
    F: Fn(&NodeContext<'_>) -> A + Copy,
{
    let n = topo.num_nodes();
    let recorder = SharedObserver::new(MetricsRecorder::new());
    let config = engine_config(n)
        .with_observer(recorder.observer())
        .with_phase(label);
    let report = Simulator::new(topo, config, init)
        .run()
        .expect("observed engine runs");
    assert_eq!(&report.stats, expected, "{label}: observed stats diverged");
    let stream = report.metrics.expect("observed run returns its stream");
    assert_eq!(stream.len() as u64, expected.rounds + 1, "{label}: rows");
    let messages: u64 = stream.iter().map(|m| m.messages).sum();
    let bits: u64 = stream.iter().map(|m| m.bits).sum();
    assert_eq!(messages, expected.messages, "{label}: recorder messages");
    assert_eq!(bits, expected.bits, "{label}: recorder bits");
}

/// (family, sizes for the sparse bfs-flood workload, sizes for the dense
/// apsp-gossip workload). Cliques get smaller sizes: their edge count is
/// quadratic in `n`.
const FAMILIES: &[(&str, &[usize], &[usize])] = &[
    ("path", &[256, 1024, 4096], &[64, 128, 256]),
    ("tree", &[256, 1024, 4096], &[64, 128, 256]),
    ("regular6", &[256, 1024, 4096], &[64, 128, 256]),
    ("clique", &[128, 256, 512], &[48, 96]),
    ("hub", &[256, 1024, 4096], &[64, 128, 256]),
];

/// `--smoke` counterpart of [`FAMILIES`]: one CI-sized instance per cell.
const FAMILIES_SMOKE: &[(&str, &[usize], &[usize])] = &[
    ("path", &[96], &[32]),
    ("tree", &[96], &[32]),
    ("regular6", &[96], &[32]),
    ("clique", &[48], &[24]),
    ("hub", &[96], &[32]),
];

/// The `scaling` row family: frontier-sparse bfs-flood at large `n` on
/// small-world and preferential-attachment graphs. The seed row doubles
/// as the dense-iteration baseline (it steps every node every round).
const SCALING: &[(&str, &[usize])] = &[
    ("ws", &[10_000, 100_000, 1_000_000]),
    ("ba", &[10_000, 100_000, 1_000_000]),
];

/// `--smoke` keeps one large-n scaling row so CI still crosses the
/// sparse-frontier path at scale.
const SCALING_SMOKE: &[(&str, &[usize])] = &[("ws", &[100_000])];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_bench_args(&args, &[1, 4]);
    let threads_list = parsed.threads;
    let families = if parsed.smoke {
        FAMILIES_SMOKE
    } else {
        FAMILIES
    };
    let scaling = if parsed.smoke { SCALING_SMOKE } else { SCALING };
    let default_path = if parsed.smoke {
        format!(
            "{}/../../target/BENCH_engine_smoke.json",
            env!("CARGO_MANIFEST_DIR")
        )
    } else {
        format!("{}/../../BENCH_engine.json", env!("CARGO_MANIFEST_DIR"))
    };
    let out_path = parsed.out_path.unwrap_or(default_path);
    let mut rows: Vec<Row> = Vec::new();

    println!("# Engine throughput: seed vs zero-allocation engine\n");

    for &(family, flood_sizes, gossip_sizes) in families {
        for (i, &n) in flood_sizes.iter().enumerate() {
            let topo = family_topology(family, n);
            let label = format!("bfs-flood/{family}/n={n}");
            rows.extend(measure(
                &label,
                family,
                &topo,
                |_| BfsFlood::new(),
                &threads_list,
            ));
            if i == 0 {
                let expected = rows.last().expect("rows recorded").stats;
                verify_recorder(&label, &topo, |_| BfsFlood::new(), &expected);
            }
        }
        for (i, &n) in gossip_sizes.iter().enumerate() {
            let topo = family_topology(family, n);
            let label = format!("apsp-gossip/{family}/n={n}");
            rows.extend(measure(
                &label,
                family,
                &topo,
                move |_| ApspGossip::new(n),
                &threads_list,
            ));
            if i == 0 {
                let expected = rows.last().expect("rows recorded").stats;
                verify_recorder(&label, &topo, move |_| ApspGossip::new(n), &expected);
            }
        }
    }

    // Scaling rows: bfs-flood only — the gossip workload's per-node state
    // is Θ(n), so it has no business at n = 10⁶ — dense seed baseline vs
    // the active-set engine at every requested thread count.
    for &(family, sizes) in scaling {
        for (i, &n) in sizes.iter().enumerate() {
            let topo = family_topology(family, n);
            let label = format!("scaling/{family}/n={n}");
            rows.extend(measure(
                &label,
                family,
                &topo,
                |_| BfsFlood::new(),
                &threads_list,
            ));
            if i == 0 {
                let expected = rows.last().expect("rows recorded").stats;
                verify_recorder(&label, &topo, |_| BfsFlood::new(), &expected);
            }
        }
    }

    // Rows per workload: one seed row plus one optimized row per thread
    // count. The speedup column compares the seed row against the first
    // optimized row (sequential when 1 leads the list).
    let per_workload = 1 + threads_list.len();
    let speedup_of = |chunk: &[Row]| {
        chunk[0].stats.wall_time.as_secs_f64() / chunk[1].stats.wall_time.as_secs_f64().max(1e-9)
    };
    let mut table = Vec::new();
    for chunk in rows.chunks(per_workload) {
        let speedup = speedup_of(chunk);
        for (i, r) in chunk.iter().enumerate() {
            table.push(vec![
                r.label.clone(),
                r.executor.to_string(),
                r.threads.to_string(),
                r.stats.rounds.to_string(),
                r.stats.messages.to_string(),
                format!("{:.3}", r.mean_scheduled_fraction()),
                format!("{:.3}", r.wall_ms()),
                format!("{:.2e}", r.msgs_per_sec()),
                if i == 1 {
                    format!("{speedup:.2}x")
                } else {
                    String::new()
                },
            ]);
        }
    }
    print_table(
        "engine throughput",
        &[
            "workload", "executor", "thr", "rounds", "msgs", "sched", "wall ms", "msg/s", "vs seed",
        ],
        &table,
    );

    // Geometric-mean speedup of the first optimized configuration.
    let mut log_sum = 0.0;
    let mut count = 0u32;
    for chunk in rows.chunks(per_workload) {
        log_sum += speedup_of(chunk).ln();
        count += 1;
    }
    println!(
        "geometric-mean speedup (optimized {}@{} vs seed): {:.2}x over {count} workloads",
        rows[1].executor,
        rows[1].threads,
        (log_sum / f64::from(count)).exp()
    );

    let objects: Vec<String> = rows.iter().map(Row::json).collect();
    std::fs::write(&out_path, json_array(&objects)).expect("write BENCH_engine.json");
    println!("wrote {out_path}");
}

//! Engine throughput benchmark: the seed round engine versus the
//! zero-allocation engine, on identical workloads.
//!
//! Two workloads run on four topology families at several sizes:
//!
//! * **bfs-flood** — one wave from node 0; every node forwards once.
//!   Sparse traffic, so the measurement is dominated by per-round engine
//!   overhead (buffer churn in the seed engine).
//! * **apsp-gossip** — every node floods its id and adopts the first
//!   arrival per origin, queueing forwards at one token per port per round
//!   (n simultaneous BFS waves, the Algorithm 1 traffic pattern). Dense
//!   traffic, so the measurement is dominated by per-message commit cost.
//!
//! Engines compared: the verbatim seed engine
//! ([`ReferenceSimulator`]), the optimized engine sequentially, and the
//! optimized engine with 4 worker threads. Outputs are asserted identical
//! across all three before a row is recorded.
//!
//! Results go to stdout as a table and to `BENCH_engine.json` at the repo
//! root (override with the first CLI argument): one JSON object per row
//! with `label`, `family`, `n`, `engine`, `threads`, `rounds`, `messages`,
//! `wall_ms`, `msgs_per_sec`.

use std::collections::VecDeque;

use dapsp_bench::print_table;
use dapsp_congest::{
    Config, Inbox, Message, NodeAlgorithm, NodeContext, Outbox, Port, ReferenceSimulator, RunStats,
    Simulator, Topology,
};
use dapsp_graph::generators;

/// A token carrying an origin id and a hop count; sized like a real
/// CONGEST message (id + counter).
#[derive(Clone, Debug)]
struct Token {
    origin: u32,
    hops: u32,
}
impl Message for Token {
    fn bit_size(&self) -> u32 {
        32
    }
}

/// Single-source flood: forward the first arrival, then go quiet.
struct BfsFlood {
    dist: Option<u32>,
}
impl NodeAlgorithm for BfsFlood {
    type Message = Token;
    type Output = u32;

    fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Token>) {
        if ctx.node_id() == 0 {
            self.dist = Some(0);
            out.send_to_all(0..ctx.degree() as Port, Token { origin: 0, hops: 1 });
        }
    }

    fn on_round(&mut self, ctx: &NodeContext<'_>, inbox: &Inbox<Token>, out: &mut Outbox<Token>) {
        if self.dist.is_none() {
            if let Some((_, m)) = inbox.iter().next() {
                self.dist = Some(m.hops);
                out.send_to_all(
                    0..ctx.degree() as Port,
                    Token {
                        origin: 0,
                        hops: m.hops + 1,
                    },
                );
            }
        }
    }

    fn is_active(&self) -> bool {
        false
    }

    fn into_output(self, _: &NodeContext<'_>) -> u32 {
        self.dist.unwrap_or(u32::MAX)
    }
}

/// n simultaneous waves: adopt the first arrival per origin, forward each
/// adopted origin once, one token per port per round.
struct ApspGossip {
    dist: Vec<u32>,
    queue: VecDeque<Token>,
}
impl NodeAlgorithm for ApspGossip {
    type Message = Token;
    type Output = u64;

    fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Token>) {
        self.dist[ctx.node_id() as usize] = 0;
        out.send_to_all(
            0..ctx.degree() as Port,
            Token {
                origin: ctx.node_id(),
                hops: 1,
            },
        );
    }

    fn on_round(&mut self, ctx: &NodeContext<'_>, inbox: &Inbox<Token>, out: &mut Outbox<Token>) {
        for (_, m) in inbox.iter() {
            if self.dist[m.origin as usize] == u32::MAX {
                self.dist[m.origin as usize] = m.hops;
                self.queue.push_back(Token {
                    origin: m.origin,
                    hops: m.hops + 1,
                });
            }
        }
        if let Some(t) = self.queue.pop_front() {
            out.send_to_all(0..ctx.degree() as Port, t);
        }
    }

    fn is_active(&self) -> bool {
        !self.queue.is_empty()
    }

    fn into_output(self, _: &NodeContext<'_>) -> u64 {
        // A distance checksum, enough to catch any cross-engine divergence.
        self.dist
            .iter()
            .enumerate()
            .map(|(i, &d)| u64::from(d).wrapping_mul(i as u64 + 1))
            .fold(0u64, u64::wrapping_add)
    }
}

/// One benchmark row.
struct Row {
    label: String,
    family: &'static str,
    n: usize,
    engine: &'static str,
    threads: usize,
    stats: RunStats,
}

impl Row {
    fn wall_ms(&self) -> f64 {
        self.stats.wall_time.as_secs_f64() * 1e3
    }

    fn msgs_per_sec(&self) -> f64 {
        let secs = self.stats.wall_time.as_secs_f64();
        if secs > 0.0 {
            self.stats.messages as f64 / secs
        } else {
            0.0
        }
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"label\":\"{}\",\"family\":\"{}\",\"n\":{},",
                "\"engine\":\"{}\",\"threads\":{},\"rounds\":{},",
                "\"messages\":{},\"wall_ms\":{:.4},\"msgs_per_sec\":{:.1}}}"
            ),
            self.label,
            self.family,
            self.n,
            self.engine,
            self.threads,
            self.stats.rounds,
            self.stats.messages,
            self.wall_ms(),
            self.msgs_per_sec(),
        )
    }
}

fn config(n: usize) -> Config {
    let base = Config::for_n(n);
    let bw = base.bandwidth_bits.max(32);
    base.with_bandwidth_bits(bw)
}

fn digest<O: std::hash::Hash>(outputs: &[O]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    outputs.hash(&mut h);
    h.finish()
}

/// Runs `workload` on all three engines and returns the rows, panicking if
/// any engine disagrees on the outputs or round/message counts.
fn measure<A, F>(label: &str, family: &'static str, topo: &Topology, init: F) -> Vec<Row>
where
    A: NodeAlgorithm + Send,
    A::Message: Send,
    A::Output: std::hash::Hash,
    F: Fn(&NodeContext<'_>) -> A + Copy,
{
    let n = topo.num_nodes();
    let seed = ReferenceSimulator::new(topo, config(n), init)
        .run()
        .expect("seed engine runs");
    let opt = Simulator::new(topo, config(n), init)
        .run()
        .expect("optimized engine runs");
    let par = Simulator::new(topo, config(n).with_threads(4), init)
        .run()
        .expect("threaded engine runs");
    let d = digest(&seed.outputs);
    assert_eq!(d, digest(&opt.outputs), "{label}: optimized output diverged");
    assert_eq!(d, digest(&par.outputs), "{label}: threaded output diverged");
    assert_eq!(seed.stats, opt.stats, "{label}: optimized stats diverged");
    assert_eq!(seed.stats, par.stats, "{label}: threaded stats diverged");
    vec![
        Row {
            label: label.into(),
            family,
            n,
            engine: "seed",
            threads: 1,
            stats: seed.stats,
        },
        Row {
            label: label.into(),
            family,
            n,
            engine: "optimized",
            threads: 1,
            stats: opt.stats,
        },
        Row {
            label: label.into(),
            family,
            n,
            engine: "optimized",
            threads: 4,
            stats: par.stats,
        },
    ]
}

fn family_topology(family: &str, n: usize) -> Topology {
    match family {
        "path" => generators::path(n).to_topology(),
        "tree" => generators::random_tree(n, 12).to_topology(),
        // Near-regular random graph: a Watts–Strogatz rewired ring, every
        // degree 6 before rewiring and 6 on average after.
        "regular6" => generators::watts_strogatz(n, 3, 0.1, 12).to_topology(),
        "clique" => generators::complete(n).to_topology(),
        other => panic!("unknown family {other}"),
    }
}

/// (family, sizes for the sparse bfs-flood workload, sizes for the dense
/// apsp-gossip workload). Cliques get smaller sizes: their edge count is
/// quadratic in `n`.
const FAMILIES: &[(&str, &[usize], &[usize])] = &[
    ("path", &[256, 1024, 4096], &[64, 128, 256]),
    ("tree", &[256, 1024, 4096], &[64, 128, 256]),
    ("regular6", &[256, 1024, 4096], &[64, 128, 256]),
    ("clique", &[128, 256, 512], &[48, 96]),
];

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        format!("{}/../../BENCH_engine.json", env!("CARGO_MANIFEST_DIR"))
    });
    let mut rows: Vec<Row> = Vec::new();

    println!("# Engine throughput: seed vs zero-allocation engine\n");

    for &(family, flood_sizes, gossip_sizes) in FAMILIES {
        for &n in flood_sizes {
            let topo = family_topology(family, n);
            let label = format!("bfs-flood/{family}/n={n}");
            rows.extend(measure(&label, family, &topo, |_| BfsFlood { dist: None }));
        }
        for &n in gossip_sizes {
            let topo = family_topology(family, n);
            let label = format!("apsp-gossip/{family}/n={n}");
            rows.extend(measure(&label, family, &topo, move |_| ApspGossip {
                dist: vec![u32::MAX; n],
                queue: VecDeque::new(),
            }));
        }
    }

    // Table: one line per (label, engine, threads), plus the speedup of the
    // optimized sequential engine over the seed engine.
    let mut table = Vec::new();
    for chunk in rows.chunks(3) {
        let speedup = chunk[0].stats.wall_time.as_secs_f64()
            / chunk[1].stats.wall_time.as_secs_f64().max(1e-9);
        for r in chunk {
            table.push(vec![
                r.label.clone(),
                r.engine.to_string(),
                r.threads.to_string(),
                r.stats.rounds.to_string(),
                r.stats.messages.to_string(),
                format!("{:.3}", r.wall_ms()),
                format!("{:.2e}", r.msgs_per_sec()),
                if r.engine == "optimized" && r.threads == 1 {
                    format!("{speedup:.2}x")
                } else {
                    String::new()
                },
            ]);
        }
    }
    print_table(
        "engine throughput",
        &[
            "workload", "engine", "thr", "rounds", "msgs", "wall ms", "msg/s", "vs seed",
        ],
        &table,
    );

    // Geometric-mean speedup of the optimized sequential engine.
    let mut log_sum = 0.0;
    let mut count = 0u32;
    for chunk in rows.chunks(3) {
        let s = chunk[0].stats.wall_time.as_secs_f64()
            / chunk[1].stats.wall_time.as_secs_f64().max(1e-9);
        log_sum += s.ln();
        count += 1;
    }
    println!(
        "geometric-mean speedup (optimized sequential vs seed): {:.2}x over {count} workloads",
        (log_sum / f64::from(count)).exp()
    );

    let json: String = std::iter::once("[".to_string())
        .chain(rows.iter().enumerate().map(|(i, r)| {
            let sep = if i + 1 == rows.len() { "" } else { "," };
            format!("\n  {}{}", r.json(), sep)
        }))
        .chain(std::iter::once("\n]\n".to_string()))
        .collect();
    std::fs::write(&out_path, json).expect("write BENCH_engine.json");
    println!("wrote {out_path}");
}

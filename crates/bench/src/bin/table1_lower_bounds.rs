//! E5 — the lower-bound families (Theorems 2, 6, 8) and their certified
//! round bounds, compared against measured upper bounds.
//!
//! A lower bound cannot be "run", but its construction can: we build the
//! disjointness gadgets, verify their diameter dichotomy, compute the
//! certified bound `Ω(input_bits / (B·cut) )` + `Ω(D)`, and plot it under
//! the rounds that the exact and approximate algorithms actually take.
//! Expected shape: the certified bound grows linearly in `n` (Theorem 6),
//! the exact algorithm tracks it within a constant factor from above, and
//! the `(+,1)` family's certified bound scales like `n/(B·D)` (Theorem 2).

use dapsp_bench::{loglog_slope, print_table};
use dapsp_congest::Config;
use dapsp_core::{apsp, metrics, two_vs_four};
use dapsp_graph::{lowerbound, reference};

fn main() {
    println!("# E5: lower-bound families and certificates (Theorems 2, 6, 8)\n");

    // Theorem 6: diameter 2-vs-3 takes Ω(n/B) rounds.
    let mut rows = Vec::new();
    let mut xs = Vec::new();
    let mut certified = Vec::new();
    let mut measured = Vec::new();
    for k in [8usize, 16, 32, 64, 128] {
        for intersecting in [false, true] {
            let (a, b) = lowerbound::canonical_inputs(k, intersecting);
            let inst = lowerbound::two_vs_three(k, &a, &b);
            let n = inst.graph.num_nodes();
            assert_eq!(
                reference::diameter(&inst.graph),
                Some(inst.expected_diameter),
                "dichotomy must hold"
            );
            let bandwidth = Config::for_n(n).bandwidth_bits;
            let lb = inst.bound.rounds(bandwidth);
            // The theorem holds for every B >= 1; at B = 1 the
            // communication term dominates and the linear-in-n shape shows.
            let lb_b1 = inst.bound.rounds(1);
            let exact = metrics::diameter(&inst.graph).expect("exact diameter");
            assert_eq!(exact.value, inst.expected_diameter);
            if intersecting {
                xs.push(n as f64);
                certified.push(lb_b1 as f64);
                measured.push(exact.stats.rounds as f64);
            }
            rows.push(vec![
                format!(
                    "2-vs-3 k={k} ({})",
                    if intersecting { "D=3" } else { "D=2" }
                ),
                n.to_string(),
                inst.expected_diameter.to_string(),
                inst.bound.input_bits.to_string(),
                inst.bound.cut_edges.to_string(),
                lb.to_string(),
                lb_b1.to_string(),
                exact.stats.rounds.to_string(),
            ]);
        }
    }
    print_table(
        "Theorem 6 family: certified Ω(n/B) vs measured exact-diameter rounds",
        &[
            "instance",
            "n",
            "D",
            "input bits",
            "cut",
            "LB @ B=log n",
            "LB @ B=1",
            "measured rounds",
        ],
        &rows,
    );
    let lb_slope = loglog_slope(&xs, &certified);
    let ub_slope = loglog_slope(&xs, &measured);
    println!(
        "certified-LB(B=1) growth exponent: {lb_slope:.2} (theory 1.0); measured-UB exponent: {ub_slope:.2}\n"
    );
    assert!(
        lb_slope > 0.75,
        "the B=1 certificate must grow ~linearly in n, got {lb_slope:.2}"
    );

    // Theorem 2 shape: the diameter-gap family certifies Ω(n/(B·D)).
    let mut rows = Vec::new();
    for (k, h) in [(24usize, 1usize), (24, 3), (24, 6), (24, 12)] {
        let (a, b) = lowerbound::canonical_inputs(k, true);
        let inst = lowerbound::diameter_gap(k, h, &a, &b);
        let n = inst.graph.num_nodes();
        assert_eq!(
            reference::diameter(&inst.graph),
            Some(inst.expected_diameter)
        );
        let bw = Config::for_n(n).bandwidth_bits;
        rows.push(vec![
            format!("gap k={k} h={h}"),
            n.to_string(),
            inst.expected_diameter.to_string(),
            inst.bound.rounds(bw).to_string(),
            inst.bound.rounds(1).to_string(),
            format!("{:.2}", n as f64 / f64::from(inst.expected_diameter)),
        ]);
    }
    print_table(
        "Theorem 2 family: certified bound vs the n/(B·D) + D shape",
        &["instance", "n", "D", "LB @ B=log n", "LB @ B=1", "n/D"],
        &rows,
    );

    // Theorem 8: the girth-3 family also forces Ω(n/B) for all 2-BFS trees.
    // We *measure* the all-2-BFS computation (Algorithm 1 truncated at
    // depth 2, §8's upper bound) against the certificate, and contrast with
    // Algorithm 3 answering the easier 2-vs-4 promise.
    let mut rows = Vec::new();
    for k in [16usize, 32, 64] {
        let (a, b) = lowerbound::canonical_inputs(k, false);
        let inst = lowerbound::girth3_two_bfs_hard(k, &a, &b);
        assert_eq!(reference::girth(&inst.graph), Some(3));
        let n = inst.graph.num_nodes();
        let bw = Config::for_n(n).bandwidth_bits;
        let kbfs = apsp::run_truncated(&inst.graph, 2).expect("all 2-BFS trees");
        // The §8 predicate decides the dichotomy.
        assert_eq!(kbfs.covers_everything(), inst.expected_diameter <= 2);
        let fast = two_vs_four::run(&inst.graph, 7).expect("algorithm 3");
        rows.push(vec![
            format!("girth3 2-BFS-hard k={k}"),
            n.to_string(),
            inst.bound.rounds(bw).to_string(),
            inst.bound.rounds(1).to_string(),
            kbfs.result.stats.rounds.to_string(),
            fast.claimed_diameter.to_string(),
            fast.stats.rounds.to_string(),
        ]);
    }
    print_table(
        "Theorem 8 family (girth 3): all-2-BFS measured (Alg.1 truncated) vs certificate, and Algorithm 3 on the 2-vs-4 promise",
        &[
            "instance",
            "n",
            "LB @ B=log n",
            "LB @ B=1",
            "all-2-BFS rounds",
            "Alg.3 answer",
            "Alg.3 rounds",
        ],
        &rows,
    );
    println!("OK: dichotomies verified; no measured run undercuts its certificate.");
}

//! E4 — exact girth in `O(n)` rounds (Lemma 7 + Claim 1).
//!
//! Trees short-circuit after the `O(D)` Claim 1 test; everything else pays
//! one APSP plus a min-aggregation. All values are oracle-checked.

use dapsp_bench::print_table;
use dapsp_core::girth;
use dapsp_graph::{generators, reference, Graph};

fn main() {
    println!("# E4: exact girth in O(n) rounds (Lemma 7, Claim 1)\n");
    let instances: Vec<(String, Graph)> = vec![
        ("cycle n=64 (g=64)".into(), generators::cycle(64)),
        ("tadpole g=5 n=64".into(), generators::tadpole(5, 64)),
        ("tadpole g=17 n=64".into(), generators::tadpole(17, 64)),
        ("grid 8x8 (g=4)".into(), generators::grid(8, 8)),
        ("hypercube d=6 (g=4)".into(), generators::hypercube(6)),
        ("complete n=24 (g=3)".into(), generators::complete(24)),
        (
            "ER n=64 p=6/n".into(),
            generators::erdos_renyi_connected(64, 6.0 / 64.0, 11),
        ),
        ("path n=64 (tree)".into(), generators::path(64)),
        ("random tree n=64".into(), generators::random_tree(64, 11)),
    ];
    let mut rows = Vec::new();
    for (label, g) in &instances {
        let r = girth::run(g).expect("girth");
        assert_eq!(r.girth, reference::girth(g), "{label}");
        rows.push(vec![
            label.clone(),
            r.girth.map_or("∞".into(), |v| v.to_string()),
            r.stats.rounds.to_string(),
            format!("{:.2}", r.stats.rounds as f64 / g.num_nodes() as f64),
        ]);
    }
    print_table(
        "girth, oracle-verified",
        &["instance", "girth", "rounds", "rounds/n"],
        &rows,
    );
    println!("OK: exact girth everywhere; trees exit after the O(D) Claim 1 test.");
}

//! Engine phase profiler: where does a simulated round's wall-clock time
//! go — delivering inboxes, stepping nodes, or committing outboxes?
//!
//! ROADMAP's sharded-commit item rests on a hypothesis: with worker
//! threads, the *sequential* commit phase dominates the (parallelized)
//! step phase. This benchmark measures that split directly by attaching a
//! [`PhaseProfiler`] — the node-step,
//! outbox-commit, and inbox-delivery portions of every round are timed
//! separately and accumulated per run.
//!
//! The sweep mirrors `engine_throughput` (same workloads and topology
//! families, see [`dapsp_bench::workloads`]): **bfs-flood** and
//! **apsp-gossip** over path / random tree / near-regular / clique, each
//! under the seed engine, the optimized engine with 1 thread, and the
//! optimized engine with 4 threads.
//!
//! Results go to stdout as a table and to `BENCH_profile.json` at the
//! repo root: one JSON object per row with `label`, `family`,
//! `workload`, `n`, `engine`, `threads`, `rounds`, `messages`,
//! `wall_ms`, `deliver_ms`, `step_ms`, `commit_ms`, `commit_share`.
//!
//! Usage: `engine_profile [--smoke] [OUT_PATH]`. `--smoke` runs tiny
//! instances and writes to `target/BENCH_profile_smoke.json` instead, so
//! CI can exercise the full path without touching the committed numbers.

use dapsp_bench::print_table;
use dapsp_bench::workloads::{
    digest, engine_config, family_topology, json_array, ApspGossip, BfsFlood,
};
use dapsp_congest::{
    NodeAlgorithm, NodeContext, PhaseProfiler, ReferenceSimulator, SharedObserver, Simulator,
    Topology,
};

/// One profiled run.
struct Row {
    label: String,
    family: &'static str,
    workload: &'static str,
    n: usize,
    engine: &'static str,
    threads: usize,
    rounds: u64,
    messages: u64,
    wall_ms: f64,
    deliver_ms: f64,
    step_ms: f64,
    commit_ms: f64,
    commit_share: f64,
}

impl Row {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"label\":\"{}\",\"family\":\"{}\",\"workload\":\"{}\",\"n\":{},",
                "\"engine\":\"{}\",\"threads\":{},\"rounds\":{},\"messages\":{},",
                "\"wall_ms\":{:.4},\"deliver_ms\":{:.4},\"step_ms\":{:.4},",
                "\"commit_ms\":{:.4},\"commit_share\":{:.4}}}"
            ),
            self.label,
            self.family,
            self.workload,
            self.n,
            self.engine,
            self.threads,
            self.rounds,
            self.messages,
            self.wall_ms,
            self.deliver_ms,
            self.step_ms,
            self.commit_ms,
            self.commit_share,
        )
    }
}

const MS: f64 = 1e3;

/// Profiles `init` on one engine configuration; returns the row and the
/// output digest (for cross-engine equality checks).
#[allow(clippy::too_many_arguments)] // a flat description of one bench cell
fn profile_one<A, F>(
    label: &str,
    family: &'static str,
    workload: &'static str,
    topo: &Topology,
    init: F,
    engine: &'static str,
    threads: usize,
) -> (Row, u64)
where
    A: NodeAlgorithm + Send,
    A::Message: Send,
    A::Output: std::hash::Hash,
    F: Fn(&NodeContext<'_>) -> A + Copy,
{
    let n = topo.num_nodes();
    let profiler = SharedObserver::new(PhaseProfiler::new());
    let config = engine_config(n)
        .with_threads(threads)
        .with_observer(profiler.observer())
        .with_phase(label);
    let report = if engine == "seed" {
        ReferenceSimulator::new(topo, config, init)
            .run()
            .expect("seed engine runs")
    } else {
        Simulator::new(topo, config, init)
            .run()
            .expect("optimized engine runs")
    };
    let total = profiler.with(|p| p.total());
    let row = Row {
        label: label.into(),
        family,
        workload,
        n,
        engine,
        threads,
        rounds: report.stats.rounds,
        messages: report.stats.messages,
        wall_ms: report.stats.wall_time.as_secs_f64() * MS,
        deliver_ms: total.deliver.as_secs_f64() * MS,
        step_ms: total.step.as_secs_f64() * MS,
        commit_ms: total.commit.as_secs_f64() * MS,
        commit_share: total.commit_share(),
    };
    (row, digest(&report.outputs))
}

/// Profiles one workload instance under all three engine configurations.
fn profile<A, F>(
    label: &str,
    family: &'static str,
    workload: &'static str,
    topo: &Topology,
    init: F,
) -> Vec<Row>
where
    A: NodeAlgorithm + Send,
    A::Message: Send,
    A::Output: std::hash::Hash,
    F: Fn(&NodeContext<'_>) -> A + Copy,
{
    let (seed, d0) = profile_one(label, family, workload, topo, init, "seed", 1);
    let (opt, d1) = profile_one(label, family, workload, topo, init, "optimized", 1);
    let (par, d4) = profile_one(label, family, workload, topo, init, "optimized", 4);
    assert_eq!(d0, d1, "{label}: optimized output diverged");
    assert_eq!(d0, d4, "{label}: threaded output diverged");
    vec![seed, opt, par]
}

/// (family, bfs-flood size, apsp-gossip size) for the full sweep and for
/// `--smoke`. One size per cell: the profiler's product is a *split*, not
/// a scaling curve (engine_throughput covers scaling).
const FULL: &[(&str, usize, usize)] = &[
    ("path", 2048, 192),
    ("tree", 2048, 192),
    ("regular6", 2048, 192),
    ("clique", 256, 96),
];
const SMOKE: &[(&str, usize, usize)] = &[
    ("path", 64, 32),
    ("tree", 64, 32),
    ("regular6", 64, 32),
    ("clique", 32, 24),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let default_path = if smoke {
        format!(
            "{}/../../target/BENCH_profile_smoke.json",
            env!("CARGO_MANIFEST_DIR")
        )
    } else {
        format!("{}/../../BENCH_profile.json", env!("CARGO_MANIFEST_DIR"))
    };
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or(default_path);

    println!("# Engine phase profile: deliver / step / commit wall-clock split\n");

    let mut rows: Vec<Row> = Vec::new();
    for &(family, flood_n, gossip_n) in if smoke { SMOKE } else { FULL } {
        let topo = family_topology(family, flood_n);
        let label = format!("bfs-flood/{family}/n={flood_n}");
        rows.extend(profile(&label, family, "bfs-flood", &topo, |_| {
            BfsFlood::new()
        }));
        let topo = family_topology(family, gossip_n);
        let label = format!("apsp-gossip/{family}/n={gossip_n}");
        rows.extend(profile(&label, family, "apsp-gossip", &topo, move |_| {
            ApspGossip::new(gossip_n)
        }));
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.engine.to_string(),
                r.threads.to_string(),
                r.rounds.to_string(),
                format!("{:.3}", r.deliver_ms),
                format!("{:.3}", r.step_ms),
                format!("{:.3}", r.commit_ms),
                format!("{:.0}%", r.commit_share * 100.0),
            ]
        })
        .collect();
    print_table(
        "phase profile",
        &[
            "workload",
            "engine",
            "thr",
            "rounds",
            "deliver ms",
            "step ms",
            "commit ms",
            "commit",
        ],
        &table,
    );

    // The sharded-commit hypothesis, quantified: mean commit share of the
    // optimized engine at 1 vs 4 threads (threads parallelize the step
    // phase only, so the share should rise with thread count).
    for threads in [1usize, 4] {
        let shares: Vec<f64> = rows
            .iter()
            .filter(|r| r.engine == "optimized" && r.threads == threads)
            .map(|r| r.commit_share)
            .collect();
        let mean = shares.iter().sum::<f64>() / shares.len() as f64;
        println!(
            "mean commit share, optimized engine, threads={threads}: {:.0}%",
            mean * 100.0
        );
    }

    let objects: Vec<String> = rows.iter().map(Row::json).collect();
    std::fs::write(&out_path, json_array(&objects)).expect("write BENCH_profile.json");
    println!("wrote {out_path}");
}

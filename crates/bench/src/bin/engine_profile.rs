//! Engine phase profiler: where does a simulated round's wall-clock time
//! go — delivering inboxes, stepping nodes, or committing outboxes?
//!
//! ROADMAP's sharded-commit item rests on a hypothesis: with worker
//! threads, the *sequential* commit phase dominates the (parallelized)
//! step phase. This benchmark measures that split directly by attaching a
//! [`PhaseProfiler`] — the node-step,
//! outbox-commit, and inbox-delivery portions of every round are timed
//! separately and accumulated per run.
//!
//! The sweep mirrors `engine_throughput` (same workloads and topology
//! families, see [`dapsp_bench::workloads`]): **bfs-flood** and
//! **apsp-gossip** over path / random tree / near-regular / clique, each
//! under the seed engine and the optimized engine at every requested
//! worker-thread count.
//!
//! Results go to stdout as a table and to `BENCH_profile.json` at the
//! repo root: one JSON object per row with `label`, `family`,
//! `workload`, `n`, `engine`, `executor`, `threads`, `rounds`,
//! `messages`, `wall_ms`, `deliver_ms`, `step_ms`, `commit_ms`,
//! `commit_share`. `executor` names the engine that produced the row:
//! `reference` (the seed engine), `serial`, or `pool`.
//!
//! Usage: `engine_profile [--smoke] [--threads LIST] [OUT_PATH]`.
//! `--threads 1,2,4` (the default) selects the worker counts the
//! optimized engine is profiled at; `--smoke` runs tiny instances and
//! writes to `target/BENCH_profile_smoke.json` instead, so CI can
//! exercise the full path without touching the committed numbers. Pool
//! runs additionally assert that worker threads were spawned exactly once
//! per run, so a spawn-per-round regression fails the benchmark itself.

use dapsp_bench::print_table;
use dapsp_bench::workloads::{
    digest, engine_config, executor_for, family_topology, json_array, parse_bench_args, ApspGossip,
    BfsFlood,
};
use dapsp_congest::{
    pool_workers_spawned, ExecutorKind, NodeAlgorithm, NodeContext, PhaseProfiler,
    ReferenceSimulator, SharedObserver, Simulator, Topology,
};

/// One profiled run.
struct Row {
    label: String,
    family: &'static str,
    workload: &'static str,
    n: usize,
    engine: &'static str,
    executor: &'static str,
    threads: usize,
    rounds: u64,
    messages: u64,
    wall_ms: f64,
    deliver_ms: f64,
    step_ms: f64,
    commit_ms: f64,
    commit_share: f64,
}

impl Row {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"label\":\"{}\",\"family\":\"{}\",\"workload\":\"{}\",\"n\":{},",
                "\"engine\":\"{}\",\"executor\":\"{}\",\"threads\":{},\"rounds\":{},",
                "\"messages\":{},\"wall_ms\":{:.4},\"deliver_ms\":{:.4},\"step_ms\":{:.4},",
                "\"commit_ms\":{:.4},\"commit_share\":{:.4},{}}}"
            ),
            self.label,
            self.family,
            self.workload,
            self.n,
            self.engine,
            self.executor,
            self.threads,
            self.rounds,
            self.messages,
            self.wall_ms,
            self.deliver_ms,
            self.step_ms,
            self.commit_ms,
            self.commit_share,
            dapsp_bench::workloads::host_json_fields(),
        )
    }
}

const MS: f64 = 1e3;

/// Profiles `init` on one engine configuration; returns the row and the
/// output digest (for cross-engine equality checks).
#[allow(clippy::too_many_arguments)] // a flat description of one bench cell
fn profile_one<A, F>(
    label: &str,
    family: &'static str,
    workload: &'static str,
    topo: &Topology,
    init: F,
    engine: &'static str,
    threads: usize,
) -> (Row, u64)
where
    A: NodeAlgorithm + Send,
    A::Message: Send,
    A::Output: std::hash::Hash,
    F: Fn(&NodeContext<'_>) -> A + Copy,
{
    let n = topo.num_nodes();
    let profiler = SharedObserver::new(PhaseProfiler::new());
    let kind = executor_for(threads);
    let config = engine_config(n)
        .with_executor(kind)
        .with_observer(profiler.observer())
        .with_phase(label);
    let spawned_before = pool_workers_spawned();
    let (report, executor) = if engine == "seed" {
        let report = ReferenceSimulator::new(topo, config, init)
            .run()
            .expect("seed engine runs");
        (report, "reference")
    } else {
        let report = Simulator::new(topo, config, init)
            .run()
            .expect("optimized engine runs");
        // The pool's core lifecycle promise, checked structurally: worker
        // threads are created once per run, never per round (the engine
        // thread itself carries shard 0, hence the minus one).
        if let ExecutorKind::Pool { workers } = kind {
            assert_eq!(
                pool_workers_spawned() - spawned_before,
                workers.clamp(1, n) as u64 - 1,
                "{label}: pool spawned threads more than once per run"
            );
        }
        (report, kind.name())
    };
    let total = profiler.with(|p| p.total());
    let row = Row {
        label: label.into(),
        family,
        workload,
        n,
        engine,
        executor,
        threads,
        rounds: report.stats.rounds,
        messages: report.stats.messages,
        wall_ms: report.stats.wall_time.as_secs_f64() * MS,
        deliver_ms: total.deliver.as_secs_f64() * MS,
        step_ms: total.step.as_secs_f64() * MS,
        commit_ms: total.commit.as_secs_f64() * MS,
        commit_share: total.commit_share(),
    };
    (row, digest(&report.outputs))
}

/// Profiles one workload instance under the seed engine plus the
/// optimized engine at every thread count in `threads_list`, asserting all
/// runs produce identical outputs.
fn profile<A, F>(
    label: &str,
    family: &'static str,
    workload: &'static str,
    topo: &Topology,
    init: F,
    threads_list: &[usize],
) -> Vec<Row>
where
    A: NodeAlgorithm + Send,
    A::Message: Send,
    A::Output: std::hash::Hash,
    F: Fn(&NodeContext<'_>) -> A + Copy,
{
    let (seed, d0) = profile_one(label, family, workload, topo, init, "seed", 1);
    let mut rows = vec![seed];
    for &threads in threads_list {
        let (row, d) = profile_one(label, family, workload, topo, init, "optimized", threads);
        assert_eq!(d0, d, "{label}: {}@{threads} output diverged", row.executor);
        rows.push(row);
    }
    rows
}

/// (family, bfs-flood size, apsp-gossip size) for the full sweep and for
/// `--smoke`. One size per cell: the profiler's product is a *split*, not
/// a scaling curve (engine_throughput covers scaling).
const FULL: &[(&str, usize, usize)] = &[
    ("path", 2048, 192),
    ("tree", 2048, 192),
    ("regular6", 2048, 192),
    ("clique", 256, 96),
];
const SMOKE: &[(&str, usize, usize)] = &[
    ("path", 64, 32),
    ("tree", 64, 32),
    ("regular6", 64, 32),
    ("clique", 32, 24),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_bench_args(&args, &[1, 2, 4]);
    let smoke = parsed.smoke;
    let threads_list = parsed.threads;
    let default_path = if smoke {
        format!(
            "{}/../../target/BENCH_profile_smoke.json",
            env!("CARGO_MANIFEST_DIR")
        )
    } else {
        format!("{}/../../BENCH_profile.json", env!("CARGO_MANIFEST_DIR"))
    };
    let out_path = parsed.out_path.unwrap_or(default_path);

    println!("# Engine phase profile: deliver / step / commit wall-clock split\n");

    let mut rows: Vec<Row> = Vec::new();
    for &(family, flood_n, gossip_n) in if smoke { SMOKE } else { FULL } {
        let topo = family_topology(family, flood_n);
        let label = format!("bfs-flood/{family}/n={flood_n}");
        rows.extend(profile(
            &label,
            family,
            "bfs-flood",
            &topo,
            |_| BfsFlood::new(),
            &threads_list,
        ));
        let topo = family_topology(family, gossip_n);
        let label = format!("apsp-gossip/{family}/n={gossip_n}");
        rows.extend(profile(
            &label,
            family,
            "apsp-gossip",
            &topo,
            move |_| ApspGossip::new(gossip_n),
            &threads_list,
        ));
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.executor.to_string(),
                r.threads.to_string(),
                r.rounds.to_string(),
                format!("{:.3}", r.deliver_ms),
                format!("{:.3}", r.step_ms),
                format!("{:.3}", r.commit_ms),
                format!("{:.0}%", r.commit_share * 100.0),
            ]
        })
        .collect();
    print_table(
        "phase profile",
        &[
            "workload",
            "executor",
            "thr",
            "rounds",
            "deliver ms",
            "step ms",
            "commit ms",
            "commit",
        ],
        &table,
    );

    // The sharded-commit hypothesis, quantified: mean commit share of the
    // optimized engine at each swept thread count (workers parallelize the
    // step phase only, so the share should rise with thread count).
    for &threads in &threads_list {
        let shares: Vec<f64> = rows
            .iter()
            .filter(|r| r.engine == "optimized" && r.threads == threads)
            .map(|r| r.commit_share)
            .collect();
        let mean = shares.iter().sum::<f64>() / shares.len() as f64;
        println!(
            "mean commit share, optimized engine, threads={threads}: {:.0}%",
            mean * 100.0
        );
    }

    let objects: Vec<String> = rows.iter().map(Row::json).collect();
    std::fs::write(&out_path, json_array(&objects)).expect("write BENCH_profile.json");
    println!("wrote {out_path}");
}

//! A "figure" for the reproduction: the per-round message activity of
//! Algorithm 1's wave phase, visualized as a text profile.
//!
//! Lemma 1's point is that all `n` BFS waves overlap without congestion:
//! the network sustains high delivery volume for the whole traversal
//! instead of running one wave at a time. The profile makes that shape
//! visible — a long plateau near the maximum, then a short tail as the
//! last waves finish — and reports the achieved edge utilization.

use dapsp_bench::print_table;
use dapsp_core::apsp;
use dapsp_graph::generators;

fn sparkline(profile: &[u64], buckets: usize) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if profile.is_empty() {
        return String::new();
    }
    let max = *profile.iter().max().expect("nonempty") as f64;
    let chunk = profile.len().div_ceil(buckets);
    profile
        .chunks(chunk)
        .map(|c| {
            let avg = c.iter().sum::<u64>() as f64 / c.len() as f64;
            let idx = ((avg / max) * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx]
        })
        .collect()
}

fn main() {
    println!("# Figure: per-round message activity of Algorithm 1's wave phase\n");
    let mut rows = Vec::new();
    for (label, g) in [
        ("cycle n=96", generators::cycle(96)),
        ("grid 10x10", generators::grid(10, 10)),
        (
            "ER n=96 p=8/n",
            generators::erdos_renyi_connected(96, 8.0 / 96.0, 3),
        ),
        ("tree n=96", generators::random_tree(96, 3)),
    ] {
        let (result, profile) = apsp::run_profiled(&g).expect("apsp");
        let m = g.num_edges() as f64;
        let peak = *profile.iter().max().unwrap_or(&0);
        let mean = profile.iter().sum::<u64>() as f64 / profile.len().max(1) as f64;
        rows.push(vec![
            label.to_string(),
            result.stats.rounds.to_string(),
            peak.to_string(),
            format!("{:.1}%", 100.0 * peak as f64 / (2.0 * m)),
            format!("{:.1}%", 100.0 * mean / (2.0 * m)),
            sparkline(&profile, 48),
        ]);
    }
    print_table(
        "wave-phase activity (utilization = deliveries / 2m edge-slots)",
        &[
            "instance",
            "rounds",
            "peak msgs/round",
            "peak util",
            "mean util",
            "activity over time",
        ],
        &rows,
    );
    println!(
        "The sustained plateau is Lemma 1 at work: n overlapping BFS waves keep\n\
         a large fraction of all 2m directed edge-slots busy every round, which\n\
         is how n searches finish in O(n) instead of O(n·D) rounds."
    );
}

//! Experiment harness regenerating the paper's Table 1 measurements.
//!
//! The paper is a theory paper whose single table (Table 1) is a matrix of
//! round-complexity bounds. "Reproducing the evaluation" therefore means
//! measuring round counts for every claimed bound and checking the *growth
//! shapes*: who wins, by what factor, and where crossovers fall. Each
//! experiment Eⁱ from DESIGN.md has a binary in `src/bin/` that prints its
//! table; `table1_all` runs the full suite. The Criterion bench
//! (`benches/table1.rs`) wall-clock-profiles representative instances.
//!
//! The helpers here are shared by the binaries: measurement records, table
//! rendering, and log–log slope fitting for empirical growth exponents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod workloads;

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Instance label (family, parameters).
    pub label: String,
    /// The independent variable (usually `n`).
    pub x: f64,
    /// Measured rounds (or another dependent quantity).
    pub y: f64,
}

/// Renders an aligned text table.
///
/// # Examples
///
/// ```
/// let s = dapsp_bench::render_table(
///     "demo",
///     &["n", "rounds"],
///     &[vec!["8".into(), "24".into()], vec!["16".into(), "48".into()]],
/// );
/// assert!(s.contains("demo"));
/// assert!(s.contains("rounds"));
/// ```
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("| ");
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:>width$} | ", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt_row(&sep, &widths));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Prints a table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("{}", render_table(title, headers, rows));
}

/// Least-squares slope of `log y` against `log x` — the empirical growth
/// exponent (`~1` for linear algorithms, `~2` for quadratic ones).
///
/// # Panics
///
/// Panics if fewer than two points, if all `x` values coincide, or if any
/// coordinate is non-positive.
///
/// # Examples
///
/// ```
/// let xs = [8.0, 16.0, 32.0, 64.0];
/// let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x).collect();
/// let slope = dapsp_bench::loglog_slope(&xs, &ys);
/// assert!((slope - 1.0).abs() < 1e-9);
/// ```
pub fn loglog_slope(xs: &[f64], ys: &[f64]) -> f64 {
    assert!(xs.len() == ys.len() && xs.len() >= 2, "need >= 2 points");
    assert!(
        xs.iter().chain(ys.iter()).all(|&v| v > 0.0),
        "log-log fit needs positive data"
    );
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let cov: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = lx.iter().map(|x| (x - mx) * (x - mx)).sum();
    assert!(
        var > 0.0,
        "log-log fit needs at least two distinct x values"
    );
    cov / var
}

/// Ratio-of-means helper: how much larger `ys` is than `xs` on average.
///
/// # Panics
///
/// Panics on empty or mismatched inputs.
pub fn mean_ratio(ys: &[f64], xs: &[f64]) -> f64 {
    assert!(!xs.is_empty() && xs.len() == ys.len(), "mismatched inputs");
    let r: f64 = ys.iter().zip(xs).map(|(y, x)| y / x).sum();
    r / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_detects_quadratic_growth() {
        let xs = [4.0, 8.0, 16.0, 32.0];
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 * x * x).collect();
        assert!((loglog_slope(&xs, &ys) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slope_tolerates_constants_and_noise() {
        let xs = [16.0, 32.0, 64.0, 128.0];
        let ys: Vec<f64> = xs.iter().map(|x| 7.0 * x + 20.0).collect();
        let s = loglog_slope(&xs, &ys);
        assert!(s > 0.85 && s < 1.1, "slope {s}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn slope_rejects_zeros() {
        loglog_slope(&[1.0, 2.0], &[0.0, 1.0]);
    }

    #[test]
    fn table_renders_all_cells() {
        let t = render_table("t", &["a", "b"], &[vec!["1".into(), "22".into()]]);
        assert!(t.contains("| 1 |"));
        assert!(t.contains("22"));
    }

    #[test]
    fn mean_ratio_basic() {
        assert!((mean_ratio(&[2.0, 4.0], &[1.0, 2.0]) - 2.0).abs() < 1e-12);
    }
}

//! Packet forwarding over APSP-derived routing tables — the paper's
//! framing application (§1: link-state vs distance-vector both exist to
//! compute exactly these tables).
//!
//! [`RoutingTables`] extracts per-node next-hop tables from an
//! [`ApspResult`]; [`simulate_flows`] then runs actual packet delivery over
//! the same CONGEST network: each flow is a `(source, destination)` pair
//! known network-wide (like a traffic-engineering config), a packet is a
//! `B`-bit message carrying its flow id, and every edge forwards at most
//! one packet per direction per round — so *congestion is part of the
//! simulation*: flows sharing an edge queue up, and the delivery report
//! shows exactly how much each packet waited beyond its hop distance.

use std::sync::Arc;

use dapsp_congest::{
    bits_for_id, Config, Inbox, Message, NodeAlgorithm, NodeContext, Outbox, Port, RunStats,
    Topology,
};
use dapsp_graph::{DistanceMatrix, Graph, INFINITY};

use crate::apsp::ApspResult;
use crate::churned::ChurnedResult;
use crate::error::CoreError;
use crate::runner::run_algorithm;

/// Per-node forwarding state derived from an APSP computation.
///
/// Both payloads are `O(n²)` and live behind [`Arc`]s, so cloning a table
/// (or handing one to the `dapsp-serve` compaction layer) shares the
/// matrices instead of duplicating them; [`from_apsp_owned`](Self::from_apsp_owned)
/// builds the table by *moving* a finished run's matrices, with no copy at
/// all — the constructor to use at `n = 10⁵⁺`, where a defensive clone
/// would double peak memory.
#[derive(Clone, Debug)]
pub struct RoutingTables {
    /// `next_hop[v][dst]` — the neighbor `v` forwards to for `dst`
    /// (`None` at `v == dst` and at unreachable/absent destinations).
    next_hop: Arc<Vec<Vec<Option<u32>>>>,
    /// `hops.get(v, dst)` — path length, for reporting.
    hops: Arc<DistanceMatrix>,
}

impl RoutingTables {
    /// Builds tables from a borrowed APSP run, copying both matrices.
    /// Prefer [`from_apsp_owned`](Self::from_apsp_owned) when the
    /// [`ApspResult`] is no longer needed — it moves instead of copying.
    pub fn from_apsp(result: &ApspResult) -> Self {
        RoutingTables {
            next_hop: Arc::new(result.next_hop.clone()),
            hops: Arc::new(result.distances.clone()),
        }
    }

    /// Builds tables by *consuming* a finished APSP run: the `O(n²)`
    /// next-hop and distance matrices are moved, not cloned, so compacting
    /// a result into routing tables adds `O(1)` peak memory (pinned by a
    /// buffer-identity unit test).
    pub fn from_apsp_owned(result: ApspResult) -> Self {
        RoutingTables {
            next_hop: Arc::new(result.next_hop),
            hops: Arc::new(result.distances),
        }
    }

    /// Builds tables from a churn-repaired APSP run
    /// ([`apsp::run_churned`](crate::apsp::run_churned)): each node's
    /// parent port per root is resolved to a neighbor id through
    /// `final_topo`, the *post-churn* topology (see
    /// [`churned_topology`](dapsp_congest::churned_topology) — ports stay
    /// stable across churn, so dead ports still resolve). Rows of absent
    /// nodes and unreachable destinations read back as `None` /
    /// [`INFINITY`].
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] unless the result maintains every
    /// root (`roots = 0..n`, the churned-APSP shape) and `final_topo` has
    /// matching size.
    pub fn from_churned(result: &ChurnedResult, final_topo: &Topology) -> Result<Self, CoreError> {
        let n = result.dist.len();
        if final_topo.num_nodes() != n {
            return Err(CoreError::InvalidParameter(format!(
                "topology covers {} nodes but the churned result has {n}",
                final_topo.num_nodes()
            )));
        }
        if result.roots.len() != n
            || result
                .roots
                .iter()
                .enumerate()
                .any(|(i, &r)| r as usize != i)
        {
            return Err(CoreError::InvalidParameter(
                "churned routing tables need all-pairs roots (0..n); run apsp::run_churned"
                    .to_string(),
            ));
        }
        let mut hops = DistanceMatrix::new(n);
        let mut next_hop = vec![vec![None; n]; n];
        let absent_row = vec![INFINITY; n];
        for v in 0..n as u32 {
            if !result.present[v as usize] {
                // Absent nodes keep frozen kernel state; serve nothing.
                hops.set_row(v, &absent_row);
                continue;
            }
            hops.set_row(v, &result.dist[v as usize]);
            for (r, port) in result.parent_port[v as usize].iter().enumerate() {
                if let Some(p) = port {
                    next_hop[v as usize][r] = Some(final_topo.neighbor_at(v, *p));
                }
            }
        }
        Ok(RoutingTables {
            next_hop: Arc::new(next_hop),
            hops: Arc::new(hops),
        })
    }

    /// The number of nodes the tables cover.
    pub fn num_nodes(&self) -> usize {
        self.next_hop.len()
    }

    /// The neighbor `v` forwards to when routing toward `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `dst` is out of range.
    pub fn next_hop(&self, v: u32, dst: u32) -> Option<u32> {
        self.next_hop[v as usize][dst as usize]
    }

    /// Path length from `v` to `dst` ([`INFINITY`] when unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `v` or `dst` is out of range.
    pub fn hops(&self, v: u32, dst: u32) -> u32 {
        self.hops.get(v, dst).unwrap_or(INFINITY)
    }

    /// Row `v` of the next-hop table — the borrow the `dapsp-serve`
    /// compaction layer flattens from without materializing a copy.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn next_hop_row(&self, v: u32) -> &[Option<u32>] {
        &self.next_hop[v as usize]
    }

    /// Row `v` of the hop-distance table (raw [`INFINITY`] entries for
    /// unreachable destinations).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn hops_row(&self, v: u32) -> &[u32] {
        self.hops.row(v)
    }

    /// Reconstructs the full shortest path from `u` to `v` (inclusive) by
    /// walking next-hop pointers, or `None` when `v` is unreachable from
    /// `u`. The walk is bounded by the recorded hop count, so a corrupt
    /// table surfaces as `None` instead of a hang.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn path(&self, u: u32, v: u32) -> Option<Vec<u32>> {
        let budget = self.hops(u, v);
        if budget == INFINITY {
            return None;
        }
        let mut path = Vec::with_capacity(budget as usize + 1);
        path.push(u);
        let mut cur = u;
        for _ in 0..budget {
            cur = self.next_hop(cur, v)?;
            path.push(cur);
        }
        (cur == v).then_some(path)
    }
}

/// One traffic demand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Flow {
    /// Injecting node.
    pub source: u32,
    /// Destination node.
    pub destination: u32,
}

/// A packet in flight: just its flow id (the flow list is network-wide
/// configuration, so `log₂ |flows|` bits suffice — comfortably within `B`).
#[derive(Clone, Debug)]
struct PacketMsg {
    flow: u32,
    num_flows: u32,
}

impl Message for PacketMsg {
    fn bit_size(&self) -> u32 {
        bits_for_id(self.num_flows as usize)
    }
}

struct RouterNode {
    num_flows: u32,
    flows: std::sync::Arc<Vec<Flow>>,
    /// Port toward each flow's next hop from here (`None` = we are the
    /// destination).
    out_port: Vec<Option<Port>>,
    /// FIFO queue per port — one packet per edge-direction per round.
    queues: Vec<std::collections::VecDeque<u32>>,
    /// Arrival round per flow terminating here.
    arrivals: Vec<Option<u64>>,
}

impl RouterNode {
    fn enqueue(&mut self, flow: u32, round: u64) {
        match self.out_port[flow as usize] {
            Some(p) => self.queues[p as usize].push_back(flow),
            None => self.arrivals[flow as usize] = Some(round),
        }
    }

    /// Transmits the head of every port queue (one packet per
    /// edge-direction per round).
    fn transmit(&mut self, out: &mut Outbox<PacketMsg>) {
        for (port, queue) in self.queues.iter_mut().enumerate() {
            if let Some(flow) = queue.pop_front() {
                out.send(
                    port as Port,
                    PacketMsg {
                        flow,
                        num_flows: self.num_flows,
                    },
                );
            }
        }
    }
}

impl NodeAlgorithm for RouterNode {
    type Message = PacketMsg;
    type Output = Vec<Option<u64>>;

    fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<PacketMsg>) {
        let me = ctx.node_id();
        let flows = std::sync::Arc::clone(&self.flows);
        for (idx, flow) in flows.iter().enumerate() {
            if flow.source == me {
                self.enqueue(idx as u32, 0);
            }
        }
        self.transmit(out);
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        inbox: &Inbox<PacketMsg>,
        out: &mut Outbox<PacketMsg>,
    ) {
        let round = ctx.round();
        for (_port, msg) in inbox.iter() {
            self.enqueue(msg.flow, round);
        }
        self.transmit(out);
    }

    fn is_active(&self) -> bool {
        self.queues.iter().any(|q| !q.is_empty())
    }

    fn into_output(self, _ctx: &NodeContext<'_>) -> Vec<Option<u64>> {
        self.arrivals
    }
}

/// Delivery record for one flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// The flow.
    pub flow: Flow,
    /// Shortest-path hop distance (what the packet would take alone).
    pub hops: u32,
    /// Round the packet actually arrived.
    pub arrival_round: u64,
    /// Rounds spent queueing behind other flows (`arrival - hops`).
    pub queueing_delay: u64,
}

/// The outcome of a flow simulation.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// Per-flow delivery records, in input order.
    pub deliveries: Vec<Delivery>,
    /// Simulation statistics.
    pub stats: RunStats,
}

impl FlowReport {
    /// The worst queueing delay over all flows.
    pub fn max_queueing_delay(&self) -> u64 {
        self.deliveries
            .iter()
            .map(|d| d.queueing_delay)
            .max()
            .unwrap_or(0)
    }
}

/// Injects one packet per flow and forwards them along the routing tables
/// until every packet arrives, one packet per edge-direction per round.
///
/// # Errors
///
/// * [`CoreError::EmptyGraph`] on an empty graph.
/// * [`CoreError::InvalidNode`] for out-of-range flow endpoints.
/// * [`CoreError::Sim`] on simulator failures.
///
/// # Examples
///
/// ```
/// use dapsp_core::{apsp, routing};
/// use dapsp_graph::generators;
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let g = generators::grid(4, 4);
/// let tables = routing::RoutingTables::from_apsp(&apsp::run(&g)?);
/// let flows = vec![routing::Flow { source: 0, destination: 15 }];
/// let report = routing::simulate_flows(&g, &tables, &flows)?;
/// assert_eq!(report.deliveries[0].arrival_round, 6); // = d(0, 15)
/// assert_eq!(report.deliveries[0].queueing_delay, 0);
/// # Ok(())
/// # }
/// ```
pub fn simulate_flows(
    graph: &Graph,
    tables: &RoutingTables,
    flows: &[Flow],
) -> Result<FlowReport, CoreError> {
    let n = graph.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    if tables.next_hop.len() != n {
        return Err(CoreError::InvalidParameter(format!(
            "routing tables cover {} nodes but the graph has {n}",
            tables.next_hop.len()
        )));
    }
    for f in flows {
        for node in [f.source, f.destination] {
            if node as usize >= n {
                return Err(CoreError::InvalidNode { node, num_nodes: n });
            }
        }
    }
    let flows_arc = std::sync::Arc::new(flows.to_vec());
    let report = run_algorithm(graph, Config::for_n(n.max(flows.len())), |ctx| {
        let me = ctx.node_id();
        let out_port: Vec<Option<Port>> = flows_arc
            .iter()
            .map(|f| {
                tables.next_hop(me, f.destination).map(|hop| {
                    // Tables validated against this graph above; a next hop
                    // is by construction one of our neighbors.
                    ctx.neighbor_ids()
                        .iter()
                        .position(|&u| u == hop)
                        .expect("next hop is a neighbor") as Port
                })
            })
            .collect();
        RouterNode {
            num_flows: flows_arc.len() as u32,
            flows: std::sync::Arc::clone(&flows_arc),
            out_port,
            queues: vec![std::collections::VecDeque::new(); ctx.degree()],
            arrivals: vec![None; flows_arc.len()],
        }
    })?;
    let mut deliveries = Vec::with_capacity(flows.len());
    for (idx, flow) in flows.iter().enumerate() {
        let arrival = report
            .outputs
            .iter()
            .find_map(|arr| arr[idx])
            .expect("every packet reaches its destination on a connected graph");
        let hops = tables.hops(flow.source, flow.destination);
        deliveries.push(Delivery {
            flow: *flow,
            hops,
            arrival_round: arrival,
            queueing_delay: arrival - u64::from(hops),
        });
    }
    Ok(FlowReport {
        deliveries,
        stats: report.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apsp;
    use dapsp_graph::generators;

    fn tables(g: &Graph) -> RoutingTables {
        RoutingTables::from_apsp(&apsp::run(g).unwrap())
    }

    #[test]
    fn lone_packets_arrive_in_exactly_their_hop_distance() {
        let g = generators::grid(5, 5);
        let t = tables(&g);
        for (s, d) in [(0u32, 24u32), (3, 20), (12, 12)] {
            let flows = vec![Flow {
                source: s,
                destination: d,
            }];
            let r = simulate_flows(&g, &t, &flows).unwrap();
            assert_eq!(
                u64::from(r.deliveries[0].hops),
                r.deliveries[0].arrival_round
            );
            assert_eq!(r.deliveries[0].queueing_delay, 0);
        }
    }

    #[test]
    fn self_flow_arrives_instantly() {
        let g = generators::path(4);
        let t = tables(&g);
        let r = simulate_flows(
            &g,
            &t,
            &[Flow {
                source: 2,
                destination: 2,
            }],
        )
        .unwrap();
        assert_eq!(r.deliveries[0].arrival_round, 0);
    }

    #[test]
    fn contending_flows_queue_on_the_shared_edge() {
        // A star: every cross-leaf packet must traverse the hub, and the
        // hub can push one packet per leaf-edge per round. k flows to the
        // same destination serialize on the final edge.
        let g = generators::star(8);
        let t = tables(&g);
        let flows: Vec<Flow> = (1..6)
            .map(|s| Flow {
                source: s,
                destination: 7,
            })
            .collect();
        let r = simulate_flows(&g, &t, &flows).unwrap();
        // All have hop distance 2; arrivals serialize: 2, 3, 4, 5, 6.
        let mut arrivals: Vec<u64> = r.deliveries.iter().map(|d| d.arrival_round).collect();
        arrivals.sort_unstable();
        assert_eq!(arrivals, vec![2, 3, 4, 5, 6]);
        assert_eq!(r.max_queueing_delay(), 4);
    }

    #[test]
    fn disjoint_flows_do_not_interact() {
        let g = generators::cycle(12);
        let t = tables(&g);
        let flows = vec![
            Flow {
                source: 0,
                destination: 2,
            },
            Flow {
                source: 6,
                destination: 8,
            },
        ];
        let r = simulate_flows(&g, &t, &flows).unwrap();
        for d in &r.deliveries {
            assert_eq!(d.queueing_delay, 0);
        }
    }

    #[test]
    fn owned_construction_reuses_the_run_buffers() {
        // The whole point of `from_apsp_owned`: at n = 10⁵⁺ a defensive
        // copy of the O(n²) matrices doubles peak memory, so construction
        // must *move* them. Buffer identity pins that no clone happened.
        let g = generators::grid(3, 3);
        let result = apsp::run(&g).unwrap();
        let hop_ptr = result.next_hop[0].as_ptr();
        let dist_ptr = result.distances.row(0).as_ptr();
        let t = RoutingTables::from_apsp_owned(result);
        assert_eq!(t.next_hop_row(0).as_ptr(), hop_ptr, "next_hop was cloned");
        assert_eq!(t.hops_row(0).as_ptr(), dist_ptr, "distances were cloned");
    }

    #[test]
    fn cloned_tables_share_rather_than_duplicate() {
        let g = generators::path(5);
        let t = tables(&g);
        let u = t.clone();
        assert_eq!(t.next_hop_row(0).as_ptr(), u.next_hop_row(0).as_ptr());
        assert_eq!(t.hops_row(0).as_ptr(), u.hops_row(0).as_ptr());
    }

    #[test]
    fn path_reconstruction_is_shortest_and_bounded() {
        let g = generators::grid(4, 4);
        let t = tables(&g);
        for u in 0..16u32 {
            for v in 0..16u32 {
                let p = t.path(u, v).expect("connected graph");
                assert_eq!(p.len() as u32 - 1, t.hops(u, v));
                assert_eq!(*p.first().unwrap(), u);
                assert_eq!(*p.last().unwrap(), v);
                for w in p.windows(2) {
                    assert!(g.has_edge(w[0], w[1]));
                }
            }
        }
    }

    #[test]
    fn rejects_bad_endpoints() {
        let g = generators::path(3);
        let t = tables(&g);
        assert!(matches!(
            simulate_flows(
                &g,
                &t,
                &[Flow {
                    source: 0,
                    destination: 9
                }]
            )
            .unwrap_err(),
            CoreError::InvalidNode { node: 9, .. }
        ));
    }
}

#[cfg(test)]
mod churn_tests {
    //! `simulate_flows` × churn: packets forwarded over a *post-repair*
    //! table on the *mutated* topology must still satisfy the
    //! queueing-delay invariants the static tests pin — the repaired
    //! next-hop tree is a real shortest-path forest on the new graph, not
    //! a stale copy of the old one.

    use super::*;
    use crate::{apsp, churned_graph};
    use dapsp_congest::{churned_topology, TopologyPlan};
    use dapsp_graph::generators;
    use dapsp_graph::reference;

    fn churned_tables(g: &Graph, plan: &TopologyPlan) -> (RoutingTables, Graph) {
        let topo = g.to_topology();
        let repaired = apsp::run_churned(g, plan).unwrap();
        let final_topo = churned_topology(&topo, plan).unwrap();
        let t = RoutingTables::from_churned(&repaired, &final_topo).unwrap();
        let mutated = churned_graph(g, plan).unwrap();
        (t, mutated)
    }

    #[test]
    fn post_repair_tables_match_the_mutated_oracle() {
        let g = generators::grid(4, 4);
        let plan = TopologyPlan::new()
            .with_remove(2, 0, 1)
            .with_insert(3, 0, 15);
        let (t, mutated) = churned_tables(&g, &plan);
        let oracle = reference::apsp(&mutated);
        for s in 0..16u32 {
            for d in 0..16u32 {
                assert_eq!(
                    t.hops(s, d),
                    oracle.get(s, d).unwrap_or(INFINITY),
                    "hops({s}, {d})"
                );
            }
        }
    }

    #[test]
    fn lone_flows_on_the_repaired_table_arrive_at_hop_distance() {
        let g = generators::grid(4, 4);
        let plan = TopologyPlan::new()
            .with_remove(2, 0, 1)
            .with_insert(3, 0, 15);
        let (t, mutated) = churned_tables(&g, &plan);
        let oracle = reference::apsp(&mutated);
        for (s, d) in [(0u32, 15u32), (1, 14), (3, 12), (5, 5)] {
            let r = simulate_flows(
                &mutated,
                &t,
                &[Flow {
                    source: s,
                    destination: d,
                }],
            )
            .unwrap();
            assert_eq!(
                r.deliveries[0].arrival_round,
                u64::from(oracle.get(s, d).unwrap()),
                "flow {s}->{d} took a non-shortest route post-repair"
            );
            assert_eq!(r.deliveries[0].queueing_delay, 0);
        }
    }

    #[test]
    fn contending_flows_on_the_repaired_table_keep_the_delay_bound() {
        // k single-destination flows forward along the repaired next-hop
        // tree toward the destination; each packet can be overtaken by
        // every other packet at most once, so queueing delay stays below k.
        let g = generators::grid(4, 4);
        let plan = TopologyPlan::new().with_remove(2, 5, 6);
        let (t, mutated) = churned_tables(&g, &plan);
        let flows: Vec<Flow> = (0..6)
            .map(|s| Flow {
                source: s,
                destination: 15,
            })
            .collect();
        let r = simulate_flows(&mutated, &t, &flows).unwrap();
        assert_eq!(r.deliveries.len(), flows.len());
        for d in &r.deliveries {
            assert!(
                d.arrival_round >= u64::from(d.hops),
                "packet beat its own hop distance"
            );
            assert!(
                d.queueing_delay < flows.len() as u64,
                "flow {:?} queued {} rounds, more than the other {} packets \
                 could have caused",
                d.flow,
                d.queueing_delay,
                flows.len() - 1
            );
        }
    }

    #[test]
    fn severed_pairs_read_back_unroutable() {
        let g = generators::path(6);
        let plan = TopologyPlan::new().with_remove(2, 2, 3);
        let (t, _mutated) = churned_tables(&g, &plan);
        assert_eq!(t.hops(0, 5), INFINITY);
        assert_eq!(t.next_hop(0, 5), None);
        assert_eq!(t.path(0, 5), None);
        assert_eq!(t.path(0, 2).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn from_churned_rejects_partial_roots() {
        // A churned BFS maintains one root, not all pairs — no routing
        // table can be compacted from it.
        let g = generators::path(4);
        let plan = TopologyPlan::new();
        let r = crate::bfs::run_churned(&g, 0, &plan).unwrap();
        let topo = g.to_topology();
        assert!(matches!(
            RoutingTables::from_churned(&r, &topo).unwrap_err(),
            CoreError::InvalidParameter(_)
        ));
    }
}

#[cfg(test)]
mod width_tests {
    use super::*;

    /// A packet names its flow out of at most `n²` demands (all pairs) —
    /// `⌈log₂ n²⌉ ≤ 2⌈log₂ n⌉` bits, within the budget.
    #[test]
    fn packet_width_fits_the_budget() {
        for n in [2usize, 100, 1 << 10] {
            let budget = Config::for_n(n).message_budget.unwrap();
            let num_flows = (n * n) as u32;
            let packet = PacketMsg {
                flow: num_flows - 1,
                num_flows,
            };
            assert!(packet.bit_size() <= budget, "n={n}");
        }
    }
}

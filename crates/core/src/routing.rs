//! Packet forwarding over APSP-derived routing tables — the paper's
//! framing application (§1: link-state vs distance-vector both exist to
//! compute exactly these tables).
//!
//! [`RoutingTables`] extracts per-node next-hop tables from an
//! [`ApspResult`]; [`simulate_flows`] then runs actual packet delivery over
//! the same CONGEST network: each flow is a `(source, destination)` pair
//! known network-wide (like a traffic-engineering config), a packet is a
//! `B`-bit message carrying its flow id, and every edge forwards at most
//! one packet per direction per round — so *congestion is part of the
//! simulation*: flows sharing an edge queue up, and the delivery report
//! shows exactly how much each packet waited beyond its hop distance.

use dapsp_congest::{
    bits_for_id, Config, Inbox, Message, NodeAlgorithm, NodeContext, Outbox, Port, RunStats,
};
use dapsp_graph::Graph;

use crate::apsp::ApspResult;
use crate::error::CoreError;
use crate::runner::run_algorithm;

/// Per-node forwarding state derived from an APSP computation.
#[derive(Clone, Debug)]
pub struct RoutingTables {
    /// `next_hop[v][dst]` — the neighbor `v` forwards to for `dst`
    /// (`None` at `v == dst`).
    next_hop: Vec<Vec<Option<u32>>>,
    /// `hops[v][dst]` — path length, for reporting.
    hops: Vec<Vec<u32>>,
}

impl RoutingTables {
    /// Builds tables from a finished APSP run.
    pub fn from_apsp(result: &ApspResult) -> Self {
        let n = result.distances.num_nodes();
        let hops = (0..n as u32)
            .map(|v| result.distances.row(v).to_vec())
            .collect();
        RoutingTables {
            next_hop: result.next_hop.clone(),
            hops,
        }
    }

    /// The neighbor `v` forwards to when routing toward `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `dst` is out of range.
    pub fn next_hop(&self, v: u32, dst: u32) -> Option<u32> {
        self.next_hop[v as usize][dst as usize]
    }

    /// Path length from `v` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `dst` is out of range.
    pub fn hops(&self, v: u32, dst: u32) -> u32 {
        self.hops[v as usize][dst as usize]
    }
}

/// One traffic demand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Flow {
    /// Injecting node.
    pub source: u32,
    /// Destination node.
    pub destination: u32,
}

/// A packet in flight: just its flow id (the flow list is network-wide
/// configuration, so `log₂ |flows|` bits suffice — comfortably within `B`).
#[derive(Clone, Debug)]
struct PacketMsg {
    flow: u32,
    num_flows: u32,
}

impl Message for PacketMsg {
    fn bit_size(&self) -> u32 {
        bits_for_id(self.num_flows as usize)
    }
}

struct RouterNode {
    num_flows: u32,
    flows: std::sync::Arc<Vec<Flow>>,
    /// Port toward each flow's next hop from here (`None` = we are the
    /// destination).
    out_port: Vec<Option<Port>>,
    /// FIFO queue per port — one packet per edge-direction per round.
    queues: Vec<std::collections::VecDeque<u32>>,
    /// Arrival round per flow terminating here.
    arrivals: Vec<Option<u64>>,
}

impl RouterNode {
    fn enqueue(&mut self, flow: u32, round: u64) {
        match self.out_port[flow as usize] {
            Some(p) => self.queues[p as usize].push_back(flow),
            None => self.arrivals[flow as usize] = Some(round),
        }
    }

    /// Transmits the head of every port queue (one packet per
    /// edge-direction per round).
    fn transmit(&mut self, out: &mut Outbox<PacketMsg>) {
        for (port, queue) in self.queues.iter_mut().enumerate() {
            if let Some(flow) = queue.pop_front() {
                out.send(
                    port as Port,
                    PacketMsg {
                        flow,
                        num_flows: self.num_flows,
                    },
                );
            }
        }
    }
}

impl NodeAlgorithm for RouterNode {
    type Message = PacketMsg;
    type Output = Vec<Option<u64>>;

    fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<PacketMsg>) {
        let me = ctx.node_id();
        let flows = std::sync::Arc::clone(&self.flows);
        for (idx, flow) in flows.iter().enumerate() {
            if flow.source == me {
                self.enqueue(idx as u32, 0);
            }
        }
        self.transmit(out);
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        inbox: &Inbox<PacketMsg>,
        out: &mut Outbox<PacketMsg>,
    ) {
        let round = ctx.round();
        for (_port, msg) in inbox.iter() {
            self.enqueue(msg.flow, round);
        }
        self.transmit(out);
    }

    fn is_active(&self) -> bool {
        self.queues.iter().any(|q| !q.is_empty())
    }

    fn into_output(self, _ctx: &NodeContext<'_>) -> Vec<Option<u64>> {
        self.arrivals
    }
}

/// Delivery record for one flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// The flow.
    pub flow: Flow,
    /// Shortest-path hop distance (what the packet would take alone).
    pub hops: u32,
    /// Round the packet actually arrived.
    pub arrival_round: u64,
    /// Rounds spent queueing behind other flows (`arrival - hops`).
    pub queueing_delay: u64,
}

/// The outcome of a flow simulation.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// Per-flow delivery records, in input order.
    pub deliveries: Vec<Delivery>,
    /// Simulation statistics.
    pub stats: RunStats,
}

impl FlowReport {
    /// The worst queueing delay over all flows.
    pub fn max_queueing_delay(&self) -> u64 {
        self.deliveries
            .iter()
            .map(|d| d.queueing_delay)
            .max()
            .unwrap_or(0)
    }
}

/// Injects one packet per flow and forwards them along the routing tables
/// until every packet arrives, one packet per edge-direction per round.
///
/// # Errors
///
/// * [`CoreError::EmptyGraph`] on an empty graph.
/// * [`CoreError::InvalidNode`] for out-of-range flow endpoints.
/// * [`CoreError::Sim`] on simulator failures.
///
/// # Examples
///
/// ```
/// use dapsp_core::{apsp, routing};
/// use dapsp_graph::generators;
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let g = generators::grid(4, 4);
/// let tables = routing::RoutingTables::from_apsp(&apsp::run(&g)?);
/// let flows = vec![routing::Flow { source: 0, destination: 15 }];
/// let report = routing::simulate_flows(&g, &tables, &flows)?;
/// assert_eq!(report.deliveries[0].arrival_round, 6); // = d(0, 15)
/// assert_eq!(report.deliveries[0].queueing_delay, 0);
/// # Ok(())
/// # }
/// ```
pub fn simulate_flows(
    graph: &Graph,
    tables: &RoutingTables,
    flows: &[Flow],
) -> Result<FlowReport, CoreError> {
    let n = graph.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    if tables.next_hop.len() != n {
        return Err(CoreError::InvalidParameter(format!(
            "routing tables cover {} nodes but the graph has {n}",
            tables.next_hop.len()
        )));
    }
    for f in flows {
        for node in [f.source, f.destination] {
            if node as usize >= n {
                return Err(CoreError::InvalidNode { node, num_nodes: n });
            }
        }
    }
    let flows_arc = std::sync::Arc::new(flows.to_vec());
    let report = run_algorithm(graph, Config::for_n(n.max(flows.len())), |ctx| {
        let me = ctx.node_id();
        let out_port: Vec<Option<Port>> = flows_arc
            .iter()
            .map(|f| {
                tables.next_hop(me, f.destination).map(|hop| {
                    // Tables validated against this graph above; a next hop
                    // is by construction one of our neighbors.
                    ctx.neighbor_ids()
                        .iter()
                        .position(|&u| u == hop)
                        .expect("next hop is a neighbor") as Port
                })
            })
            .collect();
        RouterNode {
            num_flows: flows_arc.len() as u32,
            flows: std::sync::Arc::clone(&flows_arc),
            out_port,
            queues: vec![std::collections::VecDeque::new(); ctx.degree()],
            arrivals: vec![None; flows_arc.len()],
        }
    })?;
    let mut deliveries = Vec::with_capacity(flows.len());
    for (idx, flow) in flows.iter().enumerate() {
        let arrival = report
            .outputs
            .iter()
            .find_map(|arr| arr[idx])
            .expect("every packet reaches its destination on a connected graph");
        let hops = tables.hops(flow.source, flow.destination);
        deliveries.push(Delivery {
            flow: *flow,
            hops,
            arrival_round: arrival,
            queueing_delay: arrival - u64::from(hops),
        });
    }
    Ok(FlowReport {
        deliveries,
        stats: report.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apsp;
    use dapsp_graph::generators;

    fn tables(g: &Graph) -> RoutingTables {
        RoutingTables::from_apsp(&apsp::run(g).unwrap())
    }

    #[test]
    fn lone_packets_arrive_in_exactly_their_hop_distance() {
        let g = generators::grid(5, 5);
        let t = tables(&g);
        for (s, d) in [(0u32, 24u32), (3, 20), (12, 12)] {
            let flows = vec![Flow {
                source: s,
                destination: d,
            }];
            let r = simulate_flows(&g, &t, &flows).unwrap();
            assert_eq!(
                u64::from(r.deliveries[0].hops),
                r.deliveries[0].arrival_round
            );
            assert_eq!(r.deliveries[0].queueing_delay, 0);
        }
    }

    #[test]
    fn self_flow_arrives_instantly() {
        let g = generators::path(4);
        let t = tables(&g);
        let r = simulate_flows(
            &g,
            &t,
            &[Flow {
                source: 2,
                destination: 2,
            }],
        )
        .unwrap();
        assert_eq!(r.deliveries[0].arrival_round, 0);
    }

    #[test]
    fn contending_flows_queue_on_the_shared_edge() {
        // A star: every cross-leaf packet must traverse the hub, and the
        // hub can push one packet per leaf-edge per round. k flows to the
        // same destination serialize on the final edge.
        let g = generators::star(8);
        let t = tables(&g);
        let flows: Vec<Flow> = (1..6)
            .map(|s| Flow {
                source: s,
                destination: 7,
            })
            .collect();
        let r = simulate_flows(&g, &t, &flows).unwrap();
        // All have hop distance 2; arrivals serialize: 2, 3, 4, 5, 6.
        let mut arrivals: Vec<u64> = r.deliveries.iter().map(|d| d.arrival_round).collect();
        arrivals.sort_unstable();
        assert_eq!(arrivals, vec![2, 3, 4, 5, 6]);
        assert_eq!(r.max_queueing_delay(), 4);
    }

    #[test]
    fn disjoint_flows_do_not_interact() {
        let g = generators::cycle(12);
        let t = tables(&g);
        let flows = vec![
            Flow {
                source: 0,
                destination: 2,
            },
            Flow {
                source: 6,
                destination: 8,
            },
        ];
        let r = simulate_flows(&g, &t, &flows).unwrap();
        for d in &r.deliveries {
            assert_eq!(d.queueing_delay, 0);
        }
    }

    #[test]
    fn rejects_bad_endpoints() {
        let g = generators::path(3);
        let t = tables(&g);
        assert!(matches!(
            simulate_flows(
                &g,
                &t,
                &[Flow {
                    source: 0,
                    destination: 9
                }]
            )
            .unwrap_err(),
            CoreError::InvalidNode { node: 9, .. }
        ));
    }
}

#[cfg(test)]
mod width_tests {
    use super::*;

    /// A packet names its flow out of at most `n²` demands (all pairs) —
    /// `⌈log₂ n²⌉ ≤ 2⌈log₂ n⌉` bits, within the budget.
    #[test]
    fn packet_width_fits_the_budget() {
        for n in [2usize, 100, 1 << 10] {
            let budget = Config::for_n(n).message_budget.unwrap();
            let num_flows = (n * n) as u32;
            let packet = PacketMsg {
                flow: num_flows - 1,
                num_flows,
            };
            assert!(packet.bit_size() <= budget, "n={n}");
        }
    }
}

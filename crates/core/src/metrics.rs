//! Exact graph metrics from APSP (Lemmas 2–6 of the paper), all `O(n)`
//! rounds: eccentricities, diameter, radius, center, peripheral vertices.
//!
//! Each function runs Algorithm 1 once and then performs the paper's `O(D)`
//! aggregation over `T_1` distributedly, so the reported round counts are
//! the true end-to-end CONGEST costs. If you need several metrics at once,
//! compute APSP once with [`apsp::run`] and derive the
//! rest from [`from_apsp`].

use dapsp_congest::{ObserverHandle, RunStats, Topology};
use dapsp_graph::Graph;

use crate::aggregate::{self, AggOp};
use crate::apsp::{self, ApspResult};
use crate::error::CoreError;
use crate::observe::Obs;

/// Per-node eccentricities (Lemma 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EccentricityResult {
    /// `eccentricities[v]` = `ecc(v)`; per Definition 6, node `v` knows its
    /// own entry.
    pub eccentricities: Vec<u32>,
    /// Round/message statistics.
    pub stats: RunStats,
}

/// A single graph-wide value (diameter or radius) known to every node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScalarResult {
    /// The computed value.
    pub value: u32,
    /// Round/message statistics.
    pub stats: RunStats,
}

/// A vertex subset defined by an eccentricity threshold (center or
/// peripheral vertices); per Definition 6, each node knows whether it
/// belongs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MembershipResult {
    /// `members[v]` is true iff `v` belongs to the set.
    pub members: Vec<bool>,
    /// The threshold used (radius for the center, diameter for peripheral
    /// vertices).
    pub threshold: u32,
    /// Round/message statistics.
    pub stats: RunStats,
}

impl MembershipResult {
    /// The member node ids, ascending.
    pub fn member_ids(&self) -> Vec<u32> {
        self.members
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(v, _)| v as u32)
            .collect()
    }
}

/// What each metric needs from a finished APSP run: the local
/// eccentricities (free local computation, Lemma 2).
fn local_eccentricities(apsp: &ApspResult) -> Vec<u32> {
    let n = apsp.distances.num_nodes();
    (0..n as u32)
        .map(|v| {
            apsp.distances
                .eccentricity(v)
                .expect("APSP result of a connected graph is finite")
        })
        .collect()
}

/// Computes every node's eccentricity (Lemma 2): APSP + free local maxima.
///
/// # Errors
///
/// Propagates [`apsp::run`]'s errors (empty/disconnected graph, simulation
/// failures).
///
/// # Examples
///
/// ```
/// use dapsp_core::metrics;
/// use dapsp_graph::generators;
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let g = generators::path(5);
/// assert_eq!(metrics::eccentricities(&g)?.eccentricities, vec![4, 3, 2, 3, 4]);
/// # Ok(())
/// # }
/// ```
pub fn eccentricities(graph: &Graph) -> Result<EccentricityResult, CoreError> {
    let topology = graph.to_topology();
    let result = apsp::run_on(&topology)?;
    Ok(EccentricityResult {
        eccentricities: local_eccentricities(&result),
        stats: result.stats,
    })
}

/// Derives all five Lemma 2–6 metrics from one APSP run, performing the
/// required `O(D)` aggregations over `T_1` distributedly.
#[derive(Clone, Debug)]
pub struct MetricsBundle {
    /// Per-node eccentricities.
    pub eccentricities: Vec<u32>,
    /// The diameter.
    pub diameter: u32,
    /// The radius.
    pub radius: u32,
    /// Center membership per node.
    pub center: Vec<bool>,
    /// Peripheral-vertex membership per node.
    pub peripheral: Vec<bool>,
    /// Statistics including the APSP run and both aggregations.
    pub stats: RunStats,
}

/// Computes the full metric bundle from an existing APSP result.
///
/// # Errors
///
/// Propagates aggregation failures.
pub fn from_apsp(graph: &Graph, apsp: &ApspResult) -> Result<MetricsBundle, CoreError> {
    from_apsp_on(&graph.to_topology(), apsp)
}

/// [`from_apsp`] on a prebuilt [`Topology`], so callers that already hold
/// one avoid rebuilding the CSR arrays.
///
/// # Errors
///
/// Propagates aggregation failures.
pub fn from_apsp_on(topology: &Topology, apsp: &ApspResult) -> Result<MetricsBundle, CoreError> {
    from_apsp_obs(topology, apsp, Obs::none())
}

/// Computes the full Lemma 2–6 bundle with every phase streamed to
/// `observer`: the APSP run reports as `"bfs"` + `"apsp:waves"` and the
/// two threshold aggregations as `"agg:max"` / `"agg:min"`.
///
/// # Errors
///
/// Propagates [`apsp::run`] and aggregation failures.
pub fn bundle_observed(
    graph: &Graph,
    observer: &ObserverHandle,
) -> Result<MetricsBundle, CoreError> {
    let topology = graph.to_topology();
    let obs = Obs::watching(observer);
    let result = apsp::run_on_obs(&topology, obs)?;
    from_apsp_obs(&topology, &result, obs)
}

fn from_apsp_obs(
    topology: &Topology,
    apsp: &ApspResult,
    obs: Obs<'_>,
) -> Result<MetricsBundle, CoreError> {
    let ecc = local_eccentricities(apsp);
    let values: Vec<u64> = ecc.iter().map(|&e| u64::from(e)).collect();
    let max = aggregate::run_on_obs(topology, &apsp.tree, &values, AggOp::Max, obs)?;
    let min = aggregate::run_on_obs(topology, &apsp.tree, &values, AggOp::Min, obs)?;
    let diameter = max.value as u32;
    let radius = min.value as u32;
    let center = ecc.iter().map(|&e| e == radius).collect();
    let peripheral = ecc.iter().map(|&e| e == diameter).collect();
    let mut stats = apsp.stats;
    stats.absorb_sequential(&max.stats);
    stats.absorb_sequential(&min.stats);
    Ok(MetricsBundle {
        eccentricities: ecc,
        diameter,
        radius,
        center,
        peripheral,
        stats,
    })
}

/// Computes the diameter in `O(n)` rounds (Lemma 3): APSP + max-aggregation
/// over `T_1`.
///
/// # Errors
///
/// Propagates [`apsp::run`] and aggregation errors.
///
/// # Examples
///
/// ```
/// use dapsp_core::metrics;
/// use dapsp_graph::generators;
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// assert_eq!(metrics::diameter(&generators::cycle(12))?.value, 6);
/// # Ok(())
/// # }
/// ```
pub fn diameter(graph: &Graph) -> Result<ScalarResult, CoreError> {
    let topology = graph.to_topology();
    let result = apsp::run_on(&topology)?;
    let ecc = local_eccentricities(&result);
    let values: Vec<u64> = ecc.iter().map(|&e| u64::from(e)).collect();
    let agg = aggregate::run_on(&topology, &result.tree, &values, AggOp::Max)?;
    let mut stats = result.stats;
    stats.absorb_sequential(&agg.stats);
    Ok(ScalarResult {
        value: agg.value as u32,
        stats,
    })
}

/// Computes the radius in `O(n)` rounds (Lemma 4): APSP +
/// min-aggregation over `T_1`.
///
/// # Errors
///
/// Propagates [`apsp::run`] and aggregation errors.
pub fn radius(graph: &Graph) -> Result<ScalarResult, CoreError> {
    let topology = graph.to_topology();
    let result = apsp::run_on(&topology)?;
    let ecc = local_eccentricities(&result);
    let values: Vec<u64> = ecc.iter().map(|&e| u64::from(e)).collect();
    let agg = aggregate::run_on(&topology, &result.tree, &values, AggOp::Min)?;
    let mut stats = result.stats;
    stats.absorb_sequential(&agg.stats);
    Ok(ScalarResult {
        value: agg.value as u32,
        stats,
    })
}

/// Computes the center in `O(n)` rounds (Lemma 5): each node compares its
/// eccentricity to the broadcast radius.
///
/// # Errors
///
/// Propagates [`apsp::run`] and aggregation errors.
///
/// # Examples
///
/// ```
/// use dapsp_core::metrics;
/// use dapsp_graph::generators;
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let c = metrics::center(&generators::path(7))?;
/// assert_eq!(c.member_ids(), vec![3]);
/// # Ok(())
/// # }
/// ```
pub fn center(graph: &Graph) -> Result<MembershipResult, CoreError> {
    let topology = graph.to_topology();
    let result = apsp::run_on(&topology)?;
    let bundle = from_apsp_on(&topology, &result)?;
    Ok(MembershipResult {
        members: bundle.center,
        threshold: bundle.radius,
        stats: bundle.stats,
    })
}

/// Computes the peripheral vertices in `O(n)` rounds (Lemma 6): each node
/// compares its eccentricity to the broadcast diameter.
///
/// # Errors
///
/// Propagates [`apsp::run`] and aggregation errors.
pub fn peripheral_vertices(graph: &Graph) -> Result<MembershipResult, CoreError> {
    let topology = graph.to_topology();
    let result = apsp::run_on(&topology)?;
    let bundle = from_apsp_on(&topology, &result)?;
    Ok(MembershipResult {
        members: bundle.peripheral,
        threshold: bundle.diameter,
        stats: bundle.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapsp_graph::{generators, reference};

    fn zoo() -> Vec<Graph> {
        vec![
            generators::path(10),
            generators::cycle(9),
            generators::star(8),
            generators::complete(6),
            generators::grid(3, 4),
            generators::balanced_tree(2, 3),
            generators::lollipop(5, 6),
            generators::erdos_renyi_connected(22, 0.15, 5),
            generators::double_broom(18, 6),
        ]
    }

    #[test]
    fn eccentricities_match_oracle() {
        for g in zoo() {
            let r = eccentricities(&g).unwrap();
            assert_eq!(Some(r.eccentricities), reference::eccentricities(&g));
        }
    }

    #[test]
    fn diameter_and_radius_match_oracle() {
        for g in zoo() {
            assert_eq!(Some(diameter(&g).unwrap().value), reference::diameter(&g));
            assert_eq!(Some(radius(&g).unwrap().value), reference::radius(&g));
        }
    }

    #[test]
    fn center_and_peripheral_match_oracle() {
        for g in zoo() {
            assert_eq!(
                Some(center(&g).unwrap().member_ids()),
                reference::center(&g)
            );
            assert_eq!(
                Some(peripheral_vertices(&g).unwrap().member_ids()),
                reference::peripheral_vertices(&g)
            );
        }
    }

    #[test]
    fn bundle_is_internally_consistent() {
        let g = generators::grid(4, 4);
        let a = apsp::run(&g).unwrap();
        let b = from_apsp(&g, &a).unwrap();
        assert!(b.radius <= b.diameter && b.diameter <= 2 * b.radius);
        assert!(b.center.iter().any(|&c| c));
        assert!(b.peripheral.iter().any(|&p| p));
        for v in 0..16 {
            assert_eq!(b.center[v], b.eccentricities[v] == b.radius);
            assert_eq!(b.peripheral[v], b.eccentricities[v] == b.diameter);
        }
    }

    #[test]
    fn rounds_stay_linear_including_aggregation() {
        let g = generators::cycle(30);
        let r = diameter(&g).unwrap();
        // APSP (~3n) plus one BFS-depth aggregation (~2D <= n) and slack.
        assert!(r.stats.rounds <= 5 * 30 + 10, "rounds={}", r.stats.rounds);
    }
}

//! Theorem 5: a `(×, 1+ε)` girth approximation in
//! `O(min{n/g + D·log(D/g), n})` rounds.
//!
//! The scheme from the paper (proof in the full version): maintain a girth
//! upper bound `ĝ`, initially `2·D₀ + 1` (every non-tree graph contains a
//! cycle of length at most `2D + 1`). Repeatedly build a k-dominating set
//! with `k = ⌊ĝ/4⌋` and run `DOM`-SP. During the simultaneous growth every
//! repeated arrival closes a cycle: a dominator within distance `k` of a
//! shortest cycle detects a candidate of length at most `g + 2k ≤ g + ĝ/2`,
//! so each iteration at least halves the gap between `ĝ` and `2g` — after
//! `O(log(D/g))` iterations `ĝ ≤ 2g + O(1)`. A final pass with
//! `k = ⌊ε·ĝ/8⌋` tightens the estimate to `(1+ε)·g`. The iteration with
//! estimate `ĝ` costs `O(n/ĝ + D)` rounds, and the sum telescopes to the
//! theorem's bound.

use dapsp_congest::{RunStats, Topology};
use dapsp_graph::{Graph, INFINITY};

use crate::aggregate::{self, AggOp};
use crate::bfs;
use crate::dominating;
use crate::error::CoreError;
use crate::ssp;
use crate::tree::TreeKnowledge;

/// Result of the girth approximation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GirthApproxResult {
    /// The estimate, with `g <= estimate <= (1+ε)·g` (`None` for trees).
    pub estimate: Option<u32>,
    /// Number of refinement iterations executed (the `log(D/g)` factor).
    pub iterations: u32,
    /// Round/message statistics over all phases.
    pub stats: RunStats,
}

/// One probe: dominating set with radius `k`, DOM-SP, min-aggregate the
/// cycle candidates. Returns the smallest candidate seen (`None` if none).
fn probe(
    topology: &Topology,
    tree: &TreeKnowledge,
    k: u32,
    stats: &mut RunStats,
) -> Result<Option<u32>, CoreError> {
    let n = topology.num_nodes();
    let dom = dominating::run_on(topology, tree, k)?;
    stats.absorb_sequential(&dom.stats);
    let sp = ssp::run_on(topology, &dom.member_ids())?;
    stats.absorb_sequential(&sp.stats);
    let sentinel = 2 * n as u64 + 2;
    let candidates: Vec<u64> = sp
        .local_girth_candidates
        .iter()
        .map(|&c| {
            if c == INFINITY {
                sentinel
            } else {
                u64::from(c)
            }
        })
        .collect();
    let min = aggregate::run_on(topology, tree, &candidates, AggOp::Min)?;
    stats.absorb_sequential(&min.stats);
    Ok(if min.value >= sentinel {
        None
    } else {
        Some(min.value as u32)
    })
}

/// Runs the Theorem 5 girth approximation.
///
/// # Errors
///
/// * [`CoreError::InvalidParameter`] for non-positive `eps`.
/// * [`CoreError::EmptyGraph`] / [`CoreError::Disconnected`] on bad graphs.
/// * [`CoreError::Sim`] on simulator failures.
///
/// # Examples
///
/// ```
/// use dapsp_core::girth_approx;
/// use dapsp_graph::generators;
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let g = generators::tadpole(8, 40);
/// let r = girth_approx::run(&g, 0.5)?;
/// let est = r.estimate.unwrap();
/// assert!(est >= 8 && f64::from(est) <= 1.5 * 8.0);
/// # Ok(())
/// # }
/// ```
pub fn run(graph: &Graph, eps: f64) -> Result<GirthApproxResult, CoreError> {
    if eps <= 0.0 || !eps.is_finite() {
        return Err(CoreError::InvalidParameter(format!(
            "epsilon must be positive and finite, got {eps}"
        )));
    }
    let n = graph.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    let topology = graph.to_topology();
    // Claim 1 tree test, as in the exact algorithm.
    let t1 = bfs::run_on(&topology, 0)?;
    if !t1.reached_all() {
        return Err(CoreError::Disconnected);
    }
    let mut stats = t1.stats;
    let flags: Vec<u64> = t1.receipts.iter().map(|&r| u64::from(r > 1)).collect();
    let or = aggregate::run_on(&topology, &t1.tree, &flags, AggOp::Or)?;
    stats.absorb_sequential(&or.stats);
    if or.value == 0 {
        return Ok(GirthApproxResult {
            estimate: None,
            iterations: 0,
            stats,
        });
    }
    // D0 for the initial loose bound ĝ = 2·D0 + 1 >= 2·D + 1 >= g.
    let depths: Vec<u64> = t1.dist.iter().map(|&d| u64::from(d)).collect();
    let agg = aggregate::run_on(&topology, &t1.tree, &depths, AggOp::Max)?;
    stats.absorb_sequential(&agg.stats);
    let d0 = 2 * agg.value as u32;
    let mut g_hat = 2 * d0 + 1;
    // Refinement: the gap to 2g at least halves per iteration, so
    // ceil(log2(ĝ₀)) + 1 iterations certainly reach the fixed point.
    let max_iters = (32 - g_hat.leading_zeros()) + 1;
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        let k = g_hat / 4;
        let found = probe(&topology, &t1.tree, k, &mut stats)?
            .expect("a non-tree graph always yields a candidate");
        let new_hat = found.min(g_hat);
        if k == 0 {
            // DOM = V: the probe was a full APSP-equivalent, hence exact.
            return Ok(GirthApproxResult {
                estimate: Some(new_hat),
                iterations,
                stats,
            });
        }
        if new_hat >= g_hat {
            g_hat = new_hat;
            break; // converged
        }
        g_hat = new_hat;
    }
    // Final precision pass: k = ⌊ε·ĝ/8⌋ gives estimate <= g + 2k <= (1+ε)g.
    let k = (eps * f64::from(g_hat) / 8.0).floor() as u32;
    let found = probe(&topology, &t1.tree, k, &mut stats)?
        .expect("a non-tree graph always yields a candidate");
    Ok(GirthApproxResult {
        estimate: Some(found.min(g_hat)),
        iterations,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapsp_graph::{generators, reference};

    fn check(g: &Graph, eps: f64) -> GirthApproxResult {
        let r = run(g, eps).unwrap();
        let truth = reference::girth(g);
        match truth {
            None => assert_eq!(r.estimate, None),
            Some(girth) => {
                let est = r.estimate.expect("cycle exists");
                assert!(est >= girth, "estimate {est} below girth {girth}");
                assert!(
                    f64::from(est) <= (1.0 + eps) * f64::from(girth) + 1e-9,
                    "estimate {est} above (1+{eps})·{girth}"
                );
            }
        }
        r
    }

    #[test]
    fn guarantee_on_cycles_and_tadpoles() {
        for eps in [0.25, 0.5, 1.0] {
            check(&generators::cycle(6), eps);
            check(&generators::cycle(17), eps);
            check(&generators::tadpole(5, 25), eps);
            check(&generators::tadpole(9, 30), eps);
            check(&generators::lollipop(4, 12), eps);
        }
    }

    #[test]
    fn guarantee_on_dense_and_random_graphs() {
        check(&generators::complete(7), 0.5);
        check(&generators::grid(4, 5), 0.5);
        check(&generators::hypercube(4), 0.5);
        for seed in 0..4 {
            check(&generators::erdos_renyi_connected(26, 0.12, seed), 0.5);
        }
    }

    #[test]
    fn trees_short_circuit() {
        let r = check(&generators::balanced_tree(2, 4), 0.5);
        assert_eq!(r.iterations, 0);
        let n = 31u64;
        assert!(r.stats.rounds <= 4 * n, "rounds={}", r.stats.rounds);
    }

    #[test]
    fn iteration_count_is_logarithmic() {
        let g = generators::tadpole(4, 60);
        let r = check(&g, 0.5);
        // ĝ starts at 2·D0+1 <= 4n; log2 of that is < 9 here.
        assert!(r.iterations <= 10, "iterations={}", r.iterations);
    }

    #[test]
    fn rejects_bad_epsilon() {
        let g = generators::cycle(5);
        assert!(matches!(
            run(&g, 0.0).unwrap_err(),
            CoreError::InvalidParameter(_)
        ));
    }

    use dapsp_graph::Graph;
}

/// Corollary 2: a `(×, 2 − 1/g)` girth approximation.
///
/// The paper obtains this ratio by combining Theorem 5 with the
/// independent Peleg–Roditty–Tal girth algorithm (`Õ(D + √(g·n))`
/// rounds, from the companion ICALP 2012 paper whose algorithm is not in
/// this paper's text). Since `2 − 1/g ≥ 3/2` for every `g ≥ 2`, running
/// this paper's own Theorem 5 machinery at `ε = 1/2` already achieves the
/// promised ratio; that is what this function does, in
/// `O(min{n/g + D·log(D/g), n})` rounds (see DESIGN.md on the
/// substitution).
///
/// # Errors
///
/// Same as [`run`].
///
/// # Examples
///
/// ```
/// use dapsp_core::girth_approx;
/// use dapsp_graph::generators;
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let g = generators::hairy_cycle(12, 60);
/// let est = girth_approx::corollary2(&g)?.estimate.unwrap();
/// assert!(est >= 12);
/// assert!(f64::from(est) <= (2.0 - 1.0 / 12.0) * 12.0);
/// # Ok(())
/// # }
/// ```
pub fn corollary2(graph: &Graph) -> Result<GirthApproxResult, CoreError> {
    run(graph, 0.5)
}

#[cfg(test)]
mod corollary2_tests {
    use super::*;
    use dapsp_graph::{generators, reference};

    #[test]
    fn ratio_is_within_two_minus_one_over_g() {
        for g in [
            generators::cycle(9),
            generators::hairy_cycle(8, 40),
            generators::tadpole(5, 20),
            generators::complete(6),
        ] {
            let truth = reference::girth(&g).unwrap();
            let est = corollary2(&g).unwrap().estimate.unwrap();
            assert!(est >= truth);
            let ratio = 2.0 - 1.0 / f64::from(truth);
            assert!(
                f64::from(est) <= ratio * f64::from(truth) + 1e-9,
                "est {est} vs ({ratio})·{truth}"
            );
        }
    }
}

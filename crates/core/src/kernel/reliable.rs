//! Reliable delivery over lossy links: a bounded-horizon synchronizer
//! wrapping any [`Protocol`].
//!
//! The paper's algorithms assume the CONGEST model's reliable synchronous
//! links. Under a [`FaultPlan`](dapsp_congest::FaultPlan) adversary,
//! messages vanish — and naive per-message retransmission is *not* enough
//! to recover the paper's guarantees: a retransmitted wave arrives late,
//! and a forward-mode [`WaveKernel`](super::WaveKernel) adopts whatever
//! reaches it first, so plain retries silently corrupt distances instead
//! of fixing them.
//!
//! [`ReliableKernel`] therefore re-synchronizes the whole execution: it
//! runs the wrapped kernel in *simulated* rounds, advancing a node to
//! simulated round `k + 1` only once the round-`k` frame of **every**
//! neighbor has arrived (an α-synchronizer with per-link flow control).
//! Each link runs an alternating-bit stop-and-wait protocol:
//!
//! * per simulated round, every node sends exactly one *frame* per port —
//!   carrying the wrapped kernel's payload, or an empty marker when it had
//!   nothing to say — stamped with a 1-bit parity (frame index mod 2);
//! * the receiver delivers frames in order (parity match), acknowledges
//!   every arrival (duplicates are re-acknowledged), and buffers payloads
//!   until all ports have reached the same simulated round;
//! * the sender keeps at most one frame in flight per port, retransmitting
//!   on a fixed 2-round timeout until acknowledged, up to
//!   [`max_retries`](ReliableKernel::new) retransmissions — past that the
//!   node stalls and the run ends in
//!   [`SimError::RoundLimitExceeded`](dapsp_congest::SimError), never in a
//!   silently wrong answer.
//!
//! The inner execution is therefore *identical* to a fault-free
//! synchronous run — same deliveries, same rounds, same outputs — as long
//! as the caller's `horizon` covers the fault-free quiescence round.
//! Fault-free, a simulated round costs two real rounds (frame out, ack
//! back), so the wrapper's round inflation is ≈ 2×; under loss `p` each
//! loss adds one 2-round timeout, ≈ `2/(1-p)`× overall. The horizon is a
//! worst-case bound, not a sentence: once every node's inner kernel is
//! finished and no real payload remains anywhere, the kernels vote
//! [`Quiescence::Shutdown`] (see
//! [`quiescence`](ReliableKernel::quiescence)) and the engine terminates
//! the run early instead of circulating empty marker frames to the
//! horizon.
//!
//! # Budget
//!
//! A frame costs 5 bits of overhead on top of the wrapped payload: one
//! data-presence bit, the data parity, one payload-presence bit (empty
//! marker frames), one ack-presence bit, and the ack parity. The worst
//! stacked Algorithm 1 wave leaves exactly 5 bits of headroom under
//! `B = 2⌈log₂ n⌉ + 8`, so acks ride the same budget the engine already
//! enforces — see `message_budget.rs` for the proof by test.

use std::collections::VecDeque;

use dapsp_congest::{NodeContext, Port, Quiescence, TraceTags, Width};

use super::protocol::{Protocol, Tx};

/// How many real rounds a sender waits for an ack before retransmitting:
/// one round for the frame to arrive, one for the ack to return. Under
/// zero loss the timeout never fires.
const RETRY_TIMEOUT: u8 = 2;

/// One wire message of the reliable link layer.
///
/// Both halves are optional so one envelope serves data, ack, and
/// piggybacked data+ack sends; a message with neither is never sent.
#[derive(Clone, Debug)]
pub struct Frame<P> {
    /// The data sub-frame: the frame's parity bit (index mod 2) and the
    /// wrapped kernel's payload — `None` for an empty marker frame, which
    /// still advances the receiver's simulated round.
    pub data: Option<(bool, Option<P>)>,
    /// Acknowledgment of the last frame received on this link, by parity.
    pub ack: Option<bool>,
    /// Diagnostic only: this frame's data sub-frame is a retransmission.
    /// Costs **zero wire bits** — [`width`](ReliableKernel::width) never
    /// counts it; it exists so observers can attribute retry traffic (see
    /// [`TraceTags::retransmit`]).
    pub retransmit: bool,
}

/// Per-node transport counters accumulated by a [`ReliableKernel`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RelStats {
    /// Simulated (inner) rounds executed. May be *less* than the horizon
    /// on success: when every node's wrapped kernel is finished and no
    /// real payload remains buffered or unacknowledged anywhere, the
    /// kernels vote [`Quiescence::Shutdown`] and the engine stops early
    /// instead of ticking marker frames to the horizon.
    pub sim_rounds: u64,
    /// Data frames transmitted, including retransmissions.
    pub frames_sent: u64,
    /// Retransmissions — frames sent beyond each frame's first attempt.
    /// Zero under zero loss.
    pub retransmissions: u64,
    /// Acknowledgments sent (piggybacked or standalone).
    pub acks_sent: u64,
    /// Inner-kernel sends discarded because they were produced *at* the
    /// horizon (too late to deliver). Nonzero means the horizon was too
    /// small for the wrapped protocol — results may be incomplete.
    pub truncated_sends: u64,
    /// True if some link exhausted its retransmission budget; the node
    /// then stays active without sending, so the run fails loudly with a
    /// round-limit error instead of returning partial results.
    pub gave_up: bool,
}

impl RelStats {
    /// Accumulates another node's (or phase's) counters into this one.
    pub fn absorb(&mut self, other: &RelStats) {
        self.sim_rounds = self.sim_rounds.max(other.sim_rounds);
        self.frames_sent += other.frames_sent;
        self.retransmissions += other.retransmissions;
        self.acks_sent += other.acks_sent;
        self.truncated_sends += other.truncated_sends;
        self.gave_up |= other.gave_up;
    }

    /// These counters as the observer-facing
    /// [`TransportSummary`](dapsp_congest::TransportSummary), the shape
    /// [`Observer::on_transport`](dapsp_congest::Observer::on_transport)
    /// receives from the `run_faulty` entry points.
    pub fn summary(&self) -> dapsp_congest::TransportSummary {
        dapsp_congest::TransportSummary {
            sim_rounds: self.sim_rounds,
            frames_sent: self.frames_sent,
            retransmissions: self.retransmissions,
            acks_sent: self.acks_sent,
            truncated_sends: self.truncated_sends,
            gave_up: u64::from(self.gave_up),
        }
    }
}

/// Wraps a [`Protocol`] with reliable-delivery semantics (see the module
/// docs): the inner kernel runs `horizon` simulated rounds exactly as it
/// would on fault-free links, while the wrapper absorbs message loss with
/// per-link stop-and-wait retransmission.
pub struct ReliableKernel<P: Protocol> {
    inner: P,
    inner_tx: Tx<P::Payload>,
    /// Simulated rounds to execute; must be at least the wrapped
    /// protocol's fault-free quiescence round.
    horizon: u64,
    /// Retransmissions allowed per frame before the link gives up.
    max_retries: u32,
    /// Simulated rounds executed so far.
    sim_executed: u64,
    /// Per-port outbound frames; the head is the oldest unacknowledged
    /// frame (index [`acked`](Self::acked), parity index mod 2).
    out: Vec<VecDeque<Option<P::Payload>>>,
    /// Frames fully acknowledged per port.
    acked: Vec<u64>,
    /// Transmission attempts for the current head frame per port.
    attempts: Vec<u32>,
    /// Rounds until the head frame may be retransmitted, per port.
    cooldown: Vec<u8>,
    /// In-order received payloads not yet consumed by the inner run.
    in_queue: Vec<VecDeque<Option<P::Payload>>>,
    /// Frames received per port (next expected parity = count mod 2).
    recv: Vec<u64>,
    /// Ack owed on each port after this round's arrivals.
    pending_ack: Vec<Option<bool>>,
    /// Scratch for demultiplexing one simulated round's inner sends.
    slots: Vec<Option<P::Payload>>,
    stats: RelStats,
}

impl<P: Protocol> ReliableKernel<P> {
    /// Wraps `inner` to run `horizon` simulated rounds reliably, allowing
    /// `max_retries` retransmissions per frame per link.
    ///
    /// `horizon` must cover the wrapped protocol's fault-free quiescence
    /// round (the paper's round bounds give it: `n + O(1)` for one BFS,
    /// `4n + O(1)` for the Algorithm 1 wave phase, …); sends produced at
    /// or after the horizon are counted in [`RelStats::truncated_sends`].
    pub fn new(inner: P, horizon: u64, max_retries: u32) -> Self {
        ReliableKernel {
            inner,
            inner_tx: Tx::new(),
            horizon,
            max_retries,
            sim_executed: 0,
            out: Vec::new(),
            acked: Vec::new(),
            attempts: Vec::new(),
            cooldown: Vec::new(),
            in_queue: Vec::new(),
            recv: Vec::new(),
            pending_ack: Vec::new(),
            slots: Vec::new(),
            stats: RelStats::default(),
        }
    }

    /// Drains the inner kernel's sends for simulated round `k` into one
    /// frame per port (empty marker where it sent nothing).
    fn enqueue_frames(&mut self, k: u64) {
        for slot in &mut self.slots {
            *slot = None;
        }
        for (port, payload) in self.inner_tx.drain() {
            let slot = &mut self.slots[port as usize];
            // Mirror the engine's duplicate-send rejection: a kernel that
            // double-sends on a port is broken with or without faults.
            assert!(
                slot.is_none(),
                "wrapped kernel sent twice on port {port} in simulated round {k}"
            );
            *slot = Some(payload);
        }
        if k >= self.horizon {
            // Sends at the horizon can no longer be delivered (neighbors
            // consume frames up to index horizon - 1). A correct horizon
            // makes this dead code; count it so a short one is visible.
            self.stats.truncated_sends += self.slots.iter().flatten().count() as u64;
            return;
        }
        for (port, slot) in self.slots.iter_mut().enumerate() {
            self.out[port].push_back(slot.take());
        }
    }

    /// Executes every simulated round whose inbound frames are complete.
    fn advance(&mut self, ctx: &NodeContext<'_>) {
        while self.sim_executed < self.horizon && self.in_queue.iter().all(|q| !q.is_empty()) {
            let k = self.sim_executed + 1;
            let ictx = ctx.at_round(k);
            for port in 0..self.in_queue.len() {
                let payload = self.in_queue[port]
                    .pop_front()
                    .expect("checked non-empty above");
                if let Some(payload) = payload {
                    self.inner
                        .on_message(&ictx, port as Port, payload, &mut self.inner_tx);
                }
            }
            self.inner.on_round_end(&ictx, &mut self.inner_tx);
            self.sim_executed = k;
            self.stats.sim_rounds = k;
            self.enqueue_frames(k);
        }
    }

    /// Sends this round's wire messages: the head frame of every port due
    /// for (re)transmission, plus any acks owed — piggybacked when both.
    fn transmit(&mut self, tx: &mut Tx<Frame<P::Payload>>) {
        for port in 0..self.out.len() {
            if self.cooldown[port] > 0 {
                self.cooldown[port] -= 1;
            }
            let mut retransmit = false;
            let data = match self.out[port].front() {
                Some(head) if self.cooldown[port] == 0 => {
                    if self.attempts[port] > self.max_retries {
                        // Retries exhausted: stall (stay active, send
                        // nothing) so the engine's round limit turns the
                        // unrecoverable link into a loud error.
                        self.stats.gave_up = true;
                        None
                    } else {
                        if self.attempts[port] > 0 {
                            self.stats.retransmissions += 1;
                            retransmit = true;
                        }
                        self.attempts[port] += 1;
                        self.cooldown[port] = RETRY_TIMEOUT;
                        self.stats.frames_sent += 1;
                        Some((self.acked[port] % 2 == 1, head.clone()))
                    }
                }
                _ => None,
            };
            let ack = self.pending_ack[port].take();
            if ack.is_some() {
                self.stats.acks_sent += 1;
            }
            if data.is_some() || ack.is_some() {
                tx.send(
                    port as Port,
                    Frame {
                        data,
                        ack,
                        retransmit,
                    },
                );
            }
        }
    }
}

impl<P: Protocol> Protocol for ReliableKernel<P> {
    type Payload = Frame<P::Payload>;
    type Output = (P::Output, RelStats);

    /// The transport is not a kernel slot of its own — it reports the
    /// wrapped protocol's slots and flags its own traffic through the
    /// retransmit/ack tag bits instead.
    const KERNELS: u32 = P::KERNELS;

    fn init(&mut self, ctx: &NodeContext<'_>, tx: &mut Tx<Self::Payload>) {
        let degree = ctx.degree();
        self.out = (0..degree).map(|_| VecDeque::new()).collect();
        self.acked = vec![0; degree];
        self.attempts = vec![0; degree];
        self.cooldown = vec![0; degree];
        self.in_queue = (0..degree).map(|_| VecDeque::new()).collect();
        self.recv = vec![0; degree];
        self.pending_ack = vec![None; degree];
        self.slots = (0..degree).map(|_| None).collect();
        self.inner.init(ctx, &mut self.inner_tx);
        self.enqueue_frames(0);
        self.transmit(tx);
    }

    fn on_message(
        &mut self,
        _ctx: &NodeContext<'_>,
        port: Port,
        frame: Self::Payload,
        _tx: &mut Tx<Self::Payload>,
    ) {
        let p = port as usize;
        if let Some(parity) = frame.ack {
            // An ack matches iff it names the outstanding frame's parity;
            // stale re-acks of the previous frame differ and are ignored.
            if !self.out[p].is_empty() && parity == (self.acked[p] % 2 == 1) {
                self.out[p].pop_front();
                self.acked[p] += 1;
                self.attempts[p] = 0;
                self.cooldown[p] = 0;
            }
        }
        if let Some((parity, payload)) = frame.data {
            if parity == (self.recv[p] % 2 == 1) {
                // In order: buffer for the synchronizer.
                self.in_queue[p].push_back(payload);
                self.recv[p] += 1;
            }
            // New frame or duplicate (its ack was lost): ack what arrived.
            self.pending_ack[p] = Some(parity);
        }
    }

    fn on_round_end(&mut self, ctx: &NodeContext<'_>, tx: &mut Tx<Self::Payload>) {
        self.advance(ctx);
        self.transmit(tx);
    }

    fn is_active(&self) -> bool {
        // Active until the horizon is executed and every frame is
        // acknowledged. A stalled (gave-up) link keeps the node active
        // forever, forcing the engine's round limit to fire.
        self.sim_executed < self.horizon || self.out.iter().any(|q| !q.is_empty())
    }

    fn quiescence(&self) -> Quiescence {
        // Consent to immediate shutdown once this node can prove it no
        // longer matters to the inner execution: its wrapped kernel is
        // finished (not voting `Active`), no real payload sits buffered
        // inbound, and no real payload is outbound-unacknowledged. Acks
        // and empty marker frames may still be circulating, but they only
        // advance simulated clocks — if *every* node is in this state,
        // no real payload exists anywhere (stop-and-wait retains an
        // unacked payload in `out`, which would keep its sender out of
        // this state), so discarding the markers changes nothing. A
        // gave-up link never consents: the run must end in the loud
        // round-limit error.
        let done = !self.stats.gave_up
            && self.inner.quiescence() != Quiescence::Active
            && self.in_queue.iter().flatten().all(|p| p.is_none())
            && self.out.iter().flatten().all(|p| p.is_none());
        if done {
            Quiescence::Shutdown
        } else if self.is_active() {
            Quiescence::Active
        } else {
            Quiescence::Passive
        }
    }

    fn width(&self, frame: &Self::Payload) -> Width {
        // 1 data-presence bit [+ parity + payload-presence [+ payload]],
        // 1 ack-presence bit [+ ack parity]: ≤ 5 bits over the wrapped
        // kernel's declared width.
        let mut w = Width::ZERO.tag();
        if let Some((_, payload)) = &frame.data {
            w = w.tag().tag();
            if let Some(payload) = payload {
                w = w.raw(self.inner.width(payload).bits());
            }
        }
        w = w.tag();
        if frame.ack.is_some() {
            w = w.tag();
        }
        w
    }

    fn stream(&self, frame: &Self::Payload) -> Option<u32> {
        frame
            .data
            .as_ref()
            .and_then(|(_, payload)| payload.as_ref())
            .and_then(|payload| self.inner.stream(payload))
    }

    fn tags(&self, frame: &Self::Payload) -> TraceTags {
        // A marker or ack-only frame carries no inner kernel's payload,
        // so its kernel mask is empty; a real payload reports the wrapped
        // protocol's mask. The transport's own contribution rides in the
        // retransmit/ack flags.
        let mut tags = match frame.data.as_ref().and_then(|(_, p)| p.as_ref()) {
            Some(payload) => self.inner.tags(payload),
            None => TraceTags {
                kernels: 0,
                retransmit: false,
                ack: false,
            },
        };
        tags.retransmit |= frame.retransmit;
        tags.ack |= frame.ack.is_some();
        tags
    }

    fn finish(self, ctx: &NodeContext<'_>) -> Self::Output {
        let ictx = ctx.at_round(self.sim_executed);
        (self.inner.finish(&ictx), self.stats)
    }
}

/// Splits a reliable run's report into the wrapped protocol's outputs and
/// the transport counters aggregated over all nodes — the shape the
/// `run_faulty` entry points fold their fault-free result types from.
pub fn split_reliable_report<T>(
    report: dapsp_congest::Report<(T, RelStats)>,
) -> (dapsp_congest::Report<T>, RelStats) {
    let mut rel = RelStats::default();
    let outputs = report
        .outputs
        .into_iter()
        .map(|(out, stats)| {
            rel.absorb(&stats);
            out
        })
        .collect();
    (
        dapsp_congest::Report {
            outputs,
            stats: report.stats,
            trace: report.trace,
            round_profile: report.round_profile,
            metrics: report.metrics,
            certificate: report.certificate,
            sched: report.sched,
        },
        rel,
    )
}

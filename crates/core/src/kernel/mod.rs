//! The wave-kernel protocol layer: the paper's primitives as composable,
//! reusable per-node state machines.
//!
//! Every algorithm in the paper is assembled from a tiny toolbox — BFS
//! waves with start delays and ID priority (Algorithms 1–2), a pebble
//! walking a DFS of `T_1`, and convergecast/broadcast aggregation over
//! `T_1` (Lemmas 2–7). This module makes that composition explicit in the
//! code:
//!
//! * [`Protocol`] — the per-node interface kernels implement:
//!   `init` / `on_message` / `on_round_end` over a typed payload, plus a
//!   declared per-payload [`Width`](dapsp_congest::Width) so the engine's
//!   `B = O(log n)` budget check sees an honest bit count for every
//!   message.
//! * [`WaveKernel`] — BFS wave growth: single- or all-root, immediate
//!   forwarding (Claim 1) or per-port ID-priority queues (Algorithm 2),
//!   optional depth truncation (k-BFS, Definition 7), adoption
//!   announcements, wave-receipt counting, and Lemma 7 cycle-candidate
//!   recording.
//! * [`PebbleKernel`] — the DFS token over a known tree, with the paper's
//!   one-slot wait at first visits (line 5 of Algorithm 1) or the ablated
//!   immediate start.
//! * [`ConvergecastKernel`] — aggregate up `T_1`, broadcast the total
//!   down (Definition 6).
//! * [`RepairKernel`] — churn-tolerant distance growth: a synchronous
//!   distance-vector protocol with per-port neighbor caches that survives
//!   a [`TopologyPlan`](dapsp_congest::TopologyPlan) — affected-subtree
//!   invalidation and re-waves after removals, bounded relaxation waves
//!   after insertions, and a divergence-adaptive full recompute when the
//!   change batch is large.
//! * [`ReliableKernel`] — a bounded-horizon synchronizer giving any
//!   kernel (or stack of kernels) exact fault-free semantics over links a
//!   [`FaultPlan`](dapsp_congest::FaultPlan) adversary drops messages
//!   from, with per-link stop-and-wait retransmission and acks charged
//!   against the same `B`-bit budget.
//! * [`Stack`] / [`compose!`](crate::compose) — run several kernels on
//!   one node, multiplexing their payloads into one
//!   [`Envelope`](dapsp_congest::Envelope) per edge per round with a
//!   presence tag per kernel; a [`Coupling`] lets one kernel's events
//!   drive another (the pebble's release starting `BFS_v` is exactly such
//!   a coupling).
//!
//! The concrete algorithms (`bfs`, `apsp`, `ssp`, `aggregate`, …) are thin
//! shells over these kernels: input validation, phase labels, and
//! result-folding — no per-module message enums or state machines.

mod convergecast;
mod pebble;
mod protocol;
mod reliable;
mod repair;
mod stack;
mod wave;

pub use convergecast::{CastMsg, ConvergecastKernel};
pub use pebble::{PebbleKernel, Token};
pub use protocol::{Protocol, ProtocolHost, Tx};
pub use reliable::{split_reliable_report, Frame, RelStats, ReliableKernel};
pub use repair::{repair_threshold, RepairKernel, RepairMsg};
pub use stack::{Both, Coupling, Stack};
pub use wave::{WaveKernel, WaveMsg, WaveState};

use dapsp_congest::{Config, NodeContext, Report, Topology};

use crate::error::CoreError;
use crate::runner::run_algorithm_on;

/// Runs a [`Protocol`] over every node of `topology` to quiescence,
/// wrapping each node's kernel in a [`ProtocolHost`] (which turns payloads
/// into width-checked [`Envelope`](dapsp_congest::Envelope)s).
///
/// # Errors
///
/// Same as [`run_algorithm_on`]: empty topologies are rejected and
/// simulator failures propagate as [`CoreError::Sim`].
pub fn run_protocol_on<P, F>(
    topology: &Topology,
    config: Config,
    mut init: F,
) -> Result<Report<P::Output>, CoreError>
where
    P: Protocol + Send,
    P::Payload: Send,
    F: FnMut(&NodeContext<'_>) -> P,
{
    run_algorithm_on(topology, config, |ctx| ProtocolHost::new(init(ctx)))
}

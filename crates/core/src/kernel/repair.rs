//! [`RepairKernel`]: churn-tolerant wave growth — the dynamic sibling of
//! [`WaveKernel`](super::WaveKernel) for runs whose topology changes
//! mid-flight (a [`TopologyPlan`](dapsp_congest::TopologyPlan)).
//!
//! The static wave kernels are write-once: a node adopts the first (or
//! best) claim per root and never revisits it, which is exactly what makes
//! them unable to survive an edge removal. This kernel instead runs a
//! synchronous distance-vector protocol with *per-port neighbor caches*:
//! every node remembers the last distance each neighbor announced for each
//! root slot, so when [`on_topology`](super::Protocol::on_topology)
//! tombstones a port the node can re-derive the affected distances locally
//! from the surviving caches — no network round trip for the common case.
//!
//! * **Removal** — affected-slot invalidation: only slots whose parent
//!   pointer crossed the dead port are recomputed; a changed value is
//!   re-announced and the correction wave propagates exactly as far as the
//!   damage. Cycles cannot count to infinity: any distance reaching `n`
//!   clamps to [`INFINITY`], so retraction chatter dies within `O(n)`
//!   rounds.
//! * **Insertion** — bounded relaxation wave: both endpoints (each is
//!   notified) queue their known-finite slots on the new port, closest
//!   first; the transmit filter drops announcements the peer demonstrably
//!   cannot use, so the exchange self-prunes as the tables cross.
//! * **Adaptive fallback** — when a round's global change batch reaches
//!   the kernel's `reset_threshold`, per-slot surgery is pointless: the
//!   node recomputes *every* slot from its caches in one sweep and
//!   reports [`RepairAction::Recompute`]. The batch size is identical at
//!   every notified node, so all engines (and all nodes) take the same
//!   branch deterministically.
//!
//! One message per port per round carries one `(slot, dist)` pair —
//! `⌈log₂ n⌉ + ⌈log₂ (n+1)⌉ ≤ B` bits — so the repair traffic lives inside
//! the same CONGEST budget as the waves it patches.

use std::collections::BTreeSet;

use dapsp_congest::{NodeContext, Port, RepairAction, TopologyDelta, Width};
use dapsp_graph::INFINITY;

use super::protocol::{Protocol, Tx};
use super::wave::WaveState;

/// The divergence-adaptive default: fall back to a full per-node recompute
/// when a round's global change batch reaches `max(4, n / 8)` directed
/// port halves (each edge event counts both endpoints' ports; node events
/// add one).
pub fn repair_threshold(n: usize) -> u32 {
    (n as u32 / 8).max(4)
}

/// Which slots this kernel maintains distances for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slots {
    /// One slot, for the given root (churned BFS).
    Single(u32),
    /// `n` slots indexed by root id; this node owns slot `me` iff it is a
    /// source (churned APSP: everyone; churned S-SP: the source set).
    PerNode,
}

/// The wire message: "my current distance for `slot` is `dist`"
/// (`dist = n` encodes unreachable — the count-to-infinity clamp).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepairMsg {
    /// The root slot the distance belongs to (always 0 in single-root
    /// mode, where it costs no wire bits).
    pub slot: u32,
    /// The sender's clamped distance for that slot.
    pub dist: u32,
}

/// Churn-tolerant multi-root distance computation (see module docs).
pub struct RepairKernel {
    n: u32,
    slots: Slots,
    /// True iff this node is a source (owns distance 0 in its own slot).
    own: bool,
    /// Distances reaching this value clamp to [`INFINITY`] (`= n`; every
    /// real shortest path is shorter).
    clamp: u32,
    /// Global-batch size at which `on_topology` abandons per-slot surgery.
    reset_threshold: u32,
    /// `cache[p][s]`: the last distance the neighbor on port `p` announced
    /// for slot `s` ([`INFINITY`] = nothing heard / retracted).
    cache: Vec<Vec<u32>>,
    /// `told[p][s]`: the last wire value *we* announced on port `p` for
    /// slot `s` — clamped, so "unreachable" records as `n`, not
    /// [`INFINITY`] ([`INFINITY`] = never told anything).
    told: Vec<Vec<u32>>,
    /// Per-port pending announcement sets (slot ids); drained one useful
    /// entry per port per round, priority `(dist, slot)`.
    pending: Vec<BTreeSet<u32>>,
    /// Tombstoned ports (no sends, caches cleared).
    port_dead: Vec<bool>,
    /// This node was removed from the topology; it freezes.
    removed: bool,
    /// Arrivals of the current round: `(slot, dist, port)`.
    arrivals: Vec<(u32, u32, Port)>,
    state: WaveState,
}

impl RepairKernel {
    fn base(ctx: &NodeContext<'_>, slots: Slots, own: bool, reset_threshold: u32) -> Self {
        let n = ctx.num_nodes();
        let degree = ctx.degree();
        let slot_count = match slots {
            Slots::Single(_) => 1,
            Slots::PerNode => n,
        };
        let mut k = RepairKernel {
            n: n as u32,
            slots,
            own,
            clamp: n as u32,
            reset_threshold,
            cache: vec![vec![INFINITY; slot_count]; degree],
            told: vec![vec![INFINITY; slot_count]; degree],
            pending: vec![BTreeSet::new(); degree],
            port_dead: vec![false; degree],
            removed: false,
            arrivals: Vec::new(),
            state: WaveState {
                dist: vec![INFINITY; slot_count],
                parent: vec![u32::MAX; slot_count],
                children_ports: Vec::new(),
                receipts: 0,
                girth_candidate: INFINITY,
                relaxations: 0,
            },
        };
        if own {
            let s = k.own_slot(ctx.node_id());
            k.state.dist[s] = 0;
        }
        k
    }

    /// Churned single-root BFS: one slot, rooted at `root`.
    pub fn single_root(ctx: &NodeContext<'_>, root: u32, reset_threshold: u32) -> Self {
        Self::base(
            ctx,
            Slots::Single(root),
            ctx.node_id() == root,
            reset_threshold,
        )
    }

    /// Churned APSP: every node owns its own slot.
    pub fn all_roots(ctx: &NodeContext<'_>, reset_threshold: u32) -> Self {
        Self::base(ctx, Slots::PerNode, true, reset_threshold)
    }

    /// Churned S-SP: per-node slots, distance 0 only at the sources.
    pub fn sources(ctx: &NodeContext<'_>, is_source: bool, reset_threshold: u32) -> Self {
        Self::base(ctx, Slots::PerNode, is_source, reset_threshold)
    }

    /// The slot this node's own wave occupies (meaningful only when `own`).
    fn own_slot(&self, me: u32) -> usize {
        match self.slots {
            Slots::Single(_) => 0,
            Slots::PerNode => me as usize,
        }
    }

    fn slot_count(&self) -> usize {
        self.state.dist.len()
    }

    /// Recomputes slot `s` from the live caches; returns true iff the
    /// value changed. Parent = lowest live port achieving the minimum.
    fn recompute(&mut self, me: u32, s: usize) -> bool {
        let (mut best, mut best_port) = if self.own && s == self.own_slot(me) {
            (0, u32::MAX)
        } else {
            (INFINITY, u32::MAX)
        };
        if best != 0 {
            for (p, cached) in self.cache.iter().enumerate() {
                if self.port_dead[p] {
                    continue;
                }
                let c = cached[s];
                if c < self.clamp && c + 1 < self.clamp && c + 1 < best {
                    best = c + 1;
                    best_port = p as Port;
                }
            }
        }
        let changed = self.state.dist[s] != best;
        if changed && self.state.dist[s] != INFINITY {
            self.state.relaxations += 1;
        }
        self.state.dist[s] = best;
        self.state.parent[s] = best_port;
        changed
    }

    /// Queues slot `s` for announcement on every live port.
    fn announce_everywhere(&mut self, s: usize) {
        for (p, queue) in self.pending.iter_mut().enumerate() {
            if !self.port_dead[p] {
                queue.insert(s as u32);
            }
        }
    }

    /// Grows the per-port tables to `degree` (ports only ever append).
    fn grow_ports(&mut self, degree: usize) {
        let slot_count = self.slot_count();
        while self.cache.len() < degree {
            self.cache.push(vec![INFINITY; slot_count]);
            self.told.push(vec![INFINITY; slot_count]);
            self.pending.push(BTreeSet::new());
            self.port_dead.push(false);
        }
    }

    /// One announcement per live port: pop pending slots in `(dist, slot)`
    /// priority, discarding entries the peer demonstrably cannot use —
    /// sent before (`told` unchanged), or no improvement over the peer's
    /// cached distance with nothing previously told to correct.
    fn transmit(&mut self, tx: &mut Tx<RepairMsg>) {
        for p in 0..self.pending.len() {
            if self.port_dead[p] {
                self.pending[p].clear();
                continue;
            }
            loop {
                let head = self.pending[p]
                    .iter()
                    .map(|&s| (self.state.dist[s as usize].min(self.clamp), s))
                    .min();
                let Some((dist, s)) = head else { break };
                self.pending[p].remove(&s);
                let su = s as usize;
                let useful = dist != self.told[p][su]
                    && (dist.saturating_add(1) < self.cache[p][su] || self.told[p][su] != INFINITY);
                if useful {
                    // Record the wire value verbatim — a clamped
                    // "unreachable" included — so an identical repeat is
                    // suppressed by the `dist != told` check above (else
                    // two severed nodes bounce retractions forever).
                    self.told[p][su] = dist;
                    tx.send(p as Port, RepairMsg { slot: s, dist });
                    break;
                }
            }
        }
    }
}

impl Protocol for RepairKernel {
    type Payload = RepairMsg;
    type Output = WaveState;

    fn init(&mut self, ctx: &NodeContext<'_>, tx: &mut Tx<RepairMsg>) {
        if self.own {
            let s = self.own_slot(ctx.node_id());
            self.announce_everywhere(s);
        }
        self.transmit(tx);
    }

    fn on_message(
        &mut self,
        _ctx: &NodeContext<'_>,
        port: Port,
        payload: RepairMsg,
        _tx: &mut Tx<RepairMsg>,
    ) {
        self.state.receipts = self.state.receipts.saturating_add(1);
        self.arrivals.push((payload.slot, payload.dist, port));
    }

    fn on_round_end(&mut self, ctx: &NodeContext<'_>, tx: &mut Tx<RepairMsg>) {
        if self.removed {
            self.arrivals.clear();
            return;
        }
        let me = ctx.node_id();
        let mut arrivals = std::mem::take(&mut self.arrivals);
        arrivals.sort_unstable();
        let mut touched: BTreeSet<u32> = BTreeSet::new();
        for &(s, dist, port) in &arrivals {
            let p = port as usize;
            if p < self.cache.len() && !self.port_dead[p] {
                self.cache[p][s as usize] = if dist >= self.clamp { INFINITY } else { dist };
                touched.insert(s);
                // Counter-offer check: even if our value is unchanged, the
                // peer's may have worsened past it; the transmit filter
                // decides whether replying is useful.
                self.pending[p].insert(s);
            }
        }
        arrivals.clear();
        self.arrivals = arrivals;
        for s in touched {
            if self.recompute(me, s as usize) {
                self.announce_everywhere(s as usize);
            }
        }
        self.transmit(tx);
    }

    fn on_topology(&mut self, ctx: &NodeContext<'_>, delta: &TopologyDelta<'_>) -> RepairAction {
        if delta.removed {
            // Final notification: freeze (outputs keep the last state).
            self.removed = true;
            for queue in &mut self.pending {
                queue.clear();
            }
            self.arrivals.clear();
            return RepairAction::Ignored;
        }
        let me = ctx.node_id();
        self.grow_ports(ctx.degree());
        if delta.joined {
            // Fresh boot, edgeless: everything resets; later insertions
            // reconnect the node.
            let own_slot = self.own.then(|| self.own_slot(me));
            for s in 0..self.slot_count() {
                self.state.dist[s] = if own_slot == Some(s) { 0 } else { INFINITY };
                self.state.parent[s] = u32::MAX;
            }
            for p in 0..self.cache.len() {
                self.cache[p].fill(INFINITY);
                self.told[p].fill(INFINITY);
                self.pending[p].clear();
            }
        }
        for &p in delta.removed_ports {
            let p = p as usize;
            self.port_dead[p] = true;
            self.cache[p].fill(INFINITY);
            self.told[p].fill(INFINITY);
            self.pending[p].clear();
        }
        for &(p, _) in delta.inserted_ports {
            let p = p as usize;
            self.port_dead[p] = false;
            self.cache[p].fill(INFINITY);
            self.told[p].fill(INFINITY);
        }
        let full_reset = delta.batch >= self.reset_threshold;
        if full_reset {
            // Divergence-adaptive fallback: the batch is too large for
            // per-slot surgery — re-derive every slot from the caches.
            for s in 0..self.slot_count() {
                if self.recompute(me, s) {
                    self.announce_everywhere(s);
                }
            }
        } else {
            // Affected-slot invalidation: only distances routed through a
            // dead port can have worsened.
            for &p in delta.removed_ports {
                for s in 0..self.slot_count() {
                    if self.state.parent[s] == p && self.recompute(me, s) {
                        self.announce_everywhere(s);
                    }
                }
            }
        }
        // Bounded relaxation wave: offer every finite distance on the new
        // ports, closest first; the transmit filter prunes the exchange as
        // the peer's table crosses ours.
        for &(p, _) in delta.inserted_ports {
            let p = p as usize;
            for s in 0..self.slot_count() {
                if self.state.dist[s] != INFINITY {
                    self.pending[p].insert(s as u32);
                }
            }
        }
        if full_reset {
            RepairAction::Recompute
        } else {
            RepairAction::Repaired
        }
    }

    fn is_active(&self) -> bool {
        !self.removed && self.pending.iter().any(|queue| !queue.is_empty())
    }

    fn width(&self, _payload: &RepairMsg) -> Width {
        let mut w = Width::ZERO;
        if self.slots == Slots::PerNode {
            w = w.id(self.n as usize);
        }
        // The distance field is fixed-width over its clamped domain
        // `0..=n`, like the static wave kernels'.
        w.count(self.n as usize)
    }

    fn stream(&self, payload: &RepairMsg) -> Option<u32> {
        match self.slots {
            Slots::PerNode => Some(payload.slot),
            Slots::Single(_) => None,
        }
    }

    fn finish(self, _ctx: &NodeContext<'_>) -> WaveState {
        self.state
    }
}

#[cfg(test)]
mod width_tests {
    use super::*;
    use dapsp_congest::Config;

    /// Worst-case repair messages fit `B = 2⌈log₂ n⌉ + 8` in every mode.
    #[test]
    fn worst_case_widths_fit_the_budget() {
        for n in [2usize, 3, 10, 100, 1 << 16] {
            let budget = Config::for_n(n).message_budget.unwrap();
            let worst = RepairMsg {
                slot: n as u32 - 1,
                dist: n as u32,
            };
            let mut k = RepairKernel {
                n: n as u32,
                slots: Slots::Single(0),
                own: false,
                clamp: n as u32,
                reset_threshold: 4,
                cache: Vec::new(),
                told: Vec::new(),
                pending: Vec::new(),
                port_dead: Vec::new(),
                removed: false,
                arrivals: Vec::new(),
                state: WaveState {
                    dist: vec![INFINITY],
                    parent: vec![u32::MAX],
                    children_ports: Vec::new(),
                    receipts: 0,
                    girth_candidate: INFINITY,
                    relaxations: 0,
                },
            };
            assert!(k.width(&worst).bits() <= budget, "single-root, n={n}");
            k.slots = Slots::PerNode;
            assert!(k.width(&worst).bits() <= budget, "per-node, n={n}");
        }
    }

    /// The adaptive threshold grows with `n` but never below 4.
    #[test]
    fn threshold_floor_and_growth() {
        assert_eq!(repair_threshold(2), 4);
        assert_eq!(repair_threshold(32), 4);
        assert_eq!(repair_threshold(64), 8);
        assert_eq!(repair_threshold(400), 50);
    }
}

//! [`Stack`]: run two kernels on one node, multiplexing their payloads
//! into one `B`-bit message per edge per round.

use std::collections::BTreeMap;

use dapsp_congest::{NodeContext, Port, RepairAction, TopologyDelta, TraceTags, Width};

use super::protocol::{Protocol, Tx};

/// The multiplexed payload of a [`Stack`]: each component is present iff
/// its kernel sent on that port this round. On the wire each component
/// costs one presence tag plus, when present, the payload's own declared
/// width.
#[derive(Clone, Debug)]
pub struct Both<PA, PB> {
    /// The lower kernel's payload, if it sent on this port.
    pub a: Option<PA>,
    /// The upper kernel's payload, if it sent on this port.
    pub b: Option<PB>,
}

/// A cross-kernel wiring: after the lower kernel's round end and before
/// the upper kernel's, `couple` may read events off one kernel and drive
/// the other.
///
/// Algorithm 1 is the motivating instance: the pebble's release event
/// schedules the wave start, so `BFS_v` begins exactly when the pebble
/// leaves `v`. The unit coupling `()` wires nothing.
pub trait Coupling<A, B> {
    /// Invoked every round between `A::on_round_end` and
    /// `B::on_round_end` (and once at init, between the two `init`s).
    fn couple(&mut self, ctx: &NodeContext<'_>, a: &mut A, b: &mut B);
}

impl<A, B> Coupling<A, B> for () {
    fn couple(&mut self, _ctx: &NodeContext<'_>, _a: &mut A, _b: &mut B) {}
}

/// Two kernels sharing one node and one message stream.
///
/// Per round, the stack runs `A`'s round end, the [`Coupling`], then `B`'s
/// round end, and merges both kernels' sends per port: the first payload
/// each kernel queued for a port rides in one [`Both`] envelope. A kernel
/// that queues *two* payloads for one port overflows into a second
/// envelope — deliberately tripping the engine's duplicate-send check,
/// exactly as the un-stacked kernel would have (the Lemma 1 ablation
/// depends on this being detectable).
///
/// Stacks nest: `Stack<A, Stack<B, C, _>, _>` multiplexes three kernels
/// (see [`compose!`](crate::compose)).
pub struct Stack<A: Protocol, B: Protocol, C> {
    a: A,
    b: B,
    coupling: C,
    tx_a: Tx<A::Payload>,
    tx_b: Tx<B::Payload>,
}

impl<A: Protocol, B: Protocol> Stack<A, B, ()> {
    /// Stacks `a` under `b` with no cross-kernel wiring.
    pub fn new(a: A, b: B) -> Self {
        Stack::coupled(a, b, ())
    }
}

impl<A: Protocol, B: Protocol, C: Coupling<A, B>> Stack<A, B, C> {
    /// Stacks `a` under `b`, wiring them with `coupling` (invoked between
    /// their round ends, in that order).
    pub fn coupled(a: A, b: B, coupling: C) -> Self {
        Stack {
            a,
            b,
            coupling,
            tx_a: Tx::new(),
            tx_b: Tx::new(),
        }
    }

    /// Merges both kernels' buffered sends into per-port [`Both`]
    /// envelopes (ports in increasing order); a kernel's second payload
    /// for one port overflows into its own envelope.
    fn flush(&mut self, tx: &mut Tx<Both<A::Payload, B::Payload>>) {
        let mut per_port: BTreeMap<Port, Both<A::Payload, B::Payload>> = BTreeMap::new();
        for (port, payload) in self.tx_a.drain() {
            let slot = &mut per_port.entry(port).or_insert(Both { a: None, b: None }).a;
            if slot.is_some() {
                tx.send(
                    port,
                    Both {
                        a: Some(payload),
                        b: None,
                    },
                );
            } else {
                *slot = Some(payload);
            }
        }
        for (port, payload) in self.tx_b.drain() {
            let slot = &mut per_port.entry(port).or_insert(Both { a: None, b: None }).b;
            if slot.is_some() {
                tx.send(
                    port,
                    Both {
                        a: None,
                        b: Some(payload),
                    },
                );
            } else {
                *slot = Some(payload);
            }
        }
        for (port, both) in per_port {
            tx.send(port, both);
        }
    }
}

impl<A: Protocol, B: Protocol, C: Coupling<A, B>> Protocol for Stack<A, B, C> {
    type Payload = Both<A::Payload, B::Payload>;
    type Output = (A::Output, B::Output);

    /// The stack occupies both components' kernel slots: `A`'s in the low
    /// bits, `B`'s shifted above them.
    const KERNELS: u32 = A::KERNELS + B::KERNELS;

    fn init(&mut self, ctx: &NodeContext<'_>, tx: &mut Tx<Self::Payload>) {
        self.a.init(ctx, &mut self.tx_a);
        self.coupling.couple(ctx, &mut self.a, &mut self.b);
        self.b.init(ctx, &mut self.tx_b);
        self.flush(tx);
    }

    fn on_message(
        &mut self,
        ctx: &NodeContext<'_>,
        port: Port,
        payload: Self::Payload,
        _tx: &mut Tx<Self::Payload>,
    ) {
        if let Some(pa) = payload.a {
            self.a.on_message(ctx, port, pa, &mut self.tx_a);
        }
        if let Some(pb) = payload.b {
            self.b.on_message(ctx, port, pb, &mut self.tx_b);
        }
    }

    fn on_round_end(&mut self, ctx: &NodeContext<'_>, tx: &mut Tx<Self::Payload>) {
        self.a.on_round_end(ctx, &mut self.tx_a);
        self.coupling.couple(ctx, &mut self.a, &mut self.b);
        self.b.on_round_end(ctx, &mut self.tx_b);
        self.flush(tx);
    }

    fn on_topology(&mut self, ctx: &NodeContext<'_>, delta: &TopologyDelta<'_>) -> RepairAction {
        // Both components see the change; the stack reports the heavier
        // reaction (`Ignored < Repaired < Recompute`).
        let a = self.a.on_topology(ctx, delta);
        let b = self.b.on_topology(ctx, delta);
        a.max(b)
    }

    fn is_active(&self) -> bool {
        self.a.is_active() || self.b.is_active()
    }

    fn quiescence(&self) -> dapsp_congest::Quiescence {
        // The least-far-along component rules: `Active < Passive <
        // Shutdown`, so the stack is active if either kernel is and only
        // consents to shutdown when both do.
        self.a.quiescence().min(self.b.quiescence())
    }

    fn width(&self, payload: &Self::Payload) -> Width {
        let mut w = Width::ZERO.tag().tag(); // one presence tag per kernel
        if let Some(pa) = &payload.a {
            w = w.raw(self.a.width(pa).bits());
        }
        if let Some(pb) = &payload.b {
            w = w.raw(self.b.width(pb).bits());
        }
        w
    }

    fn stream(&self, payload: &Self::Payload) -> Option<u32> {
        payload
            .a
            .as_ref()
            .and_then(|pa| self.a.stream(pa))
            .or_else(|| payload.b.as_ref().and_then(|pb| self.b.stream(pb)))
    }

    fn tags(&self, payload: &Self::Payload) -> TraceTags {
        // Present components contribute their masks — `A`'s verbatim,
        // `B`'s shifted past `A`'s slots — and their transport flags OR.
        // An empty frame (both absent) reports no kernels at all.
        let mut tags = TraceTags {
            kernels: 0,
            retransmit: false,
            ack: false,
        };
        if let Some(pa) = &payload.a {
            let t = self.a.tags(pa);
            tags.kernels |= t.kernels;
            tags.retransmit |= t.retransmit;
            tags.ack |= t.ack;
        }
        if let Some(pb) = &payload.b {
            let t = self.b.tags(pb);
            // Widen before shifting; slots past bit 7 truncate out of the
            // 8-bit mask instead of panicking on shift overflow.
            if A::KERNELS < 8 {
                tags.kernels |= ((u32::from(t.kernels)) << A::KERNELS) as u8;
            }
            tags.retransmit |= t.retransmit;
            tags.ack |= t.ack;
        }
        tags
    }

    fn finish(self, ctx: &NodeContext<'_>) -> Self::Output {
        (self.a.finish(ctx), self.b.finish(ctx))
    }
}

/// Stacks two or more kernels right-associatively with unit couplings:
/// `compose!(a, b, c)` is `Stack::new(a, Stack::new(b, c))`. For a
/// coupled pair, use [`Stack::coupled`] directly.
#[macro_export]
macro_rules! compose {
    ($a:expr, $b:expr $(,)?) => {
        $crate::kernel::Stack::new($a, $b)
    };
    ($a:expr $(, $rest:expr)+ $(,)?) => {
        $crate::kernel::Stack::new($a, $crate::compose!($($rest),+))
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapsp_congest::NodeContext;

    /// A test kernel whose payloads are bytes of a declared fixed width.
    struct Fixed(u32);

    impl Protocol for Fixed {
        type Payload = u8;
        type Output = ();

        fn on_message(&mut self, _: &NodeContext<'_>, _: Port, _: u8, _: &mut Tx<u8>) {}

        fn width(&self, _: &u8) -> Width {
            Width::ZERO.raw(self.0)
        }

        fn stream(&self, payload: &u8) -> Option<u32> {
            (*payload >= 100).then_some(*payload as u32)
        }

        fn finish(self, _: &NodeContext<'_>) {}
    }

    /// Wire width = one presence tag per kernel plus each present
    /// component's own width — absent components cost only their tag.
    #[test]
    fn width_charges_tags_plus_present_components() {
        let stack = Stack::new(Fixed(5), Fixed(9));
        let both = Both {
            a: Some(1u8),
            b: Some(2u8),
        };
        assert_eq!(stack.width(&both).bits(), 2 + 5 + 9);
        let a_only = Both {
            a: Some(1u8),
            b: None,
        };
        assert_eq!(stack.width(&a_only).bits(), 2 + 5);
        let empty: Both<u8, u8> = Both { a: None, b: None };
        assert_eq!(stack.width(&empty).bits(), 2);
    }

    /// The lower kernel's stream tag wins; the upper kernel's is the
    /// fallback.
    #[test]
    fn stream_prefers_lower_kernel() {
        let stack = Stack::new(Fixed(1), Fixed(1));
        let both = Both {
            a: Some(100u8),
            b: Some(101u8),
        };
        assert_eq!(stack.stream(&both), Some(100));
        let b_only = Both {
            a: Some(1u8), // below the stream threshold
            b: Some(101u8),
        };
        assert_eq!(stack.stream(&b_only), Some(101));
    }

    /// Both kernels' sends for one port ride in one merged envelope;
    /// ports come out in increasing order.
    #[test]
    fn flush_merges_per_port() {
        let mut stack = Stack::new(Fixed(1), Fixed(1));
        stack.tx_a.send(1, 10);
        stack.tx_b.send(1, 20);
        stack.tx_b.send(0, 30);
        let mut out = Tx::new();
        stack.flush(&mut out);
        let sends: Vec<_> = out.drain().collect();
        assert_eq!(sends.len(), 2);
        let (port0, both0) = &sends[0];
        assert_eq!((*port0, both0.a, both0.b), (0, None, Some(30)));
        let (port1, both1) = &sends[1];
        assert_eq!((*port1, both1.a, both1.b), (1, Some(10), Some(20)));
    }

    /// A kernel that queues two payloads for one port overflows into a
    /// second envelope — the duplicate-send the engine must keep seeing
    /// for the Lemma 1 ablation to stay detectable.
    #[test]
    fn duplicate_same_kernel_send_overflows() {
        let mut stack = Stack::new(Fixed(1), Fixed(1));
        stack.tx_a.send(0, 10);
        stack.tx_a.send(0, 11);
        let mut out = Tx::new();
        stack.flush(&mut out);
        let sends: Vec<_> = out.drain().collect();
        assert_eq!(sends.len(), 2, "second send must not be silently merged");
        assert!(sends.iter().all(|(p, _)| *p == 0));
    }

    /// `compose!` nests right-associatively: three kernels, two nested
    /// stacks, width = all four presence tags plus the components.
    #[test]
    fn compose_macro_nests_stacks() {
        let stack = crate::compose!(Fixed(3), Fixed(5), Fixed(7));
        let msg = Both {
            a: Some(1u8),
            b: Some(Both {
                a: Some(2u8),
                b: Some(3u8),
            }),
        };
        assert_eq!(stack.width(&msg).bits(), 2 + 3 + (2 + 5 + 7));
    }
}

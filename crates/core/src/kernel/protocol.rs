//! The [`Protocol`] trait and the host adapter that runs a protocol as a
//! [`NodeAlgorithm`] over width-declaring [`Envelope`]s.

use std::fmt::Debug;

use dapsp_congest::{
    Envelope, Inbox, NodeAlgorithm, NodeContext, Outbox, Port, Quiescence, RepairAction,
    TopologyDelta, TraceTags, Width,
};

/// A per-node protocol kernel: the state machine interface the wave-kernel
/// layer builds algorithms from.
///
/// `Protocol` differs from [`NodeAlgorithm`] in two ways that make kernels
/// composable:
///
/// * it exchanges *payloads*, not messages — the width of every payload is
///   declared through [`width`](Self::width), and the host (or an enclosing
///   [`Stack`](super::Stack)) wraps payloads into [`Envelope`]s, so the
///   engine's `B = O(log n)` budget check always sees an honest bit count;
/// * delivery is *per message* ([`on_message`](Self::on_message)), with a
///   separate end-of-round step ([`on_round_end`](Self::on_round_end)) —
///   a [`Stack`](super::Stack) can therefore demultiplex one wire message
///   to several kernels and still give each kernel its own round boundary.
pub trait Protocol {
    /// The payload this kernel exchanges.
    type Payload: Clone + Debug;
    /// The per-node result extracted when the run ends.
    type Output;

    /// How many kernel slots this protocol occupies in a composed stack's
    /// [`TraceTags::kernels`] bitmask. Leaf kernels keep the default `1`;
    /// a [`Stack`](super::Stack) occupies the sum of its components, with
    /// the lower kernel in the low bits. Observers use the mask to
    /// attribute per-message traffic to individual kernels (masks wider
    /// than the 8-bit tag truncate — stacks deeper than 8 lose per-kernel
    /// resolution, never correctness).
    const KERNELS: u32 = 1;

    /// One-time initialization before round 1 (the engine's `on_start`).
    fn init(&mut self, ctx: &NodeContext<'_>, tx: &mut Tx<Self::Payload>) {
        let _ = (ctx, tx);
    }

    /// One payload delivered on `port` this round. Called once per arrival,
    /// in increasing port order, before [`on_round_end`](Self::on_round_end).
    fn on_message(
        &mut self,
        ctx: &NodeContext<'_>,
        port: Port,
        payload: Self::Payload,
        tx: &mut Tx<Self::Payload>,
    );

    /// End of the round: called after all deliveries on every node the
    /// engine *scheduled* this round, so kernels can run timers and
    /// contention schedules. Under the active-set scheduler a node is
    /// scheduled when it received a payload this round or reported
    /// [`is_active`](Self::is_active) after its last step — a kernel whose
    /// timer is running must therefore report itself active, or the tick
    /// never fires.
    fn on_round_end(&mut self, ctx: &NodeContext<'_>, tx: &mut Tx<Self::Payload>) {
        let _ = (ctx, tx);
    }

    /// The engine's topology changed this round and this node is an
    /// affected endpoint (a port died or appeared, or the node itself was
    /// removed/re-joined); mirrors [`NodeAlgorithm::on_topology`]. Called
    /// at the engine's churn choke point, *before* the round's deliveries.
    /// There is no send buffer here: a kernel that must re-announce state
    /// queues the work internally and reports itself
    /// [`is_active`](Self::is_active), which schedules it this round — its
    /// [`on_round_end`](Self::on_round_end) then emits the repair traffic.
    /// The default ignores the change (correct only for kernels whose
    /// state does not encode the topology).
    fn on_topology(&mut self, ctx: &NodeContext<'_>, delta: &TopologyDelta<'_>) -> RepairAction {
        let _ = (ctx, delta);
        RepairAction::Ignored
    }

    /// True while this kernel may still send without first receiving
    /// (e.g. a pending delayed wave start). Mirrors
    /// [`NodeAlgorithm::is_active`] — including its wake-signal role: an
    /// active kernel is stepped every round, an inactive one only on
    /// arrivals.
    fn is_active(&self) -> bool {
        false
    }

    /// This kernel's termination vote; mirrors
    /// [`NodeAlgorithm::quiescence`] (and must uphold the same contract:
    /// an inactive kernel never votes [`Quiescence::Active`]). The default
    /// derives the vote from [`is_active`](Self::is_active); synchronizer
    /// wrappers that stay active to a fixed horizon but know their inner
    /// protocol is finished override it to vote
    /// [`Quiescence::Shutdown`].
    fn quiescence(&self) -> Quiescence {
        if self.is_active() {
            Quiescence::Active
        } else {
            Quiescence::Passive
        }
    }

    /// The declared encoded width of `payload`, built from the
    /// [`Width`] primitives so the `O(log n)` accounting is explicit.
    fn width(&self, payload: &Self::Payload) -> Width;

    /// The logical stream `payload` belongs to (e.g. the root of a BFS
    /// wave), for congestion observers. `None` (the default) for untagged
    /// traffic.
    fn stream(&self, payload: &Self::Payload) -> Option<u32> {
        let _ = payload;
        None
    }

    /// Observer attribution tags for `payload` (zero wire bits; see
    /// [`TraceTags`]). Leaf kernels keep the default — kernel slot 0
    /// present, no transport flags. [`Stack`](super::Stack) shifts and ORs
    /// its components' masks; transport wrappers
    /// ([`ReliableKernel`](super::ReliableKernel)) set the
    /// retransmit/ack flags.
    fn tags(&self, payload: &Self::Payload) -> TraceTags {
        let _ = payload;
        TraceTags::default()
    }

    /// Consumes the kernel and produces the node's final output.
    fn finish(self, ctx: &NodeContext<'_>) -> Self::Output;
}

/// A kernel's send buffer for the current step: `(port, payload)` pairs,
/// flushed by the host (or enclosing stack) when the step ends.
///
/// Sends accumulate in call order; the engine's one-message-per-port rule
/// is *not* enforced here — a kernel that sends twice on a port produces
/// two envelopes and trips the engine's `DuplicateSend` check, exactly as
/// a hand-written algorithm would (the duplicate-send ablation relies on
/// this).
pub struct Tx<P> {
    sends: Vec<(Port, P)>,
}

impl<P> Tx<P> {
    pub(crate) fn new() -> Self {
        Tx { sends: Vec::new() }
    }

    /// Queues `payload` for the neighbor on `port`.
    pub fn send(&mut self, port: Port, payload: P) {
        self.sends.push((port, payload));
    }

    /// Queues a clone of `payload` for every port of a degree-`degree`
    /// node.
    pub fn send_to_all(&mut self, degree: usize, payload: P)
    where
        P: Clone,
    {
        for port in 0..degree {
            self.sends.push((port as Port, payload.clone()));
        }
    }

    /// Drains the buffered sends in call order.
    pub(crate) fn drain(&mut self) -> std::vec::Drain<'_, (Port, P)> {
        self.sends.drain(..)
    }
}

/// Runs a [`Protocol`] as a [`NodeAlgorithm`] whose wire type is
/// [`Envelope<P::Payload>`](Envelope): every queued payload is stamped
/// with the width and stream the kernel declares for it.
pub struct ProtocolHost<P: Protocol> {
    proto: P,
    tx: Tx<P::Payload>,
}

impl<P: Protocol> ProtocolHost<P> {
    /// Hosts `proto`.
    pub fn new(proto: P) -> Self {
        ProtocolHost {
            proto,
            tx: Tx::new(),
        }
    }

    fn flush(&mut self, out: &mut Outbox<Envelope<P::Payload>>) {
        for (port, payload) in self.tx.drain() {
            let width = self.proto.width(&payload).bits();
            let stream = self.proto.stream(&payload);
            // Tags are computed before the payload moves into the
            // envelope; they ride as zero-wire-bit diagnostics read at
            // the engine's commit choke point.
            let tags = self.proto.tags(&payload);
            out.send(
                port,
                Envelope {
                    payload,
                    width,
                    stream,
                    tags,
                },
            );
        }
    }
}

impl<P: Protocol> NodeAlgorithm for ProtocolHost<P> {
    type Message = Envelope<P::Payload>;
    type Output = P::Output;

    fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Self::Message>) {
        self.proto.init(ctx, &mut self.tx);
        self.flush(out);
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        inbox: &Inbox<Self::Message>,
        out: &mut Outbox<Self::Message>,
    ) {
        for (port, envelope) in inbox.iter() {
            self.proto
                .on_message(ctx, port, envelope.payload.clone(), &mut self.tx);
        }
        self.proto.on_round_end(ctx, &mut self.tx);
        self.flush(out);
    }

    fn on_topology(&mut self, ctx: &NodeContext<'_>, delta: &TopologyDelta<'_>) -> RepairAction {
        self.proto.on_topology(ctx, delta)
    }

    fn is_active(&self) -> bool {
        self.proto.is_active()
    }

    fn quiescence(&self) -> Quiescence {
        self.proto.quiescence()
    }

    fn into_output(self, ctx: &NodeContext<'_>) -> Self::Output {
        self.proto.finish(ctx)
    }
}

//! [`PebbleKernel`]: the DFS token of Algorithm 1, walking a known tree.

use dapsp_congest::{NodeContext, Port, Width};

use super::protocol::{Protocol, Tx};
use crate::tree::TreeKnowledge;

/// The pebble itself. It carries no data — its presence *is* the message —
/// so it contributes no payload bits beyond the presence tag an enclosing
/// [`Stack`](super::Stack) charges for it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token;

/// The depth-first pebble of Algorithm 1: enters a node, waits one time
/// slot at first visits (paper line 5 — skipped in the Lemma 1 ablation),
/// raises a *release* event, and moves on to the next unvisited child,
/// else back to the parent.
///
/// The release event ([`take_released`](PebbleKernel::take_released)) is
/// the kernel's coupling surface: Algorithm 1 wires it to
/// [`WaveKernel::schedule_start`](super::WaveKernel::schedule_start) so
/// `BFS_v` starts exactly when the pebble leaves `v` — the spacing Lemma 1
/// needs.
pub struct PebbleKernel {
    parent_port: Option<Port>,
    children_ports: Vec<Port>,
    next_child: usize,
    visited: bool,
    /// Whether first visits hold the pebble one slot before releasing
    /// (paper line 5). `false` only in the Lemma 1 ablation.
    wait_one_slot: bool,
    /// The pebble arrived this round.
    arrived: bool,
    /// A first visit last round: release (and raise the event) this round.
    release_pending: bool,
    /// The release event, set for exactly the round end in which the
    /// pebble leaves after a first visit; consumed by the coupling.
    released: bool,
}

impl PebbleKernel {
    /// A pebble walking `tree`, starting at the tree's root.
    pub fn new(ctx: &NodeContext<'_>, tree: &TreeKnowledge, wait_one_slot: bool) -> Self {
        let v = ctx.node_id() as usize;
        let is_root = ctx.node_id() == tree.root;
        PebbleKernel {
            parent_port: tree.parent_port[v],
            children_ports: tree.children_ports[v].clone(),
            next_child: 0,
            visited: is_root,
            wait_one_slot,
            arrived: false,
            // The root behaves like a node first-visited before round 1:
            // it releases (and starts its wave) at the first round end.
            release_pending: is_root,
            released: false,
        }
    }

    /// Where the pebble goes next: the next unvisited child, else back to
    /// the parent (`None` when the traversal is over at the root).
    fn exit_port(&mut self) -> Option<Port> {
        if self.next_child < self.children_ports.len() {
            let p = self.children_ports[self.next_child];
            self.next_child += 1;
            Some(p)
        } else {
            self.parent_port
        }
    }

    fn release(&mut self, tx: &mut Tx<Token>) {
        self.released = true;
        if let Some(p) = self.exit_port() {
            tx.send(p, Token);
        }
    }

    /// True exactly in the round end where the pebble left this node after
    /// a first visit — the moment Algorithm 1 starts `BFS_v`. Reading
    /// consumes the event.
    pub fn take_released(&mut self) -> bool {
        std::mem::take(&mut self.released)
    }
}

impl Protocol for PebbleKernel {
    type Payload = Token;
    type Output = ();

    fn on_message(
        &mut self,
        _ctx: &NodeContext<'_>,
        _port: Port,
        _payload: Token,
        _tx: &mut Tx<Token>,
    ) {
        self.arrived = true;
    }

    fn on_round_end(&mut self, _ctx: &NodeContext<'_>, tx: &mut Tx<Token>) {
        if self.release_pending {
            // A first visit one round ago (paper line 5's one-slot wait,
            // or the root before round 1): release now.
            self.release_pending = false;
            self.release(tx);
        }
        if std::mem::take(&mut self.arrived) {
            if self.visited {
                // Revisited on the way back up: pass the pebble straight on.
                if let Some(p) = self.exit_port() {
                    tx.send(p, Token);
                }
            } else {
                self.visited = true;
                if self.wait_one_slot {
                    self.release_pending = true;
                } else {
                    // Ablation: release in the arrival round. Lemma 1's
                    // spacing is lost and the engine will detect colliding
                    // waves.
                    self.release(tx);
                }
            }
        }
    }

    fn is_active(&self) -> bool {
        self.release_pending
    }

    fn width(&self, _payload: &Token) -> Width {
        // Pure presence: the message's arrival (or the stack's presence
        // tag) *is* the token — a one-variant payload carries zero
        // information beyond that.
        Width::ZERO
    }

    fn finish(self, _ctx: &NodeContext<'_>) {}
}

#[cfg(test)]
mod width_tests {
    use super::*;

    /// The token carries no payload bits — any budget admits it.
    #[test]
    fn token_is_pure_presence() {
        let k = PebbleKernel {
            parent_port: None,
            children_ports: vec![0, 1],
            next_child: 0,
            visited: true,
            wait_one_slot: true,
            arrived: false,
            release_pending: false,
            released: false,
        };
        assert_eq!(k.width(&Token).bits(), 0);
    }
}

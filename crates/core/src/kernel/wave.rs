//! [`WaveKernel`]: BFS wave growth — the one state machine behind the
//! single-root BFS (Claim 1), Algorithm 1's per-node waves, and
//! Algorithm 2's ID-priority simultaneous growth.

use std::collections::BTreeSet;

use dapsp_congest::{NodeContext, Port, Width};
use dapsp_graph::INFINITY;

use super::protocol::{Protocol, Tx};

/// Which nodes root a wave.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Roots {
    /// One wave, rooted at the given node; per-node state is a single slot.
    Single(u32),
    /// Every node roots its own wave (Algorithm 1 / 2); per-node state is
    /// indexed by root id.
    All,
}

/// How simultaneous waves share an edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Contention {
    /// Forward on arrival (Claim 1): adopt, then immediately re-send to
    /// every port that did not deliver the wave. Correct only when the
    /// schedule guarantees waves never contend (Lemma 1) — the engine's
    /// duplicate-send check enforces exactly that.
    Forward,
    /// Algorithm 2's per-port queues `L_i`: arrivals settle into local
    /// state and each port transmits its most urgent pending id per round,
    /// ordered by the `(dist, id)` priority (smaller id wins ties).
    QueuePriority,
}

/// Messages of a wave kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WaveMsg {
    /// "You are at distance `dist` from `root` (if you adopt me)."
    Wave {
        /// The id of the wave's root.
        root: u32,
        /// The distance the receiver would be at.
        dist: u32,
    },
    /// "I adopted you as my parent" (sent only when adoption announcements
    /// are enabled, i.e. in the tree-building single-root BFS).
    Adopt,
}

/// What a node knows when a wave kernel quiesces.
#[derive(Clone, Debug)]
pub struct WaveState {
    /// Distance per root slot ([`INFINITY`] = unreached). One slot for a
    /// single-root kernel, `n` slots (indexed by root id) otherwise.
    pub dist: Vec<u32>,
    /// Parent port per root slot (`u32::MAX` = none).
    pub parent: Vec<Port>,
    /// Ports toward this node's children (populated only when adoption
    /// announcements are enabled).
    pub children_ports: Vec<Port>,
    /// How many wave messages reached this node — the Claim 1 cycle
    /// witness (`> 1` on some node iff the graph is not a tree, for a
    /// single-root wave).
    pub receipts: u32,
    /// The smallest cycle candidate observed (Lemma 7), [`INFINITY`] if
    /// none.
    pub girth_candidate: u32,
    /// How often a known distance was improved by a later arrival
    /// (queue-priority growth only; see `ssp`'s module docs).
    pub relaxations: u64,
}

/// BFS wave growth over one or many roots.
///
/// All of the paper's wave-shaped protocols are configurations of this one
/// kernel:
///
/// * [`single_root`](WaveKernel::single_root) — the tree-building BFS of
///   Claim 1: starts at `init`, forwards on arrival, announces adoptions
///   so parents learn their children.
/// * [`all_roots`](WaveKernel::all_roots) — Algorithm 1's `BFS_v` waves:
///   every node roots a wave, started externally
///   ([`schedule_start`](WaveKernel::schedule_start), driven by the pebble
///   coupling), optionally truncated at depth `k` (Definition 7).
/// * [`queued_sources`](WaveKernel::queued_sources) — Algorithm 2's
///   simultaneous growth with per-port ID-priority queues and relaxation.
pub struct WaveKernel {
    n: u32,
    roots: Roots,
    contention: Contention,
    /// Waves stop expanding at this depth (`u32::MAX` = full BFS).
    max_depth: u32,
    announce_adopt: bool,
    /// Whether wave messages are tagged with their root's stream id (for
    /// per-wave congestion observers).
    tagged_streams: bool,
    /// A wave start scheduled for this node's own root, fired at the next
    /// round end (set by [`schedule_start`](WaveKernel::schedule_start)).
    start_pending: bool,
    /// Wave arrivals buffered during the delivery step: `(root, dist,
    /// port)`, settled in sorted order at the round end.
    arrivals: Vec<(u32, u32, Port)>,
    /// Per-port pending queues `L_i` (queue-priority mode only).
    queues: Vec<BTreeSet<u32>>,
    state: WaveState,
}

impl WaveKernel {
    fn base(n: usize, slots: usize, degree: usize) -> Self {
        WaveKernel {
            n: n as u32,
            roots: Roots::All,
            contention: Contention::Forward,
            max_depth: u32::MAX,
            announce_adopt: false,
            tagged_streams: false,
            start_pending: false,
            arrivals: Vec::new(),
            queues: vec![BTreeSet::new(); degree],
            state: WaveState {
                dist: vec![INFINITY; slots],
                parent: vec![u32::MAX; slots],
                children_ports: Vec::new(),
                receipts: 0,
                girth_candidate: INFINITY,
                relaxations: 0,
            },
        }
    }

    /// The single-root tree-building BFS (Claim 1): the root starts its
    /// wave at `init`; adoptions are announced so every node learns its
    /// children.
    pub fn single_root(ctx: &NodeContext<'_>, root: u32) -> Self {
        let mut k = Self::base(ctx.num_nodes(), 1, ctx.degree());
        k.roots = Roots::Single(root);
        k.announce_adopt = true;
        k
    }

    /// Algorithm 1's waves: every node roots its own `BFS_v`, started via
    /// [`schedule_start`](WaveKernel::schedule_start) (the pebble
    /// coupling), truncated at `max_depth` for the k-BFS variant.
    pub fn all_roots(ctx: &NodeContext<'_>, max_depth: u32) -> Self {
        let n = ctx.num_nodes();
        let mut k = Self::base(n, n, ctx.degree());
        k.max_depth = max_depth;
        k.tagged_streams = true;
        k.state.dist[ctx.node_id() as usize] = 0;
        k
    }

    /// Algorithm 2's simultaneous growth: sources seed their own id into
    /// every port queue; contention resolves by the `(dist, id)` priority.
    pub fn queued_sources(ctx: &NodeContext<'_>, is_source: bool) -> Self {
        let n = ctx.num_nodes();
        let me = ctx.node_id();
        let mut k = Self::base(n, n, ctx.degree());
        k.contention = Contention::QueuePriority;
        k.tagged_streams = true;
        if is_source {
            k.state.dist[me as usize] = 0;
            for queue in &mut k.queues {
                queue.insert(me);
            }
        }
        k
    }

    /// Schedules this node's own wave to start at the next round end —
    /// the hook a [`Coupling`](super::Coupling) (e.g. the pebble's
    /// release) uses to drive Algorithm 1's staggered starts.
    pub fn schedule_start(&mut self) {
        self.start_pending = true;
    }

    /// The state slot for `root`.
    fn slot(&self, root: u32) -> usize {
        match self.roots {
            Roots::Single(_) => 0,
            Roots::All => root as usize,
        }
    }

    /// A repeated arrival of a known root closes a walk through it: the
    /// Lemma 7 cycle-candidate bookkeeping, shared by both contention
    /// modes.
    fn record_candidate(&mut self, port: Port, root: u32, dist: u32) {
        let r = self.slot(root);
        if self.state.dist[r] == INFINITY || dist == 0 {
            return;
        }
        let sender_dist = dist - 1;
        if port != self.state.parent[r] && sender_dist <= self.state.dist[r] {
            self.state.girth_candidate = self
                .state
                .girth_candidate
                .min(self.state.dist[r] + sender_dist + 1);
        }
    }

    /// Starts this node's own wave: distance-1 announcements on every port
    /// (suppressed entirely by a zero depth bound, as in k-BFS with
    /// `k = 0`).
    fn emit_own_wave(&mut self, ctx: &NodeContext<'_>, tx: &mut Tx<WaveMsg>) {
        if self.max_depth >= 1 {
            let me = ctx.node_id();
            for p in 0..ctx.degree() as Port {
                tx.send(p, WaveMsg::Wave { root: me, dist: 1 });
            }
        }
    }

    /// Claim 1 contention: settle the round's arrivals in `(root, dist,
    /// port)` order — groups of simultaneous arrivals per root adopt the
    /// lowest port, forward to every port that did not deliver the wave,
    /// and count the rest as cycle evidence.
    fn settle_forward(&mut self, ctx: &NodeContext<'_>, tx: &mut Tx<WaveMsg>) {
        let mut arrivals = std::mem::take(&mut self.arrivals);
        arrivals.sort_unstable();
        let mut i = 0;
        while i < arrivals.len() {
            let root = arrivals[i].0;
            let mut j = i;
            while j < arrivals.len() && arrivals[j].0 == root {
                j += 1;
            }
            let group = &arrivals[i..j];
            let r = self.slot(root);
            if self.state.dist[r] == INFINITY {
                // Adopt: all simultaneous arrivals of one wave carry the
                // same distance, so the sort leaves the lowest port first.
                let (_, d, first_port) = group[0];
                self.state.dist[r] = d;
                self.state.parent[r] = first_port;
                if d < self.max_depth {
                    let received: Vec<Port> = group.iter().map(|&(_, _, p)| p).collect();
                    for p in 0..ctx.degree() as Port {
                        if !received.contains(&p) {
                            tx.send(p, WaveMsg::Wave { root, dist: d + 1 });
                        }
                    }
                }
                if self.announce_adopt {
                    tx.send(first_port, WaveMsg::Adopt);
                }
            }
            for &(_, d, port) in group {
                self.record_candidate(port, root, d);
            }
            i = j;
        }
        self.arrivals = arrivals;
        self.arrivals.clear();
    }

    /// Algorithm 2 contention: settle arrivals in `(id, dist, port)` order
    /// — keep the best claim per id, re-announce improvements through the
    /// other ports' queues, record cycle candidates — then transmit the
    /// most urgent pending id per port.
    fn settle_queued(&mut self, ctx: &NodeContext<'_>, tx: &mut Tx<WaveMsg>) {
        let mut arrivals = std::mem::take(&mut self.arrivals);
        arrivals.sort_unstable();
        let mut i = 0;
        while i < arrivals.len() {
            let id = arrivals[i].0;
            let mut j = i;
            while j < arrivals.len() && arrivals[j].0 == id {
                j += 1;
            }
            let u = id as usize;
            let (_, dist, port) = arrivals[i]; // smallest dist, lowest port
            if dist < self.state.dist[u] {
                if self.state.dist[u] != INFINITY {
                    self.state.relaxations += 1;
                }
                self.state.dist[u] = dist;
                self.state.parent[u] = port;
                for (p, queue) in self.queues.iter_mut().enumerate() {
                    if p != port as usize {
                        queue.insert(id);
                    }
                }
            }
            for &(_, d, p) in &arrivals[i..j] {
                if p != self.state.parent[u] {
                    self.record_candidate(p, id, d);
                }
            }
            i = j;
        }
        self.arrivals = arrivals;
        self.arrivals.clear();
        // Transmit the most urgent pending id per port (paper lines 13–17,
        // with the (dist, id) priority).
        for port in 0..ctx.degree() {
            let head = self.queues[port]
                .iter()
                .map(|&id| (self.state.dist[id as usize] + 1, id))
                .min();
            if let Some((dist, id)) = head {
                self.queues[port].remove(&id);
                tx.send(port as Port, WaveMsg::Wave { root: id, dist });
            }
        }
    }
}

impl Protocol for WaveKernel {
    type Payload = WaveMsg;
    type Output = WaveState;

    fn init(&mut self, ctx: &NodeContext<'_>, tx: &mut Tx<WaveMsg>) {
        if let Roots::Single(root) = self.roots {
            if ctx.node_id() == root {
                self.state.dist[0] = 0;
                self.emit_own_wave(ctx, tx);
            }
        }
    }

    fn on_message(
        &mut self,
        _ctx: &NodeContext<'_>,
        port: Port,
        payload: WaveMsg,
        _tx: &mut Tx<WaveMsg>,
    ) {
        match payload {
            WaveMsg::Wave { root, dist } => {
                self.state.receipts += 1;
                self.arrivals.push((root, dist, port));
            }
            WaveMsg::Adopt => self.state.children_ports.push(port),
        }
    }

    fn on_round_end(&mut self, ctx: &NodeContext<'_>, tx: &mut Tx<WaveMsg>) {
        match self.contention {
            Contention::Forward => {
                // A scheduled start fires first (the wave the pebble
                // released last round), then the round's arrivals settle.
                if self.start_pending {
                    self.start_pending = false;
                    self.emit_own_wave(ctx, tx);
                }
                self.settle_forward(ctx, tx);
            }
            Contention::QueuePriority => self.settle_queued(ctx, tx),
        }
    }

    fn is_active(&self) -> bool {
        match self.contention {
            Contention::Forward => self.start_pending,
            Contention::QueuePriority => self.queues.iter().any(|queue| !queue.is_empty()),
        }
    }

    fn width(&self, payload: &WaveMsg) -> Width {
        match payload {
            WaveMsg::Wave { .. } => {
                // The Adopt/Wave discriminant costs a bit only where both
                // variants are in play (the announcing single-root BFS).
                let mut w = Width::ZERO;
                if self.announce_adopt {
                    w = w.tag();
                }
                if self.roots == Roots::All {
                    w = w.id(self.n as usize);
                }
                // The distance field is fixed-width over its domain
                // `0..=n` — charging by the current value would be a
                // variable-width encoding with no delimiter.
                w.count(self.n as usize)
            }
            WaveMsg::Adopt => Width::ZERO.tag(),
        }
    }

    fn stream(&self, payload: &WaveMsg) -> Option<u32> {
        match payload {
            WaveMsg::Wave { root, .. } if self.tagged_streams => Some(*root),
            _ => None,
        }
    }

    fn finish(self, _ctx: &NodeContext<'_>) -> WaveState {
        self.state
    }
}

#[cfg(test)]
mod width_tests {
    use super::*;
    use dapsp_congest::Config;

    fn worst_wave(n: usize) -> WaveMsg {
        WaveMsg::Wave {
            root: n as u32 - 1,
            dist: n as u32,
        }
    }

    /// Every wave configuration's worst-case message fits the per-message
    /// budget `B = 2⌈log₂ n⌉ + 8`; the Algorithm 1 waves must fit even
    /// with the two presence tags their pebble stack adds on the wire.
    #[test]
    fn worst_case_widths_fit_the_budget() {
        for n in [2usize, 3, 10, 100, 1 << 16] {
            let budget = Config::for_n(n).message_budget.unwrap();
            // Single-root announcing BFS: discriminant tag + distance.
            let mut k = WaveKernel::base(n, 1, 4);
            k.roots = Roots::Single(0);
            k.announce_adopt = true;
            assert!(k.width(&worst_wave(n)).bits() <= budget, "bfs wave, n={n}");
            assert!(k.width(&WaveMsg::Adopt).bits() <= budget, "adopt, n={n}");
            // Algorithm 1 waves: root id + distance, plus the stack's two
            // presence tags.
            let k = WaveKernel::base(n, n, 4);
            assert!(
                k.width(&worst_wave(n)).bits() + 2 <= budget,
                "stacked apsp wave, n={n}"
            );
            // Algorithm 2 growth: root id + distance.
            let mut k = WaveKernel::base(n, n, 4);
            k.contention = Contention::QueuePriority;
            assert!(k.width(&worst_wave(n)).bits() <= budget, "ssp wave, n={n}");
        }
    }

    /// The distance field is fixed-width over its domain: a distance-1
    /// wave costs exactly as many bits as a distance-`n` wave, so the
    /// width never under-counts the decodable encoding.
    #[test]
    fn width_is_fixed_by_domain_not_value() {
        let k = WaveKernel::base(100, 100, 4);
        let near = WaveMsg::Wave { root: 0, dist: 1 };
        assert_eq!(k.width(&near).bits(), k.width(&worst_wave(100)).bits());
    }
}

//! [`ConvergecastKernel`]: aggregate up a rooted tree, broadcast the total
//! back down (Definition 6 / Lemmas 3–7).

use dapsp_congest::{NodeContext, Port, Width};

use super::protocol::{Protocol, Tx};
use crate::aggregate::AggOp;
use crate::tree::TreeKnowledge;

/// Messages of the convergecast: partial aggregates flowing up, the final
/// total flowing down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CastMsg {
    /// A partial aggregate, sent to the parent.
    Up(u64),
    /// The final total, broadcast toward the leaves.
    Down(u64),
}

/// The paper's "aggregate over `T_1` in `O(D)`" primitive as a kernel:
/// leaves push their value up, inner nodes combine one partial per child,
/// the root broadcasts the total down, and every node ends up knowing it.
pub struct ConvergecastKernel {
    op: AggOp,
    acc: u64,
    parent_port: Option<Port>,
    children_ports: Vec<Port>,
    missing_children: usize,
    /// Set once the node must push `acc` up (or, at the root, start the
    /// downward broadcast) at the round end.
    ready: bool,
    result: Option<u64>,
}

impl ConvergecastKernel {
    /// Aggregates `value` (this node's contribution) over `tree` with `op`.
    pub fn new(ctx: &NodeContext<'_>, tree: &TreeKnowledge, value: u64, op: AggOp) -> Self {
        let v = ctx.node_id() as usize;
        ConvergecastKernel {
            op,
            acc: value,
            parent_port: tree.parent_port[v],
            children_ports: tree.children_ports[v].clone(),
            missing_children: tree.children_ports[v].len(),
            ready: false,
            result: None,
        }
    }
}

impl Protocol for ConvergecastKernel {
    type Payload = CastMsg;
    type Output = u64;

    fn init(&mut self, _ctx: &NodeContext<'_>, tx: &mut Tx<CastMsg>) {
        if self.missing_children == 0 {
            if let Some(parent) = self.parent_port {
                tx.send(parent, CastMsg::Up(self.acc));
            } else {
                // Root of a single-node tree: done immediately.
                self.result = Some(self.acc);
            }
        }
    }

    fn on_message(
        &mut self,
        _ctx: &NodeContext<'_>,
        _port: Port,
        payload: CastMsg,
        tx: &mut Tx<CastMsg>,
    ) {
        match payload {
            CastMsg::Up(v) => {
                self.acc = self.op.combine(self.acc, v);
                self.missing_children -= 1;
                if self.missing_children == 0 {
                    self.ready = true;
                }
            }
            CastMsg::Down(v) => {
                self.result = Some(v);
                for &c in &self.children_ports {
                    tx.send(c, CastMsg::Down(v));
                }
            }
        }
    }

    fn on_round_end(&mut self, _ctx: &NodeContext<'_>, tx: &mut Tx<CastMsg>) {
        if self.ready {
            self.ready = false;
            match self.parent_port {
                Some(p) => tx.send(p, CastMsg::Up(self.acc)),
                None => {
                    // Root: aggregation complete, broadcast downward.
                    self.result = Some(self.acc);
                    for &c in &self.children_ports {
                        tx.send(c, CastMsg::Down(self.acc));
                    }
                }
            }
        }
    }

    fn width(&self, payload: &CastMsg) -> Width {
        // Aggregate values are caller-provided `u64`s with no static
        // domain, so the width is the value's own magnitude; the engine's
        // per-message bandwidth/budget checks are what enforce the
        // "partials fit in `B` bits" contract dynamically.
        let v = match payload {
            CastMsg::Up(v) | CastMsg::Down(v) => *v,
        };
        Width::ZERO.tag().count(v as usize)
    }

    fn finish(self, _ctx: &NodeContext<'_>) -> u64 {
        self.result.unwrap_or(self.acc)
    }
}

#[cfg(test)]
mod width_tests {
    use super::*;
    use dapsp_congest::Config;

    /// This crate only aggregates counts and distances `≤ n` — so partial
    /// sums stay `≤ n²` and every cast message fits the budget
    /// `B = 2⌈log₂ n⌉ + 8` in both directions.
    #[test]
    fn crate_range_partials_fit_the_budget() {
        for n in [2usize, 10, 100, 1 << 16] {
            let budget = Config::for_n(n).message_budget.unwrap();
            let k = ConvergecastKernel {
                op: AggOp::Sum,
                acc: 0,
                parent_port: Some(0),
                children_ports: vec![1],
                missing_children: 1,
                ready: false,
                result: None,
            };
            let worst = (n * n) as u64;
            assert!(k.width(&CastMsg::Up(worst)).bits() <= budget, "n={n}");
            assert!(k.width(&CastMsg::Down(worst)).bits() <= budget, "n={n}");
        }
    }
}

//! Algorithm 3 of the paper (a.k.a. "2-vs-4", Theorem 7): distinguish
//! graphs of diameter 2 from graphs of diameter 4 in `O(√(n·log n))`
//! rounds.
//!
//! With `s := √(n·log n)`, split nodes into the low-degree set
//! `L(V) = {u : deg(u) < s}` and the high-degree set `H(V)`:
//!
//! * if some low-degree node `v` exists, BFS from every vertex of `N₁(v)`
//!   (at most `s` searches);
//! * otherwise every node joins a sample `DOM` with probability
//!   `√(log n / n)`; by Remark 6 this is a dominating set for `H(V) = V`
//!   with high probability, of size `Θ(√(n·log n))`.
//!
//! The diameter is 2 iff every started BFS tree has depth at most 2 — if
//! `D = 4`, some probed vertex sits within one hop of an endpoint of a
//! distance-4 pair and must have eccentricity at least 3. The searches are
//! run with Algorithm 2 (S-SP), which is never slower than the paper's
//! sequential BFS schedule, and the depth test is one OR-aggregation.
//!
//! The answer is only meaningful under the promise `D ∈ {2, 4}` — that
//! restriction is the point of the theorem, since distinguishing 2 from 3
//! needs `Ω(n/B)` rounds (Theorem 6).

use dapsp_congest::{RunStats, Topology};
use dapsp_graph::Graph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::aggregate::{self, AggOp};
use crate::bfs;
use crate::error::CoreError;
use crate::ssp;

/// Which branch of Algorithm 3 ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// A low-degree node `v` existed; probed `N₁(v)`.
    LowDegreeNeighborhood {
        /// The chosen low-degree node.
        chosen: u32,
    },
    /// All degrees were at least `s`; probed a random sample.
    RandomDominatingSample,
}

/// The verdict of Algorithm 3.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TwoVsFourResult {
    /// The claimed diameter: 2 or 4 (valid under the promise `D ∈ {2, 4}`).
    pub claimed_diameter: u32,
    /// Which branch ran.
    pub strategy: Strategy,
    /// How many BFS sources were probed.
    pub probed_sources: usize,
    /// Round/message statistics.
    pub stats: RunStats,
}

/// The degree threshold `s = ⌈√(n·log₂ n)⌉` of the algorithm.
pub fn degree_threshold(n: usize) -> usize {
    let logn = (n.max(2) as f64).log2();
    (n as f64 * logn).sqrt().ceil() as usize
}

/// Phase shared by both probe schedules: elect the smallest-id low-degree
/// node (or fall back to random sampling when none exists) and derive the
/// probe set. Charges its min-aggregation to `stats`.
fn select_probes(
    topology: &Topology,
    t1: &crate::tree::TreeKnowledge,
    seed: u64,
    stats: &mut RunStats,
) -> Result<(Vec<u32>, Strategy), CoreError> {
    let n = topology.num_nodes();
    let s = degree_threshold(n);
    // The sentinel n means "no low-degree node"; the broadcast tells
    // everyone the winner, so its neighbors know they are sources without
    // extra rounds.
    let candidate_ids: Vec<u64> = (0..n as u32)
        .map(|v| {
            if topology.degree(v) < s {
                u64::from(v)
            } else {
                n as u64
            }
        })
        .collect();
    let min = aggregate::run_on(topology, t1, &candidate_ids, AggOp::Min)?;
    stats.absorb_sequential(&min.stats);
    Ok(if (min.value as usize) < n {
        let chosen = min.value as u32;
        let mut srcs = vec![chosen];
        srcs.extend_from_slice(topology.neighbors(chosen));
        srcs.sort_unstable();
        (srcs, Strategy::LowDegreeNeighborhood { chosen })
    } else {
        // Everyone is high-degree: independent sampling with probability
        // sqrt(log n / n), plus node 0 as a deterministic fallback so the
        // source set is never empty (extra probes only help).
        let p = ((n.max(2) as f64).log2() / n as f64).sqrt().min(1.0);
        let srcs: Vec<u32> = (0..n as u32)
            .filter(|&v| {
                v == 0 || ChaCha8Rng::seed_from_u64(seed ^ (u64::from(v) << 20)).gen_bool(p)
            })
            .collect();
        (srcs, Strategy::RandomDominatingSample)
    })
}

/// Runs Algorithm 3. `seed` drives the (public-randomness) sampling branch.
///
/// # Errors
///
/// * [`CoreError::EmptyGraph`] / [`CoreError::Disconnected`] on bad graphs.
/// * [`CoreError::Sim`] on simulator failures.
///
/// # Examples
///
/// ```
/// use dapsp_core::two_vs_four;
/// use dapsp_graph::generators;
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// // A star has diameter 2; a length-4 double broom has diameter 4.
/// assert_eq!(two_vs_four::run(&generators::star(20), 1)?.claimed_diameter, 2);
/// assert_eq!(two_vs_four::run(&generators::double_broom(20, 4), 1)?.claimed_diameter, 4);
/// # Ok(())
/// # }
/// ```
pub fn run(graph: &Graph, seed: u64) -> Result<TwoVsFourResult, CoreError> {
    let n = graph.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    let topology = graph.to_topology();
    let t1 = bfs::run_on(&topology, 0)?;
    if !t1.reached_all() {
        return Err(CoreError::Disconnected);
    }
    let mut stats = t1.stats;
    let (sources, strategy) = select_probes(&topology, &t1.tree, seed, &mut stats)?;
    let sp = ssp::run_on(&topology, &sources)?;
    stats.absorb_sequential(&sp.stats);
    // Depth test: does any node sit deeper than 2 in any probed tree?
    let deep: Vec<u64> = (0..n)
        .map(|v| u64::from(sp.dist[v].iter().any(|&d| d > 2)))
        .collect();
    let or = aggregate::run_on(&topology, &t1.tree, &deep, AggOp::Or)?;
    stats.absorb_sequential(&or.stats);
    Ok(TwoVsFourResult {
        claimed_diameter: if or.value == 1 { 4 } else { 2 },
        strategy,
        probed_sources: sources.len(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapsp_graph::{generators, lowerbound, reference};

    #[test]
    fn diameter_two_instances_answer_two() {
        for g in [
            generators::star(15),
            generators::complete_bipartite(5, 6),
            generators::complete(8),
        ] {
            let d = reference::diameter(&g).unwrap();
            assert!(d <= 2);
            assert_eq!(run(&g, 7).unwrap().claimed_diameter, 2);
        }
        // The lower-bound family's disjoint branch has diameter exactly 2.
        let (a, b) = lowerbound::canonical_inputs(8, false);
        let inst = lowerbound::two_vs_three(8, &a, &b);
        assert_eq!(run(&inst.graph, 7).unwrap().claimed_diameter, 2);
    }

    #[test]
    fn diameter_four_instances_answer_four() {
        for g in [
            generators::double_broom(20, 4),
            generators::path(5),
            generators::grid(3, 3), // D = 4
        ] {
            assert_eq!(reference::diameter(&g), Some(4));
            assert_eq!(run(&g, 7).unwrap().claimed_diameter, 4);
        }
    }

    #[test]
    fn high_degree_branch_on_dense_promise_graphs() {
        // Complete bipartite K_{a,a} with a large: every degree = a >= s.
        let g = generators::complete_bipartite(30, 30);
        let s = degree_threshold(60);
        assert!(30 >= s, "test premise: all degrees high (s={s})");
        let r = run(&g, 3).unwrap();
        assert_eq!(r.strategy, Strategy::RandomDominatingSample);
        assert_eq!(r.claimed_diameter, 2);
    }

    #[test]
    fn sublinear_rounds_versus_exact_diameter() {
        // On a large diameter-2 instance the probe count is ~√(n log n),
        // so rounds stay well below the exact O(n) computation.
        let (a, b) = lowerbound::canonical_inputs(60, false);
        let inst = lowerbound::two_vs_three(60, &a, &b); // n = 122
        let quick = run(&inst.graph, 5).unwrap();
        let exact = crate::metrics::diameter(&inst.graph).unwrap();
        assert_eq!(quick.claimed_diameter, 2);
        assert!(
            quick.stats.rounds < exact.stats.rounds / 2,
            "2-vs-4 {} rounds, exact {}",
            quick.stats.rounds,
            exact.stats.rounds
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let g = generators::complete_bipartite(20, 20);
        let a = run(&g, 11).unwrap();
        let b = run(&g, 11).unwrap();
        assert_eq!(a.probed_sources, b.probed_sources);
        assert_eq!(a.claimed_diameter, b.claimed_diameter);
    }

    #[test]
    fn threshold_grows_like_sqrt_n_log_n() {
        assert!(degree_threshold(100) >= 25);
        assert!(degree_threshold(100) <= 27);
        assert!(degree_threshold(10_000) > degree_threshold(100) * 5);
    }
}

/// Algorithm 3 with the paper's literal probe schedule: one BFS per source,
/// run back to back (the paper notes this is "already fast enough" since
/// `D <= 4` under the promise, and skips `N₁(v)`-SP).
///
/// [`run`] uses Algorithm 2 instead — `O(|S| + D)` rather than
/// `O(|S| · D)` rounds — which is a documented substitution; this variant
/// exists to measure the difference (see the `table1_two_vs_four`
/// experiment).
///
/// # Errors
///
/// Same as [`run`].
pub fn run_sequential_probes(graph: &Graph, seed: u64) -> Result<TwoVsFourResult, CoreError> {
    let n = graph.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    let topology = graph.to_topology();
    let t1 = bfs::run_on(&topology, 0)?;
    if !t1.reached_all() {
        return Err(CoreError::Disconnected);
    }
    let mut stats = t1.stats;
    let (sources, strategy) = select_probes(&topology, &t1.tree, seed, &mut stats)?;
    // The paper's schedule: one full BFS per probed vertex, sequentially.
    let mut deep = vec![0u64; n];
    for &src in &sources {
        let b = bfs::run_on(&topology, src)?;
        stats.absorb_sequential(&b.stats);
        for (flag, &d) in deep.iter_mut().zip(&b.dist) {
            if d != dapsp_graph::INFINITY && d > 2 {
                *flag = 1;
            }
        }
    }
    let or = aggregate::run_on(&topology, &t1.tree, &deep, AggOp::Or)?;
    stats.absorb_sequential(&or.stats);
    Ok(TwoVsFourResult {
        claimed_diameter: if or.value == 1 { 4 } else { 2 },
        strategy,
        probed_sources: sources.len(),
        stats,
    })
}

#[cfg(test)]
mod sequential_probe_tests {
    use super::*;
    use dapsp_graph::generators;

    #[test]
    fn agrees_with_the_pipelined_variant() {
        for (g, seed) in [
            (generators::star(20), 1u64),
            (generators::double_broom(24, 4), 1),
            (generators::complete_bipartite(16, 16), 2),
            (generators::grid(3, 3), 3),
        ] {
            let fast = run(&g, seed).unwrap();
            let slow = run_sequential_probes(&g, seed).unwrap();
            assert_eq!(fast.claimed_diameter, slow.claimed_diameter);
            assert_eq!(fast.probed_sources, slow.probed_sources);
        }
    }

    #[test]
    fn pipelined_probing_is_never_slower_at_scale() {
        // With many probes the S-SP pipeline beats the sequential schedule.
        let g = generators::complete_bipartite(40, 40);
        let fast = run(&g, 5).unwrap();
        let slow = run_sequential_probes(&g, 5).unwrap();
        assert!(fast.probed_sources > 8, "need enough probes to matter");
        assert!(
            fast.stats.rounds < slow.stats.rounds,
            "pipelined {} vs sequential {}",
            fast.stats.rounds,
            slow.stats.rounds
        );
    }
}

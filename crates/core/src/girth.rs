//! Exact girth in `O(n)` rounds (Lemma 7 and Claim 1 of the paper).
//!
//! Procedure, exactly as in the paper:
//!
//! 1. **Tree test (Claim 1), `O(D)` rounds:** run `BFS_1`; the graph is a
//!    tree iff no node receives the wave more than once. The per-node flags
//!    are OR-aggregated over `T_1`. If a tree, the girth is infinite
//!    (`None`).
//! 2. **Cycle detection during APSP, `O(n)` rounds:** while Algorithm 1's
//!    waves run, a node `u` at depth `d_u` in `T_v` that hears `v`'s wave
//!    again from a non-parent neighbor `w` at depth `d_w` knows a cycle of
//!    length at most `d_u + d_w + 1` exists; from a root on a minimum cycle
//!    the bound is tight, so the minimum candidate over all nodes *is* the
//!    girth.
//! 3. **Min-aggregation, `O(D)` rounds:** the smallest candidate is folded
//!    up `T_1` and broadcast.

use dapsp_congest::{ObserverHandle, RunStats};
use dapsp_graph::Graph;

use crate::aggregate::{self, AggOp};
use crate::apsp;
use crate::bfs;
use crate::error::CoreError;
use crate::observe::Obs;

/// The outcome of the distributed girth computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GirthResult {
    /// The girth, or `None` for a tree (the paper defines forest girth as
    /// infinity).
    pub girth: Option<u32>,
    /// Round/message statistics across all phases.
    pub stats: RunStats,
}

/// Computes the girth exactly in `O(n)` rounds (Lemma 7).
///
/// # Errors
///
/// * [`CoreError::EmptyGraph`] / [`CoreError::Disconnected`] on invalid
///   inputs.
/// * [`CoreError::Sim`] on simulator failures.
///
/// # Examples
///
/// ```
/// use dapsp_core::girth;
/// use dapsp_graph::generators;
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// assert_eq!(girth::run(&generators::cycle(9))?.girth, Some(9));
/// assert_eq!(girth::run(&generators::balanced_tree(2, 3))?.girth, None);
/// # Ok(())
/// # }
/// ```
pub fn run(graph: &Graph) -> Result<GirthResult, CoreError> {
    run_obs(graph, Obs::none())
}

/// Like [`run`], streaming round/message/timing events of every phase to
/// `observer`: the tree test reports as `"bfs"` and `"agg:or"`, the cycle
/// detection as the APSP phases (`"bfs"`, `"apsp:waves"`), and the final
/// fold as `"agg:min"`.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_observed(graph: &Graph, observer: &ObserverHandle) -> Result<GirthResult, CoreError> {
    run_obs(graph, Obs::watching(observer))
}

fn run_obs(graph: &Graph, obs: Obs<'_>) -> Result<GirthResult, CoreError> {
    let n = graph.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    let topology = graph.to_topology();
    // Claim 1: BFS from node 0 doubles as the tree test.
    let t1 = bfs::run_on_obs(&topology, 0, obs)?;
    if !t1.reached_all() {
        return Err(CoreError::Disconnected);
    }
    let mut stats = t1.stats;
    // OR-aggregate the per-node "received the wave twice" flags over T_1 so
    // every node learns whether the graph is a tree.
    let flags: Vec<u64> = t1.receipts.iter().map(|&r| u64::from(r > 1)).collect();
    let or = aggregate::run_on_obs(&topology, &t1.tree, &flags, AggOp::Or, obs)?;
    stats.absorb_sequential(&or.stats);
    if or.value == 0 {
        return Ok(GirthResult { girth: None, stats });
    }
    // Not a tree: run Algorithm 1 and min-aggregate the per-node cycle
    // candidates. Sentinel for "no candidate at this node": anything above
    // 2n + 1 works, since every cycle candidate is at most 2D + 1 < 2n + 2.
    let apsp_result = apsp::run_on_obs(&topology, obs)?;
    stats.absorb_sequential(&apsp_result.stats);
    let sentinel = 2 * n as u64 + 2;
    let candidates: Vec<u64> = apsp_result
        .local_girth_candidates
        .iter()
        .map(|&c| {
            if c == dapsp_graph::INFINITY {
                sentinel
            } else {
                u64::from(c)
            }
        })
        .collect();
    let min = aggregate::run_on_obs(&topology, &apsp_result.tree, &candidates, AggOp::Min, obs)?;
    stats.absorb_sequential(&min.stats);
    debug_assert!(min.value < sentinel, "non-tree graph must have a cycle");
    Ok(GirthResult {
        girth: Some(min.value as u32),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapsp_graph::{generators, reference};

    #[test]
    fn matches_oracle_on_zoo() {
        let zoo = vec![
            generators::cycle(3),
            generators::cycle(10),
            generators::complete(5),
            generators::grid(3, 4),
            generators::hypercube(3),
            generators::lollipop(6, 5),
            generators::tadpole(4, 15),
            generators::barbell(4, 3),
            generators::complete_bipartite(3, 3),
        ];
        for g in zoo {
            assert_eq!(run(&g).unwrap().girth, reference::girth(&g));
        }
    }

    #[test]
    fn trees_report_infinite_girth_quickly() {
        for g in [
            generators::path(20),
            generators::star(15),
            generators::balanced_tree(3, 3),
            generators::random_tree(25, 7),
        ] {
            let r = run(&g).unwrap();
            assert_eq!(r.girth, None);
            // Tree test is O(D), far below the O(n) full computation.
            let n = g.num_nodes() as u64;
            assert!(r.stats.rounds <= 4 * n, "rounds={}", r.stats.rounds);
        }
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 0..6 {
            let g = generators::erdos_renyi_connected(24, 0.1, seed);
            assert_eq!(run(&g).unwrap().girth, reference::girth(&g), "seed={seed}");
        }
    }

    #[test]
    fn single_node_is_a_tree() {
        let g = Graph::builder(1).build();
        assert_eq!(run(&g).unwrap().girth, None);
    }

    use dapsp_graph::Graph;
}

//! Threading one [`ObserverHandle`] through multi-phase pipelines.
//!
//! Every algorithm in this crate is a sequence of simulator runs (a BFS,
//! some aggregations, a main phase, …). To observe a *pipeline* rather
//! than a single run, the same handle must reach every [`Config`] the
//! pipeline builds, each labeled with a phase name so the recorded metric
//! stream attributes rounds to phases (`"bfs"`, `"agg:max"`,
//! `"apsp:waves"`, …).
//!
//! [`Obs`] is that plumbing: a `Copy` wrapper around an optional borrowed
//! handle. Internal phase functions take an `Obs<'_>` parameter;
//! [`Obs::none`] keeps the unobserved call sites zero-cost (a `None`
//! branch), and the public `run_observed` entry points construct
//! [`Obs::watching`] from a caller's handle.
//!
//! # Examples
//!
//! ```
//! use dapsp_congest::{MetricsRecorder, SharedObserver};
//! use dapsp_core::apsp;
//! use dapsp_graph::generators;
//!
//! # fn main() -> Result<(), dapsp_core::CoreError> {
//! let recorder = SharedObserver::new(MetricsRecorder::new());
//! let result = apsp::run_observed(&generators::path(6), &recorder.observer())?;
//! let phases: Vec<String> = recorder.with(|r| {
//!     r.stream().iter().map(|row| row.phase.to_string()).collect()
//! });
//! assert!(phases.contains(&"bfs".to_string()));
//! assert!(phases.contains(&"apsp:waves".to_string()));
//! assert_eq!(result.stats.messages, recorder.with(|r| {
//!     r.stream().iter().map(|row| row.messages).sum::<u64>()
//! }));
//! # Ok(())
//! # }
//! ```

use dapsp_congest::{Config, ExecutorKind, ObserverHandle, TransportSummary};

/// An optional, borrowed observer to attach to each phase of a pipeline,
/// plus the round-engine executor every phase should run on.
///
/// `Copy`, so phase functions pass it along by value; the handle inside is
/// only cloned (an `Arc` bump) at the moment a phase actually attaches it
/// to a [`Config`].
///
/// The executor selection rides along because composite pipelines build
/// their `Config`s internally: [`Obs::with_executor`] is how a caller runs
/// every phase of, say, the APSP pipeline on the worker-pool executor.
/// Results are bit-for-bit identical for any executor (the engine's core
/// guarantee), so this is purely a wall-clock knob.
#[derive(Clone, Copy, Debug, Default)]
pub struct Obs<'a> {
    handle: Option<&'a ObserverHandle>,
    executor: ExecutorKind,
}

impl<'a> Obs<'a> {
    /// Nobody is watching: [`apply`](Self::apply) returns configs
    /// untouched (not even the phase label is set, keeping unobserved
    /// runs identical to pre-observer behavior).
    pub fn none() -> Self {
        Obs {
            handle: None,
            executor: ExecutorKind::Serial,
        }
    }

    /// Attach `handle` to every phase config this `Obs` is applied to.
    pub fn watching(handle: &'a ObserverHandle) -> Self {
        Obs {
            handle: Some(handle),
            executor: ExecutorKind::Serial,
        }
    }

    /// Run every phase this `Obs` is applied to on `executor` (default
    /// [`ExecutorKind::Serial`], which leaves configs untouched).
    pub fn with_executor(mut self, executor: ExecutorKind) -> Self {
        self.executor = executor;
        self
    }

    /// The executor phases will run on.
    pub fn executor(&self) -> ExecutorKind {
        self.executor
    }

    /// Whether an observer is attached.
    pub fn is_watching(&self) -> bool {
        self.handle.is_some()
    }

    /// Reports a reliable phase's aggregated transport counters to the
    /// attached observer (a no-op when nobody is watching). Called by the
    /// `run_faulty` entry points after folding the per-node `RelStats`,
    /// i.e. outside the engine, after that phase's `on_run_end`.
    pub fn report_transport(&self, summary: &TransportSummary) {
        if let Some(h) = self.handle {
            h.lock().on_transport(summary);
        }
    }

    /// Labels `config` with `phase`, attaches the observer, and selects
    /// the executor. When nobody is watching and the executor is the
    /// default serial one, `config` comes back unchanged.
    pub fn apply(&self, config: Config, phase: &str) -> Config {
        let config = match self.executor {
            ExecutorKind::Serial => config,
            other => config.with_executor(other),
        };
        match self.handle {
            Some(h) => config.with_observer(h.clone()).with_phase(phase),
            None => config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapsp_congest::{MetricsRecorder, SharedObserver};

    #[test]
    fn none_leaves_config_untouched() {
        let obs = Obs::none();
        assert!(!obs.is_watching());
        let config = obs.apply(Config::for_n(8), "bfs");
        assert!(config.observer.is_none());
        assert_eq!(config.phase, "");
        assert_eq!(config, Config::for_n(8));
    }

    #[test]
    fn watching_attaches_observer_and_phase() {
        let shared = SharedObserver::new(MetricsRecorder::new());
        let handle = shared.observer();
        let obs = Obs::watching(&handle);
        assert!(obs.is_watching());
        let config = obs.apply(Config::for_n(8), "apsp:waves");
        assert!(config.observer.is_some());
        assert_eq!(config.phase, "apsp:waves");
    }

    #[test]
    fn executor_rides_along_with_and_without_observer() {
        let pool = ExecutorKind::Pool { workers: 2 };
        let unwatched = Obs::none().with_executor(pool);
        assert_eq!(unwatched.executor(), pool);
        let config = unwatched.apply(Config::for_n(8), "bfs");
        assert_eq!(config.executor, pool);
        assert!(config.observer.is_none());

        let shared = SharedObserver::new(MetricsRecorder::new());
        let handle = shared.observer();
        let watched = Obs::watching(&handle).with_executor(pool);
        let config = watched.apply(Config::for_n(8), "bfs");
        assert_eq!(config.executor, pool);
        assert!(config.observer.is_some());
        // The default executor keeps unobserved configs byte-identical.
        assert_eq!(Obs::none().apply(Config::for_n(8), "x"), Config::for_n(8));
    }
}

//! Algorithm 2 **exactly as written in the paper** — kept as an ablation.
//!
//! This module transcribes the paper's pseudocode literally: bare-id
//! priority (`l_i := min(L_i)`), the drop rule of lines 18–27 (when
//! `r_i ≥ l_i` the received message is discarded and its sender retries),
//! lowest-port adoption among simultaneous arrivals, and a **fixed**
//! `|S| + D₀` round schedule.
//!
//! Running it is how the deviation documented in DESIGN.md §5 was found:
//! on contended instances the first arrival of an id can carry a
//! non-shortest distance (a blocked direct edge loses to an unblocked
//! two-hop detour), and drop-induced retries can outlast the budget. The
//! result therefore reports, per run, how many (node, source) pairs ended
//! **unresolved** (never learned) — the production implementation in
//! [`crate::ssp`] repairs both issues. Distances that *were* adopted may
//! additionally be overestimates; compare against [`crate::ssp`] or the
//! oracle to count those (see the ablation benchmark
//! `ablation_ssp_variants`).

use dapsp_congest::{Config, NodeContext, Port, RunStats, Width};
use dapsp_graph::{Graph, INFINITY};

use crate::aggregate::{self, AggOp};
use crate::bfs;
use crate::error::CoreError;
use crate::kernel::{run_protocol_on, Protocol, Tx};
use crate::runner::fold_outputs;

/// One (id, distance) announcement, as in [`crate::ssp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Claim {
    id: u32,
    dist: u32,
}

/// The verbatim Algorithm 2 as a [`Protocol`]: bare-id priority, the
/// lines 18–27 drop rule, and a fixed `|S| + D₀` schedule.
struct PaperGrowth {
    n: u32,
    budget: u64,
    rounds_done: u64,
    delta: Vec<u32>,
    parent: Vec<Port>,
    li: Vec<std::collections::BTreeSet<u32>>,
    last_sent: Vec<Option<u32>>,
    /// This round's arrival per port (`r_i` of the pseudocode).
    received: Vec<Option<Claim>>,
}

impl Protocol for PaperGrowth {
    type Payload = Claim;
    type Output = Vec<u32>;

    fn on_message(
        &mut self,
        _ctx: &NodeContext<'_>,
        port: Port,
        payload: Claim,
        _tx: &mut Tx<Claim>,
    ) {
        self.received[port as usize] = Some(payload);
    }

    fn on_round_end(&mut self, ctx: &NodeContext<'_>, tx: &mut Tx<Claim>) {
        self.rounds_done += 1;
        // Lines 18–27, port by port in increasing index order.
        if self.rounds_done >= 2 {
            for port in 0..ctx.degree() as Port {
                let r = self.received[port as usize].take();
                let l = self.last_sent[port as usize];
                match (l, r) {
                    (Some(lid), Some(claim)) => {
                        if claim.id < lid {
                            // Line 19: our send was blocked; process r_i.
                            self.adopt_if_new(port, claim);
                        } else {
                            // Line 25–26: l_i was sent successfully; the
                            // arriving larger id is dropped.
                            self.li[port as usize].remove(&lid);
                        }
                    }
                    (None, Some(claim)) => self.adopt_if_new(port, claim),
                    (Some(lid), None) => {
                        self.li[port as usize].remove(&lid);
                    }
                    (None, None) => {}
                }
            }
        } else {
            self.received.fill(None);
        }
        // Lines 13–17: send min(L_i) per port.
        if self.rounds_done <= self.budget {
            for port in 0..ctx.degree() as Port {
                let l = self.li[port as usize].iter().next().copied();
                self.last_sent[port as usize] = l;
                if let Some(id) = l {
                    tx.send(
                        port,
                        Claim {
                            id,
                            dist: self.delta[id as usize] + 1,
                        },
                    );
                }
            }
        } else {
            self.last_sent.fill(None);
        }
    }

    fn is_active(&self) -> bool {
        self.rounds_done <= self.budget
    }

    fn width(&self, _payload: &Claim) -> Width {
        // Fixed-width fields over their domains: an id in `0..n` and a
        // distance in `0..=n` (charging by the current distance value
        // would under-count — no delimiter separates the two fields).
        Width::ZERO.id(self.n as usize).count(self.n as usize)
    }

    fn finish(self, _ctx: &NodeContext<'_>) -> Vec<u32> {
        self.delta
    }
}

impl PaperGrowth {
    fn adopt_if_new(&mut self, port: Port, claim: Claim) {
        let u = claim.id as usize;
        if self.delta[u] == INFINITY {
            // Lines 20–23, with the paper's lowest-index tie-break implied
            // by processing ports in increasing order.
            self.delta[u] = claim.dist;
            self.parent[u] = port;
            for (p, set) in self.li.iter_mut().enumerate() {
                if p != port as usize {
                    set.insert(claim.id);
                }
            }
        }
    }
}

/// Outcome of the verbatim Algorithm 2.
#[derive(Clone, Debug)]
pub struct PaperSspResult {
    /// The source set.
    pub sources: Vec<u32>,
    /// `dist[v][i]` — may be [`INFINITY`] if the
    /// budget ran out before `sources[i]` reached `v`.
    pub dist: Vec<Vec<u32>>,
    /// Number of `(node, source)` pairs left unresolved by the fixed
    /// schedule.
    pub unresolved: u64,
    /// The `|S| + D₀` budget the schedule ran.
    pub budget: u64,
    /// Round/message statistics.
    pub stats: RunStats,
}

/// Runs the paper's Algorithm 2 verbatim (see the module docs for why the
/// production implementation differs).
///
/// # Errors
///
/// Same input validation as [`crate::ssp::run`]. An exhausted budget is
/// *not* an error — it is the observable outcome (`unresolved > 0`).
pub fn run(graph: &Graph, sources: &[u32]) -> Result<PaperSspResult, CoreError> {
    let n = graph.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    if sources.is_empty() {
        return Err(CoreError::EmptySourceSet);
    }
    let mut is_source = vec![false; n];
    for &s in sources {
        if s as usize >= n {
            return Err(CoreError::InvalidNode {
                node: s,
                num_nodes: n,
            });
        }
        if is_source[s as usize] {
            return Err(CoreError::InvalidParameter(format!(
                "source {s} listed twice"
            )));
        }
        is_source[s as usize] = true;
    }
    let topology = graph.to_topology();
    let t1 = bfs::run_on(&topology, 0)?;
    if !t1.reached_all() {
        return Err(CoreError::Disconnected);
    }
    let depths: Vec<u64> = t1.dist.iter().map(|&d| u64::from(d)).collect();
    let agg = aggregate::run_on(&topology, &t1.tree, &depths, AggOp::Max)?;
    let d0 = 2 * agg.value as u32;
    let budget = sources.len() as u64 + u64::from(d0);
    let report = run_protocol_on(&topology, Config::for_n(n), |ctx| {
        let me = ctx.node_id();
        let mut delta = vec![INFINITY; n];
        let mut li = vec![std::collections::BTreeSet::new(); ctx.degree()];
        if is_source[me as usize] {
            delta[me as usize] = 0;
            for set in &mut li {
                set.insert(me);
            }
        }
        PaperGrowth {
            n: n as u32,
            budget,
            rounds_done: 0,
            delta,
            parent: vec![u32::MAX; n],
            li,
            last_sent: vec![None; ctx.degree()],
            received: vec![None; ctx.degree()],
        }
    })?;
    let seed = (vec![Vec::with_capacity(sources.len()); n], 0u64);
    let (dist, unresolved) = fold_outputs(report.outputs, seed, |acc, v, delta| {
        for &s in sources {
            let d = delta[s as usize];
            if d == INFINITY {
                acc.1 += 1;
            }
            acc.0[v as usize].push(d);
        }
    });
    let mut stats = t1.stats;
    stats.absorb_sequential(&agg.stats);
    stats.absorb_sequential(&report.stats);
    Ok(PaperSspResult {
        sources: sources.to_vec(),
        dist,
        unresolved,
        budget,
        stats,
    })
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror the matrix notation
mod tests {
    use super::*;
    use dapsp_graph::{generators, reference};

    /// On low-contention instances the verbatim algorithm is exact — the
    /// paper's analysis applies cleanly there.
    #[test]
    fn exact_on_benign_instances() {
        for (g, sources) in [
            (generators::path(15), vec![0u32, 14]),
            (generators::cycle(12), vec![3]),
            (generators::balanced_tree(2, 3), vec![0, 7]),
        ] {
            let r = run(&g, &sources).unwrap();
            assert_eq!(r.unresolved, 0);
            let oracle = reference::s_shortest_paths(&g, &sources);
            for (i, _) in sources.iter().enumerate() {
                for v in 0..g.num_nodes() {
                    assert_eq!(r.dist[v][i], oracle[i][v]);
                }
            }
        }
    }

    /// The documented counterexample: under heavy contention the first
    /// arrival can carry a non-shortest distance. In the complete graph
    /// with sources {1, 2}, node 1's direct receipt of id 2 is blocked by
    /// its own smaller id and a two-hop detour claim wins the adoption.
    #[test]
    fn records_wrong_distance_under_contention() {
        let g = generators::complete(6);
        let r = run(&g, &[1, 2]).unwrap();
        let oracle = reference::s_shortest_paths(&g, &[1, 2]);
        let mut wrong = 0;
        for v in 0..6 {
            for i in 0..2 {
                if r.dist[v][i] != INFINITY && r.dist[v][i] != oracle[i][v] {
                    wrong += 1;
                }
            }
        }
        assert!(
            wrong > 0,
            "the verbatim tie-break should record a detour distance here"
        );
        // The production implementation gets the same instance right.
        let fixed = crate::ssp::run(&g, &[1, 2]).unwrap();
        for v in 0..6 {
            for i in 0..2 {
                assert_eq!(fixed.dist[v][i], oracle[i][v]);
            }
        }
    }

    /// Sweep random dense instances and count how often the verbatim
    /// algorithm deviates from the oracle; the repaired algorithm never
    /// does (its exactness is proptested separately).
    #[test]
    fn deviation_statistics_on_dense_instances() {
        let mut deviating_instances = 0;
        for seed in 0..10u64 {
            let g = generators::erdos_renyi_connected(24, 0.3, seed);
            let sources: Vec<u32> = (0..12).collect();
            let r = run(&g, &sources).unwrap();
            let oracle = reference::s_shortest_paths(&g, &sources);
            let bad = (0..24).any(|v| (0..sources.len()).any(|i| r.dist[v][i] != oracle[i][v]));
            if bad {
                deviating_instances += 1;
            }
        }
        // The point of the ablation: deviations are real and not rare on
        // contended instances.
        assert!(
            deviating_instances > 0,
            "expected at least one deviating instance across the sweep"
        );
    }
}

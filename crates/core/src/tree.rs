//! Node-local knowledge of a rooted spanning tree.

use dapsp_congest::Port;
use dapsp_graph::Graph;

/// What every node knows about a rooted spanning tree (such as the paper's
/// `T_1`) after a BFS: its parent port and its children ports.
///
/// This is deliberately *port-based* — it is exactly the local knowledge a
/// node acquires distributedly, and it is what the tree-based algorithms
/// (pebble traversal, convergecast/broadcast aggregation, the k-dominating
/// set rule) consume as their starting state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeKnowledge {
    /// The root node's id.
    pub root: u32,
    /// `parent_port[v]` is the port at `v` toward its parent (`None` at the
    /// root and at nodes outside the tree).
    pub parent_port: Vec<Option<Port>>,
    /// `children_ports[v]` lists the ports at `v` toward its children.
    pub children_ports: Vec<Vec<Port>>,
}

impl TreeKnowledge {
    /// Resolves parent ports to parent node ids using the graph.
    pub fn parent_ids(&self, graph: &Graph) -> Vec<Option<u32>> {
        self.parent_port
            .iter()
            .enumerate()
            .map(|(v, p)| p.map(|p| graph.neighbors(v as u32)[p as usize]))
            .collect()
    }

    /// Resolves children ports to children node ids using the graph.
    pub fn children_ids(&self, graph: &Graph) -> Vec<Vec<u32>> {
        self.children_ports
            .iter()
            .enumerate()
            .map(|(v, ports)| {
                ports
                    .iter()
                    .map(|&p| graph.neighbors(v as u32)[p as usize])
                    .collect()
            })
            .collect()
    }

    /// Number of nodes the structure covers (the graph size, not the tree
    /// size).
    pub fn num_nodes(&self) -> usize {
        self.parent_port.len()
    }

    /// True if every node is in the tree (has a parent or is the root).
    pub fn spans_all(&self) -> bool {
        self.parent_port
            .iter()
            .enumerate()
            .all(|(v, p)| p.is_some() || v as u32 == self.root)
    }
}

#[cfg(test)]
mod tests {

    use crate::bfs;
    use dapsp_graph::generators;

    #[test]
    fn ids_resolve_consistently() {
        let g = generators::grid(3, 3);
        let r = bfs::run(&g, 0).unwrap();
        let parents = r.tree.parent_ids(&g);
        let children = r.tree.children_ids(&g);
        let mut edge_count = 0;
        for v in 0..9u32 {
            for &c in &children[v as usize] {
                assert_eq!(parents[c as usize], Some(v));
                edge_count += 1;
            }
        }
        // A spanning tree on 9 nodes has 8 edges.
        assert_eq!(edge_count, 8);
        assert!(r.tree.spans_all());
        assert_eq!(r.tree.num_nodes(), 9);
    }

    #[test]
    fn spans_all_is_false_on_disconnected() {
        let mut b = dapsp_graph::Graph::builder(3);
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        let r = bfs::run(&g, 0).unwrap();
        assert!(!r.tree.spans_all());
    }
}

//! Error type shared by all distributed algorithms in this crate.

use std::error::Error;
use std::fmt;

use dapsp_congest::SimError;

/// Errors raised by the distributed algorithms.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// The underlying simulation failed (bandwidth violation, round-limit
    /// blowout, …). Any of these indicates a bug in an algorithm, since the
    /// paper's algorithms respect the CONGEST constraints by design.
    Sim(SimError),
    /// The input graph is disconnected; the paper's model assumes a
    /// connected network (distances would be infinite otherwise).
    Disconnected,
    /// The input graph has no nodes.
    EmptyGraph,
    /// A requested source/root node id is `>= n`.
    InvalidNode {
        /// The offending id.
        node: u32,
        /// The graph size.
        num_nodes: usize,
    },
    /// The source set `S` passed to S-SP was empty.
    EmptySourceSet,
    /// An approximation parameter was out of range (e.g. `epsilon <= 0`).
    InvalidParameter(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sim(e) => write!(f, "simulation failed: {e}"),
            CoreError::Disconnected => write!(f, "input graph is disconnected"),
            CoreError::EmptyGraph => write!(f, "input graph has no nodes"),
            CoreError::InvalidNode { node, num_nodes } => {
                write!(f, "node {node} out of range for a {num_nodes}-node graph")
            }
            CoreError::EmptySourceSet => write!(f, "source set must be nonempty"),
            CoreError::InvalidParameter(why) => write!(f, "invalid parameter: {why}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(CoreError::Disconnected.to_string().contains("disconnected"));
        let e = CoreError::InvalidNode {
            node: 7,
            num_nodes: 3,
        };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn sim_errors_convert_and_chain() {
        let e: CoreError = SimError::RoundLimitExceeded { limit: 5 }.into();
        assert!(matches!(e, CoreError::Sim(_)));
        assert!(Error::source(&e).is_some());
    }
}
